"""Fig 11 — hardware fetch mechanisms, alone and with CritIC.

Paper shapes checked: AllHW is the strongest hardware configuration;
CritIC stacks on top of every mechanism without hurting it (synergy);
front-end mechanisms (4xI$, EFetch, PerfectBr) reduce F.StallForI while
BackendPrio does not; AllHW+CritIC is the best overall.
"""

from conftest import write_result

from repro.experiments import fig11


def test_fig11(benchmark, bench_scale):
    walk, apps, _ = bench_scale
    result = benchmark.pedantic(
        fig11.run, kwargs=dict(apps=min(apps or 6, 6), walk_blocks=walk),
        rounds=1, iterations=1,
    )
    write_result("fig11_hardware_comparison", fig11.format_result(result))

    rows = {r.mechanism: r for r in result.rows}
    # AllHW dominates each individual mechanism.
    for label in ("2xFD", "4xI$", "EFetch", "PerfectBr", "BackendPrio"):
        assert rows["AllHW"].hw_only_pct >= rows[label].hw_only_pct - 0.5

    # CritIC stacks: adding it on top of any mechanism does not
    # meaningfully regress that mechanism.
    for row in result.rows:
        assert row.with_critic_pct >= row.hw_only_pct - 1.5

    # PerfectBr removes branch-side supply stalls vs baseline.
    assert rows["PerfectBr"].stall_for_i <= result.baseline_stall_i + 0.01
    # BackendPrio does not address supply-side stalls.
    assert rows["BackendPrio"].stall_for_i \
        >= rows["PerfectBr"].stall_for_i - 0.02
