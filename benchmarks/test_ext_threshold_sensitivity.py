"""Extension — sensitivity to the CritIC average-fanout threshold.

The paper fixes the threshold at 8 and notes other values "result in
slight performance degradations" (Sec. III-C).  We sweep the threshold:
lower values admit low-value chains (more switch overhead per useful
member), higher values shrink coverage.
"""

from conftest import write_result

from repro.cache import artifact_key, get_cache
from repro.compiler import CriticPass, PassManager, region_oracle
from repro.cpu import GOOGLE_TABLET, SimStats, simulate, speedup
from repro.experiments import app_context, format_table, geometric_mean
from repro.profiler import FinderConfig, find_critic_profile

THRESHOLDS = (4.0, 6.0, 8.0, 12.0, 16.0)


def _sweep(walk, apps):
    names = ["Acrobat", "Maps", "Office"][:apps or 3]
    rows = []
    for threshold in THRESHOLDS:
        ratios = []
        coverage = 0.0
        for name in names:
            ctx = app_context(name, walk)
            base = ctx.stats("baseline")
            config = FinderConfig(threshold=threshold)
            cache = get_cache()
            key = artifact_key(
                "ext_threshold", profile=ctx.app_profile, finder=config,
                max_length=5, config=GOOGLE_TABLET,
            )
            cell = cache.load_json("ext_threshold", key)
            if cell is None:
                profile = find_critic_profile(
                    ctx.trace(), ctx.workload.program, config,
                    app_name=name,
                )
                records = profile.select_for_compiler(max_length=5)
                result = PassManager([
                    CriticPass(records, mode="cdp",
                               may_alias=region_oracle(ctx.workload.memory))
                ]).run(ctx.workload.program)
                stats = simulate(ctx.workload.trace_for(result.program))
                cell = {
                    "stats": stats.to_dict(),
                    "coverage": profile.total_coverage(),
                }
                cache.store_json("ext_threshold", key, cell)
            stats = SimStats.from_dict(cell["stats"])
            ratios.append(speedup(base, stats))
            coverage += cell["coverage"]
        rows.append((threshold,
                     100 * (geometric_mean(ratios) - 1),
                     100 * coverage / len(names)))
    return rows


def test_threshold_sensitivity(benchmark, bench_scale):
    walk, apps, _ = bench_scale
    rows = benchmark.pedantic(
        _sweep, args=(walk, min(apps or 3, 3)), rounds=1, iterations=1,
    )
    text = "Extension: CritIC threshold sensitivity\n" + format_table(
        ["threshold", "speedup", "coverage"],
        [[f"{t:.0f}", f"{s:+.2f}%", f"{c:.1f}%"] for t, s, c in rows],
    )
    write_result("ext_threshold_sensitivity", text)

    by_threshold = dict((t, (s, c)) for t, s, c in rows)
    # Coverage shrinks monotonically as the threshold rises.
    coverages = [by_threshold[t][1] for t in THRESHOLDS]
    assert all(a >= b - 0.2 for a, b in zip(coverages, coverages[1:]))
