"""Fig 3 — pipeline-stage residency of critical instructions.

Paper shapes checked: the front end (fetch+decode share of critical-
instruction time) is more dominant for mobile than for SPEC; SPEC's back
end (issue wait / execute) dominates; mobile criticals have far fewer
long-latency instructions; SPEC.float carries the largest long-latency
share.
"""

from conftest import write_result

from repro.experiments import fig03


def test_fig03(benchmark, bench_scale):
    walk, apps, per_group = bench_scale
    groups = benchmark.pedantic(
        fig03.run, kwargs=dict(per_group=per_group, walk_blocks=walk),
        rounds=1, iterations=1,
    )
    write_result("fig03_stage_breakdown", fig03.format_result(groups))
    by = {g.group: g for g in groups}

    def back(g):
        return (g.stage_fractions["issue_wait"]
                + g.stage_fractions["execute"])

    # Mobile is supply-side (front-end) limited relative to SPEC: its
    # F.StallForI fraction exceeds both SPEC groups', while SPEC's
    # back-pressure (F.StallForR+D, i.e. decode-to-commit congestion)
    # dominates mobile's.
    assert by["mobile"].stall_for_i > by["spec_int"].stall_for_i
    assert by["mobile"].stall_for_i > by["spec_float"].stall_for_i
    assert by["spec_float"].stall_for_rd > by["mobile"].stall_for_rd
    # SPEC criticals' back-end residency share exceeds mobile's.
    assert back(by["spec_float"]) > back(by["mobile"])

    # Fig 3c: long-latency criticals are rare on mobile.
    assert by["mobile"].long_latency_frac < 0.10
    assert by["spec_float"].long_latency_frac \
        >= by["mobile"].long_latency_frac

    # Fig 3b: every group reports a meaningful fetch-stall decomposition.
    for g in groups:
        assert 0.0 <= g.stall_for_i <= 1.0
        assert 0.0 <= g.stall_for_rd <= 1.0
        assert g.fetch_active > 0.1
