"""Table II — the evaluated app/benchmark catalog."""

from conftest import write_result

from repro.workloads import (
    format_table2,
    mobile_app_names,
    spec_float_names,
    spec_int_names,
)


def test_table2_catalog(benchmark):
    text = benchmark.pedantic(format_table2, rounds=1, iterations=1)
    write_result("table2_catalog", "Table II: evaluated workloads\n" + text)
    assert len(mobile_app_names()) == 10
    assert len(spec_int_names()) == 8
    assert len(spec_float_names()) == 8
    for app in ("Acrobat", "Angrybirds", "Browser", "Facebook", "Email",
                "Maps", "Music", "Office", "Photogallery", "Youtube"):
        assert app in text
