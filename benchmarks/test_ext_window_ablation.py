"""Extension — microarchitectural ablations of the design choices.

DESIGN.md §5 calls out two simulator design decisions that carry the
paper's mechanisms: byte-granular fetch (the lever the 16-bit conversion
pulls) and the restricted scheduling window (the structure dependence
chains clog).  This bench sweeps both and reports how the baseline and the
CritIC benefit respond.
"""

from dataclasses import replace

from conftest import write_result

from repro.cpu import GOOGLE_TABLET, simulate, speedup
from repro.experiments import app_context, format_table

APPS = ("Acrobat", "Maps")


def _sweep(walk):
    rows = []
    for label, cfg in (
        ("fetch=8B", replace(GOOGLE_TABLET, fetch_bytes_per_cycle=8)),
        ("fetch=16B (base)", GOOGLE_TABLET),
        ("fetch=32B", replace(GOOGLE_TABLET, fetch_bytes_per_cycle=32)),
        ("window=6", replace(GOOGLE_TABLET, scheduling_window=6)),
        ("window=12 (base)", GOOGLE_TABLET),
        ("window=48", replace(GOOGLE_TABLET, scheduling_window=48)),
    ):
        base_ipc = 0.0
        critic_gain = 0.0
        for app in APPS:
            ctx = app_context(app, walk)
            base = simulate(ctx.scheme_trace("baseline"), cfg)
            critic = simulate(ctx.scheme_trace("critic"), cfg)
            base_ipc += base.ipc
            critic_gain += 100 * (speedup(base, critic) - 1)
        rows.append((label, base_ipc / len(APPS),
                     critic_gain / len(APPS)))
    return rows


def test_window_and_fetch_ablation(benchmark, bench_scale):
    walk, _, _ = bench_scale
    rows = benchmark.pedantic(_sweep, args=(walk,), rounds=1, iterations=1)
    text = ("Extension: fetch-width / scheduling-window ablation "
            f"(mean of {', '.join(APPS)})\n") + format_table(
        ["configuration", "baseline IPC", "CritIC speedup"],
        [[label, f"{ipc:.2f}", f"{gain:+.2f}%"] for label, ipc, gain in rows],
    )
    write_result("ext_window_ablation", text)

    by = {label: (ipc, gain) for label, ipc, gain in rows}
    # Baseline IPC grows monotonically with fetch bandwidth.
    assert by["fetch=8B"][0] < by["fetch=16B (base)"][0] + 0.05
    assert by["fetch=16B (base)"][0] <= by["fetch=32B"][0] + 0.05
    # Narrower fetch makes the 16-bit conversion matter more (or equal).
    assert by["fetch=8B"][1] >= by["fetch=32B"][1] - 0.5
