"""Fig 10 — the headline CritIC evaluation (speedup, fetch, energy).

Paper shapes checked: CritIC (hoist + Thumb) is at least as good as
Hoist alone on average; CritIC.Ideal stays close to CritIC (the length-5 /
encodable restriction costs little); CritIC does not increase fetch
stalls; energy savings follow the speedup.
"""

from conftest import write_result

from repro.experiments import fig10


def test_fig10(benchmark, bench_scale):
    walk, apps, _ = bench_scale
    result = benchmark.pedantic(
        fig10.run, kwargs=dict(apps=apps, walk_blocks=walk),
        rounds=1, iterations=1,
    )
    write_result("fig10_critic", fig10.format_result(result))

    # CritIC combines both optimizations: >= Hoist alone on the mean.
    assert result.mean_critic_pct >= result.mean_hoist_pct - 0.3
    # CritIC.Ideal stays close to realistic CritIC (paper: <= ~1% gap).
    assert abs(result.mean_critic_ideal_pct - result.mean_critic_pct) < 2.5

    for row in result.rows:
        # CritIC reduces (or at worst holds) supply-side fetch stalls.
        assert row.critic_stall_i <= row.base_stall_i + 0.02
        # Energy total tracks the speedup sign within tolerance.
        if row.critic_pct > 0.5:
            assert row.energy_total_pct > -0.5
