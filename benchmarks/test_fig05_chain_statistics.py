"""Fig 5 — IC length/spread and unique-CritIC coverage.

Paper shapes checked: SPEC ICs are an order of magnitude longer and more
spread out than mobile ICs (mobile <= ~tens of members, SPEC hundreds);
the Thumb-encodable CritIC subset covers nearly all of the full set
(paper: within ~5%).
"""

from conftest import write_result

from repro.experiments import fig05


def test_fig05(benchmark, bench_scale):
    walk, apps, per_group = bench_scale
    result = benchmark.pedantic(
        fig05.run,
        kwargs=dict(per_group=per_group, walk_blocks=walk, mobile_apps=apps),
        rounds=1, iterations=1,
    )
    write_result("fig05_chain_statistics", fig05.format_result(result))

    by = {r.group: r for r in result.chain_stats}
    # SPEC chains are much longer and more spread than mobile chains.
    assert by["spec_int"].max_length > 3 * by["mobile"].max_length
    assert by["spec_float"].max_length > 3 * by["mobile"].max_length
    assert by["spec_int"].mean_spread > 2 * by["mobile"].mean_spread
    assert by["spec_int"].max_spread > by["mobile"].max_spread
    # Mobile chains stay short (paper: <= ~20 members).
    assert by["mobile"].max_length <= 40

    for row in result.coverage:
        assert row.unique_chains > 0
        # The encodable subset loses only a small part of total coverage.
        assert row.encodable_coverage_pct \
            >= 0.75 * row.total_coverage_pct
        # The profile stays concise (paper: ~10KB).
        assert row.table_bytes < 64 * 1024

    for cdf in result.cdfs.values():
        # CDFs are monotone non-decreasing.
        assert all(b >= a - 1e-12 for a, b in zip(cdf, cdf[1:]))
