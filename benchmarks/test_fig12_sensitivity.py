"""Fig 12 — sensitivity to CritIC length and profile coverage.

Paper shapes checked: per-length speedup rises then falls (finding
all-convertible chains of exactly length n gets harder as n grows — the
paper peaks at n = 5, we assert the peak lies at a small-to-moderate n and
that very long exact lengths underperform it); more profile coverage never
hurts and the full profile is at least as good as a sliver.
"""

from conftest import write_result

from repro.experiments import fig12


def test_fig12a_length(benchmark, bench_scale):
    walk, apps, _ = bench_scale
    rows = benchmark.pedantic(
        fig12.run_length_sensitivity,
        kwargs=dict(apps=min(apps or 3, 4), walk_blocks=walk),
        rounds=1, iterations=1,
    )
    write_result("fig12a_length_sensitivity", fig12.format_length(rows))

    by_len = {r.length: r for r in rows}
    best = max(rows, key=lambda r: r.speedup_pct)
    # The best exact length is small-to-moderate (paper: 5).
    assert best.length <= 7
    # The longest evaluated length converts fewer chains than the best.
    assert by_len[max(by_len)].chains_converted \
        <= best.chains_converted


def test_fig12b_profile_coverage(benchmark, bench_scale):
    walk, apps, _ = bench_scale
    rows = benchmark.pedantic(
        fig12.run_profile_sensitivity,
        kwargs=dict(apps=min(apps or 3, 4), walk_blocks=walk),
        rounds=1, iterations=1,
    )
    write_result("fig12b_profile_sensitivity", fig12.format_profile(rows))

    by_frac = {r.profiled_fraction: r for r in rows}
    # Full profiling is at least as good as profiling a tenth.
    assert by_frac[1.0].speedup_pct >= by_frac[0.1].speedup_pct - 0.4
