"""Table I — the baseline simulated hardware configuration."""

from conftest import write_result

from repro.cpu import GOOGLE_TABLET, format_table1


def test_table1_configuration(benchmark):
    text = benchmark.pedantic(format_table1, rounds=1, iterations=1)
    write_result("table1_config", "Table I: baseline configuration\n" + text)
    assert "4-wide superscalar" in text
    assert "128-entry ROB" in text
    assert "32KB 2-way" in text
    assert GOOGLE_TABLET.rob_entries == 128
