"""Fig 8 — Approach 1 (branch-pair switching) on stock hardware.

Paper shape checked: branch-based switching loses most of the CDP
approach's benefit on short (length-5) chains — the lost potential is
positive for effectively every app and for the mean.
"""

from conftest import write_result

from repro.experiments import fig08


def test_fig08(benchmark, bench_scale):
    walk, apps, _ = bench_scale
    result = benchmark.pedantic(
        fig08.run, kwargs=dict(apps=apps, walk_blocks=walk),
        rounds=1, iterations=1,
    )
    write_result("fig08_branch_switch", fig08.format_result(result))

    # The CDP switch strictly beats branch-pair switching on average.
    assert result.mean_cdp_pct > result.mean_branch_pct
    # Branch switching pays real overheads: it never greatly exceeds CDP.
    for row in result.rows:
        assert row.branch_switch_pct <= row.cdp_switch_pct + 0.5
