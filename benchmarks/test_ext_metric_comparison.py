"""Extension — alternative chain-criticality metrics (paper future work).

Sec. III-A: "one could consider higher order representations for capturing
such variances in future work".  We rank chains by four metrics and report
how the chain populations they select differ.
"""

from conftest import write_result

from repro.dfg import (
    Dfg,
    METRICS,
    iter_maximal_paths,
)
from repro.experiments import app_context, format_table


def _compare(walk):
    ctx = app_context("Acrobat", walk)
    dfg = Dfg(ctx.trace().window(0, min(8000, len(ctx.trace()))))
    paths = [p for p in iter_maximal_paths(dfg)][:4000]
    rows = []
    for name, metric in METRICS.items():
        scores = []
        for path in paths:
            fanouts = [dfg.fanouts[p] for p in path]
            scores.append(metric(fanouts))
        selected = sum(1 for s in scores if s > 8.0)
        mean_score = sum(scores) / len(scores) if scores else 0.0
        rows.append((name, len(paths), selected, mean_score))
    return rows


def test_metric_comparison(benchmark, bench_scale):
    walk, _, _ = bench_scale
    rows = benchmark.pedantic(_compare, args=(walk,),
                              rounds=1, iterations=1)
    text = "Extension: chain-criticality metric comparison\n" + format_table(
        ["metric", "paths", "selected@8", "mean score"],
        [[name, str(n), str(sel), f"{mean:.2f}"]
         for name, n, sel, mean in rows],
    )
    write_result("ext_metric_comparison", text)

    by_name = {r[0]: r for r in rows}
    # The variance-penalized metric is never more permissive than average.
    assert by_name["variance_penalized"][2] <= by_name["average"][2]
    # Total fanout is the most permissive.
    assert by_name["total"][2] >= by_name["average"][2]
