"""Shared benchmark configuration.

Every benchmark regenerates one paper table/figure and writes the rendered
rows to ``results/<name>.txt`` (so the reproduction output survives pytest's
output capture).  Scale knobs:

* ``REPRO_BENCH_WALK``  — dynamic blocks per workload (default 400)
* ``REPRO_BENCH_APPS``  — mobile apps per figure (default all 10)
* ``REPRO_BENCH_GROUP`` — SPEC benchmarks per group (default 4)
"""

import os
from pathlib import Path

import pytest

#: walk length used by all benchmarks
WALK = int(os.environ.get("REPRO_BENCH_WALK", "400"))
#: number of mobile apps (None = all ten)
APPS = int(os.environ.get("REPRO_BENCH_APPS", "0")) or None
#: benchmarks per SPEC group in group-wide figures
PER_GROUP = int(os.environ.get("REPRO_BENCH_GROUP", "4"))

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def write_result(name: str, text: str) -> None:
    """Persist a rendered figure/table and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")


@pytest.fixture(scope="session")
def bench_scale():
    """(walk_blocks, mobile_apps, per_group) for this run."""
    return WALK, APPS, PER_GROUP
