"""Fig 13 — opportunistic Thumb conversion vs CritIC.

Paper shapes checked: CritIC converts far fewer dynamic instructions than
OPP16 and Compress (paper: 37% and 50% fewer); stacking OPP16 on top of
CritIC is at least as good as CritIC alone (the paper's +25% relative
boost); conversion fractions are ordered Compress >= OPP16 > CritIC.
"""

from conftest import write_result

from repro.experiments import fig13


def test_fig13(benchmark, bench_scale):
    walk, apps, _ = bench_scale
    result = benchmark.pedantic(
        fig13.run, kwargs=dict(apps=apps, walk_blocks=walk),
        rounds=1, iterations=1,
    )
    write_result("fig13_opportunistic_thumb", fig13.format_result(result))

    schemes = list(fig13.SCHEMES)
    opp16 = schemes.index("opp16")
    compress = schemes.index("compress")
    critic = schemes.index("critic")
    stacked = schemes.index("opp16_critic")

    conv = result.mean_converted_frac
    # CritIC converts far fewer instructions than the volume baselines.
    assert conv[critic] < 0.6 * conv[opp16]
    assert conv[critic] < 0.6 * conv[compress]
    assert conv[compress] >= conv[opp16] - 0.02

    # Stacking OPP16 on CritIC keeps (or improves) the CritIC result.
    speedups = result.mean_speedups_pct
    assert speedups[stacked] >= speedups[critic] - 1.0
