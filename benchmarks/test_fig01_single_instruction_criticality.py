"""Fig 1 — single-instruction criticality optimizations across groups.

Paper shapes checked: SPEC gains from critical-load prefetching clearly
exceed the mobile gains (paper: 15-34% vs 0.7%); mobile apps have *more*
critical instructions than SPEC; mobile chains have their critical-to-
critical gap mass at 1..5 low-fanout instructions while SPEC mass sits at
none/0.
"""

from conftest import write_result

from repro.experiments import fig01


def test_fig01(benchmark, bench_scale):
    walk, apps, per_group = bench_scale
    result = benchmark.pedantic(
        fig01.run, kwargs=dict(per_group=per_group, walk_blocks=walk),
        rounds=1, iterations=1,
    )
    write_result("fig01_single_instruction_criticality",
                 fig01.format_result(result))

    rows = {r.group: r for r in result.rows}
    # Prefetching helps SPEC far more than mobile (paper: 15-34% vs 0.7%).
    spec_best = max(rows["spec_int"].prefetch_speedup_pct,
                    rows["spec_float"].prefetch_speedup_pct)
    assert spec_best > rows["mobile"].prefetch_speedup_pct + 1.0
    assert rows["mobile"].prefetch_speedup_pct < 2.0

    # Mobile has at least as many critical instructions as SPEC.
    assert rows["mobile"].critical_fraction_pct \
        > rows["spec_int"].critical_fraction_pct
    assert rows["mobile"].critical_fraction_pct \
        > rows["spec_float"].critical_fraction_pct

    # Gap structure: mobile mass at 1..5; SPEC mass at none/0.
    gaps = result.gap_histograms
    mobile_gap15 = sum(gaps["mobile"].get(str(g), 0.0) for g in range(1, 6))
    for group in ("spec_int", "spec_float"):
        spec_gap15 = sum(gaps[group].get(str(g), 0.0) for g in range(1, 6))
        spec_none0 = gaps[group].get("none", 0.0) + gaps[group].get("0", 0.0)
        assert spec_none0 > 0.8
        assert mobile_gap15 > spec_gap15 + 0.3
