"""Legacy shim over :mod:`repro.telemetry` (kept for import stability).

``repro.perf`` grew into the telemetry subsystem; the phase timers and
counters now live in :mod:`repro.telemetry.spans`, gained hierarchical
span trees with self-vs-cumulative accounting, and merge across the
parallel runner's worker processes.  Existing call sites (``perf.phase``,
``perf.count``, ``perf.counters`` ...) keep working through this module;
new code should import :mod:`repro.telemetry` directly.

Importing this module raises a single :class:`DeprecationWarning`; the
repo itself no longer imports it anywhere.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.perf is deprecated; import repro.telemetry "
    "(repro.telemetry.spans) instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.telemetry.spans import (  # noqa: E402
    count,
    counters,
    enabled,
    phase,
    phase_stats,
    phases,
    report,
    reset,
)

__all__ = [
    "count",
    "counters",
    "enabled",
    "phase",
    "phase_stats",
    "phases",
    "report",
    "reset",
]
