"""Lightweight phase timers and counters for the experiment pipeline.

Every expensive stage of the reproduction (workload generation, profiling,
compilation, simulation, artifact-cache IO) is wrapped in :func:`phase`,
and discrete events (cache hits/misses, simulated instructions) are tallied
with :func:`count`.  The overhead is one ``perf_counter`` call pair per
phase entry, so the instrumentation is always on; the *report* is only
printed when ``REPRO_PERF=1`` is set, at interpreter exit.

Typical report::

    == repro.perf ==============================================
    phase                          calls      total        mean
    simulate                          52     12.41s     238.7ms
    generate                          26      3.02s     116.2ms
    ...
    counter                                    value
    cache.hit.stats                               52
"""

from __future__ import annotations

import atexit
import os
import sys
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Tuple

_ENV = "REPRO_PERF"

#: phase name -> (call count, total seconds)
_phases: Dict[str, List[float]] = {}
#: counter name -> value
_counters: Dict[str, int] = {}


def enabled() -> bool:
    """True when ``REPRO_PERF=1`` (report printed at exit)."""
    return os.environ.get(_ENV, "") not in ("", "0")


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Time one pipeline phase; nestable and re-entrant."""
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        cell = _phases.get(name)
        if cell is None:
            _phases[name] = [1, elapsed]
        else:
            cell[0] += 1
            cell[1] += elapsed


def count(name: str, value: int = 1) -> None:
    """Bump a named counter (cache hits, instructions simulated, ...)."""
    _counters[name] = _counters.get(name, 0) + value


def counters() -> Dict[str, int]:
    """Snapshot of all counters (tests and the cache smoke check use this)."""
    return dict(_counters)


def phases() -> Dict[str, Tuple[int, float]]:
    """Snapshot of phase timings as ``name -> (calls, total_seconds)``."""
    return {name: (int(c), t) for name, (c, t) in _phases.items()}


def reset() -> None:
    """Clear all timings/counters (tests use this)."""
    _phases.clear()
    _counters.clear()


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def report() -> str:
    """Render the per-phase/per-counter report."""
    lines = ["== repro.perf " + "=" * 46]
    if _phases:
        lines.append(f"{'phase':<30} {'calls':>6} {'total':>10} {'mean':>10}")
        ordered = sorted(_phases.items(), key=lambda kv: -kv[1][1])
        for name, (calls, total) in ordered:
            mean = total / calls if calls else 0.0
            lines.append(
                f"{name:<30} {int(calls):>6} {_fmt_seconds(total):>10} "
                f"{_fmt_seconds(mean):>10}"
            )
    if _counters:
        lines.append("")
        lines.append(f"{'counter':<40} {'value':>8}")
        for name in sorted(_counters):
            lines.append(f"{name:<40} {_counters[name]:>8}")
    return "\n".join(lines)


def _report_at_exit() -> None:
    if enabled() and (_phases or _counters):
        print(report(), file=sys.stderr)


atexit.register(_report_at_exit)
