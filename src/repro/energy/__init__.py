"""Event-based SoC energy model (Fig 10c) and CDP hardware-cost constants."""

from repro.energy.model import (
    CDP_LOGIC_AREA_UM2,
    CDP_LOGIC_DELAY_PS,
    CDP_LOGIC_DYNAMIC_W,
    CDP_LOGIC_LEAKAGE_W,
    EnergyBreakdown,
    EnergyParams,
    EnergySavings,
    energy_of,
    savings,
)

__all__ = [
    "CDP_LOGIC_AREA_UM2",
    "CDP_LOGIC_DELAY_PS",
    "CDP_LOGIC_DYNAMIC_W",
    "CDP_LOGIC_LEAKAGE_W",
    "EnergyBreakdown",
    "EnergyParams",
    "EnergySavings",
    "energy_of",
    "savings",
]
