"""SoC energy model (paper Sec. IV-F, Fig 10c).

Event-based energy accounting calibrated to the paper's component shares:
the CPU core cluster is ~20% of SoC energy, the memory system ~15%, and the
rest of the SoC (display, radios, peripherals, accelerators) ~65% and
*fixed* for a given user activity (the app performs the same work; only the
CPU-side execution shortens).  With those shares, the paper's numbers are
mutually consistent: a 15% CPU-energy saving contributes ~3% of SoC energy,
i-cache access reduction ~0.8%, memory ~1.5%, totalling the reported ~4.6%
system-wide saving.

The CDP decoder-extension hardware cost from the paper's Synopsys run is
recorded here as constants (area 80 um^2, 58 uW dynamic, 414 nW leakage)
and included in the CPU totals when format switches are used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.cpu.stats import SimStats

#: Paper-reported synthesis results for the CDP mode-switch logic.
CDP_LOGIC_AREA_UM2 = 80.0
CDP_LOGIC_DYNAMIC_W = 58e-6
CDP_LOGIC_LEAKAGE_W = 414e-9
CDP_LOGIC_DELAY_PS = 160.0


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies (picojoules) and static power (pJ/cycle).

    Absolute values are representative of a ~28nm mobile SoC; only the
    *ratios* matter for Fig 10c, and they are chosen so the baseline
    component shares match the paper's implied breakdown (see module
    docstring).
    """

    # dynamic, per event
    pj_per_commit: float = 10.0       # core datapath energy per instruction
    pj_icache_access: float = 18.0    # per line fetch from the i-cache
    pj_dcache_access: float = 12.0
    pj_l2_access: float = 60.0
    pj_dram_access: float = 900.0
    pj_cdp_decode: float = 2.0        # the 58 uW switch logic, per use
    # static, per cycle
    pj_cpu_static: float = 9.0
    pj_mem_static: float = 3.0
    #: rest-of-SoC energy per *committed instruction* of app work —
    #: display/radio/peripheral energy tracks the user activity, not the
    #: CPU's speed, so it is proportional to work done, not cycles.
    pj_soc_rest_per_instr: float = 95.0


@dataclass
class EnergyBreakdown:
    """Joule-less (pJ) energy totals per component."""

    cpu_dynamic: float = 0.0
    cpu_static: float = 0.0
    icache: float = 0.0
    dcache: float = 0.0
    l2: float = 0.0
    dram: float = 0.0
    mem_static: float = 0.0
    soc_rest: float = 0.0

    @property
    def cpu_total(self) -> float:
        """CPU cluster energy (core + i-cache, the paper's "CPU")."""
        return self.cpu_dynamic + self.cpu_static + self.icache

    @property
    def memory_total(self) -> float:
        """Memory-side energy (d-cache + L2 + DRAM + static)."""
        return self.dcache + self.l2 + self.dram + self.mem_static

    @property
    def soc_total(self) -> float:
        return self.cpu_total + self.memory_total + self.soc_rest

    def as_dict(self) -> Dict[str, float]:
        return {
            "cpu_dynamic": self.cpu_dynamic,
            "cpu_static": self.cpu_static,
            "icache": self.icache,
            "dcache": self.dcache,
            "l2": self.l2,
            "dram": self.dram,
            "mem_static": self.mem_static,
            "soc_rest": self.soc_rest,
        }


def energy_of(stats: SimStats,
              params: EnergyParams = EnergyParams()) -> EnergyBreakdown:
    """Compute the energy breakdown of one simulation run.

    CDP format switches are decoder events, not app work: they are charged
    their switch-logic energy but excluded from the per-instruction core
    and rest-of-SoC terms (the app performs the same logical work).
    """
    work = stats.instructions - stats.cdp_decoded
    breakdown = EnergyBreakdown(
        cpu_dynamic=(params.pj_per_commit * work
                     + params.pj_cdp_decode * stats.cdp_decoded),
        cpu_static=params.pj_cpu_static * stats.cycles,
        icache=params.pj_icache_access * stats.icache_accesses,
        dcache=params.pj_dcache_access * stats.dcache_accesses,
        l2=params.pj_l2_access * stats.l2_accesses,
        dram=params.pj_dram_access * stats.dram_reads,
        mem_static=params.pj_mem_static * stats.cycles,
        soc_rest=params.pj_soc_rest_per_instr * work,
    )
    return breakdown


@dataclass(frozen=True)
class EnergySavings:
    """Fig 10c: per-component SoC-relative savings of optimized vs base."""

    cpu_pct_of_soc: float
    icache_pct_of_soc: float
    memory_pct_of_soc: float
    total_pct_of_soc: float
    cpu_only_pct: float  # the paper's "CPU execution alone" 15% figure


def savings(base: EnergyBreakdown,
            optimized: EnergyBreakdown) -> EnergySavings:
    """Compute the Fig 10c savings decomposition.

    All component deltas are expressed as a percentage of the *baseline
    SoC* energy, matching the paper's presentation; ``cpu_only_pct`` is the
    CPU-cluster saving relative to the baseline CPU cluster.
    """
    soc = base.soc_total
    cpu_delta = (base.cpu_dynamic + base.cpu_static) \
        - (optimized.cpu_dynamic + optimized.cpu_static)
    icache_delta = base.icache - optimized.icache
    mem_delta = base.memory_total - optimized.memory_total
    total_delta = base.soc_total - optimized.soc_total
    cpu_only = 0.0
    if base.cpu_total:
        cpu_only = (base.cpu_total - optimized.cpu_total) / base.cpu_total
    return EnergySavings(
        cpu_pct_of_soc=100.0 * cpu_delta / soc if soc else 0.0,
        icache_pct_of_soc=100.0 * icache_delta / soc if soc else 0.0,
        memory_pct_of_soc=100.0 * mem_delta / soc if soc else 0.0,
        total_pct_of_soc=100.0 * total_delta / soc if soc else 0.0,
        cpu_only_pct=100.0 * cpu_only,
    )
