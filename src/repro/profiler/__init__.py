"""Offline profiler: CritIC discovery, aggregation, and the profile table."""

from repro.profiler.finder import (
    DEFAULT_WINDOW,
    FinderConfig,
    chains_per_window,
    find_critic_profile,
)
from repro.profiler.profile_table import (
    CriticProfile,
    CriticRecord,
    annotate_block,
)

__all__ = [
    "CriticProfile",
    "CriticRecord",
    "DEFAULT_WINDOW",
    "FinderConfig",
    "annotate_block",
    "chains_per_window",
    "find_critic_profile",
]
