"""The CritIC profile: the artifact the offline profiler hands the compiler.

The paper's flow (Sec. III-C) dumps all independently schedulable ICs from
the gem5 run, aggregates them with a Spark hash-table, and keeps the top
CritICs by dynamic coverage — a table "relatively concise (~10KB) to account
for ~30% of dynamic coverage".  :class:`CriticProfile` is that table: unique
static chains (keyed by their member uid sequence) with occurrence counts,
coverage, encodability, and hoistability annotations for the compiler.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.trace.program import Program


@dataclass(frozen=True)
class CriticRecord:
    """One unique CritIC (a static chain) aggregated over its occurrences.

    Attributes:
        uids: member static-instruction uids, in dependence order.
        occurrences: dynamic occurrence count in the profiled stream.
        mean_avg_fanout: mean (over occurrences) of the chain criticality.
        thumb_encodable: all-or-nothing 16-bit representability.
        block_id: containing basic block if all members share one
            (hoistable by the compiler pass), else ``None``.
    """

    uids: Tuple[int, ...]
    occurrences: int
    mean_avg_fanout: float
    thumb_encodable: bool
    block_id: Optional[int]

    @property
    def length(self) -> int:
        return len(self.uids)

    @property
    def dynamic_instructions(self) -> int:
        """Dynamic instruction count covered by this chain."""
        return self.occurrences * self.length

    @property
    def hoistable(self) -> bool:
        """True if the compiler pass can rewrite this chain in place."""
        return self.block_id is not None

    #: Rough table-entry size: 2 bytes per member uid + 4 bytes of header,
    #: mirroring the paper's "~10KB of CritICs" size accounting.
    def table_bytes(self) -> int:
        return 4 + 2 * self.length


class CriticProfile:
    """Ranked table of unique CritICs for one app."""

    def __init__(self, records: Sequence[CriticRecord],
                 profiled_instructions: int, app_name: str = ""):
        self.records: List[CriticRecord] = sorted(
            records, key=lambda r: (-r.dynamic_instructions, r.uids)
        )
        self.profiled_instructions = profiled_instructions
        self.app_name = app_name

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # -- selection -----------------------------------------------------------

    def coverage(self, record: CriticRecord) -> float:
        """Dynamic-stream fraction covered by ``record``."""
        if self.profiled_instructions == 0:
            return 0.0
        return record.dynamic_instructions / self.profiled_instructions

    def total_coverage(self, encodable_only: bool = False) -> float:
        """Total dynamic coverage of the table (Fig 5b's right edge)."""
        records = self.records
        if encodable_only:
            records = [r for r in records if r.thumb_encodable]
        if self.profiled_instructions == 0:
            return 0.0
        return sum(r.dynamic_instructions for r in records) \
            / self.profiled_instructions

    def coverage_cdf(self, encodable_only: bool = False) -> List[float]:
        """Cumulative coverage by unique chains, best-first (Fig 5b)."""
        cdf: List[float] = []
        acc = 0.0
        for record in self.records:
            if encodable_only and not record.thumb_encodable:
                cdf.append(acc)
                continue
            acc += self.coverage(record)
            cdf.append(acc)
        return cdf

    def select_for_compiler(
        self,
        max_length: Optional[int] = None,
        require_thumb: bool = True,
        max_table_bytes: Optional[int] = None,
    ) -> List[CriticRecord]:
        """Choose the chains the compiler pass will transform.

        Mirrors the paper's practical constraints: hoistable (single block),
        Thumb-encodable (unless ``CritIC.Ideal``), and optionally capped at
        ``max_length`` members and a total table budget.
        """
        chosen: List[CriticRecord] = []
        budget = max_table_bytes if max_table_bytes is not None else 1 << 62
        for record in self.records:
            if not record.hoistable:
                continue
            if require_thumb and not record.thumb_encodable:
                continue
            if max_length is not None and record.length > max_length:
                continue
            cost = record.table_bytes()
            if cost > budget:
                break
            budget -= cost
            chosen.append(record)
        return chosen

    def table_bytes(self) -> int:
        """Size estimate of the whole table."""
        return sum(r.table_bytes() for r in self.records)

    # -- serialization ---------------------------------------------------------

    def to_json(self) -> str:
        """Serialize the profile (order-preserving)."""
        payload = {
            "app_name": self.app_name,
            "profiled_instructions": self.profiled_instructions,
            "records": [
                {**asdict(r), "uids": list(r.uids)} for r in self.records
            ],
        }
        return json.dumps(payload, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "CriticProfile":
        """Deserialize a profile produced by :meth:`to_json`."""
        payload = json.loads(text)
        records = [
            CriticRecord(
                uids=tuple(r["uids"]),
                occurrences=r["occurrences"],
                mean_avg_fanout=r["mean_avg_fanout"],
                thumb_encodable=r["thumb_encodable"],
                block_id=r["block_id"],
            )
            for r in payload["records"]
        ]
        return cls(records, payload["profiled_instructions"],
                   payload["app_name"])


def annotate_block(program: Program, uids: Sequence[int]) -> Optional[int]:
    """Return the containing block id if all ``uids`` live in one block."""
    block_ids = set()
    for uid in uids:
        try:
            block_id, _pos = program.locate(uid)
        except KeyError:
            return None
        block_ids.add(block_id)
    if len(block_ids) == 1:
        return block_ids.pop()
    return None
