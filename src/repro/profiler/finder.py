"""The offline CritIC finder (the paper's profiler, Sec. III-A2 / III-C).

Pipeline: dynamic trace -> (sampled windows) -> DFG per window -> CritIC
occurrences -> hash-aggregate by static uid sequence -> ranked
:class:`~repro.profiler.profile_table.CriticProfile`.

The paper profiles with AOSP/QEMU + gem5 and aggregates 100s of GBs of IC
dumps with Spark; here windows are analyzed in-process, but the algorithm
(group-by chain identity, rank by coverage, threshold on average fanout) is
the same.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dfg.chains import (
    CRITIC_AVG_FANOUT_THRESHOLD,
    Chain,
    DEFAULT_MAX_CHAIN_LEN,
    find_critics,
)
from repro.dfg.graph import Dfg
from repro.profiler.profile_table import (
    CriticProfile,
    CriticRecord,
    annotate_block,
)
from repro.trace.dynamic import Trace
from repro.trace.program import Program
from repro.trace.sampling import sample_trace

#: Window length used when cutting long traces for per-window DFG analysis.
#: Mobile chains spread over at most a few hundred dynamic instructions
#: (Fig 5a), so 4k windows lose almost no chains while bounding memory.
DEFAULT_WINDOW = 4096


@dataclass(frozen=True)
class FinderConfig:
    """Knobs of the offline profiler."""

    threshold: float = CRITIC_AVG_FANOUT_THRESHOLD
    max_length: Optional[int] = None  # chains longer than this are split
    window: int = DEFAULT_WINDOW
    #: fraction of the execution profiled (Fig 12b sweeps this)
    profiled_fraction: float = 1.0
    #: number of sampled windows when profiled_fraction < 1
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.profiled_fraction <= 1.0:
            raise ValueError("profiled_fraction must be in (0, 1]")
        if self.window <= 0:
            raise ValueError("window must be positive")


def _profile_windows(trace: Trace, config: FinderConfig) -> List[Trace]:
    """Cut the trace into the windows the profiler will analyze."""
    if config.profiled_fraction >= 1.0:
        return [
            trace.window(start, config.window)
            for start in range(0, len(trace), config.window)
        ]
    total = max(1, int(len(trace) * config.profiled_fraction))
    num_windows = max(1, total // config.window)
    return sample_trace(trace, num_windows, config.window, seed=config.seed)


def find_critic_profile(
    trace: Trace,
    program: Program,
    config: Optional[FinderConfig] = None,
    app_name: str = "",
) -> CriticProfile:
    """Run the offline profiler over ``trace`` and return the ranked table.

    Chains are identified per window (DFG fanout analysis + IC extraction),
    then aggregated by their static uid sequence; each unique chain records
    its occurrence count, mean criticality, encodability, and whether the
    compiler can hoist it (single basic block).
    """
    config = config or FinderConfig()
    occurrences: Dict[Tuple[int, ...], int] = defaultdict(int)
    fanout_sums: Dict[Tuple[int, ...], float] = defaultdict(float)
    encodable: Dict[Tuple[int, ...], bool] = {}
    profiled = 0

    max_len = config.max_length or DEFAULT_MAX_CHAIN_LEN
    for window in _profile_windows(trace, config):
        if not len(window):
            continue
        profiled += len(window)
        dfg = Dfg(window)
        for chain in find_critics(
            dfg, threshold=config.threshold, max_len=max_len
        ):
            occurrences[chain.uids] += 1
            fanout_sums[chain.uids] += chain.avg_fanout
            encodable[chain.uids] = chain.thumb_encodable

    records = [
        CriticRecord(
            uids=uids,
            occurrences=count,
            mean_avg_fanout=fanout_sums[uids] / count,
            thumb_encodable=encodable[uids],
            block_id=annotate_block(program, uids),
        )
        for uids, count in occurrences.items()
    ]
    return CriticProfile(records, profiled_instructions=profiled,
                         app_name=app_name)


def chains_per_window(trace: Trace,
                      config: Optional[FinderConfig] = None) -> List[List[Chain]]:
    """Raw per-window CritIC occurrences (used by analyses and tests)."""
    config = config or FinderConfig()
    max_len = config.max_length or DEFAULT_MAX_CHAIN_LEN
    result = []
    for window in _profile_windows(trace, config):
        if not len(window):
            continue
        dfg = Dfg(window)
        result.append(
            find_critics(dfg, threshold=config.threshold, max_len=max_len)
        )
    return result
