"""Content-addressed on-disk artifact cache for the experiment pipeline.

Everything the pipeline computes — dynamic traces, CritIC profiles, and
simulation statistics — is a pure function of a small parameter record
(workload profile + walk length + scheme + finder config + CPU config).
This module keys each artifact by the SHA-256 of that record's canonical
JSON and stores it under::

    $REPRO_CACHE_DIR/v<SCHEMA_VERSION>/<kind>/<hh>/<hash>.<ext>

(default root ``~/.cache/repro``), so a warm run skips generation,
compilation, and simulation entirely.  Artifacts are written atomically
(tmp file + ``os.replace``), so concurrent runners — e.g. the parallel
experiment runner's worker processes — never observe torn files.

Invalidation is structural: any change to the parameter record changes the
key, and incompatible changes to the *artifact formats or the pipeline
semantics themselves* are handled by bumping :data:`SCHEMA_VERSION`, which
moves the whole store to a fresh ``v<N>/`` namespace.

Set ``REPRO_CACHE=0`` to disable the cache entirely (every lookup misses
and nothing is written); ``REPRO_CACHE_DIR`` relocates the store.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from repro import telemetry
from repro.cpu.stats import SimStats
from repro.profiler.profile_table import CriticProfile
from repro.trace.dynamic import Trace
from repro.trace.trace_io import dump_trace, load_trace

#: Bump on any change that invalidates previously stored artifacts
#: (trace format, generator semantics, simulator accounting, ...).
#: v2: SimStats gained ``truncated`` and per-prefetcher issue counters,
#: and ``prefetches_issued`` became the sum of both prefetchers (it was
#: last-writer-wins when CLPT and EFetch were enabled together).
#: v3: the component registry landed — scheme/stats keys now fold in the
#: versioned component identities (``critic@1``, ``two-level@1``, ...)
#: and SimStats gained ``component_counters``; the key-record shape
#: changed for every scheme trace and stats artifact.
SCHEMA_VERSION = 3

ENV_DIR = "REPRO_CACHE_DIR"
ENV_ENABLE = "REPRO_CACHE"

_DEFAULT_DIR = os.path.join("~", ".cache", "repro")

#: file extension per artifact kind (anything else stores as .json blobs)
_EXT = {"trace": "trace", "critic_profile": "json", "stats": "json"}
_DEFAULT_EXT = "json"


def _canonical(obj: Any) -> Any:
    """Reduce a parameter object to JSON-stable primitives."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _canonical(dataclasses.asdict(obj))
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(_canonical(v) for v in obj)
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise TypeError(f"unhashable cache parameter: {obj!r}")


def artifact_key(kind: str, **params: Any) -> str:
    """SHA-256 content key over ``kind`` + params + schema version."""
    record = {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "params": _canonical(params),
    }
    blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ArtifactCache:
    """One on-disk artifact store rooted at ``root``."""

    def __init__(self, root: Optional[str] = None,
                 enabled: Optional[bool] = None):
        if root is None:
            root = os.environ.get(ENV_DIR) or _DEFAULT_DIR
        if enabled is None:
            enabled = os.environ.get(ENV_ENABLE, "1") != "0"
        self.root = Path(os.path.expanduser(root))
        self.enabled = enabled
        self.hits = 0
        self.misses = 0

    # -- paths ---------------------------------------------------------------

    def path_for(self, kind: str, key: str) -> Path:
        """Where the artifact for ``key`` lives (may not exist yet)."""
        ext = _EXT.get(kind, _DEFAULT_EXT)
        return (self.root / f"v{SCHEMA_VERSION}" / kind / key[:2]
                / f"{key}.{ext}")

    # -- generic text IO -----------------------------------------------------

    def _read(self, kind: str, key: str) -> Optional[str]:
        if not self.enabled:
            return None
        path = self.path_for(kind, key)
        try:
            text = path.read_text()
        except (OSError, UnicodeDecodeError):
            self.misses += 1
            telemetry.count(f"cache.miss.{kind}")
            telemetry.inc("repro_cache_requests_total",
                          help="Artifact cache lookups by outcome.",
                          kind=kind, result="miss")
            telemetry.emit("cache.miss", artifact=kind, key=key[:12])
            return None
        self.hits += 1
        telemetry.count(f"cache.hit.{kind}")
        telemetry.inc("repro_cache_requests_total",
                      help="Artifact cache lookups by outcome.",
                      kind=kind, result="hit")
        telemetry.emit("cache.hit", artifact=kind, key=key[:12])
        return text

    def _corrupt(self, kind: str, key: str) -> None:
        """A stored artifact parsed as garbage: degrade to a miss, but
        leave a trail — silent corruption is how caches rot."""
        telemetry.count(f"cache.corrupt.{kind}")
        telemetry.inc("repro_cache_corrupt_total",
                      help="Cache artifacts that failed to parse and "
                           "degraded to a miss.",
                      kind=kind)
        telemetry.emit("cache.corrupt", artifact=kind, key=key[:12])

    def _write(self, kind: str, key: str, text: str) -> None:
        if not self.enabled:
            return
        path = self.path_for(kind, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(path.parent), prefix=".tmp-", suffix=path.suffix,
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(text)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full cache dir degrades to a no-op, not a crash.
            pass

    # -- typed artifacts -----------------------------------------------------

    def load_trace(self, key: str) -> Optional[Trace]:
        text = self._read("trace", key)
        if text is None:
            return None
        with telemetry.phase("cache.load_trace"):
            try:
                return load_trace(io.StringIO(text))
            except ValueError:
                self._corrupt("trace", key)
                return None  # torn/stale artifact: treat as a miss

    def store_trace(self, key: str, trace: Trace) -> None:
        if not self.enabled:
            return
        with telemetry.phase("cache.store_trace"):
            buf = io.StringIO()
            dump_trace(trace, buf)
            self._write("trace", key, buf.getvalue())

    def load_profile(self, key: str) -> Optional[CriticProfile]:
        text = self._read("critic_profile", key)
        if text is None:
            return None
        try:
            return CriticProfile.from_json(text)
        except (ValueError, KeyError):
            self._corrupt("critic_profile", key)
            return None

    def store_profile(self, key: str, profile: CriticProfile) -> None:
        self._write("critic_profile", key, profile.to_json())

    def load_stats(self, key: str) -> Optional[SimStats]:
        text = self._read("stats", key)
        if text is None:
            return None
        try:
            return SimStats.from_dict(json.loads(text))
        except (ValueError, KeyError, TypeError):
            self._corrupt("stats", key)
            return None

    def store_stats(self, key: str, stats: SimStats) -> None:
        self._write("stats", key, json.dumps(stats.to_dict(), sort_keys=True))

    def load_json(self, kind: str, key: str) -> Optional[Any]:
        """Load an arbitrary JSON artifact (derived analysis results)."""
        text = self._read(kind, key)
        if text is None:
            return None
        try:
            return json.loads(text)
        except ValueError:
            self._corrupt(kind, key)
            return None

    def store_json(self, kind: str, key: str, payload: Any) -> None:
        self._write(kind, key, json.dumps(payload, sort_keys=True))

    # -- maintenance ---------------------------------------------------------

    def clear(self) -> int:
        """Delete every artifact in the current schema namespace.

        Returns the number of *artifacts* removed.  Orphaned ``.tmp-*``
        files left behind by interrupted atomic writes are deleted too,
        but never counted — they were never artifacts.
        """
        removed = 0
        base = self.root / f"v{SCHEMA_VERSION}"
        if not base.exists():
            return 0
        for path in sorted(base.rglob("*"), reverse=True):
            try:
                if path.is_dir():
                    path.rmdir()
                else:
                    path.unlink()
                    if not path.name.startswith(".tmp-"):
                        removed += 1
            except OSError:
                pass
        return removed


_default: Optional[ArtifactCache] = None


def get_cache() -> ArtifactCache:
    """The process-wide cache (constructed from the env on first use)."""
    global _default
    if _default is None:
        _default = ArtifactCache()
    return _default


def reset_cache() -> None:
    """Drop the process-wide cache so the next use re-reads the env."""
    global _default
    _default = None
