"""Content-addressed artifact cache with pluggable storage backends.

Everything the pipeline computes — dynamic traces, CritIC profiles, and
simulation statistics — is a pure function of a small parameter record
(workload profile + walk length + scheme + finder config + CPU config).
This module keys each artifact by the SHA-256 of that record's canonical
JSON and stores it through a narrow :class:`CacheBackend`:

* ``local`` (:class:`LocalBackend`) — today's on-disk layout::

      $REPRO_CACHE_DIR/v<SCHEMA_VERSION>/<kind>/<hh>/<hash>.<ext>

  (default root ``~/.cache/repro``), byte-identical to every previous
  schema-v3 cache, written atomically (tmp file + ``os.replace``) so
  concurrent runners never observe torn files.
* ``remote`` (:class:`RemoteBackend`) — a read-through client that
  fetches blobs from a ``repro.serve`` cache endpoint over the
  :mod:`repro.dispatch.wire` framing and writes them back into the
  local tier.  An unreachable or misbehaving server degrades to a
  miss (compute locally, write locally) — never an exception.
* ``tiered`` (:class:`TieredBackend`) — local-over-remote composition:
  answer from disk when possible, fall back to the network, write back
  what the network served.

The backend is selected by the ``REPRO_CACHE_BACKEND`` spec::

    local                     today's directory store (the default)
    local:/other/root         same, rooted elsewhere
    remote:host:7017          read-through against a serve wire front
    tiered:host:7017?token=s  local first, then the remote tier

and is recorded in run manifests for provenance — but never enters
``config_hash``: *where* an artifact came from cannot change *what* it
is (keys are content addresses).

Invalidation is structural: any change to the parameter record changes
the key, and incompatible changes to the *artifact formats or the
pipeline semantics themselves* are handled by bumping
:data:`SCHEMA_VERSION`, which moves the whole store to a fresh ``v<N>/``
namespace.  Corrupt blobs — from disk or from the remote tier — degrade
to a miss with a ``cache.corrupt`` trail, identically for every backend,
because parsing happens above the backend seam.

Set ``REPRO_CACHE=0`` to disable the cache entirely (every lookup misses
and nothing is written); ``REPRO_CACHE_DIR`` relocates the local store.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import socket
import tempfile
import threading
import time
import urllib.parse
from pathlib import Path
from typing import Any, Dict, List, Optional, Protocol

from repro import telemetry
from repro.cpu.stats import SimStats
from repro.profiler.profile_table import CriticProfile
from repro.trace.dynamic import Trace
from repro.trace.trace_io import dump_trace, load_trace

#: Bump on any change that invalidates previously stored artifacts
#: (trace format, generator semantics, simulator accounting, ...).
#: v2: SimStats gained ``truncated`` and per-prefetcher issue counters,
#: and ``prefetches_issued`` became the sum of both prefetchers (it was
#: last-writer-wins when CLPT and EFetch were enabled together).
#: v3: the component registry landed — scheme/stats keys now fold in the
#: versioned component identities (``critic@1``, ``two-level@1``, ...)
#: and SimStats gained ``component_counters``; the key-record shape
#: changed for every scheme trace and stats artifact.
SCHEMA_VERSION = 3

ENV_DIR = "REPRO_CACHE_DIR"
ENV_ENABLE = "REPRO_CACHE"
ENV_BACKEND = "REPRO_CACHE_BACKEND"
ENV_TOKEN = "REPRO_CACHE_TOKEN"

#: Shared-secret fallback: a fleet token usually guards the same serve
#: front the cache tier reads from (kept in sync with
#: ``repro.dispatch.fleet.ENV_TOKEN``).
_ENV_FLEET_TOKEN = "REPRO_FLEET_TOKEN"

#: Seconds a remote tier stays benched after a connect/protocol failure
#: before the next lookup tries the network again — one dead server
#: must not tax every single artifact lookup with a connect timeout.
REMOTE_COOLDOWN_S = 5.0

#: Socket timeout for remote-tier connects and round-trips, seconds.
REMOTE_TIMEOUT_S = 10.0

_DEFAULT_DIR = os.path.join("~", ".cache", "repro")

#: file extension per artifact kind (anything else stores as .json blobs)
_EXT = {"trace": "trace", "critic_profile": "json", "stats": "json"}
_DEFAULT_EXT = "json"


def _canonical(obj: Any) -> Any:
    """Reduce a parameter object to JSON-stable primitives."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _canonical(dataclasses.asdict(obj))
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(_canonical(v) for v in obj)
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise TypeError(f"unhashable cache parameter: {obj!r}")


def artifact_key(kind: str, **params: Any) -> str:
    """SHA-256 content key over ``kind`` + params + schema version."""
    record = {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "params": _canonical(params),
    }
    blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# -- the backend seam --------------------------------------------------------


class CacheBackend(Protocol):
    """Narrow storage surface every cache tier implements.

    Blobs are opaque text — parsing (and therefore corrupt-degrade)
    belongs to :class:`ArtifactCache`, above this seam.  ``get`` returns
    ``None`` for any miss, including storage errors: backends degrade,
    they never raise into the pipeline.
    """

    name: str

    def get(self, kind: str, key: str) -> Optional[str]: ...

    def put(self, kind: str, key: str, text: str) -> None: ...

    def delete(self, kind: str, key: str) -> bool: ...

    def list(self, kind: str) -> List[str]: ...

    def describe(self) -> str: ...


class LocalBackend:
    """The on-disk directory store (today's layout, byte-identical)."""

    name = "local"

    def __init__(self, root: str) -> None:
        self.root = Path(os.path.expanduser(str(root)))

    def path_for(self, kind: str, key: str) -> Path:
        """Where the artifact for ``key`` lives (may not exist yet)."""
        ext = _EXT.get(kind, _DEFAULT_EXT)
        return (self.root / f"v{SCHEMA_VERSION}" / kind / key[:2]
                / f"{key}.{ext}")

    def get(self, kind: str, key: str) -> Optional[str]:
        try:
            return self.path_for(kind, key).read_text()
        except (OSError, UnicodeDecodeError):
            return None

    def put(self, kind: str, key: str, text: str) -> None:
        path = self.path_for(kind, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(path.parent), prefix=".tmp-", suffix=path.suffix,
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(text)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full cache dir degrades to a no-op, not a crash.
            pass

    def delete(self, kind: str, key: str) -> bool:
        try:
            self.path_for(kind, key).unlink()
            return True
        except OSError:
            return False

    def list(self, kind: str) -> List[str]:
        base = self.root / f"v{SCHEMA_VERSION}" / kind
        if not base.exists():
            return []
        return sorted(
            path.stem for path in base.rglob("*")
            if path.is_file() and not path.name.startswith(".tmp-")
        )

    def describe(self) -> str:
        return f"local:{self.root}"

    def clear(self) -> int:
        """Delete every artifact in the current schema namespace.

        Returns the number of *artifacts* removed.  Orphaned ``.tmp-*``
        files left behind by interrupted atomic writes are deleted too,
        but never counted — they were never artifacts.
        """
        removed = 0
        base = self.root / f"v{SCHEMA_VERSION}"
        if not base.exists():
            return 0
        for path in sorted(base.rglob("*"), reverse=True):
            try:
                if path.is_dir():
                    path.rmdir()
                else:
                    path.unlink()
                    if not path.name.startswith(".tmp-"):
                        removed += 1
            except OSError:
                pass
        return removed


class RemoteTier:
    """Blocking wire-framed client for a serve cache endpoint.

    One lazily-opened connection, guarded by a lock (artifact lookups
    come from event-loop threads and worker pools alike).  Every failure
    mode — connect refused, timeout, protocol garbage, auth denial —
    degrades to a miss and benches the tier for ``cooldown_s``, so an
    unreachable server costs one connect attempt per cooldown window,
    not one per artifact.
    """

    def __init__(self, host: str, port: int, token: str = "",
                 timeout_s: float = REMOTE_TIMEOUT_S,
                 cooldown_s: float = REMOTE_COOLDOWN_S) -> None:
        self.host = host
        self.port = int(port)
        self.token = token
        self.timeout_s = timeout_s
        self.cooldown_s = cooldown_s
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()
        self._down_until = 0.0

    def fetch(self, kind: str, key: str) -> Optional[str]:
        """One remote lookup; returns the blob text or ``None``."""
        with self._lock:
            if time.monotonic() < self._down_until:
                return None
            try:
                reply = self._request({
                    "type": "cache.get", "kind": kind, "key": key,
                    "token": self.token,
                })
            except Exception as exc:
                self._fail(kind, key, f"{type(exc).__name__}: {exc}")
                return None
            if not isinstance(reply, dict) \
                    or reply.get("type") != "cache.blob":
                got = reply.get("type") if isinstance(reply, dict) \
                    else type(reply).__name__
                self._fail(kind, key, f"unexpected reply {got!r}")
                return None
        if reply.get("hit"):
            telemetry.inc("repro_cache_remote_requests_total",
                          help="Remote cache-tier lookups by outcome.",
                          kind=kind, result="hit")
            telemetry.emit("cache.remote.hit", artifact=kind,
                           key=key[:12])
            return reply.get("text")
        telemetry.inc("repro_cache_remote_requests_total",
                      help="Remote cache-tier lookups by outcome.",
                      kind=kind, result="miss")
        telemetry.emit("cache.remote.miss", artifact=kind, key=key[:12])
        return None

    def _request(self, message: Dict[str, Any]) -> Any:
        from repro.dispatch import wire

        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s)
        wire.send_msg(self._sock, message)
        return wire.recv_msg(self._sock)

    def _fail(self, kind: str, key: str, error: str) -> None:
        """Bench the tier: close the socket, start the cooldown, leave
        a trail — silent network degradation is how warm tiers rot."""
        self.close()
        self._down_until = time.monotonic() + self.cooldown_s
        telemetry.inc("repro_cache_remote_requests_total",
                      help="Remote cache-tier lookups by outcome.",
                      kind=kind, result="error")
        telemetry.emit("cache.remote.error", artifact=kind,
                       key=key[:12], error=error,
                       host=self.host, port=self.port)

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None


class RemoteBackend:
    """Read-through remote tier with local write-back.

    Reads go to the network first; a hit is written back into the local
    tier (so the *next* run answers from disk even if the server is
    gone) and a miss — or any network failure — falls through to a
    plain miss: the caller computes and ``put`` lands locally.
    """

    name = "remote"

    def __init__(self, local: LocalBackend, tier: RemoteTier) -> None:
        self.local = local
        self.tier = tier

    def get(self, kind: str, key: str) -> Optional[str]:
        text = self.tier.fetch(kind, key)
        if text is not None:
            self.local.put(kind, key, text)
        return text

    def put(self, kind: str, key: str, text: str) -> None:
        self.local.put(kind, key, text)

    def delete(self, kind: str, key: str) -> bool:
        return self.local.delete(kind, key)

    def list(self, kind: str) -> List[str]:
        return self.local.list(kind)

    def describe(self) -> str:
        return f"{self.name}:{self.tier.host}:{self.tier.port}"

    def close(self) -> None:
        self.tier.close()


class TieredBackend(RemoteBackend):
    """Local-over-remote composition: disk answers first, the remote
    tier backfills what disk doesn't have."""

    name = "tiered"

    def get(self, kind: str, key: str) -> Optional[str]:
        text = self.local.get(kind, key)
        if text is not None:
            return text
        return super().get(kind, key)


def parse_backend_spec(spec: str) -> Dict[str, Any]:
    """Parse a ``REPRO_CACHE_BACKEND`` spec string.

    Accepted shapes (query options: ``root``, ``token``, ``timeout_s``)::

        ""                      -> local, default root
        "local"                 -> local, default root
        "local:/some/root"      -> local, rooted there
        "remote:host:7017"      -> remote read-through
        "tiered:host:7017?root=/r&token=s" -> local over remote

    Raises :class:`ValueError` on an unknown mode, a missing host:port,
    or an unknown query option — a misspelled backend must fail loudly,
    not silently run uncached.
    """
    spec = (spec or "").strip()
    if not spec:
        return {"mode": "local", "root": None}
    mode, _, rest = spec.partition(":")
    if mode == "local":
        return {"mode": "local", "root": rest or None}
    if mode not in ("remote", "tiered"):
        raise ValueError(
            f"unknown cache backend {mode!r} in spec {spec!r} "
            f"(choose local, remote, or tiered)"
        )
    rest, _, query = rest.partition("?")
    host, _, port = rest.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(
            f"cache backend spec {spec!r} needs {mode}:HOST:PORT"
        )
    opts = {k: v[-1] for k, v in
            urllib.parse.parse_qs(query, keep_blank_values=True).items()}
    unknown = set(opts) - {"root", "token", "timeout_s"}
    if unknown:
        raise ValueError(
            f"unknown option(s) {sorted(unknown)} in cache backend "
            f"spec {spec!r} (choose from root, token, timeout_s)"
        )
    return {
        "mode": mode, "host": host, "port": int(port),
        "root": opts.get("root"), "token": opts.get("token"),
        "timeout_s": float(opts["timeout_s"])
        if "timeout_s" in opts else None,
    }


def backend_from_spec(spec: Optional[str] = None,
                      root: Optional[str] = None) -> CacheBackend:
    """Build a backend from a spec string (default: the env spec).

    An explicit ``root`` wins over the spec's ``?root=`` option wins
    over ``REPRO_CACHE_DIR`` — the same precedence
    :class:`ArtifactCache` always had for its local directory.
    """
    if spec is None:
        spec = os.environ.get(ENV_BACKEND, "")
    parsed = parse_backend_spec(spec)
    local_root = (root or parsed.get("root")
                  or os.environ.get(ENV_DIR) or _DEFAULT_DIR)
    local = LocalBackend(local_root)
    if parsed["mode"] == "local":
        return local
    token = parsed.get("token")
    if token is None:
        token = (os.environ.get(ENV_TOKEN)
                 or os.environ.get(_ENV_FLEET_TOKEN) or "")
    tier = RemoteTier(
        parsed["host"], parsed["port"], token=token,
        timeout_s=parsed.get("timeout_s") or REMOTE_TIMEOUT_S,
    )
    cls = TieredBackend if parsed["mode"] == "tiered" else RemoteBackend
    return cls(local, tier)


# -- the typed cache ---------------------------------------------------------


class ArtifactCache:
    """One typed artifact store over a :class:`CacheBackend`."""

    def __init__(self, root: Optional[str] = None,
                 enabled: Optional[bool] = None,
                 backend: Optional[CacheBackend] = None):
        if enabled is None:
            enabled = os.environ.get(ENV_ENABLE, "1") != "0"
        if backend is None:
            backend = backend_from_spec(root=root)
        self.backend = backend
        self._local: LocalBackend = getattr(backend, "local", backend)
        self.root = self._local.root
        self.enabled = enabled
        self.hits = 0
        self.misses = 0

    def backend_spec(self) -> str:
        """The backend identity recorded in manifests (provenance only —
        never part of ``config_hash``)."""
        return self.backend.describe()

    # -- paths ---------------------------------------------------------------

    def path_for(self, kind: str, key: str) -> Path:
        """Where the artifact for ``key`` lives in the *local* tier
        (may not exist yet)."""
        return self._local.path_for(kind, key)

    # -- generic text IO -----------------------------------------------------

    def _read(self, kind: str, key: str) -> Optional[str]:
        if not self.enabled:
            return None
        text = self.backend.get(kind, key)
        if text is None:
            self.misses += 1
            telemetry.count(f"cache.miss.{kind}")
            telemetry.inc("repro_cache_requests_total",
                          help="Artifact cache lookups by outcome.",
                          kind=kind, result="miss")
            telemetry.emit("cache.miss", artifact=kind, key=key[:12])
            return None
        self.hits += 1
        telemetry.count(f"cache.hit.{kind}")
        telemetry.inc("repro_cache_requests_total",
                      help="Artifact cache lookups by outcome.",
                      kind=kind, result="hit")
        telemetry.emit("cache.hit", artifact=kind, key=key[:12])
        return text

    def peek_local(self, kind: str, key: str) -> Optional[str]:
        """Raw local-tier read with no hit/miss accounting.

        The serve cache endpoint answers remote tiers through this, so
        serving a blob to host B never skews host A's own cache stats —
        and never recurses through host A's *own* remote tier.
        """
        if not self.enabled:
            return None
        return self._local.get(kind, key)

    def _corrupt(self, kind: str, key: str) -> None:
        """A stored artifact parsed as garbage: degrade to a miss, but
        leave a trail — silent corruption is how caches rot."""
        telemetry.count(f"cache.corrupt.{kind}")
        telemetry.inc("repro_cache_corrupt_total",
                      help="Cache artifacts that failed to parse and "
                           "degraded to a miss.",
                      kind=kind)
        telemetry.emit("cache.corrupt", artifact=kind, key=key[:12])

    def _write(self, kind: str, key: str, text: str) -> None:
        if not self.enabled:
            return
        self.backend.put(kind, key, text)

    # -- typed artifacts -----------------------------------------------------

    def load_trace(self, key: str) -> Optional[Trace]:
        text = self._read("trace", key)
        if text is None:
            return None
        with telemetry.phase("cache.load_trace"):
            try:
                return load_trace(io.StringIO(text))
            except ValueError:
                self._corrupt("trace", key)
                return None  # torn/stale artifact: treat as a miss

    def store_trace(self, key: str, trace: Trace) -> None:
        if not self.enabled:
            return
        with telemetry.phase("cache.store_trace"):
            buf = io.StringIO()
            dump_trace(trace, buf)
            self._write("trace", key, buf.getvalue())

    def load_profile(self, key: str) -> Optional[CriticProfile]:
        text = self._read("critic_profile", key)
        if text is None:
            return None
        try:
            return CriticProfile.from_json(text)
        except (ValueError, KeyError):
            self._corrupt("critic_profile", key)
            return None

    def store_profile(self, key: str, profile: CriticProfile) -> None:
        self._write("critic_profile", key, profile.to_json())

    def load_stats(self, key: str) -> Optional[SimStats]:
        text = self._read("stats", key)
        if text is None:
            return None
        try:
            return SimStats.from_dict(json.loads(text))
        except (ValueError, KeyError, TypeError):
            self._corrupt("stats", key)
            return None

    def store_stats(self, key: str, stats: SimStats) -> None:
        self._write("stats", key, json.dumps(stats.to_dict(), sort_keys=True))

    def load_json(self, kind: str, key: str) -> Optional[Any]:
        """Load an arbitrary JSON artifact (derived analysis results)."""
        text = self._read(kind, key)
        if text is None:
            return None
        try:
            return json.loads(text)
        except ValueError:
            self._corrupt(kind, key)
            return None

    def store_json(self, kind: str, key: str, payload: Any) -> None:
        self._write(kind, key, json.dumps(payload, sort_keys=True))

    # -- maintenance ---------------------------------------------------------

    def clear(self) -> int:
        """Delete every artifact in the local tier's current schema
        namespace (see :meth:`LocalBackend.clear`)."""
        return self._local.clear()

    def close(self) -> None:
        """Release backend resources (the remote tier's socket)."""
        closer = getattr(self.backend, "close", None)
        if closer is not None:
            closer()


_default: Optional[ArtifactCache] = None


def get_cache() -> ArtifactCache:
    """The process-wide cache (constructed from the env on first use)."""
    global _default
    if _default is None:
        _default = ArtifactCache()
    return _default


def reset_cache() -> None:
    """Drop the process-wide cache so the next use re-reads the env."""
    global _default
    if _default is not None:
        _default.close()
    _default = None
