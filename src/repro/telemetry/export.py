"""Chrome-trace / Perfetto export of telemetry span trees.

``python -m repro.telemetry.export spans.jsonl --format chrome-trace``
turns a span-tree JSONL dump (``telemetry.dump_spans``, or the file
``REPRO_SPANS=<path>`` writes at exit) into Trace Event Format JSON that
loads directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``::

    REPRO_SPANS=spans.jsonl python -m repro.experiments.sweep \\
        --apps Music --schemes baseline,critic --engine batch
    python -m repro.telemetry.export spans.jsonl -o trace.json

Mapping:

* every span becomes a **complete event** (``"ph": "X"``) with
  microsecond ``ts``/``dur`` laid out on the span's recorded wall-clock
  start (legacy records without ``start_unix`` are packed end-to-end
  under their parent);
* every *process* becomes one ``pid`` track — root spans merged from
  workers carry a ``pid`` attribute (see ``merge_snapshot``), so a fleet
  sweep renders one swimlane per worker, named by ``process_name``
  metadata events;
* final counter values (the ``_meta`` trailer line of a
  ``REPRO_SPANS=<path>`` dump) become **counter tracks** (``"ph": "C"``),
  and ``--events events.jsonl`` additionally renders the structured
  event stream as cumulative counter tracks (cells done/cached/retried/
  fallback, instructions) plus instant events for retries/quarantines.

The output is ``{"traceEvents": [...], "displayTimeUnit": "ms"}`` — the
JSON object form of the spec, which both viewers accept.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, IO, Iterable, List, Optional, Tuple

from repro.telemetry.events import iter_events

#: Event-stream kinds rendered as cumulative counter tracks.
_COUNTER_KINDS = {
    "sweep.cell.done": "cells_done",
    "sweep.cell.cached": "cells_cached",
    "batch.fallback": "cells_fallback",
    "dispatch.quarantine": "cells_quarantined",
}


def read_span_dump(stream: Iterable[str]) -> Tuple[List[Dict[str, Any]],
                                                   List[Dict[str, Any]]]:
    """Split a span JSONL dump into (span records, meta records)."""
    roots: List[Dict[str, Any]] = []
    metas: List[Dict[str, Any]] = []
    for line in stream:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if not isinstance(record, dict):
            continue
        if "_meta" in record:
            metas.append(record["_meta"])
        elif "name" in record:
            roots.append(record)
    return roots, metas


def _span_events(record: Dict[str, Any], pid: int, t0: float,
                 out: List[Dict[str, Any]],
                 fallback_start: float) -> float:
    """Emit one span subtree as complete events; returns the span's
    resolved start (unix seconds) so siblings can pack sequentially."""
    start = float(record.get("start_unix", 0.0)) or fallback_start
    dur = float(record.get("dur_s", 0.0))
    event: Dict[str, Any] = {
        "name": str(record.get("name", "?")),
        "ph": "X",
        "ts": max(0.0, (start - t0) * 1e6),
        "dur": max(0.0, dur * 1e6),
        "pid": pid,
        "tid": 1,
    }
    attrs = record.get("attrs")
    if attrs:
        event["args"] = {str(k): v for k, v in attrs.items()}
    out.append(event)
    child_cursor = start
    for child in record.get("children", []):
        child_start = _span_events(child, pid, t0, out, child_cursor)
        child_cursor = child_start + float(child.get("dur_s", 0.0))
    return start


def _min_start(record: Dict[str, Any]) -> float:
    """Earliest recorded wall-clock start in a span subtree (inf if the
    tree predates start stamps)."""
    own = float(record.get("start_unix", 0.0)) or float("inf")
    for child in record.get("children", []):
        own = min(own, _min_start(child))
    return own


def build_chrome_trace(
    roots: List[Dict[str, Any]],
    metas: Optional[List[Dict[str, Any]]] = None,
    events: Optional[Iterable[Dict[str, Any]]] = None,
    default_pid: int = 0,
) -> Dict[str, Any]:
    """Assemble the Trace Event Format object from parsed inputs."""
    metas = metas or []
    trace_events: List[Dict[str, Any]] = []
    event_records = list(events) if events is not None else []

    starts = [s for s in (_min_start(r) for r in roots)
              if s != float("inf")]
    starts += [float(e["ts"]) for e in event_records if "ts" in e]
    t0 = min(starts) if starts else 0.0

    pids = []
    for record in roots:
        attrs = record.get("attrs") or {}
        pid = int(attrs.get("pid", default_pid))
        if pid not in pids:
            pids.append(pid)
        _span_events(record, pid, t0, trace_events, t0)

    # Counter tracks from the dump's meta trailer(s): one "C" sample per
    # counter at that process's last span edge (final totals).
    end_ts = max([e["ts"] + e.get("dur", 0.0) for e in trace_events],
                 default=0.0)
    for meta in metas:
        pid = int(meta.get("pid", default_pid))
        for name, value in sorted((meta.get("counters") or {}).items()):
            trace_events.append({
                "name": name, "ph": "C", "ts": end_ts,
                "pid": pid, "tid": 1, "args": {"value": value},
            })
        if pid not in pids:
            pids.append(pid)

    # Structured event stream: cumulative counter tracks + instants.
    if event_records:
        running: Dict[str, int] = {}
        instructions = 0
        for record in sorted(event_records,
                             key=lambda e: float(e.get("ts", 0.0))):
            ts = max(0.0, (float(record.get("ts", 0.0)) - t0) * 1e6)
            pid = int(record.get("pid", default_pid))
            kind = record.get("kind", "?")
            track = _COUNTER_KINDS.get(kind)
            if track is not None:
                running[track] = running.get(track, 0) + 1
                trace_events.append({
                    "name": track, "ph": "C", "ts": ts,
                    "pid": default_pid, "tid": 1,
                    "args": {"value": running[track]},
                })
            if kind == "sweep.cell.done":
                instructions += int(record.get("instructions", 0))
                trace_events.append({
                    "name": "instructions", "ph": "C", "ts": ts,
                    "pid": default_pid, "tid": 1,
                    "args": {"value": instructions},
                })
            if kind in ("dispatch.quarantine", "batch.fallback") or (
                    kind == "dispatch.attempt"
                    and record.get("outcome") not in ("ok", "skipped")):
                trace_events.append({
                    "name": kind, "ph": "i", "ts": ts, "pid": pid,
                    "tid": 1, "s": "g",
                    "args": {k: v for k, v in record.items()
                             if k not in ("ts", "pid", "seq", "kind")},
                })
            if pid not in pids:
                pids.append(pid)

    for pid in pids:
        trace_events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 1,
            "args": {"name": "parent" if pid == default_pid
                     else f"worker-{pid}"},
        })

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.telemetry.export",
                      "format": "chrome-trace"},
    }


def export_chrome_trace(
    spans_stream: Iterable[str],
    out: IO[str],
    events_path: Optional[str] = None,
) -> int:
    """Read a span dump (+ optional event log), write trace JSON.
    Returns the number of trace events written."""
    roots, metas = read_span_dump(spans_stream)
    events = iter_events(events_path) if events_path else None
    trace = build_chrome_trace(roots, metas, events=events)
    json.dump(trace, out, sort_keys=True)
    out.write("\n")
    return len(trace["traceEvents"])


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.export",
        description="Export telemetry span trees as Chrome-trace/"
                    "Perfetto JSON.",
    )
    parser.add_argument("spans",
                        help="span-tree JSONL (telemetry.dump_spans / "
                             "REPRO_SPANS=<path>)")
    parser.add_argument("--format", default="chrome-trace",
                        choices=("chrome-trace",),
                        help="output format (chrome-trace, the Trace "
                             "Event Format JSON Perfetto loads)")
    parser.add_argument("--events", default=None, metavar="PATH",
                        help="structured event log (REPRO_EVENTS) to "
                             "render as counter tracks + instants")
    parser.add_argument("-o", "--out", default=None, metavar="PATH",
                        help="output path (default: stdout)")
    args = parser.parse_args(argv)

    try:
        spans_file = open(args.spans, encoding="utf-8")
    except OSError as exc:
        print(f"error: cannot read span dump: {exc}", file=sys.stderr)
        return 2
    with spans_file:
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                written = export_chrome_trace(spans_file, handle,
                                              args.events)
            print(f"wrote {written} trace events to {args.out}",
                  file=sys.stderr)
        else:
            written = export_chrome_trace(spans_file, sys.stdout,
                                          args.events)
    return 0


if __name__ == "__main__":
    sys.exit(main())
