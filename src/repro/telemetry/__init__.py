"""Telemetry for the reproduction pipeline: spans, typed metrics,
structured events, flight recorder, run manifests, trace export.

One import surface over several pieces:

* **spans/counters** (:mod:`repro.telemetry.spans`) — ``span(name,
  **attrs)`` context managers form trees with self-vs-cumulative time,
  aggregate into an always-on phase table, and serialize across process
  boundaries (``snapshot()`` / ``merge_snapshot()``) so the parallel
  runner reports fleet-wide totals.  ``REPRO_PERF=1`` prints the report
  at exit; ``REPRO_SPANS=1`` retains span trees for :func:`dump_spans`,
  and ``REPRO_SPANS=<path>`` dumps them as JSONL at exit.
* **typed metrics** (:mod:`repro.telemetry.metrics`) — labeled counters,
  gauges, and fixed-bucket histograms in a process-local registry that
  rides the span snapshot/merge channel, so fleet-wide totals obey the
  same exactly-once-across-retries discipline.  Rendered as Prometheus
  text exposition (``metrics.txt`` next to the run manifest).
* **structured events** (:mod:`repro.telemetry.events`) — append-only
  JSONL narration of the hot operational paths (``REPRO_EVENTS=path``):
  dispatch attempts/leases/quarantines, worker deaths, batch groups and
  fallbacks, cache hits/misses, sweep cell lifecycle.
* **flight recorder** (:mod:`repro.telemetry.recorder`) — opt-in
  per-instruction pipeline event stream (``REPRO_FLIGHT_RECORDER=path``),
  rendered by ``python -m repro.telemetry.view``.
* **run manifests** (:mod:`repro.telemetry.manifest`) — every
  ``run_apps`` invocation records config hash, seeds, cache hit/miss
  counts, wall time, the phase table, and the metrics snapshot next to
  the artifact cache.
* **compare** (:mod:`repro.telemetry.compare`) — diff a manifest against
  ``BENCH_perf.json`` (or another manifest) and flag phase-time
  regressions: ``python -m repro.telemetry.compare`` (``--json`` for a
  machine-readable gate).
* **export/live** (:mod:`repro.telemetry.export`,
  :mod:`repro.telemetry.live`) — Chrome-trace/Perfetto JSON export of
  span dumps (``python -m repro.telemetry.export``) and a live sweep
  progress view over the event stream
  (``python -m repro.telemetry.live``, or ``--progress`` on the sweep
  CLI).

``manifest`` and ``compare`` are deliberately *not* imported here: they
depend on :mod:`repro.cache`, which itself uses the span/counter API —
importing them at package level would be circular.  Import them as
submodules where needed.
"""

from repro.telemetry import events, metrics
from repro.telemetry.events import emit, iter_events
from repro.telemetry.metrics import (
    inc,
    observe,
    render_prometheus,
    set_gauge,
)
from repro.telemetry.recorder import (
    ENV_RECORDER,
    FlightRecorder,
    STALL_CAUSES,
    parse_jsonl,
)
from repro.telemetry.spans import (
    MAX_ROOT_SPANS,
    Span,
    count,
    counters,
    dropped_spans,
    dump_spans,
    enabled,
    merge_snapshot,
    phase,
    phase_stats,
    phases,
    report,
    reset,
    snapshot,
    span,
    spanned,
    spans,
)

__all__ = [
    "ENV_RECORDER",
    "FlightRecorder",
    "MAX_ROOT_SPANS",
    "STALL_CAUSES",
    "Span",
    "count",
    "counters",
    "dropped_spans",
    "dump_spans",
    "emit",
    "enabled",
    "events",
    "inc",
    "iter_events",
    "merge_snapshot",
    "metrics",
    "observe",
    "parse_jsonl",
    "phase",
    "phase_stats",
    "phases",
    "render_prometheus",
    "report",
    "reset",
    "set_gauge",
    "snapshot",
    "span",
    "spanned",
    "spans",
]
