"""Telemetry for the reproduction pipeline: spans, counters, flight
recorder, run manifests.

Four pieces, one import surface:

* **spans/counters** (:mod:`repro.telemetry.spans`) — ``span(name,
  **attrs)`` context managers form trees with self-vs-cumulative time,
  aggregate into an always-on phase table, and serialize across process
  boundaries (``snapshot()`` / ``merge_snapshot()``) so the parallel
  runner reports fleet-wide totals.  ``REPRO_PERF=1`` prints the report
  at exit; ``REPRO_SPANS=1`` additionally retains span trees for
  :func:`dump_spans`.
* **flight recorder** (:mod:`repro.telemetry.recorder`) — opt-in
  per-instruction pipeline event stream (``REPRO_FLIGHT_RECORDER=path``),
  rendered by ``python -m repro.telemetry.view``.
* **run manifests** (:mod:`repro.telemetry.manifest`) — every
  ``run_apps`` invocation records config hash, seeds, cache hit/miss
  counts, wall time, and the phase table next to the artifact cache.
* **compare** (:mod:`repro.telemetry.compare`) — diff a manifest against
  ``BENCH_perf.json`` (or another manifest) and flag phase-time
  regressions: ``python -m repro.telemetry.compare``.

``manifest`` and ``compare`` are deliberately *not* imported here: they
depend on :mod:`repro.cache`, which itself uses the span/counter API via
the legacy :mod:`repro.perf` shim — importing them at package level would
be circular.  Import them as submodules where needed.
"""

from repro.telemetry.recorder import (
    ENV_RECORDER,
    FlightRecorder,
    STALL_CAUSES,
    parse_jsonl,
)
from repro.telemetry.spans import (
    MAX_ROOT_SPANS,
    Span,
    count,
    counters,
    dropped_spans,
    dump_spans,
    enabled,
    merge_snapshot,
    phase,
    phase_stats,
    phases,
    report,
    reset,
    snapshot,
    span,
    spanned,
    spans,
)

__all__ = [
    "ENV_RECORDER",
    "FlightRecorder",
    "MAX_ROOT_SPANS",
    "STALL_CAUSES",
    "Span",
    "count",
    "counters",
    "dropped_spans",
    "dump_spans",
    "enabled",
    "merge_snapshot",
    "parse_jsonl",
    "phase",
    "phase_stats",
    "phases",
    "report",
    "reset",
    "snapshot",
    "span",
    "spanned",
    "spans",
]
