"""Append-only structured JSONL event stream for the hot operational
paths.

Metrics (:mod:`repro.telemetry.metrics`) aggregate; *events* narrate:
one JSON line per operational fact, in order, with enough fields to
reconstruct what a sweep actually did — task leases, retries and
quarantines, worker deaths, batch-group formation and per-cell
fallbacks, cache hits/misses/corruption, and sweep cell lifecycle.
Consumers: ``python -m repro.telemetry.live`` (the ``--progress``
renderer), the Perfetto exporter's counter tracks, CI assertions over
fault-injected runs, and the ``repro.serve`` request log.

Enable by pointing ``REPRO_EVENTS`` at a file path (``REPRO_EVENTS=0``
explicitly disables, useful to mask an inherited setting).  Every
process in a run — the parent, pool workers, fleet workers, a
``repro.serve`` instance and its fleet (they inherit the environment) —
appends to the same file.  Each record is encoded to one ``bytes`` line
and written with a **single** ``os.write()`` on a raw
``O_APPEND|O_CREAT|O_WRONLY`` file descriptor: POSIX guarantees the
kernel applies the append atomically, so concurrent writers — threads
*and* processes — interleave whole lines, never fragments, regardless
of record size.  (The previous implementation used a buffered text
handle, which split records larger than the TextIO buffer — ~8 KiB,
e.g. batch-group events with many cells — into multiple syscalls and
tore under concurrency.)  A module lock serializes the sequence
counter, sink swaps, and the write itself across threads in one
process; atomicity across processes comes from ``O_APPEND``.  Each
record carries::

    {"ts": <unix seconds>, "pid": <writer pid>, "seq": <per-process#>,
     "kind": "<dotted.event.kind>", ...fields}

When ``REPRO_EVENTS`` is unset the emit path is one dict lookup and a
truthiness check — near-zero overhead, and nothing is ever written.
Event emission is strictly best-effort provenance: an unwritable sink
degrades to disabled rather than failing the run (and is re-enabled by
the next :func:`set_path`), and no simulation semantics may ever depend
on it.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, Iterator, Optional, TextIO, Union

ENV_EVENTS = "REPRO_EVENTS"

#: Serializes ``_seq``, sink open/swap, and the append itself across
#: threads (the fleet broker's accept/handler threads and the serve
#: front emit concurrently).  Cross-*process* atomicity needs no lock:
#: each line is a single ``write()`` on an ``O_APPEND`` descriptor.
_lock = threading.Lock()

#: programmatic override of the env knob (``None`` defers to the env;
#: ``""`` forces disabled)
_override: Optional[str] = None
#: raw ``O_APPEND`` fd, keyed by (path, pid) so forked children re-open
_fd: Optional[int] = None
_fd_key: Optional[tuple] = None
#: paths that failed to open/write (don't retry every emit)
_broken: set = set()
_seq = 0


def _close_fd() -> None:
    global _fd, _fd_key
    if _fd is not None:
        try:
            os.close(_fd)
        except OSError:
            pass
    _fd = None
    _fd_key = None


def set_path(path: Optional[str]) -> None:
    """Programmatically select the event sink (``None`` restores the
    ``REPRO_EVENTS`` env behaviour, ``""`` disables).  Note the override
    is process-local: worker processes only see the *environment*, so
    cross-process capture should set ``REPRO_EVENTS`` instead.

    Any previously *broken* path is forgiven here: a sink that failed to
    open once (say, its directory was created moments later) must not
    stay disabled for the rest of the process after the caller points at
    it again.
    """
    global _override
    with _lock:
        _override = path
        _close_fd()
        _broken.clear()


def active_path() -> Optional[str]:
    """The event-log path emits would append to right now, if any."""
    path = _override if _override is not None \
        else os.environ.get(ENV_EVENTS, "")
    if not path or path == "0" or path in _broken:
        return None
    return path


def enabled() -> bool:
    return active_path() is not None


def emit(kind: str, **fields: Any) -> None:
    """Append one event (no-op when no sink is configured)."""
    global _fd, _fd_key, _seq
    path = active_path()
    if path is None:
        return
    with _lock:
        # Re-check under the lock: a racing set_path/emit may have
        # broken or swapped the sink between the fast-path check and
        # here.
        path = active_path()
        if path is None:
            return
        key = (path, os.getpid())
        if _fd is None or _fd_key != key:
            _close_fd()
            try:
                _fd = os.open(path,
                              os.O_APPEND | os.O_CREAT | os.O_WRONLY,
                              0o644)
            except OSError:
                _broken.add(path)
                return
            _fd_key = key
            _seq = 0
        _seq += 1
        record: Dict[str, Any] = {
            "ts": time.time(),
            "pid": key[1],
            "seq": _seq,
            "kind": kind,
        }
        record.update(fields)
        line = (json.dumps(record, sort_keys=True, default=str)
                + "\n").encode("utf-8")
        try:
            os.write(_fd, line)
        except (OSError, ValueError):
            _broken.add(path)
            _close_fd()


def iter_events(source: Union[str, TextIO]) -> Iterator[Dict[str, Any]]:
    """Parse an event log, skipping torn/foreign lines (a live tail can
    race the writer's final newline)."""
    if isinstance(source, str):
        try:
            handle: TextIO = open(source, encoding="utf-8")
        except OSError:
            return
        with handle:
            yield from _iter_stream(handle)
    else:
        yield from _iter_stream(source)


def _iter_stream(stream: TextIO) -> Iterator[Dict[str, Any]]:
    for line in stream:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict) and "kind" in record:
            yield record


__all__ = [
    "ENV_EVENTS",
    "active_path",
    "emit",
    "enabled",
    "iter_events",
    "set_path",
]
