"""Append-only structured JSONL event stream for the hot operational
paths.

Metrics (:mod:`repro.telemetry.metrics`) aggregate; *events* narrate:
one JSON line per operational fact, in order, with enough fields to
reconstruct what a sweep actually did — task leases, retries and
quarantines, worker deaths, batch-group formation and per-cell
fallbacks, cache hits/misses/corruption, and sweep cell lifecycle.
Consumers: ``python -m repro.telemetry.live`` (the ``--progress``
renderer), the Perfetto exporter's counter tracks, and CI assertions
over fault-injected runs.

Enable by pointing ``REPRO_EVENTS`` at a file path.  Every process in a
run — the parent, pool workers, fleet workers (they inherit the
environment) — appends to the same file; each line is a single
``write()`` of an ``O_APPEND`` stream, so concurrent writers interleave
whole lines, never fragments.  Each record carries::

    {"ts": <unix seconds>, "pid": <writer pid>, "seq": <per-process#>,
     "kind": "<dotted.event.kind>", ...fields}

When ``REPRO_EVENTS`` is unset the emit path is one dict lookup and a
truthiness check — near-zero overhead, and nothing is ever written.
Event emission is strictly best-effort provenance: an unwritable sink
degrades to disabled rather than failing the run, and no simulation
semantics may ever depend on it.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Iterator, Optional, TextIO, Union

ENV_EVENTS = "REPRO_EVENTS"

#: programmatic override of the env knob (``None`` defers to the env;
#: ``""`` forces disabled)
_override: Optional[str] = None
#: open sink, keyed by (path, pid) so forked children re-open
_sink: Optional[TextIO] = None
_sink_key: Optional[tuple] = None
#: paths that failed to open (don't retry every emit)
_broken: set = set()
_seq = 0


def set_path(path: Optional[str]) -> None:
    """Programmatically select the event sink (``None`` restores the
    ``REPRO_EVENTS`` env behaviour, ``""`` disables).  Note the override
    is process-local: worker processes only see the *environment*, so
    cross-process capture should set ``REPRO_EVENTS`` instead."""
    global _override, _sink, _sink_key
    _override = path
    _sink = None
    _sink_key = None


def active_path() -> Optional[str]:
    """The event-log path emits would append to right now, if any."""
    path = _override if _override is not None \
        else os.environ.get(ENV_EVENTS, "")
    if not path or path == "0" or path in _broken:
        return None
    return path


def enabled() -> bool:
    return active_path() is not None


def emit(kind: str, **fields: Any) -> None:
    """Append one event (no-op when no sink is configured)."""
    global _sink, _sink_key, _seq
    path = active_path()
    if path is None:
        return
    key = (path, os.getpid())
    if _sink is None or _sink_key != key:
        try:
            _sink = open(path, "a", encoding="utf-8")
        except OSError:
            _broken.add(path)
            _sink = None
            _sink_key = None
            return
        _sink_key = key
        _seq = 0
    _seq += 1
    record: Dict[str, Any] = {
        "ts": time.time(),
        "pid": key[1],
        "seq": _seq,
        "kind": kind,
    }
    record.update(fields)
    try:
        _sink.write(json.dumps(record, sort_keys=True,
                               default=str) + "\n")
        _sink.flush()
    except (OSError, ValueError):
        _broken.add(path)
        _sink = None
        _sink_key = None


def iter_events(source: Union[str, TextIO]) -> Iterator[Dict[str, Any]]:
    """Parse an event log, skipping torn/foreign lines (a live tail can
    race the writer's final newline)."""
    if isinstance(source, str):
        try:
            handle: TextIO = open(source, encoding="utf-8")
        except OSError:
            return
        with handle:
            yield from _iter_stream(handle)
    else:
        yield from _iter_stream(source)


def _iter_stream(stream: TextIO) -> Iterator[Dict[str, Any]]:
    for line in stream:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict) and "kind" in record:
            yield record


__all__ = [
    "ENV_EVENTS",
    "active_path",
    "emit",
    "enabled",
    "iter_events",
    "set_path",
]
