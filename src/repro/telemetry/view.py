"""Render a pipeline flight-recorder trace for humans.

``python -m repro.telemetry.view trace.jsonl`` reads a JSONL stream
produced by :class:`repro.telemetry.recorder.FlightRecorder` (see the
``REPRO_FLIGHT_RECORDER`` env knob) and prints:

* per-stage **residency histograms** — how many cycles instructions spent
  in fetch/decode/issue-wait/execute/commit-wait, log-bucketed;
* the **top-N slowest instructions** by fetch-to-commit latency, with
  their per-stage split (the "why did this instruction stall" view the
  paper's Fig 3 methodology needs);
* **fetch-stall totals** per cause (icache / branch / switch /
  backpressure) with burst statistics.

All runs in the file are aggregated; use ``--top`` to size the slow-
instruction table.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.recorder import STALL_CAUSES, parse_jsonl

#: (label, computed from I-record fields) in pipeline order.
STAGE_DEFS = (
    ("fetch", lambda r: r[5] - r[3]),        # head -> decode
    ("decode", lambda r: r[6] - r[5]),       # decode -> dispatch
    ("issue_wait", lambda r: r[7] - r[6]),   # dispatch -> issue
    ("execute", lambda r: r[8] - r[7]),      # issue -> complete
    ("commit_wait", lambda r: r[9] - r[8]),  # complete -> commit
)

_BUCKETS = ((0, "0"), (1, "1"), (2, "2"), (4, "3-4"), (8, "5-8"),
            (16, "9-16"), (32, "17-32"), (None, "33+"))


def _bucket(value: int) -> int:
    for index, (limit, _label) in enumerate(_BUCKETS):
        if limit is None or value <= limit:
            return index
    return len(_BUCKETS) - 1


def _histogram(counts: List[int], width: int = 40) -> List[str]:
    peak = max(counts) or 1
    lines = []
    for (_limit, label), count in zip(_BUCKETS, counts):
        bar = "#" * max(1 if count else 0, round(width * count / peak))
        lines.append(f"    {label:>6} {count:>8}  {bar}")
    return lines


def render(records: List[List[Any]], top: int = 10) -> str:
    """Format a parsed record stream as the full report text."""
    runs = [r[1] for r in records if r and r[0] == "R"]
    instrs = [r for r in records if r and r[0] == "I"]
    stalls = [r for r in records if r and r[0] == "S"]

    lines: List[str] = []
    total_cycles = sum(int(run.get("cycles", 0)) for run in runs)
    total_instr = sum(int(run.get("instructions", 0)) for run in runs)
    lines.append(
        f"flight recorder: {len(runs)} run(s), {total_instr} instructions, "
        f"{total_cycles} cycles"
    )
    for run in runs:
        lines.append(
            f"  - {run.get('trace', '?')} on {run.get('config', '?')}: "
            f"{run.get('instructions', 0)} instr / "
            f"{run.get('cycles', 0)} cycles"
        )

    complete = [r for r in instrs if r[9] >= 0]
    lines.append("")
    lines.append("per-stage residency (cycles per committed instruction):")
    for label, duration_of in STAGE_DEFS:
        counts = [0] * len(_BUCKETS)
        total = 0
        for record in complete:
            cycles = max(0, duration_of(record))
            counts[_bucket(cycles)] += 1
            total += cycles
        mean = total / len(complete) if complete else 0.0
        lines.append(f"  {label}  (mean {mean:.2f})")
        lines.extend(_histogram(counts))

    if complete and top > 0:
        ranked = sorted(complete, key=lambda r: r[9] - r[3], reverse=True)
        lines.append("")
        lines.append(f"top {min(top, len(ranked))} slowest instructions "
                     "(fetch-to-commit):")
        lines.append(
            f"    {'pos':>6} {'pc':>10} {'total':>6} "
            + " ".join(f"{label:>11}" for label, _f in STAGE_DEFS)
        )
        for record in ranked[:top]:
            lines.append(
                f"    {record[1]:>6} {record[2]:>#10x} "
                f"{record[9] - record[3]:>6} "
                + " ".join(f"{max(0, f(record)):>11}"
                           for _label, f in STAGE_DEFS)
            )

    lines.append("")
    lines.append("fetch stalls by cause:")
    by_cause: Dict[str, List[int]] = {cause: [] for cause in STALL_CAUSES}
    for record in stalls:
        by_cause[record[1]].append(int(record[3]))
    for cause in STALL_CAUSES:
        bursts = by_cause[cause]
        cycles = sum(bursts)
        longest = max(bursts) if bursts else 0
        lines.append(
            f"    {cause:<14} {cycles:>8} cycles in {len(bursts):>5} "
            f"burst(s), longest {longest}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Render a repro flight-recorder JSONL trace.")
    parser.add_argument("trace", help="JSONL file written by the recorder")
    parser.add_argument("--top", type=int, default=10,
                        help="slow-instruction table size (0 disables)")
    args = parser.parse_args(argv)

    with open(args.trace) as handle:
        records = parse_jsonl(handle.read())
    if not records:
        print(f"no records in {args.trace}", file=sys.stderr)
        return 1
    try:
        print(render(records, top=args.top))
    except BrokenPipeError:  # e.g. `... | head`; keep exit-time flush quiet
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


if __name__ == "__main__":
    sys.exit(main())
