"""Live sweep progress from the structured event stream.

``python -m repro.telemetry.live events.jsonl`` summarizes (or, with
``--follow``, tails) a ``REPRO_EVENTS`` log, rendering the sweep's
operational state: cells done/cached, retries, quarantines, batch
fallbacks, and aggregate simulated instructions per second.  The sweep
CLI's ``--progress`` flag drives the same renderer in-process while the
sweep runs::

    python -m repro.experiments.sweep --apps Music,Email \\
        --schemes baseline,critic --progress

Everything here is a *reader* of the event stream — it never feeds back
into the pipeline, so attaching or detaching the view cannot change a
result.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from typing import Any, Dict, IO, Iterable, Optional

from repro.telemetry.events import iter_events


class Progress:
    """Streaming aggregation of one run's events."""

    def __init__(self) -> None:
        self.done = 0
        self.cached = 0
        self.retried = 0
        self.quarantined = 0
        self.fallbacks = 0
        self.batch_groups = 0
        self.worker_deaths = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.instructions = 0
        self.first_ts: Optional[float] = None
        self.last_ts: Optional[float] = None
        self.events = 0

    def feed(self, event: Dict[str, Any]) -> None:
        self.events += 1
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            if self.first_ts is None or ts < self.first_ts:
                self.first_ts = ts
            if self.last_ts is None or ts > self.last_ts:
                self.last_ts = ts
        kind = event.get("kind", "")
        if kind == "sweep.cell.done":
            self.done += 1
            self.instructions += int(event.get("instructions", 0))
        elif kind == "sweep.cell.cached":
            self.cached += 1
        elif kind == "dispatch.attempt":
            outcome = event.get("outcome")
            if outcome not in ("ok", "skipped"):
                self.retried += 1
            if outcome == "worker-died":
                self.worker_deaths += 1
        elif kind == "dispatch.quarantine":
            self.quarantined += 1
        elif kind == "batch.fallback":
            self.fallbacks += 1
        elif kind == "batch.group":
            self.batch_groups += 1
        elif kind == "cache.hit":
            self.cache_hits += 1
        elif kind == "cache.miss":
            self.cache_misses += 1

    def feed_all(self, events: Iterable[Dict[str, Any]]) -> "Progress":
        for event in events:
            self.feed(event)
        return self

    @property
    def wall_s(self) -> float:
        if self.first_ts is None or self.last_ts is None:
            return 0.0
        return max(0.0, self.last_ts - self.first_ts)

    @property
    def instr_per_s(self) -> float:
        wall = self.wall_s
        return self.instructions / wall if wall > 0 else 0.0

    def line(self) -> str:
        """The one-line ``--progress`` rendering."""
        parts = [f"cells {self.done} done"]
        if self.cached:
            parts.append(f"{self.cached} cached")
        if self.retried:
            parts.append(f"{self.retried} retried")
        if self.quarantined:
            parts.append(f"{self.quarantined} quarantined")
        if self.fallbacks:
            parts.append(f"{self.fallbacks} fallback")
        rate = self.instr_per_s
        if rate >= 1e6:
            parts.append(f"{rate / 1e6:.2f}M instr/s")
        elif rate > 0:
            parts.append(f"{rate / 1e3:.0f}k instr/s")
        return "[sweep] " + ", ".join(parts)

    def summary(self) -> str:
        lines = [
            f"{'cells done':<22} {self.done}",
            f"{'cells cached':<22} {self.cached}",
            f"{'attempts retried':<22} {self.retried}",
            f"{'cells quarantined':<22} {self.quarantined}",
            f"{'batch groups':<22} {self.batch_groups}",
            f"{'batch fallbacks':<22} {self.fallbacks}",
            f"{'worker deaths':<22} {self.worker_deaths}",
            f"{'cache hit/miss':<22} "
            f"{self.cache_hits}/{self.cache_misses}",
            f"{'instructions':<22} {self.instructions}",
            f"{'span (s)':<22} {self.wall_s:.2f}",
            f"{'aggregate instr/s':<22} {self.instr_per_s:,.0f}",
        ]
        return "\n".join(lines)


def summarize(path: str) -> Progress:
    """One-shot aggregation of an event log."""
    return Progress().feed_all(iter_events(path))


def follow(
    path: str,
    out: IO[str],
    stop: Optional[threading.Event] = None,
    interval_s: float = 0.5,
    max_wall_s: Optional[float] = None,
) -> Progress:
    """Tail ``path``, redrawing :meth:`Progress.line` on ``out`` until
    ``stop`` is set (or ``max_wall_s`` elapses).  Tolerates the file not
    existing yet — the sweep may not have emitted anything."""
    progress = Progress()
    started = time.monotonic()
    handle: Optional[IO[str]] = None
    last_line = ""
    try:
        while True:
            if handle is None:
                try:
                    handle = open(path, encoding="utf-8")
                except OSError:
                    handle = None
            if handle is not None:
                for event in iter_events(handle):
                    progress.feed(event)
                line = progress.line()
                if line != last_line:
                    out.write("\r\x1b[2K" + line)
                    out.flush()
                    last_line = line
            if stop is not None and stop.is_set():
                break
            if max_wall_s is not None \
                    and time.monotonic() - started > max_wall_s:
                break
            if stop is not None:
                stop.wait(interval_s)
            else:
                time.sleep(interval_s)
    finally:
        if handle is not None:
            handle.close()
        if last_line:
            out.write("\n")
            out.flush()
    return progress


class ProgressRenderer:
    """Background thread driving :func:`follow` while a sweep runs in
    the calling thread (the ``--progress`` implementation)."""

    def __init__(self, path: str, out: IO[str] = sys.stderr,
                 interval_s: float = 0.5) -> None:
        self.path = path
        self.out = out
        self.interval_s = interval_s
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=follow, args=(self.path, self.out, self._stop),
            kwargs={"interval_s": self.interval_s},
            name="telemetry-progress", daemon=True,
        )

    def __enter__(self) -> "ProgressRenderer":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.live",
        description="Summarize (or tail) a REPRO_EVENTS structured "
                    "event log.",
    )
    parser.add_argument("events", help="event log path (REPRO_EVENTS)")
    parser.add_argument("--follow", action="store_true",
                        help="keep tailing, redrawing a progress line "
                             "(Ctrl-C to stop)")
    parser.add_argument("--interval", type=float, default=0.5,
                        help="redraw interval seconds (default 0.5)")
    args = parser.parse_args(argv)

    if args.follow:
        try:
            follow(args.events, sys.stdout, interval_s=args.interval)
        except KeyboardInterrupt:
            pass
        return 0
    progress = summarize(args.events)
    if progress.events == 0:
        print(f"no events in {args.events}")
        return 1
    print(progress.summary())
    return 0


if __name__ == "__main__":
    sys.exit(main())
