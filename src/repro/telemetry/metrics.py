"""Typed metrics registry: labeled counters, gauges, and histograms.

The span/counter core (:mod:`repro.telemetry.spans`) records *where time
went*; this module records *what the system did* — retries, quarantines,
cache hits, batch-kernel occupancy — as first-class typed metrics with
Prometheus-style names and labels:

    from repro.telemetry import metrics
    metrics.inc("repro_dispatch_attempts_total", outcome="ok")
    metrics.observe("repro_cell_wall_seconds", 0.93)
    metrics.set_gauge("repro_dispatch_workers", 4)

Three metric types, all labeled:

* **counter** — monotone accumulator; merges by summation.
* **gauge** — last-known value; merges by elementwise ``max`` so that
  folding worker snapshots into the parent is deterministic regardless
  of arrival order (a gauge that must not merge this way belongs in the
  event stream instead).
* **histogram** — fixed-bucket-scheme distribution (bucket counts +
  sum + count); merges by elementwise summation.  Bucket schemes are
  frozen per family at creation (:data:`LATENCY_BUCKETS_S` for
  durations, :data:`WIDTH_BUCKETS` for batch shapes) so snapshots from
  different processes always line up.

The registry rides the same cross-process channels as spans: its state
is folded into :func:`repro.telemetry.spans.snapshot` (under the
``"metrics"`` key), merged back by ``merge_snapshot``, and cleared by
``reset`` — which means the parallel runner's exactly-once-across-
retries discipline (only the successful attempt's snapshot merges; the
crashed-worker spool is dropped for retried cells) applies to metrics
for free, and a fleet run under fault injection yields counter totals
bit-equal to an inline run.

Metrics are **provenance, never semantics**: nothing reads them back
into the pipeline, they are excluded from ``config_hash`` / artifact
cache keys, and the per-update cost is one dict lookup and an add.
:func:`render_prometheus` serializes the registry in the text
exposition format (the ``metrics.txt`` written next to run manifests,
ready for a future ``repro.serve`` scrape endpoint).
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

#: Wall-clock duration buckets (seconds): sub-millisecond cache probes
#: through multi-minute cells.
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0,
)

#: Batch-group width buckets (cells per lockstep group): powers of two
#: up to a full fig12-style hardware sweep.
WIDTH_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64)

#: Unit-interval buckets (occupancy ratios, fractions).
RATIO_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricsError(ValueError):
    """Invalid metric name/labels, or a type conflict on a family."""


def _label_key(labels: Mapping[str, Any]) -> Tuple[Tuple[str, str], ...]:
    """Canonical, hashable form of a label set (values stringified)."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _check_name(name: str) -> None:
    if not _NAME_RE.match(name):
        raise MetricsError(f"invalid metric name: {name!r}")


def _check_labels(labels: Mapping[str, Any]) -> None:
    for key in labels:
        if not _LABEL_RE.match(key):
            raise MetricsError(f"invalid label name: {key!r}")


class _Family:
    """One named metric family: a type, a help string, and samples
    keyed by label set."""

    __slots__ = ("name", "type", "help", "buckets", "samples")

    def __init__(self, name: str, type_: str, help_: str = "",
                 buckets: Optional[Tuple[float, ...]] = None) -> None:
        self.name = name
        self.type = type_
        self.help = help_
        self.buckets = buckets
        #: label key -> float (counter/gauge) or
        #: ``[bucket_counts..., count, sum]`` (histogram)
        self.samples: Dict[Tuple[Tuple[str, str], ...], Any] = {}

    def _hist_cell(self) -> List[float]:
        assert self.buckets is not None
        return [0] * (len(self.buckets) + 1) + [0, 0.0]

    def observe(self, value: float, labels: Mapping[str, Any]) -> None:
        key = _label_key(labels)
        cell = self.samples.get(key)
        if cell is None:
            cell = self.samples[key] = self._hist_cell()
        buckets = self.buckets or ()
        index = len(buckets)  # +Inf overflow bucket
        for i, bound in enumerate(buckets):
            if value <= bound:
                index = i
                break
        cell[index] += 1
        cell[-2] += 1
        cell[-1] += value


class MetricsRegistry:
    """A set of metric families with snapshot/merge/render support."""

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    # -- family access -------------------------------------------------------

    def _family(self, name: str, type_: str, help_: str,
                buckets: Optional[Tuple[float, ...]] = None) -> _Family:
        family = self._families.get(name)
        if family is None:
            _check_name(name)
            family = _Family(name, type_, help_, buckets)
            self._families[name] = family
            return family
        if family.type != type_:
            raise MetricsError(
                f"metric {name!r} is a {family.type}, not a {type_}"
            )
        if help_ and not family.help:
            family.help = help_
        return family

    def families(self) -> Dict[str, _Family]:
        """Live family table (tests and the exposition renderer)."""
        return self._families

    # -- instruments ---------------------------------------------------------

    def inc(self, name: str, value: float = 1, help: str = "",
            **labels: Any) -> None:
        """Bump a labeled counter."""
        _check_labels(labels)
        family = self._family(name, "counter", help)
        key = _label_key(labels)
        family.samples[key] = family.samples.get(key, 0) + value

    def set_gauge(self, name: str, value: float, help: str = "",
                  **labels: Any) -> None:
        """Set a labeled gauge to its last-known value."""
        _check_labels(labels)
        family = self._family(name, "gauge", help)
        family.samples[_label_key(labels)] = value

    def observe(self, name: str, value: float,
                buckets: Tuple[float, ...] = LATENCY_BUCKETS_S,
                help: str = "", **labels: Any) -> None:
        """Record one observation in a fixed-bucket histogram.  The
        bucket scheme is frozen by the family's *first* observation."""
        _check_labels(labels)
        family = self._family(name, "histogram", help,
                              buckets=tuple(buckets))
        family.observe(value, labels)

    # -- reads ---------------------------------------------------------------

    def value(self, name: str, **labels: Any) -> Optional[float]:
        """Current value of one counter/gauge sample (None if absent)."""
        family = self._families.get(name)
        if family is None or family.type == "histogram":
            return None
        return family.samples.get(_label_key(labels))

    def total(self, name: str) -> float:
        """Sum of every sample of a counter family (0.0 if absent)."""
        family = self._families.get(name)
        if family is None or family.type != "counter":
            return 0.0
        return sum(family.samples.values())

    def counters_flat(self, prefix: str = "") -> Dict[str, float]:
        """``{"name{a=b}": value}`` for every counter sample under
        ``prefix`` — the bit-equality tests compare these maps."""
        out: Dict[str, float] = {}
        for name, family in sorted(self._families.items()):
            if family.type != "counter" or not name.startswith(prefix):
                continue
            for key, value in family.samples.items():
                label_txt = ",".join(f"{k}={v}" for k, v in key)
                out[f"{name}{{{label_txt}}}"] = value
        return out

    # -- cross-process state -------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Picklable/JSON-safe copy of every family (rides the worker
        result channel next to the span snapshot)."""
        snap: Dict[str, Any] = {}
        for name, family in self._families.items():
            record: Dict[str, Any] = {
                "type": family.type,
                "help": family.help,
                "samples": [
                    [list(key), list(cell) if isinstance(cell, list)
                     else cell]
                    for key, cell in family.samples.items()
                ],
            }
            if family.buckets is not None:
                record["buckets"] = list(family.buckets)
            snap[name] = record
        return snap

    def merge(self, snap: Optional[Mapping[str, Any]]) -> None:
        """Fold a :meth:`snapshot` from another process into this one.

        Counters and histograms sum; gauges take the elementwise max
        (deterministic under any merge order).  Families with a
        conflicting type are skipped rather than corrupted.
        """
        if not snap:
            return
        for name, record in snap.items():
            type_ = record.get("type", "counter")
            buckets = tuple(record["buckets"]) \
                if record.get("buckets") is not None else None
            try:
                family = self._family(name, type_, record.get("help", ""),
                                      buckets=buckets)
            except MetricsError:
                continue
            for raw_key, cell in record.get("samples", []):
                key = tuple((str(k), str(v)) for k, v in raw_key)
                mine = family.samples.get(key)
                if type_ == "histogram":
                    if family.buckets is not None and buckets is not None \
                            and family.buckets != buckets:
                        continue  # incompatible scheme: refuse to mangle
                    cell = list(cell)
                    if mine is None:
                        family.samples[key] = cell
                    else:
                        for i, v in enumerate(cell):
                            mine[i] += v
                elif type_ == "gauge":
                    family.samples[key] = cell if mine is None \
                        else max(mine, cell)
                else:
                    family.samples[key] = (mine or 0) + cell

    def reset(self) -> None:
        self._families.clear()

    # -- text exposition -----------------------------------------------------

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4."""
        lines: List[str] = []
        for name, family in sorted(self._families.items()):
            if family.help:
                lines.append(f"# HELP {name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {name} {family.type}")
            for key in sorted(family.samples):
                cell = family.samples[key]
                if family.type == "histogram":
                    buckets = family.buckets or ()
                    running = 0
                    for i, bound in enumerate(buckets):
                        running += cell[i]
                        lines.append(_sample(
                            f"{name}_bucket", key, running,
                            extra=("le", _fmt_bound(bound)),
                        ))
                    running += cell[len(buckets)]
                    lines.append(_sample(f"{name}_bucket", key, running,
                                         extra=("le", "+Inf")))
                    lines.append(_sample(f"{name}_count", key, cell[-2]))
                    lines.append(_sample(f"{name}_sum", key, cell[-1]))
                else:
                    lines.append(_sample(name, key, cell))
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt_bound(bound: float) -> str:
    if bound == math.inf:
        return "+Inf"
    text = repr(float(bound))
    return text[:-2] if text.endswith(".0") else text


def _fmt_value(value: Any) -> str:
    number = float(value)
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(text: str) -> str:
    return (text.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _sample(name: str, key: Iterable[Tuple[str, str]], value: Any,
            extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(key)
    if extra is not None:
        pairs = pairs + [extra]
    if pairs:
        labels = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
        return f"{name}{{{labels}}} {_fmt_value(value)}"
    return f"{name} {_fmt_value(value)}"


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse exposition text back to ``{sample_line_key: value}`` — the
    schema tests round-trip ``metrics.txt`` through this."""
    out: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        if not name:
            raise MetricsError(f"malformed exposition line: {line!r}")
        out[name] = float(value)
    return out


#: The process-wide default registry (what the module-level helpers and
#: the span snapshot/merge/reset hooks operate on).
REGISTRY = MetricsRegistry()


def inc(name: str, value: float = 1, help: str = "",
        **labels: Any) -> None:
    REGISTRY.inc(name, value, help=help, **labels)


def set_gauge(name: str, value: float, help: str = "",
              **labels: Any) -> None:
    REGISTRY.set_gauge(name, value, help=help, **labels)


def observe(name: str, value: float,
            buckets: Tuple[float, ...] = LATENCY_BUCKETS_S,
            help: str = "", **labels: Any) -> None:
    REGISTRY.observe(name, value, buckets=buckets, help=help, **labels)


def render_prometheus() -> str:
    return REGISTRY.render_prometheus()


__all__ = [
    "LATENCY_BUCKETS_S",
    "MetricsError",
    "MetricsRegistry",
    "RATIO_BUCKETS",
    "REGISTRY",
    "WIDTH_BUCKETS",
    "inc",
    "observe",
    "parse_prometheus",
    "render_prometheus",
    "set_gauge",
]
