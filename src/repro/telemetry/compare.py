"""Diff a run manifest against a performance baseline.

``python -m repro.telemetry.compare <manifest> <baseline>`` compares
per-phase *mean seconds per call* between a run manifest (see
:mod:`repro.telemetry.manifest`) and a baseline, and flags phases that
regressed by more than ``--threshold`` (default 20%, the budget the
repo's perf work reserves for machine noise).

Accepted baseline formats:

* ``BENCH_perf.json`` — its ``"phases"`` section,
  ``{name: {"mean_s": seconds}}`` (or bare ``{name: seconds}``);
* another manifest (``.json`` or ``.jsonl`` log) — mean = total/calls.

Phases present on only one side are ignored (a new phase is not a
regression; a baseline phase a small run never reached is not a win).
By default the exit code is 0 even when regressions are found (CI
timing noise on shared runners makes hard-failing misleading); pass
``--strict`` to exit 1 on any flagged phase.  ``--json`` emits the full
row set as machine-readable JSON instead of the table *and* implies
strict exit semantics — a ``--json`` consumer is a gate, not a human
squinting at noise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.telemetry.manifest import load_manifest

#: Default regression threshold: mean phase time > 1.2x baseline.
DEFAULT_THRESHOLD = 0.2

#: Phases below this baseline mean are skipped (pure timer noise).
MIN_MEAN_S = 1e-4


def phase_means(record: Dict[str, Any]) -> Dict[str, float]:
    """Extract ``{phase: mean seconds per call}`` from a manifest or a
    ``BENCH_perf.json``-style baseline."""
    phases = record.get("phases", record)
    means: Dict[str, float] = {}
    for name, cell in phases.items():
        if isinstance(cell, (int, float)):
            means[name] = float(cell)
        elif isinstance(cell, dict):
            if "mean_s" in cell:
                means[name] = float(cell["mean_s"])
            elif "total_s" in cell:
                calls = float(cell.get("calls", 1)) or 1.0
                means[name] = float(cell["total_s"]) / calls
    return means


def compare(
    manifest: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[Dict[str, Any]]:
    """Per-phase comparison; returns one row per phase both sides know.

    Each row carries ``phase``, ``base_mean_s``, ``run_mean_s``,
    ``ratio`` and ``regressed`` (ratio > 1 + threshold).
    """
    run = phase_means(manifest)
    base = phase_means(baseline)
    rows: List[Dict[str, Any]] = []
    for name in sorted(set(run) & set(base)):
        base_mean = base[name]
        if base_mean < MIN_MEAN_S:
            continue
        ratio = run[name] / base_mean
        rows.append({
            "phase": name,
            "base_mean_s": base_mean,
            "run_mean_s": run[name],
            "ratio": ratio,
            "regressed": ratio > 1.0 + threshold,
        })
    return rows


def regressions(
    manifest: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[Dict[str, Any]]:
    """Only the rows :func:`compare` flagged as regressed."""
    return [row for row in compare(manifest, baseline, threshold)
            if row["regressed"]]


def format_rows(rows: List[Dict[str, Any]]) -> str:
    lines = [f"{'phase':<30} {'baseline':>10} {'run':>10} {'ratio':>7}"]
    for row in rows:
        flag = "  << REGRESSED" if row["regressed"] else ""
        lines.append(
            f"{row['phase']:<30} {row['base_mean_s'] * 1e3:>8.1f}ms "
            f"{row['run_mean_s'] * 1e3:>8.1f}ms {row['ratio']:>6.2f}x"
            f"{flag}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff a run manifest against a perf baseline.")
    parser.add_argument("manifest", help="run manifest (.json or .jsonl)")
    parser.add_argument("baseline",
                        help="baseline (BENCH_perf.json or a manifest)")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="regression threshold (0.2 = +20%%)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any phase regressed")
    parser.add_argument("--json", action="store_true",
                        help="emit JSON rows instead of the table; "
                             "implies --strict exit semantics")
    args = parser.parse_args(argv)

    manifest = load_manifest(args.manifest)
    with open(args.baseline) as handle:
        baseline = json.load(handle)

    rows = compare(manifest, baseline, args.threshold)
    flagged = [row for row in rows if row["regressed"]]
    if args.json:
        print(json.dumps({
            "threshold": args.threshold,
            "phases": rows,
            "regressed": len(flagged),
            "compared": len(rows),
        }, sort_keys=True, indent=2))
        return 1 if flagged else 0
    if not rows:
        print("no comparable phases between manifest and baseline")
        return 0
    print(format_rows(rows))
    print(f"\n{len(flagged)} of {len(rows)} phases regressed "
          f"(threshold +{args.threshold * 100:.0f}%)")
    if flagged and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
