"""Pipeline flight recorder: per-instruction stage timings as JSONL.

An opt-in observer for :class:`repro.cpu.pipeline.Simulator` in the spirit
of gem5's O3 pipeline viewer / Konata traces: when attached, the simulator
hands it every instruction's stage-entry cycles and every fetch-stall cycle
with its cause, and the recorder renders them as a compact JSONL stream —
one JSON array per record, tagged by its first element:

``["R", {...}]``
    run header: trace/config names, total cycles, committed instructions.
``["I", pos, pc, head, fetch, decode, dispatch, issue, complete, commit]``
    one dynamic instruction's stage-entry cycles (-1 = never reached,
    e.g. after a ``max_cycles`` cutoff; CDPs are consumed at decode so
    their dispatch/issue/complete collapse onto the decode cycle).
``["S", cause, start_cycle, cycles]``
    a run-length-encoded burst of fetch-stall cycles with one cause out
    of :data:`STALL_CAUSES` — the same taxonomy as
    :class:`repro.cpu.stats.FetchStalls`, so summing ``cycles`` per cause
    reproduces the ``stall_*`` counters exactly.

The recorder only *observes*: ``SimStats`` are bit-identical with it on or
off (a golden-file test enforces this).  Enable it globally by pointing
``REPRO_FLIGHT_RECORDER`` at a file path (each simulation appends one
record block), or pass ``recorder=FlightRecorder(...)`` to
:func:`repro.cpu.simulate` explicitly.  Render a trace with
``python -m repro.telemetry.view``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

ENV_RECORDER = "REPRO_FLIGHT_RECORDER"

#: Fetch-stall causes, in the pipeline's cause-code order (code = index+1).
STALL_CAUSES = ("icache", "branch", "switch", "backpressure")

#: Cause codes the pipeline logs (match STALL_CAUSES positions).
STALL_ICACHE = 1
STALL_BRANCH = 2
STALL_SWITCH = 3
STALL_BACKPRESSURE = 4


class FlightRecorder:
    """Collects one or more simulation runs' pipeline event records.

    Attach one instance to several ``simulate`` calls to concatenate
    their record blocks, or set ``path`` to stream each finished run to a
    JSONL file (appending, so one env-configured file accumulates every
    run of the process).
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path or None
        self.lines: List[str] = []
        self.runs = 0

    @classmethod
    def from_env(cls) -> Optional["FlightRecorder"]:
        """A file-backed recorder when ``REPRO_FLIGHT_RECORDER`` is set."""
        path = os.environ.get(ENV_RECORDER, "")
        return cls(path) if path else None

    # -- called by the simulator ---------------------------------------------

    def on_run(
        self,
        *,
        trace_name: str,
        config_name: str,
        cycles: int,
        instructions: int,
        pcs: Sequence[int],
        head: Sequence[int],
        fetch: Sequence[int],
        decode: Sequence[int],
        dispatch: Sequence[int],
        issue: Sequence[int],
        complete: Sequence[int],
        commit: Sequence[int],
        stalls: Sequence[Tuple[int, int]],
    ) -> None:
        """Render one finished simulation into JSONL lines."""
        lines = self.lines
        start = len(lines)
        header = {
            "config": config_name,
            "cycles": cycles,
            "instructions": instructions,
            "trace": trace_name,
            "trace_len": len(pcs),
        }
        lines.append('["R", ' + json.dumps(header, sort_keys=True) + "]")
        for pos in range(len(pcs)):
            if head[pos] < 0:
                continue  # never entered the pipeline (max_cycles cutoff)
            lines.append(json.dumps([
                "I", pos, pcs[pos], head[pos], fetch[pos], decode[pos],
                dispatch[pos], issue[pos], complete[pos], commit[pos],
            ]))
        for cause_code, start_cycle, length in _rle(stalls):
            lines.append(json.dumps(
                ["S", STALL_CAUSES[cause_code - 1], start_cycle, length]
            ))
        self.runs += 1
        if self.path:
            self._append(lines[start:])

    def _append(self, lines: List[str]) -> None:
        try:
            with open(self.path, "a") as handle:
                handle.write("\n".join(lines) + "\n")
        except OSError:
            pass  # an unwritable trace path must never fail the run

    # -- consumers -----------------------------------------------------------

    def to_jsonl(self) -> str:
        """The full recorded stream as one JSONL string."""
        return "\n".join(self.lines) + ("\n" if self.lines else "")

    def stall_totals(self) -> Dict[str, int]:
        """Summed stall cycles per cause across all recorded runs.

        Matches :meth:`repro.cpu.stats.FetchStalls.stall_counts` for the
        same runs — the invariant the golden-file test checks.
        """
        totals = {cause: 0 for cause in STALL_CAUSES}
        for record in self.records():
            if record and record[0] == "S":
                totals[record[1]] += int(record[3])
        return totals

    def records(self) -> List[List[Any]]:
        """Parsed records (each ``["R"|"I"|"S", ...]``)."""
        return [json.loads(line) for line in self.lines]


def _rle(stalls: Sequence[Tuple[int, int]]) -> List[Tuple[int, int, int]]:
    """Collapse per-cycle ``(cycle, cause)`` events into
    ``(cause, start_cycle, length)`` bursts."""
    bursts: List[Tuple[int, int, int]] = []
    run_cause = -1
    run_start = 0
    run_len = 0
    prev_cycle = -2
    for cycle, cause in stalls:
        if cause == run_cause and cycle == prev_cycle + 1:
            run_len += 1
        else:
            if run_len:
                bursts.append((run_cause, run_start, run_len))
            run_cause = cause
            run_start = cycle
            run_len = 1
        prev_cycle = cycle
    if run_len:
        bursts.append((run_cause, run_start, run_len))
    return bursts


def parse_jsonl(text: str) -> List[List[Any]]:
    """Parse a flight-recorder JSONL stream (file contents) to records."""
    records: List[List[Any]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        records.append(json.loads(line))
    return records
