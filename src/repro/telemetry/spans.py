"""Hierarchical spans, phase aggregates, and counters.

This is the core of :mod:`repro.telemetry`.  A *span* is one timed region
of the pipeline (``with span("simulate", app="Music"): ...``); spans nest,
forming a tree per top-level region.  Two views are maintained:

* **aggregates** — every span close folds into a per-name table of
  ``(calls, cumulative seconds, self seconds)``.  *Self* time excludes the
  cumulative time of direct children, so nested phases (``simulate``
  inside ``fig10``) no longer double-count toward the report total.  The
  aggregate table is always on: its cost is one ``perf_counter`` pair and
  a dict update per span.
* **trees** — completed root spans are retained (and exportable as JSONL
  via :func:`dump_spans`) only when ``REPRO_PERF=1`` or ``REPRO_SPANS=1``
  is set, capped at :data:`MAX_ROOT_SPANS` roots per process.

Both views are picklable through :func:`snapshot` and re-foldable with
:func:`merge_snapshot`, which is how worker processes in the parallel
experiment runner report their telemetry back to the parent (spans from a
worker are tagged with the worker's pid).  The typed metrics registry
(:mod:`repro.telemetry.metrics`) rides the same channel: its state is
folded into every snapshot under ``"metrics"``, merged and reset
alongside phases/counters, so labeled counters inherit the runner's
exactly-once-across-retries discipline.

Spans also record their wall-clock start (``start_unix``), which is what
lets ``python -m repro.telemetry.export`` lay the retained trees out on
a Chrome-trace/Perfetto timeline.  Setting ``REPRO_SPANS`` to a *path*
(anything other than ``0``/``1``) retains trees **and** dumps them as
JSONL to that path at exit, ready for the exporter.

State is process-local and single-threaded by design, matching the rest
of the pipeline.
"""

from __future__ import annotations

import atexit
import functools
import json
import os
import sys
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, TextIO, \
    Tuple

from repro.telemetry import metrics as _metrics

_ENV = "REPRO_PERF"
_ENV_SPANS = "REPRO_SPANS"

#: Retained root-span cap (per process); excess roots are counted, not kept.
MAX_ROOT_SPANS = 4096


class Span:
    """One closed (or still-open) timed region of the pipeline."""

    __slots__ = ("name", "attrs", "dur", "start", "children")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attrs = attrs
        self.dur = 0.0
        #: wall-clock entry time (unix seconds; 0.0 for legacy records)
        self.start = 0.0
        self.children: List["Span"] = []

    @property
    def cumulative(self) -> float:
        """Wall seconds from entry to exit, children included."""
        return self.dur

    @property
    def self_time(self) -> float:
        """Wall seconds spent in this span *excluding* direct children."""
        child = sum(c.dur for c in self.children)
        return self.dur - child if self.dur > child else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe tree form (used by the JSONL export and snapshots)."""
        record: Dict[str, Any] = {
            "name": self.name,
            "dur_s": self.dur,
            "self_s": self.self_time,
        }
        if self.start:
            record["start_unix"] = self.start
        if self.attrs:
            record["attrs"] = self.attrs
        if self.children:
            record["children"] = [c.to_dict() for c in self.children]
        return record

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        span = cls(str(data.get("name", "?")), data.get("attrs") or None)
        span.dur = float(data.get("dur_s", 0.0))
        span.start = float(data.get("start_unix", 0.0))
        span.children = [cls.from_dict(c) for c in data.get("children", [])]
        return span


#: stack of open spans (innermost last)
_stack: List[Span] = []
#: retained completed root spans (only when span retention is on)
_roots: List[Span] = []
#: roots dropped past MAX_ROOT_SPANS
_dropped_roots = 0
#: phase name -> [calls, cumulative seconds, self seconds]
_phases: Dict[str, List[float]] = {}
#: counter name -> value
_counters: Dict[str, int] = {}


def enabled() -> bool:
    """True when ``REPRO_PERF=1`` (report printed at exit)."""
    return os.environ.get(_ENV, "") not in ("", "0")


def _retain_trees() -> bool:
    return enabled() or os.environ.get(_ENV_SPANS, "") not in ("", "0")


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Span]:
    """Time one region; nestable and re-entrant.  Yields the live
    :class:`Span` so callers can attach attributes mid-flight."""
    global _dropped_roots
    current = Span(name, attrs or None)
    current.start = time.time()
    parent = _stack[-1] if _stack else None
    _stack.append(current)
    start = time.perf_counter()
    try:
        yield current
    finally:
        current.dur = time.perf_counter() - start
        if _stack and _stack[-1] is current:
            _stack.pop()
        child = sum(c.dur for c in current.children)
        self_t = current.dur - child if current.dur > child else 0.0
        cell = _phases.get(name)
        if cell is None:
            _phases[name] = [1, current.dur, self_t]
        else:
            cell[0] += 1
            cell[1] += current.dur
            cell[2] += self_t
        if parent is not None:
            parent.children.append(current)
        elif _retain_trees():
            if len(_roots) < MAX_ROOT_SPANS:
                _roots.append(current)
            else:
                _dropped_roots += 1


def phase(name: str) -> Any:
    """Time one pipeline phase (attribute-less :func:`span`)."""
    return span(name)


def spanned(name: Optional[str] = None, **attrs: Any) -> Callable:
    """Decorator form of :func:`span` (figure modules annotate their
    ``run()`` entry points with it)."""
    def wrap(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def inner(*args: Any, **kwargs: Any) -> Any:
            with span(label, **attrs):
                return fn(*args, **kwargs)
        return inner
    return wrap


def count(name: str, value: int = 1) -> None:
    """Bump a named counter (cache hits, instructions simulated, ...)."""
    _counters[name] = _counters.get(name, 0) + value


def counters() -> Dict[str, int]:
    """Snapshot of all counters (tests and the cache smoke check use this)."""
    return dict(_counters)


def phases() -> Dict[str, Tuple[int, float]]:
    """Legacy snapshot: ``name -> (calls, cumulative_seconds)``."""
    return {name: (int(c), t) for name, (c, t, _s) in _phases.items()}


def phase_stats() -> Dict[str, Dict[str, float]]:
    """Full aggregate snapshot:
    ``name -> {"calls", "total_s", "self_s"}``."""
    return {
        name: {"calls": int(c), "total_s": t, "self_s": s}
        for name, (c, t, s) in _phases.items()
    }


def spans() -> List[Span]:
    """Retained completed root spans (empty unless retention is on)."""
    return list(_roots)


def dropped_spans() -> int:
    """Roots discarded after :data:`MAX_ROOT_SPANS` was reached."""
    return _dropped_roots


def dump_spans(stream: TextIO) -> int:
    """Write retained root-span trees as JSONL; returns lines written."""
    written = 0
    for root in _roots:
        stream.write(json.dumps(root.to_dict(), sort_keys=True) + "\n")
        written += 1
    return written


def reset() -> None:
    """Clear all spans/timings/counters/metrics (tests use this)."""
    global _dropped_roots
    _stack.clear()
    _roots.clear()
    _dropped_roots = 0
    _phases.clear()
    _counters.clear()
    _metrics.REGISTRY.reset()


# -- cross-process aggregation -------------------------------------------------


def snapshot() -> Dict[str, Any]:
    """Picklable/JSON-safe copy of this process's telemetry state.

    Worker processes return this through the pool (or spool it to a temp
    file when they crash); the parent folds it back in with
    :func:`merge_snapshot`.
    """
    return {
        "pid": os.getpid(),
        "phases": {name: list(cell) for name, cell in _phases.items()},
        "counters": dict(_counters),
        "metrics": _metrics.REGISTRY.snapshot(),
        "spans": [root.to_dict() for root in _roots],
        "dropped_spans": _dropped_roots,
    }


def merge_snapshot(snap: Optional[Dict[str, Any]]) -> None:
    """Fold a :func:`snapshot` from another process into this one."""
    global _dropped_roots
    if not snap:
        return
    for name, cell in snap.get("phases", {}).items():
        calls = int(cell[0])
        total = float(cell[1])
        self_t = float(cell[2]) if len(cell) > 2 else total
        mine = _phases.get(name)
        if mine is None:
            _phases[name] = [calls, total, self_t]
        else:
            mine[0] += calls
            mine[1] += total
            mine[2] += self_t
    for name, value in snap.get("counters", {}).items():
        _counters[name] = _counters.get(name, 0) + int(value)
    _metrics.REGISTRY.merge(snap.get("metrics"))
    _dropped_roots += int(snap.get("dropped_spans", 0))
    roots = snap.get("spans") or []
    if roots and _retain_trees():
        pid = snap.get("pid")
        for data in roots:
            root = Span.from_dict(data)
            if pid is not None:
                root.attrs = dict(root.attrs or {})
                root.attrs.setdefault("pid", pid)
            if len(_roots) < MAX_ROOT_SPANS:
                _roots.append(root)
            else:
                _dropped_roots += 1


# -- reporting -----------------------------------------------------------------


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def report() -> str:
    """Render the per-phase/per-counter report.

    Phases are sorted by *self* time, and both cumulative and self time
    are shown, so a ``simulate`` nested inside a ``fig10`` span no longer
    double-counts toward the ordering.
    """
    lines = ["== repro.telemetry " + "=" * 52]
    if _phases:
        lines.append(
            f"{'phase':<30} {'calls':>6} {'total':>10} {'self':>10} "
            f"{'mean':>10}"
        )
        ordered = sorted(_phases.items(), key=lambda kv: -kv[1][2])
        for name, (calls, total, self_t) in ordered:
            mean = total / calls if calls else 0.0
            lines.append(
                f"{name:<30} {int(calls):>6} {_fmt_seconds(total):>10} "
                f"{_fmt_seconds(self_t):>10} {_fmt_seconds(mean):>10}"
            )
    if _counters:
        lines.append("")
        lines.append(f"{'counter':<40} {'value':>8}")
        for name in sorted(_counters):
            lines.append(f"{name:<40} {_counters[name]:>8}")
    if _dropped_roots:
        lines.append("")
        lines.append(f"(span trees dropped past cap: {_dropped_roots})")
    return "\n".join(lines)


def spans_out_path() -> Optional[str]:
    """The JSONL dump path, when ``REPRO_SPANS`` names one (any value
    other than the retention toggles ``0``/``1``)."""
    raw = os.environ.get(_ENV_SPANS, "").strip()
    return raw if raw not in ("", "0", "1") else None


def _dump_spans_at_exit() -> None:
    path = spans_out_path()
    if path is None or not _roots:
        return
    try:
        with open(path, "a", encoding="utf-8") as handle:
            dump_spans(handle)
            # A trailing meta line carries the final counter values so
            # the Chrome-trace exporter can render counter tracks.
            handle.write(json.dumps({
                "_meta": {
                    "pid": os.getpid(),
                    "counters": dict(_counters),
                },
            }, sort_keys=True) + "\n")
    except OSError:
        pass


def _report_at_exit() -> None:
    _dump_spans_at_exit()
    if enabled() and (_phases or _counters):
        print(report(), file=sys.stderr)


atexit.register(_report_at_exit)
