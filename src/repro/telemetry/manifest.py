"""Run manifests: provenance records written next to cached artifacts.

Every :func:`repro.experiments.runner.run_apps` invocation (and therefore
every figure reproduction) writes a *manifest* describing exactly what
ran: the invocation's content hash (same canonicalization as the artifact
cache keys), per-app generation seeds, scheme/config grid, cache hit/miss
counts, wall time, and the telemetry phase/counter aggregates.  Manifests
live inside the artifact-cache namespace::

    $REPRO_CACHE_DIR/v<SCHEMA_VERSION>/manifests/last_run.json   (latest)
    $REPRO_CACHE_DIR/v<SCHEMA_VERSION>/manifests/manifests.jsonl (append log)

``last_run.json`` is replaced atomically; the JSONL log accumulates one
line per run, which is what CI uploads as a workflow artifact.  Next to
``last_run.json`` the writer also drops ``metrics.txt`` — the typed
metrics registry rendered in Prometheus text exposition format, the
scrape-shaped view of the same run.  Use
``python -m repro.telemetry.compare`` to diff a manifest against
``BENCH_perf.json`` and flag phase-time regressions.

Everything recorded here is provenance, not identity: the ``metrics``
block (like ``cache``/``wall_s``/``phases``/``counters``) sits *outside*
the invocation record that ``config_hash`` is computed over, so two runs
with identical inputs hash identically no matter what their telemetry
looked like.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from repro.cache import SCHEMA_VERSION, artifact_key, get_cache
from repro.telemetry import metrics as _metrics
from repro.telemetry.spans import counters as _counters
from repro.telemetry.spans import phase_stats as _phase_stats

#: Manifest record format version.
MANIFEST_SCHEMA = 1

LAST_RUN = "last_run.json"
LOG = "manifests.jsonl"
METRICS = "metrics.txt"


def manifest_dir(root: Optional[Path] = None) -> Path:
    """Where manifests live for the active (or given) cache root."""
    base = root if root is not None else get_cache().root
    return Path(base) / f"v{SCHEMA_VERSION}" / "manifests"


def build_manifest(
    kind: str,
    *,
    apps: Sequence[str],
    schemes: Sequence[str],
    configs: Sequence[str],
    walk_blocks: int,
    seeds: Dict[str, int],
    wall_s: float,
    components: Optional[Dict[str, Any]] = None,
    workload_family: Optional[str] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the manifest record for one finished run.

    ``components`` maps each config name to its versioned component
    identities (see :func:`repro.registry.component_identity`); when
    given it becomes part of the invocation record, so the
    ``config_hash`` distinguishes runs that differ only in which
    registered components (or component versions) they composed.

    ``workload_family`` (a versioned identity like ``"bursty@1"``) is
    always recorded at the top level when given, but joins the
    invocation record — and therefore ``config_hash`` — only when it
    is not the ``default`` catalog generator, so default-family hashes
    are byte-identical to pre-family manifests.
    """
    cache = get_cache()
    invocation = {
        "apps": sorted(apps),
        "schemes": sorted(schemes),
        "configs": sorted(configs),
        "walk_blocks": walk_blocks,
        "seeds": {name: seeds[name] for name in sorted(seeds)},
    }
    if components is not None:
        invocation["components"] = {
            name: components[name] for name in sorted(components)
        }
    if workload_family is not None \
            and workload_family.split("@", 1)[0] != "default":
        invocation["workload_family"] = workload_family
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "kind": kind,
        "config_hash": artifact_key("run_manifest", **invocation),
        "created_unix": time.time(),
        "pid": os.getpid(),
        **invocation,
        **({"workload_family": workload_family}
           if workload_family is not None else {}),
        "cache": {"hits": cache.hits, "misses": cache.misses,
                  "backend": cache.backend_spec()},
        "wall_s": wall_s,
        "phases": _phase_stats(),
        "counters": _counters(),
        "metrics": _metrics.REGISTRY.snapshot(),
    }
    if extra:
        manifest.update(extra)
    return manifest


def _write_atomic(target: Path, text: str) -> None:
    fd, tmp = tempfile.mkstemp(
        dir=str(target.parent), prefix=".tmp-", suffix=target.suffix,
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def write_manifest(manifest: Dict[str, Any]) -> Optional[Path]:
    """Persist ``manifest`` (atomic ``last_run.json`` + JSONL log line),
    plus the Prometheus-format ``metrics.txt`` snapshot alongside.

    Returns the ``last_run.json`` path, or ``None`` when the artifact
    cache is disabled or unwritable (manifests are best-effort telemetry,
    never a reason to fail a run).
    """
    cache = get_cache()
    if not cache.enabled:
        return None
    line = json.dumps(manifest, sort_keys=True)
    target = manifest_dir() / LAST_RUN
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        _write_atomic(target, line + "\n")
        with open(target.parent / LOG, "a") as handle:
            handle.write(line + "\n")
        exposition = _metrics.REGISTRY.render_prometheus()
        if exposition:
            _write_atomic(target.parent / METRICS, exposition)
    except OSError:
        return None
    return target


def record_run(
    kind: str,
    *,
    apps: Sequence[str],
    schemes: Sequence[str],
    configs: Sequence[str],
    walk_blocks: int,
    seeds: Dict[str, int],
    wall_s: float,
    components: Optional[Dict[str, Any]] = None,
    workload_family: Optional[str] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Optional[Path]:
    """:func:`build_manifest` + :func:`write_manifest` in one call."""
    return write_manifest(build_manifest(
        kind, apps=apps, schemes=schemes, configs=configs,
        walk_blocks=walk_blocks, seeds=seeds, wall_s=wall_s,
        components=components, workload_family=workload_family,
        extra=extra,
    ))


def load_manifest(path: str) -> Dict[str, Any]:
    """Load one manifest: a ``.json`` file, or the *last* line of a
    ``.jsonl`` log."""
    with open(path) as handle:
        text = handle.read()
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"empty manifest file: {path}")
    return json.loads(lines[-1])
