"""Run manifests: provenance records written next to cached artifacts.

Every :func:`repro.experiments.runner.run_apps` invocation (and therefore
every figure reproduction) writes a *manifest* describing exactly what
ran: the invocation's content hash (same canonicalization as the artifact
cache keys), per-app generation seeds, scheme/config grid, cache hit/miss
counts, wall time, and the telemetry phase/counter aggregates.  Manifests
live inside the artifact-cache namespace::

    $REPRO_CACHE_DIR/v<SCHEMA_VERSION>/manifests/last_run.json   (latest)
    $REPRO_CACHE_DIR/v<SCHEMA_VERSION>/manifests/manifests.jsonl (append log)

``last_run.json`` is replaced atomically; the JSONL log accumulates one
line per run, which is what CI uploads as a workflow artifact.  Use
``python -m repro.telemetry.compare`` to diff a manifest against
``BENCH_perf.json`` and flag phase-time regressions.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from repro.cache import SCHEMA_VERSION, artifact_key, get_cache
from repro.telemetry.spans import counters as _counters
from repro.telemetry.spans import phase_stats as _phase_stats

#: Manifest record format version.
MANIFEST_SCHEMA = 1

LAST_RUN = "last_run.json"
LOG = "manifests.jsonl"


def manifest_dir(root: Optional[Path] = None) -> Path:
    """Where manifests live for the active (or given) cache root."""
    base = root if root is not None else get_cache().root
    return Path(base) / f"v{SCHEMA_VERSION}" / "manifests"


def build_manifest(
    kind: str,
    *,
    apps: Sequence[str],
    schemes: Sequence[str],
    configs: Sequence[str],
    walk_blocks: int,
    seeds: Dict[str, int],
    wall_s: float,
    components: Optional[Dict[str, Any]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the manifest record for one finished run.

    ``components`` maps each config name to its versioned component
    identities (see :func:`repro.registry.component_identity`); when
    given it becomes part of the invocation record, so the
    ``config_hash`` distinguishes runs that differ only in which
    registered components (or component versions) they composed.
    """
    cache = get_cache()
    invocation = {
        "apps": sorted(apps),
        "schemes": sorted(schemes),
        "configs": sorted(configs),
        "walk_blocks": walk_blocks,
        "seeds": {name: seeds[name] for name in sorted(seeds)},
    }
    if components is not None:
        invocation["components"] = {
            name: components[name] for name in sorted(components)
        }
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "kind": kind,
        "config_hash": artifact_key("run_manifest", **invocation),
        "created_unix": time.time(),
        "pid": os.getpid(),
        **invocation,
        "cache": {"hits": cache.hits, "misses": cache.misses},
        "wall_s": wall_s,
        "phases": _phase_stats(),
        "counters": _counters(),
    }
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(manifest: Dict[str, Any]) -> Optional[Path]:
    """Persist ``manifest`` (atomic ``last_run.json`` + JSONL log line).

    Returns the ``last_run.json`` path, or ``None`` when the artifact
    cache is disabled or unwritable (manifests are best-effort telemetry,
    never a reason to fail a run).
    """
    cache = get_cache()
    if not cache.enabled:
        return None
    line = json.dumps(manifest, sort_keys=True)
    target = manifest_dir() / LAST_RUN
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(target.parent), prefix=".tmp-", suffix=".json",
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(line + "\n")
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        with open(target.parent / LOG, "a") as handle:
            handle.write(line + "\n")
    except OSError:
        return None
    return target


def record_run(
    kind: str,
    *,
    apps: Sequence[str],
    schemes: Sequence[str],
    configs: Sequence[str],
    walk_blocks: int,
    seeds: Dict[str, int],
    wall_s: float,
    components: Optional[Dict[str, Any]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Optional[Path]:
    """:func:`build_manifest` + :func:`write_manifest` in one call."""
    return write_manifest(build_manifest(
        kind, apps=apps, schemes=schemes, configs=configs,
        walk_blocks=walk_blocks, seeds=seeds, wall_s=wall_s,
        components=components, extra=extra,
    ))


def load_manifest(path: str) -> Dict[str, Any]:
    """Load one manifest: a ``.json`` file, or the *last* line of a
    ``.jsonl`` log."""
    with open(path) as handle:
        text = handle.read()
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"empty manifest file: {path}")
    return json.loads(lines[-1])
