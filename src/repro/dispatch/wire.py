"""Length-prefixed pickle framing for the fleet's broker <-> worker TCP
link.

The broker and its workers are the same codebase on the same host
(workers are spawned as ``python -m repro.dispatch.worker``), so pickle
is the natural payload encoding — the same objects the pool executor
already ships through ``ProcessPoolExecutor``.  Frames are ``>I`` length
+ pickle bytes; task payloads and result values are pickled *separately*
from the envelope, so a fault-corrupted result payload fails to decode
without desynchronizing the stream.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
from typing import Any, Optional

#: Frame header: big-endian unsigned payload length.
_HEADER = struct.Struct(">I")

#: Refuse absurd frames (a corrupted header would otherwise make the
#: reader try to allocate gigabytes).
MAX_FRAME = 256 * 1024 * 1024


class WireError(ConnectionError):
    """The peer vanished or sent an undecodable frame."""


def send_frame(sock: socket.socket, payload: bytes,
               lock: Optional[threading.Lock] = None) -> None:
    """Send one raw frame (``lock`` serializes writers on a shared
    socket — the worker's heartbeat thread and its result sends)."""
    data = _HEADER.pack(len(payload)) + payload
    if lock is not None:
        with lock:
            sock.sendall(data)
    else:
        sock.sendall(data)


def recv_frame(sock: socket.socket) -> bytes:
    """Receive one raw frame; raises :class:`WireError` on EOF."""
    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise WireError(f"oversized frame ({length} bytes)")
    return _recv_exact(sock, length)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise WireError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_msg(sock: socket.socket, message: Any,
             lock: Optional[threading.Lock] = None) -> None:
    send_frame(sock, pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL),
               lock=lock)


def recv_msg(sock: socket.socket) -> Any:
    frame = recv_frame(sock)
    try:
        return pickle.loads(frame)
    except Exception as exc:
        raise WireError(f"undecodable frame: {exc}") from exc


def dumps(value: Any) -> bytes:
    """Pickle a task/result payload for transport inside an envelope."""
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def loads(payload: bytes) -> Any:
    return pickle.loads(payload)


__all__ = ["MAX_FRAME", "WireError", "dumps", "loads", "recv_frame",
           "recv_msg", "send_frame", "send_msg"]
