"""Built-in executor registrations (the ``EXECUTORS`` registry provider).

Imported lazily by :data:`repro.registry.EXECUTORS` on first lookup.
Each entry is a factory ``(jobs=None, policy=None) -> Executor``; the
registry name doubles as the ``REPRO_EXECUTOR`` / ``--executor`` value
and as the identity recorded in run manifests (``inline@1`` etc.).
"""

from __future__ import annotations

from repro.dispatch.fleet import FleetExecutor
from repro.dispatch.inline import InlineExecutor
from repro.dispatch.pool import PoolExecutor
from repro.registry import EXECUTORS

EXECUTORS.register("inline", InlineExecutor, version=1)
EXECUTORS.register("pool", PoolExecutor, version=1)
EXECUTORS.register("fleet", FleetExecutor, version=1)

__all__ = ["FleetExecutor", "InlineExecutor", "PoolExecutor"]
