"""Fleet worker process: ``python -m repro.dispatch.worker``.

The lifecycle is a pull loop against the broker (see
:mod:`repro.dispatch.fleet`): ``hello`` once, then ``ready`` →
(``task`` | ``idle`` | ``exit``).  While a task executes in the main
thread, a background thread heartbeats the lease; the result is shipped
back as a separately pickled payload so the broker can survive decoding
garbage.

When ``REPRO_DISPATCH_FAULTS`` is set, the seeded
:class:`~repro.dispatch.faults.FaultPlan` is consulted once per leased
attempt, and at most one fault fires:

* ``kill`` — a timer SIGKILLs this process shortly after execution
  starts (no exception, no cleanup: the hard way workers die);
* ``drop`` — the result is computed and discarded; the next ``ready``
  surrenders the lease;
* ``delay`` — no heartbeats are sent for this attempt, so the broker's
  heartbeat timeout fires;
* ``corrupt`` — the result payload bytes are mangled before sending.

Workers never *retry* anything themselves — retry policy belongs to the
broker, which sees every attempt from every worker.

Multi-host: ``--connect`` takes any reachable broker address, not just
loopback; ``--token`` (or ``REPRO_FLEET_TOKEN``) rides along in the
``hello`` and a mismatch is answered with ``denied`` — the worker
prints the reason and exits 1.  ``--discover HOST:PORT`` asks a
``repro.serve`` wire front for its broker address first (the ``join``
message), so one published endpoint is enough to wire up a whole fleet.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import sys
import threading
import time
import traceback
from typing import Optional, Tuple

from repro.dispatch import wire
from repro.dispatch.faults import ENV_FAULTS, FaultPlan, corrupt_bytes
from repro.dispatch.fleet import ENV_TOKEN

#: Seconds into an attempt at which the ``kill`` fault fires.
KILL_DELAY_S = 0.02

#: Blocking-recv safety net: the broker answers ``ready`` immediately,
#: so a silent minute means the broker is gone and the worker exits.
RECV_TIMEOUT_S = 60.0


def _parse_address(value: str) -> Tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {value!r}"
        )
    return host, int(port)


def _heartbeat_loop(sock: socket.socket, lock: threading.Lock,
                    worker: str, task_id: str, interval: float,
                    stop: threading.Event) -> None:
    while not stop.wait(interval):
        try:
            wire.send_msg(sock, {"type": "heartbeat", "worker": worker,
                                 "task": task_id}, lock=lock)
        except OSError:
            return


def _self_destruct() -> None:
    """SIGKILL this process — no atexit, no finally, no flush."""
    os.kill(os.getpid(), signal.SIGKILL)


def _execute(payload: bytes) -> Tuple[bool, bytes, Optional[str]]:
    """Run one task payload; returns (ok, result_payload, error_text)."""
    try:
        fn, args, kwargs = wire.loads(payload)
        value = fn(*args, **kwargs)
    except BaseException:
        return False, b"", traceback.format_exc(limit=20)
    return True, wire.dumps(value), None


def discover_broker(address: Tuple[str, int], worker: str,
                    token: str = "") -> Tuple[str, int]:
    """Ask a ``repro.serve`` wire front where its fleet broker lives.

    Sends the ``join`` registration message and returns the broker's
    ``(host, port)``; raises :class:`OSError` if the front is
    unreachable or answers anything but a ``fleet`` record.
    """
    with socket.create_connection(address, timeout=10.0) as sock:
        wire.send_msg(sock, {"type": "join", "worker": worker,
                             "pid": os.getpid(), "token": token})
        try:
            reply = wire.recv_msg(sock)
        except wire.WireError as exc:
            raise OSError(f"bad discovery reply: {exc}") from exc
    if not isinstance(reply, dict) or reply.get("type") != "fleet":
        error = reply.get("error") if isinstance(reply, dict) else None
        raise OSError(error or f"unexpected discovery reply "
                               f"{reply!r}")
    host = reply.get("host") or address[0]
    # A broker parked on a wildcard interface is reachable wherever the
    # serve front itself was.
    if host in ("0.0.0.0", "::"):
        host = address[0]
    return host, int(reply["port"])


def serve(address: Tuple[str, int], worker: str,
          plan: Optional[FaultPlan] = None, token: str = "") -> int:
    """The worker loop; returns an exit code."""
    if plan is None:
        plan = FaultPlan.parse(os.environ.get(ENV_FAULTS))
    try:
        sock = socket.create_connection(address, timeout=10.0)
    except OSError as exc:
        print(f"worker {worker}: cannot reach broker at "
              f"{address[0]}:{address[1]}: {exc}", file=sys.stderr)
        return 1
    sock.settimeout(RECV_TIMEOUT_S)
    send_lock = threading.Lock()
    wire.send_msg(sock, {"type": "hello", "worker": worker,
                         "pid": os.getpid(), "token": token},
                  lock=send_lock)
    try:
        while True:
            wire.send_msg(sock, {"type": "ready", "worker": worker},
                          lock=send_lock)
            try:
                message = wire.recv_msg(sock)
            except socket.timeout:
                continue
            kind = message.get("type")
            if kind == "exit":
                return 0
            if kind == "denied":
                print(f"worker {worker}: broker denied the hello: "
                      f"{message.get('error', 'token mismatch')}",
                      file=sys.stderr)
                return 1
            if kind == "idle":
                time.sleep(message.get("sleep", 0.05))
                continue
            if kind != "task":
                return 1

            task_id = message["id"]
            attempt = message.get("attempt", 1)
            fault = plan.draw(task_id, attempt) if plan else None

            if fault == "kill":
                timer = threading.Timer(KILL_DELAY_S, _self_destruct)
                timer.daemon = True
                timer.start()

            stop = threading.Event()
            if fault != "delay":
                beat = threading.Thread(
                    target=_heartbeat_loop,
                    args=(sock, send_lock, worker, task_id,
                          message.get("heartbeat_s", 1.0), stop),
                    daemon=True,
                )
                beat.start()
            try:
                ok, payload, error = _execute(message["payload"])
            finally:
                stop.set()

            if fault == "drop":
                continue
            if ok and fault == "corrupt":
                payload = corrupt_bytes(payload)
            envelope = {"type": "result", "worker": worker,
                        "id": task_id, "ok": ok, "payload": payload}
            if error is not None:
                envelope["error"] = error
            wire.send_msg(sock, envelope, lock=send_lock)
    except (wire.WireError, OSError):
        return 0
    finally:
        try:
            sock.close()
        except OSError:
            pass


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dispatch.worker",
        description="Fleet worker: pull task leases from a dispatch "
                    "broker and execute them.",
    )
    parser.add_argument("--connect", type=_parse_address, default=None,
                        metavar="HOST:PORT",
                        help="broker address to pull leases from")
    parser.add_argument("--discover", type=_parse_address, default=None,
                        metavar="HOST:PORT",
                        help="repro.serve wire front to ask for the "
                             "broker address (instead of --connect)")
    parser.add_argument("--worker", default=f"fleet-pid{os.getpid()}",
                        help="worker name reported to the broker")
    parser.add_argument("--token", default=os.environ.get(ENV_TOKEN, ""),
                        help="fleet auth token for the hello handshake "
                             f"(default: ${ENV_TOKEN})")
    args = parser.parse_args(argv)
    if (args.connect is None) == (args.discover is None):
        parser.error("exactly one of --connect/--discover is required")
    address = args.connect
    if address is None:
        try:
            address = discover_broker(args.discover, args.worker,
                                      args.token)
        except OSError as exc:
            print(f"worker {args.worker}: discovery against "
                  f"{args.discover[0]}:{args.discover[1]} failed: "
                  f"{exc}", file=sys.stderr)
            return 1
    return serve(address, args.worker, token=args.token)


if __name__ == "__main__":
    sys.exit(main())
