"""Core vocabulary of the dispatch subsystem: tasks, attempts, policy.

An *executor* turns a batch of :class:`TaskSpec`\\ s into
:class:`TaskResult`\\ s.  Every execution of a task — on whatever worker,
however it ended — is recorded as an :class:`Attempt`, so the caller
(and the run manifest) can see exactly how a result was obtained: first
try on a pool worker, third try after two SIGKILLed fleet workers, or a
quarantined poison task degraded to the parent's inline path.

The contract every executor honors:

* ``submit()`` only queues; no work starts before ``drain()``.
* ``drain()`` **never raises for a task failure** — errors land in the
  task's :class:`TaskResult` (``error`` text, and ``error_exc`` when the
  failing attempt ran in the parent process, so the caller can re-raise
  the original exception object).  Only executor-infrastructure bugs
  escape.
* Results come back in **submission order**, one per submitted task, and
  a task's value is produced by exactly one successful attempt — retried
  attempts never leak partial results.
* ``shutdown()`` is idempotent and reclaims every worker process.

The retry/backoff/timeout knobs live in :class:`RetryPolicy`
(env-overridable, ``REPRO_DISPATCH_*``); the executors share it so a
sweep behaves the same whether cells run in-process or on a socket
fleet.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import telemetry


class DispatchError(RuntimeError):
    """Base class for structured dispatch failures (carries a task id)."""

    def __init__(self, message: str, task_id: str = "") -> None:
        super().__init__(message)
        self.task_id = task_id


class CellTimeoutError(DispatchError):
    """A task exceeded its per-attempt wall-clock budget.

    Raised by the SIGALRM deadline around in-parent execution, and
    recorded (as a ``timeout`` attempt) when the broker expires a fleet
    lease.  The message names the cell, so a wedged cell is a diagnosis,
    not a hung sweep.
    """


class CellDeadlockError(DispatchError):
    """The pipeline's no-forward-progress watchdog fired inside a cell.

    Wraps :class:`repro.cpu.pipeline.PipelineDeadlockError` with the
    dispatch-level cell id (``app|config``); the original error — which
    carries the stuck pipeline state — rides along as ``__cause__``.
    """


class TaskFailedError(DispatchError):
    """A task failed on a remote worker and the error was not an
    exception object the parent can re-raise (only its traceback text
    survived the process boundary)."""


def _env_float(name: str, default: float, minimum: float = 0.0) -> float:
    """A float env override, warning (once) and defaulting on garbage."""
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        warnings.warn(
            f"ignoring malformed {name}={raw!r} (not a number); "
            f"using {default}",
            RuntimeWarning, stacklevel=2,
        )
        return default
    return max(minimum, value)


def _env_int(name: str, default: int, minimum: int = 1) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring malformed {name}={raw!r} (not an integer); "
            f"using {default}",
            RuntimeWarning, stacklevel=2,
        )
        return default
    return max(minimum, value)


@dataclass(frozen=True)
class RetryPolicy:
    """How failures are retried, and how long any attempt may run.

    All executors share one policy object; the environment knobs are the
    single source of defaults so ``REPRO_DISPATCH_TIMEOUT=30`` means the
    same thing to the pool and to the fleet broker.
    """

    #: per-attempt wall-clock budget, seconds (``REPRO_DISPATCH_TIMEOUT``)
    timeout_s: float = 600.0
    #: total attempts per task before quarantine
    #: (``REPRO_DISPATCH_ATTEMPTS``)
    max_attempts: int = 3
    #: base of the exponential retry backoff
    #: (``REPRO_DISPATCH_BACKOFF``)
    backoff_base_s: float = 0.05
    #: backoff ceiling — retries never wait longer than this
    backoff_cap_s: float = 2.0
    #: fleet worker heartbeat interval (``REPRO_DISPATCH_HEARTBEAT``);
    #: a lease with no heartbeat for 4 intervals is declared dead
    heartbeat_s: float = 1.0

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        return cls(
            timeout_s=_env_float("REPRO_DISPATCH_TIMEOUT", 600.0,
                                 minimum=0.1),
            max_attempts=_env_int("REPRO_DISPATCH_ATTEMPTS", 3),
            backoff_base_s=_env_float("REPRO_DISPATCH_BACKOFF", 0.05),
            heartbeat_s=_env_float("REPRO_DISPATCH_HEARTBEAT", 1.0,
                                   minimum=0.05),
        )

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before attempt number ``attempt`` (1-based:
        the first *retry* is attempt 2 and waits one base interval)."""
        if attempt <= 1:
            return 0.0
        return min(self.backoff_cap_s,
                   self.backoff_base_s * (2.0 ** (attempt - 2)))

    @property
    def heartbeat_timeout_s(self) -> float:
        return 4.0 * self.heartbeat_s


@dataclass
class TaskSpec:
    """One unit of work: a picklable module-level callable plus args.

    ``fn`` must be importable by reference (fleet workers unpickle it in
    a fresh process).  ``inline_kwargs``, when given, is *merged over*
    ``kwargs`` for attempts that run in the parent process (the inline
    executor, and quarantine fallback) — the runner uses this to switch
    its cell body from snapshot-telemetry mode to live-telemetry mode
    without two task definitions.
    """

    id: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    inline_kwargs: Optional[Dict[str, Any]] = None
    #: per-attempt override of :attr:`RetryPolicy.timeout_s`
    timeout_s: Optional[float] = None

    def run_inline(self) -> Any:
        """Execute in the calling process (inline/quarantine path)."""
        kwargs = dict(self.kwargs)
        if self.inline_kwargs:
            kwargs.update(self.inline_kwargs)
        return self.fn(*self.args, **kwargs)

    def effective_timeout(self, policy: RetryPolicy) -> float:
        return self.timeout_s if self.timeout_s is not None \
            else policy.timeout_s


@dataclass
class Attempt:
    """One execution of one task on one worker, however it ended."""

    index: int                    #: 1-based attempt number
    worker: str                   #: "inline", "pool-3", "fleet-1", ...
    outcome: str                  #: see ``OUTCOMES``
    wall_s: float = 0.0
    error: Optional[str] = None   #: traceback text for failed attempts

    #: Every outcome an attempt can end with:
    #: ``ok`` — returned a value; ``error`` — raised; ``timeout`` — hit
    #: the wall-clock budget; ``lost`` — the worker dropped the result
    #: (asked for new work with an open lease); ``no-heartbeat`` — the
    #: lease's heartbeats stopped; ``worker-died`` — the worker process
    #: exited mid-lease; ``corrupt`` — the result payload failed to
    #: decode; ``skipped`` — never ran (an earlier quarantined task
    #: already failed the run).
    OUTCOMES = ("ok", "error", "timeout", "lost", "no-heartbeat",
                "worker-died", "corrupt", "skipped")

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "index": self.index,
            "worker": self.worker,
            "outcome": self.outcome,
            "wall_s": round(self.wall_s, 6),
        }
        if self.error:
            record["error"] = self.error.strip().splitlines()[-1][:200]
        return record


@dataclass
class TaskResult:
    """Everything an executor knows about one finished task."""

    task_id: str
    value: Any = None
    attempts: List[Attempt] = field(default_factory=list)
    #: the task exhausted its attempt budget and was degraded to the
    #: parent's inline path (poison-task quarantine)
    quarantined: bool = False
    error: Optional[str] = None
    #: live exception object, when the failing attempt ran in-parent
    error_exc: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.error_exc is None

    @property
    def retries(self) -> int:
        return max(0, len(self.attempts) - 1)

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "id": self.task_id,
            "ok": self.ok,
            "attempts": [a.to_dict() for a in self.attempts],
        }
        if self.quarantined:
            record["quarantined"] = True
        if not self.ok:
            record["error"] = (self.error or repr(self.error_exc)) \
                .strip().splitlines()[-1][:200]
        return record

    def raise_error(self) -> None:
        """Re-raise this task's failure (original object when we have
        it, a :class:`TaskFailedError` around the remote traceback text
        otherwise).  No-op for successful tasks."""
        if self.error_exc is not None:
            raise self.error_exc
        if self.error is not None:
            raise TaskFailedError(
                f"task {self.task_id!r} failed on every attempt "
                f"({len(self.attempts)} recorded): {self.error}",
                task_id=self.task_id,
            )


@dataclass
class DispatchReport:
    """Manifest-ready summary of one ``drain()`` — the provenance of
    every cell in a run: which executor, how many attempts, what was
    retried, what was quarantined."""

    executor: str                 #: versioned identity, e.g. "fleet@1"
    workers: int
    results: List[TaskResult] = field(default_factory=list)
    faults: Optional[str] = None  #: active REPRO_DISPATCH_FAULTS spec

    def to_dict(self) -> Dict[str, Any]:
        attempts = sum(len(r.attempts) for r in self.results)
        record: Dict[str, Any] = {
            "executor": self.executor,
            "workers": self.workers,
            "tasks": len(self.results),
            "attempts": attempts,
            "retries": sum(r.retries for r in self.results),
            "timeouts": sum(
                1 for r in self.results for a in r.attempts
                if a.outcome == "timeout"
            ),
            "quarantined": sorted(
                r.task_id for r in self.results if r.quarantined
            ),
            "task_attempts": {
                r.task_id: [a.to_dict() for a in r.attempts]
                for r in self.results if r.retries or not r.ok
            },
        }
        if self.faults:
            record["faults"] = self.faults
        return record


def observe_attempt(task_id: str, attempt: Attempt) -> None:
    """Record one finished attempt in the metrics registry and the
    structured event stream.

    Every executor calls this at its attempt chokepoint, so the
    fleet-wide ``repro_dispatch_attempts_total{outcome=...}`` breakdown
    and the ``dispatch.attempt`` event narration exist no matter which
    backend ran the sweep.  Pure provenance: never raises, never feeds
    back into retry decisions.
    """
    telemetry.inc("repro_dispatch_attempts_total",
                  help="Task attempts by outcome.",
                  outcome=attempt.outcome)
    telemetry.emit("dispatch.attempt", task=task_id,
                   index=attempt.index, worker=attempt.worker,
                   outcome=attempt.outcome,
                   wall_s=round(attempt.wall_s, 6))


def quarantine_inline(tasks: List[Tuple[TaskSpec, TaskResult]],
                      policy: RetryPolicy) -> None:
    """Degrade exhausted tasks to the parent's inline path, fail-fast.

    Shared by the pool and fleet executors: each quarantined task runs
    once in the parent (under the cell deadline), and the first failure
    marks every later quarantined task ``skipped`` — re-running a poison
    task after the run is already failing would only repeat the damage
    (and double-record its telemetry).
    """
    from repro.dispatch.watchdog import cell_deadline, run_attempt

    failed = False
    for task, result in tasks:
        result.quarantined = True
        telemetry.inc("repro_dispatch_quarantined_total",
                      help="Tasks degraded to the parent inline path "
                           "after exhausting their attempt budget.")
        telemetry.emit("dispatch.quarantine", task=task.id,
                       attempts=len(result.attempts))
        if failed:
            skipped = Attempt(
                index=len(result.attempts) + 1, worker="inline",
                outcome="skipped",
                error="not attempted: an earlier quarantined task failed",
            )
            result.attempts.append(skipped)
            observe_attempt(task.id, skipped)
            result.error = result.error or \
                "skipped after an earlier quarantine failure"
            continue
        attempt, value, exc = run_attempt(
            task, index=len(result.attempts) + 1, worker="inline",
            timeout_s=task.effective_timeout(policy),
        )
        result.attempts.append(attempt)
        observe_attempt(task.id, attempt)
        if exc is None:
            result.value = value
            result.error = None
            result.error_exc = None
        else:
            result.error = attempt.error
            result.error_exc = exc
            failed = True


__all__ = [
    "Attempt",
    "CellDeadlockError",
    "CellTimeoutError",
    "DispatchError",
    "DispatchReport",
    "RetryPolicy",
    "TaskFailedError",
    "TaskResult",
    "TaskSpec",
    "observe_attempt",
    "quarantine_inline",
]
