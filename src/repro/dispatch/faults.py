"""Deterministic fault injection for the fleet executor.

``REPRO_DISPATCH_FAULTS`` describes a *seeded* fault plan applied inside
fleet workers, so the broker's whole failure surface — dead workers,
lost results, stalled heartbeats, garbage payloads — is exercisable in
CI with reproducible outcomes::

    REPRO_DISPATCH_FAULTS="kill:0.3,drop:0.2,corrupt:0.1;seed=7"

The spec is ``kind:probability`` pairs (comma-separated) plus an
optional ``;seed=N`` suffix.  Kinds:

==========  ==========================================================
``kill``    the worker SIGKILLs itself mid-attempt (no cleanup, no
            spool — exactly what an OOM-kill or node loss looks like)
``drop``    the attempt completes but the result is never sent; the
            worker asks for new work, which the broker treats as a
            surrendered lease and requeues immediately
``delay``   the worker stops heartbeating for this attempt; the broker's
            heartbeat timeout declares the lease dead and requeues it
``corrupt`` the result payload bytes are flipped before sending, so the
            broker's decode fails and the attempt is retried
==========  ==========================================================

Determinism: every decision is drawn from ``Random(crc32(seed, task_id,
attempt, kind))`` — a pure function of the plan seed and the attempt's
identity.  Re-running the same grid under the same spec injects the same
faults at the same places, which is what lets the dispatch metamorphic
(`inline == pool == fleet-with-faults`) be a CI gate rather than a
flake.  A task that draws a fault on attempt 1 draws *independently* on
attempt 2, so fault probabilities < 1 always leave an escape path; tasks
that keep losing the draw exhaust their attempt budget and quarantine to
the parent's inline path, which injects nothing.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional

#: Recognized fault kinds, in the order they are evaluated per attempt.
KINDS = ("kill", "drop", "delay", "corrupt")

ENV_FAULTS = "REPRO_DISPATCH_FAULTS"


class FaultSpecError(ValueError):
    """Malformed ``REPRO_DISPATCH_FAULTS`` value."""


@dataclass(frozen=True)
class FaultPlan:
    """A parsed, seeded fault plan (empty plan == no faults)."""

    rates: Dict[str, float] = field(default_factory=dict)
    seed: int = 0
    spec: str = ""

    @classmethod
    def parse(cls, spec: Optional[str]) -> "FaultPlan":
        """Parse a ``kind:prob,...;seed=N`` spec (``None``/"" == off)."""
        text = (spec or "").strip()
        if not text:
            return cls()
        seed = 0
        body = text
        if ";" in text:
            body, _, tail = text.partition(";")
            tail = tail.strip()
            if not tail.startswith("seed="):
                raise FaultSpecError(
                    f"bad fault spec {text!r}: expected ';seed=N', "
                    f"got {tail!r}"
                )
            try:
                seed = int(tail[len("seed="):])
            except ValueError:
                raise FaultSpecError(
                    f"bad fault spec {text!r}: seed is not an integer"
                ) from None
        rates: Dict[str, float] = {}
        for part in body.split(","):
            part = part.strip()
            if not part:
                continue
            kind, sep, prob = part.partition(":")
            kind = kind.strip()
            if kind not in KINDS:
                raise FaultSpecError(
                    f"bad fault spec {text!r}: unknown kind {kind!r} "
                    f"(known: {', '.join(KINDS)})"
                )
            try:
                rate = float(prob) if sep else 1.0
            except ValueError:
                raise FaultSpecError(
                    f"bad fault spec {text!r}: {prob!r} is not a "
                    f"probability"
                ) from None
            if not 0.0 <= rate <= 1.0:
                raise FaultSpecError(
                    f"bad fault spec {text!r}: probability {rate} "
                    f"outside [0, 1]"
                )
            rates[kind] = rate
        return cls(rates=rates, seed=seed, spec=text)

    def __bool__(self) -> bool:
        return bool(self.rates)

    def draw(self, task_id: str, attempt: int) -> Optional[str]:
        """The fault (if any) to inject for one attempt of one task.

        At most one fault fires per attempt: kinds are evaluated in
        ``KINDS`` order, each with its own independent deterministic
        stream, and the first winning draw is returned.
        """
        for kind in KINDS:
            rate = self.rates.get(kind, 0.0)
            if rate <= 0.0:
                continue
            token = f"{self.seed}:{task_id}:{attempt}:{kind}"
            stream = random.Random(zlib.crc32(token.encode()))
            if stream.random() < rate:
                return kind
        return None


def corrupt_bytes(payload: bytes) -> bytes:
    """Flip bits across a payload so any framing/pickle decode fails."""
    if not payload:
        return b"\xff"
    mangled = bytearray(payload)
    for pos in range(0, len(mangled), max(1, len(mangled) // 8)):
        mangled[pos] ^= 0xA5
    return bytes(mangled)


__all__ = ["ENV_FAULTS", "FaultPlan", "FaultSpecError", "KINDS",
           "corrupt_bytes"]
