"""Wall-clock deadlines for in-parent task attempts.

Out-of-process attempts are bounded by the broker/pool (which can expire
a lease or abandon a future and, for the fleet, SIGKILL the worker).
In-parent attempts — the inline executor and the quarantine fallback —
have no supervisor, so this module gives them one:

* :func:`cell_deadline` arms a real wall-clock timer (``SIGALRM``) around
  the attempt.  If it expires, the cell raises a structured
  :class:`~repro.dispatch.base.CellTimeoutError` naming the cell id —
  the run fails loudly with a diagnosis instead of hanging.
* The simulator's own no-forward-progress watchdog
  (:class:`~repro.cpu.pipeline.PipelineDeadlockError`) usually fires
  first for a wedged *simulation*; :func:`cell_deadline` wraps it into a
  :class:`~repro.dispatch.base.CellDeadlockError` so the error carries
  the dispatch-level cell id on top of the pipeline state.  The alarm
  covers everything the pipeline watchdog cannot see (generation,
  compilation, cache I/O).

``SIGALRM`` only works in the main thread of the main interpreter (and
not on Windows); elsewhere the context manager degrades to the
deadlock-wrapping behavior alone, which still bounds every simulation.
"""

from __future__ import annotations

import signal
import threading
import time
import traceback
from contextlib import contextmanager
from typing import Any, Iterator, Optional, Tuple

from repro.dispatch.base import (
    Attempt,
    CellDeadlockError,
    CellTimeoutError,
    TaskSpec,
)


def _alarm_usable() -> bool:
    return (hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread())


@contextmanager
def cell_deadline(task_id: str,
                  timeout_s: Optional[float]) -> Iterator[None]:
    """Bound one in-parent attempt: wall-clock alarm + watchdog wrap."""
    use_alarm = bool(timeout_s) and timeout_s > 0 and _alarm_usable()
    previous_handler: Any = None
    previous_timer: Tuple[float, float] = (0.0, 0.0)

    def _expired(signum, frame):
        raise CellTimeoutError(
            f"cell {task_id!r} exceeded its {timeout_s:.1f}s wall-clock "
            f"budget (REPRO_DISPATCH_TIMEOUT)",
            task_id=task_id,
        )

    if use_alarm:
        previous_handler = signal.signal(signal.SIGALRM, _expired)
        previous_timer = signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    except CellTimeoutError:
        raise
    except Exception as exc:
        # Import lazily: the dispatch layer must not drag the simulator
        # in just to define its error types.
        from repro.cpu.pipeline import PipelineDeadlockError
        if isinstance(exc, PipelineDeadlockError):
            raise CellDeadlockError(
                f"cell {task_id!r} made no forward progress: {exc}",
                task_id=task_id,
            ) from exc
        raise
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, *previous_timer)
            signal.signal(signal.SIGALRM, previous_handler)


def run_attempt(task: TaskSpec, index: int, worker: str,
                timeout_s: Optional[float],
                ) -> Tuple[Attempt, Any, Optional[BaseException]]:
    """One in-parent attempt of ``task`` under :func:`cell_deadline`.

    Returns ``(attempt_record, value, exception)`` — exactly one of
    ``value``/``exception`` is meaningful, per the attempt's outcome.
    """
    started = time.perf_counter()
    try:
        with cell_deadline(task.id, timeout_s):
            value = task.run_inline()
    except BaseException as exc:  # record KeyboardInterrupt too
        outcome = "timeout" if isinstance(exc, CellTimeoutError) \
            else "error"
        attempt = Attempt(
            index=index, worker=worker, outcome=outcome,
            wall_s=time.perf_counter() - started,
            error=traceback.format_exc(limit=20),
        )
        return attempt, None, exc
    attempt = Attempt(
        index=index, worker=worker, outcome="ok",
        wall_s=time.perf_counter() - started,
    )
    return attempt, value, None


__all__ = ["cell_deadline", "run_attempt"]
