"""The inline executor: serial, in-process, deterministic.

This is the reference backend every other executor must agree with
bit-for-bit: tasks run one at a time in the parent process, in
submission order, with no retries (an in-process failure is
deterministic — running it again would fail again) and fail-fast
semantics (tasks after the first failure are marked ``skipped``, exactly
like the pre-dispatch serial loop, so telemetry call counts stay
comparable between a serial run and a parallel run whose failures were
retried and discarded).

Each attempt still runs under the wall-clock cell deadline
(:mod:`repro.dispatch.watchdog`), so even the serial path cannot hang
past its budget: a wedged cell raises :class:`CellTimeoutError` (or the
pipeline watchdog's :class:`CellDeadlockError`) naming the cell.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dispatch.base import (
    Attempt,
    RetryPolicy,
    TaskResult,
    TaskSpec,
    observe_attempt,
)
from repro.dispatch.watchdog import run_attempt


class InlineExecutor:
    """Serial in-process execution; the determinism baseline."""

    name = "inline"

    def __init__(self, jobs: Optional[int] = None,
                 policy: Optional[RetryPolicy] = None) -> None:
        # ``jobs`` is accepted (the registry factory signature is shared
        # across executors) and ignored: inline is serial by definition.
        self.policy = policy if policy is not None \
            else RetryPolicy.from_env()
        self._tasks: List[TaskSpec] = []

    def submit(self, task: TaskSpec) -> None:
        self._tasks.append(task)

    def drain(self) -> List[TaskResult]:
        results: List[TaskResult] = []
        failed = False
        for task in self._tasks:
            result = TaskResult(task_id=task.id)
            if failed:
                skipped = Attempt(
                    index=1, worker="inline", outcome="skipped",
                    error="not attempted: an earlier task failed",
                )
                result.attempts.append(skipped)
                observe_attempt(task.id, skipped)
                result.error = "skipped after an earlier task failure"
                results.append(result)
                continue
            attempt, value, exc = run_attempt(
                task, index=1, worker="inline",
                timeout_s=task.effective_timeout(self.policy),
            )
            result.attempts.append(attempt)
            observe_attempt(task.id, attempt)
            if exc is None:
                result.value = value
            else:
                result.error = attempt.error
                result.error_exc = exc
                failed = True
            results.append(result)
        self._tasks = []
        return results

    def shutdown(self) -> None:
        self._tasks = []


__all__ = ["InlineExecutor"]
