"""The fleet executor: a TCP broker leasing cells to worker processes.

Topology: the parent process runs a :class:`Broker` (a loopback TCP
listener plus one handler thread per connection) and spawns ``jobs``
workers as ``python -m repro.dispatch.worker --connect host:port``.
Workers *pull*: each sends ``ready``, receives a task lease (the pickled
``(fn, args, kwargs)`` payload plus its attempt number), heartbeats
while executing, and reports a result envelope.  The broker trusts
nothing:

* **leases expire** — a lease whose heartbeats stop for
  ``4 x heartbeat_s``, or whose wall clock passes the per-task timeout,
  is requeued (with exponential backoff) and the wedged worker is
  SIGKILLed;
* **dead workers requeue instantly** — a connection dropping mid-lease
  records a ``worker-died`` attempt and requeues without waiting for
  any timeout; the monitor respawns a replacement (bounded by the total
  attempt budget, so a crash loop cannot spawn forever);
* **surrendered leases requeue instantly** — a worker asking for new
  work while still holding a lease (the ``drop`` fault, or a worker
  that lost its own state) gives the lease back as ``lost``;
* **corrupt results are retries, not crashes** — a result payload that
  fails to unpickle records a ``corrupt`` attempt and requeues;
* **poison tasks quarantine** — a task that exhausts
  ``policy.max_attempts`` degrades to the parent's inline path (see
  :func:`repro.dispatch.base.quarantine_inline`), so one bad cell ends
  as a structured error or an inline result, never a hung sweep;
* **the drain itself is bounded** — a belt-and-braces hard deadline
  (the summed attempt budget) expires every lease and quarantines
  whatever is left, so no failure mode of the broker machinery can hang
  past the timeout budget either.

Determinism: workers compute pure functions of their task payloads, so
*which* worker runs a cell, in what order, after how many faults, cannot
change a result — the 56-cell golden suite passes bit-identically under
any fault plan, which is exactly what makes fault injection safe to run
in CI.
"""

from __future__ import annotations

import heapq
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro import telemetry
from repro.dispatch import wire
from repro.dispatch.base import (
    Attempt,
    RetryPolicy,
    TaskResult,
    TaskSpec,
    observe_attempt,
    quarantine_inline,
)
from repro.dispatch.faults import ENV_FAULTS

#: How often the drain loop sweeps leases/processes, seconds.
_TICK_S = 0.05


@dataclass
class _Lease:
    task_id: str
    attempt_no: int
    worker: str
    started: float
    last_beat: float


@dataclass
class _WorkerProc:
    name: str
    proc: subprocess.Popen
    dead: bool = False


class Broker:
    """Task queue + lease table behind a loopback TCP listener."""

    def __init__(self, policy: RetryPolicy) -> None:
        self.policy = policy
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.settimeout(0.2)
        self.address: Tuple[str, int] = self._listener.getsockname()
        self._lock = threading.RLock()
        self._tasks: Dict[str, TaskSpec] = {}
        self._payloads: Dict[str, bytes] = {}
        self._order: List[str] = []
        self._results: Dict[str, Any] = {}
        self._records: Dict[str, TaskResult] = {}
        #: (ready_time, seq, task_id, attempt_no) min-heap
        self._queue: List[Tuple[float, int, str, int]] = []
        self._seq = 0
        self._leases: Dict[str, _Lease] = {}          # task_id -> lease
        self._worker_lease: Dict[str, str] = {}       # worker -> task_id
        self._worker_pids: Dict[str, int] = {}
        self._conns: List[socket.socket] = []
        self._exhausted: Set[str] = set()
        self._closed = False
        self._threads: List[threading.Thread] = []

    # -- setup ---------------------------------------------------------------

    def add_task(self, task: TaskSpec) -> None:
        with self._lock:
            self._tasks[task.id] = task
            self._order.append(task.id)
            self._records[task.id] = TaskResult(task_id=task.id)
            self._payloads[task.id] = wire.dumps(
                (task.fn, task.args, task.kwargs)
            )
            self._seq += 1
            heapq.heappush(self._queue, (0.0, self._seq, task.id, 1))

    def start(self) -> None:
        thread = threading.Thread(target=self._accept_loop,
                                  name="dispatch-broker-accept",
                                  daemon=True)
        thread.start()
        self._threads.append(thread)

    # -- status --------------------------------------------------------------

    def finished(self) -> bool:
        with self._lock:
            return (len(self._results) + len(self._exhausted)
                    >= len(self._tasks))

    def results(self) -> List[TaskResult]:
        """Task results in submission order (quarantine not yet run)."""
        with self._lock:
            out = []
            for task_id in self._order:
                record = self._records[task_id]
                if task_id in self._results:
                    record.value = self._results[task_id]
                out.append(record)
            return out

    def exhausted_tasks(self) -> List[Tuple[TaskSpec, TaskResult]]:
        with self._lock:
            return [(self._tasks[tid], self._records[tid])
                    for tid in self._order if tid in self._exhausted]

    # -- lease lifecycle -----------------------------------------------------

    def _record_attempt(self, task_id: str, attempt_no: int, worker: str,
                        outcome: str, wall: float,
                        error: Optional[str] = None) -> None:
        attempt = Attempt(
            index=attempt_no, worker=worker, outcome=outcome,
            wall_s=wall, error=error,
        )
        self._records[task_id].attempts.append(attempt)
        observe_attempt(task_id, attempt)

    def _requeue(self, task_id: str, attempt_no: int) -> None:
        """Queue the next attempt, or exhaust the task's budget."""
        if attempt_no >= self.policy.max_attempts:
            self._exhausted.add(task_id)
            record = self._records[task_id]
            record.error = (
                f"task {task_id!r} exhausted its "
                f"{self.policy.max_attempts}-attempt budget on the fleet"
            )
            return
        self._seq += 1
        ready = time.monotonic() + self.policy.backoff(attempt_no + 1)
        heapq.heappush(self._queue,
                       (ready, self._seq, task_id, attempt_no + 1))

    def _release_lease(self, task_id: str, outcome: str,
                       error: Optional[str] = None) -> None:
        """Drop an active lease and requeue its task (lock held)."""
        lease = self._leases.pop(task_id, None)
        if lease is None:
            return
        self._worker_lease.pop(lease.worker, None)
        self._record_attempt(
            task_id, lease.attempt_no, lease.worker, outcome,
            time.monotonic() - lease.started, error,
        )
        self._requeue(task_id, lease.attempt_no)

    def expire_stale(self) -> List[int]:
        """Expire overdue/stalled leases; returns worker pids to kill.

        Called from the drain loop every tick.  A lease past the task
        timeout is a ``timeout``; one whose heartbeats stopped is
        ``no-heartbeat``.  Either way the worker can no longer be
        trusted with the lease, so its pid is returned for SIGKILL (the
        disconnect handler will find the lease already gone and not
        double-record the attempt).
        """
        now = time.monotonic()
        pids: List[int] = []
        with self._lock:
            for task_id, lease in list(self._leases.items()):
                task = self._tasks[task_id]
                timeout = task.effective_timeout(self.policy)
                if now - lease.started > timeout:
                    outcome, error = "timeout", (
                        f"lease exceeded its {timeout:.1f}s budget on "
                        f"worker {lease.worker}"
                    )
                elif now - lease.last_beat \
                        > self.policy.heartbeat_timeout_s:
                    outcome, error = "no-heartbeat", (
                        f"no heartbeat from {lease.worker} for "
                        f"{now - lease.last_beat:.1f}s"
                    )
                else:
                    continue
                pid = self._worker_pids.get(lease.worker)
                if pid:
                    pids.append(pid)
                self._release_lease(task_id, outcome, error)
        return pids

    def fail_unfinished(self, reason: str) -> None:
        """Exhaust every task still outstanding (fleet lost all workers
        or hit the drain hard-deadline) so quarantine can finish the
        run."""
        with self._lock:
            for task_id in list(self._leases):
                self._release_lease(task_id, "worker-died", reason)
            for task_id in self._order:
                if (task_id in self._results
                        or task_id in self._exhausted):
                    continue
                self._exhausted.add(task_id)
                record = self._records[task_id]
                if record.error is None:
                    record.error = reason

    # -- connection handling -------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn.settimeout(None)
            with self._lock:
                self._conns.append(conn)
            thread = threading.Thread(
                target=self._handle, args=(conn,),
                name="dispatch-broker-conn", daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _handle(self, conn: socket.socket) -> None:
        worker = "?"
        try:
            hello = wire.recv_msg(conn)
            if hello.get("type") != "hello":
                return
            worker = hello["worker"]
            with self._lock:
                self._worker_pids[worker] = hello.get("pid", 0)
            while True:
                message = wire.recv_msg(conn)
                kind = message.get("type")
                if kind == "ready":
                    self._on_ready(conn, worker)
                elif kind == "heartbeat":
                    self._on_heartbeat(worker, message.get("task"))
                elif kind == "result":
                    self._on_result(worker, message)
                else:
                    return
        except (wire.WireError, OSError):
            pass
        finally:
            with self._lock:
                task_id = self._worker_lease.get(worker)
                if task_id is not None:
                    self._release_lease(
                        task_id, "worker-died",
                        f"worker {worker} disconnected mid-lease",
                    )
            try:
                conn.close()
            except OSError:
                pass

    def _on_ready(self, conn: socket.socket, worker: str) -> None:
        with self._lock:
            # A ready with an open lease means the worker finished (or
            # abandoned) a task without reporting: the result is lost.
            held = self._worker_lease.get(worker)
            if held is not None:
                self._release_lease(
                    held, "lost",
                    f"worker {worker} surrendered the lease without a "
                    f"result",
                )
            if self.finished():
                wire.send_msg(conn, {"type": "exit"})
                return
            now = time.monotonic()
            while self._queue:
                ready, _seq, task_id, attempt_no = self._queue[0]
                if task_id in self._results \
                        or task_id in self._exhausted \
                        or task_id in self._leases:
                    heapq.heappop(self._queue)
                    continue
                if ready > now:
                    break
                heapq.heappop(self._queue)
                self._leases[task_id] = _Lease(
                    task_id=task_id, attempt_no=attempt_no,
                    worker=worker, started=now, last_beat=now,
                )
                self._worker_lease[worker] = task_id
                wire.send_msg(conn, {
                    "type": "task",
                    "id": task_id,
                    "attempt": attempt_no,
                    "payload": self._payloads[task_id],
                    "heartbeat_s": self.policy.heartbeat_s,
                })
                telemetry.inc("repro_dispatch_leases_total",
                              help="Task leases granted to fleet "
                                   "workers.")
                telemetry.emit("dispatch.lease", task=task_id,
                               worker=worker, attempt=attempt_no)
                return
            wire.send_msg(conn, {"type": "idle", "sleep": _TICK_S})

    def _on_heartbeat(self, worker: str, task_id: Optional[str]) -> None:
        with self._lock:
            lease = self._leases.get(task_id or "")
            if lease is not None and lease.worker == worker:
                lease.last_beat = time.monotonic()
                telemetry.emit("dispatch.heartbeat", task=task_id,
                               worker=worker)

    def _on_result(self, worker: str, message: Dict[str, Any]) -> None:
        task_id = message.get("id", "")
        with self._lock:
            lease = self._leases.get(task_id)
            if lease is None or lease.worker != worker:
                # Late result for an expired/requeued lease: the attempt
                # was already recorded as lost/timeout — ignore it.
                return
            wall = time.monotonic() - lease.started
            del self._leases[task_id]
            self._worker_lease.pop(worker, None)
            if not message.get("ok"):
                self._record_attempt(
                    task_id, lease.attempt_no, worker, "error", wall,
                    message.get("error", "worker reported failure"),
                )
                self._requeue(task_id, lease.attempt_no)
                return
            try:
                value = wire.loads(message["payload"])
            except Exception as exc:
                self._record_attempt(
                    task_id, lease.attempt_no, worker, "corrupt", wall,
                    f"result payload failed to decode: {exc}",
                )
                self._requeue(task_id, lease.attempt_no)
                return
            self._record_attempt(task_id, lease.attempt_no, worker,
                                 "ok", wall)
            self._results[task_id] = value
            record = self._records[task_id]
            record.error = None
            record.error_exc = None

    # -- teardown ------------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass


class FleetExecutor:
    """Socket broker + N ``repro.dispatch.worker`` processes."""

    name = "fleet"

    def __init__(self, jobs: Optional[int] = None,
                 policy: Optional[RetryPolicy] = None) -> None:
        self.jobs = max(1, jobs if jobs is not None
                        else (os.cpu_count() or 1))
        self.policy = policy if policy is not None \
            else RetryPolicy.from_env()
        self._tasks: List[TaskSpec] = []
        self._procs: List[_WorkerProc] = []
        self.faults_spec = os.environ.get(ENV_FAULTS, "").strip() or None

    def submit(self, task: TaskSpec) -> None:
        self._tasks.append(task)

    # -- worker process management -------------------------------------------

    def _spawn(self, broker: Broker, index: int) -> Optional[_WorkerProc]:
        host, port = broker.address
        env = dict(os.environ)
        # Workers must resolve the same modules the parent can (the
        # task payloads pickle functions *by reference*), regardless of
        # the worker's cwd — ship the parent's import path.
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        name = f"fleet-{index}"
        try:
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.dispatch.worker",
                 "--connect", f"{host}:{port}", "--worker", name],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
        except Exception:
            return None
        worker = _WorkerProc(name=name, proc=proc)
        self._procs.append(worker)
        telemetry.inc("repro_dispatch_worker_spawns_total",
                      help="Fleet worker processes launched "
                           "(initial complement plus respawns).")
        telemetry.emit("dispatch.worker.spawn", worker=name,
                       worker_pid=proc.pid)
        return worker

    def _kill_pid(self, pid: int) -> None:
        try:
            os.kill(pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError, OSError):
            pass

    def _reap_and_respawn(self, broker: Broker,
                          spawn_budget: List[int]) -> int:
        """Collect dead workers; spawn replacements while budget lasts.
        Returns the number of live workers."""
        live = 0
        for worker in self._procs:
            if worker.dead:
                continue
            if worker.proc.poll() is None:
                live += 1
            else:
                worker.dead = True
                telemetry.inc("repro_dispatch_worker_deaths_total",
                              help="Fleet workers that exited before "
                                   "the drain finished.")
                telemetry.emit("dispatch.worker.death",
                               worker=worker.name,
                               returncode=worker.proc.returncode)
        while live < self.jobs and spawn_budget[0] > 0 \
                and not broker.finished():
            spawn_budget[0] -= 1
            spawned = self._spawn(broker, len(self._procs))
            if spawned is None:
                break
            live += 1
        telemetry.set_gauge("repro_dispatch_workers", live,
                            help="Live fleet workers (gauge; merges as "
                                 "max across processes).")
        return live

    # -- the drain loop ------------------------------------------------------

    def drain(self) -> List[TaskResult]:
        tasks = self._tasks
        self._tasks = []
        if not tasks:
            return []
        policy = self.policy
        broker = Broker(policy)
        for task in tasks:
            broker.add_task(task)
        broker.start()

        # Every task can burn its whole attempt budget plus backoff and
        # still finish; past this the drain machinery itself is declared
        # wedged and the run completes through quarantine.
        per_task = max(t.effective_timeout(policy) for t in tasks)
        hard_deadline = time.monotonic() + 30.0 + (
            policy.max_attempts
            * (per_task + policy.backoff_cap_s
               + policy.heartbeat_timeout_s)
        )
        # A worker that dies consumes an attempt before it needs a
        # replacement, so the respawn budget is bounded by the total
        # attempt budget — a crash-looping fleet converges to
        # quarantine instead of forking forever.
        spawn_budget = [self.jobs + len(tasks) * policy.max_attempts]

        try:
            for index in range(min(self.jobs, len(tasks))):
                spawn_budget[0] -= 1
                self._spawn(broker, index)
            while not broker.finished():
                if time.monotonic() > hard_deadline:
                    broker.fail_unfinished(
                        "fleet drain hit its hard deadline; remaining "
                        "tasks quarantined to the inline path"
                    )
                    break
                for pid in broker.expire_stale():
                    self._kill_pid(pid)
                live = self._reap_and_respawn(broker, spawn_budget)
                if live == 0 and not broker.finished():
                    broker.fail_unfinished(
                        "no fleet workers left (spawn budget "
                        "exhausted); remaining tasks quarantined to "
                        "the inline path"
                    )
                    break
                time.sleep(_TICK_S)
        finally:
            broker.close()
            self._terminate_workers()

        results = broker.results()
        quarantine_inline(broker.exhausted_tasks(), policy)
        return results

    def _terminate_workers(self) -> None:
        for worker in self._procs:
            if worker.dead or worker.proc.poll() is not None:
                continue
            worker.proc.terminate()
        deadline = time.monotonic() + 2.0
        for worker in self._procs:
            if worker.dead:
                continue
            remaining = deadline - time.monotonic()
            try:
                worker.proc.wait(timeout=max(0.1, remaining))
            except subprocess.TimeoutExpired:
                self._kill_pid(worker.proc.pid)
                try:
                    worker.proc.wait(timeout=1.0)
                except subprocess.TimeoutExpired:
                    pass
            worker.dead = True

    def shutdown(self) -> None:
        self._terminate_workers()
        self._tasks = []


__all__ = ["Broker", "FleetExecutor"]
