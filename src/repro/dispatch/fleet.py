"""The fleet executor: a TCP broker leasing cells to worker processes.

Topology: the parent process runs a :class:`Broker` (a loopback TCP
listener plus one handler thread per connection) and spawns ``jobs``
workers as ``python -m repro.dispatch.worker --connect host:port``.
Workers *pull*: each sends ``ready``, receives a task lease (the pickled
``(fn, args, kwargs)`` payload plus its attempt number), heartbeats
while executing, and reports a result envelope.  The broker trusts
nothing:

* **leases expire** — a lease whose heartbeats stop for
  ``4 x heartbeat_s``, or whose wall clock passes the per-task timeout,
  is requeued (with exponential backoff) and the wedged worker is
  SIGKILLed;
* **dead workers requeue instantly** — a connection dropping mid-lease
  records a ``worker-died`` attempt and requeues without waiting for
  any timeout; the monitor respawns a replacement (bounded by the total
  attempt budget, so a crash loop cannot spawn forever);
* **surrendered leases requeue instantly** — a worker asking for new
  work while still holding a lease (the ``drop`` fault, or a worker
  that lost its own state) gives the lease back as ``lost``;
* **corrupt results are retries, not crashes** — a result payload that
  fails to unpickle records a ``corrupt`` attempt and requeues;
* **poison tasks quarantine** — a task that exhausts
  ``policy.max_attempts`` degrades to the parent's inline path (see
  :func:`repro.dispatch.base.quarantine_inline`), so one bad cell ends
  as a structured error or an inline result, never a hung sweep;
* **the drain itself is bounded** — a belt-and-braces hard deadline
  (the summed attempt budget) expires every lease and quarantines
  whatever is left, so no failure mode of the broker machinery can hang
  past the timeout budget either.

Determinism: workers compute pure functions of their task payloads, so
*which* worker runs a cell, in what order, after how many faults, cannot
change a result — the 56-cell golden suite passes bit-identically under
any fault plan, which is exactly what makes fault injection safe to run
in CI.
"""

from __future__ import annotations

import heapq
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro import telemetry
from repro.dispatch import wire
from repro.dispatch.base import (
    Attempt,
    RetryPolicy,
    TaskResult,
    TaskSpec,
    observe_attempt,
    quarantine_inline,
)
from repro.dispatch.faults import ENV_FAULTS

#: How often the drain loop sweeps leases/processes, seconds.
_TICK_S = 0.05

#: Broker bind interface, ``HOST[:PORT]`` (default loopback, ephemeral
#: port).  Bind a real interface to accept multi-host TCP workers.
ENV_BIND = "REPRO_FLEET_BIND"

#: Shared-secret auth token for the worker hello handshake.  Empty (the
#: default) means no auth — fine on loopback, not on a real interface.
ENV_TOKEN = "REPRO_FLEET_TOKEN"


def parse_bind(value: Optional[str]) -> Tuple[str, int]:
    """Parse a ``HOST[:PORT]`` bind spec (default loopback:ephemeral)."""
    value = (value or "").strip()
    if not value:
        return "127.0.0.1", 0
    host, _, port = value.rpartition(":")
    if not host:
        return value, 0
    if not port.isdigit():
        raise ValueError(f"expected HOST[:PORT] bind spec, got {value!r}")
    return host, int(port)


@dataclass
class _Lease:
    task_id: str
    attempt_no: int
    worker: str
    started: float
    last_beat: float


@dataclass
class _WorkerProc:
    name: str
    proc: subprocess.Popen
    dead: bool = False


class Broker:
    """Task queue + lease table behind a TCP listener.

    The listener binds loopback/ephemeral by default and a configurable
    interface (``host``/``port`` or ``REPRO_FLEET_BIND``) for real
    multi-host fleets.  Workers the owner spawns itself are announced
    via :meth:`expect_worker`; a ``hello`` from any *other* name is an
    **externally-joined** TCP worker (``python -m repro.dispatch.worker
    --connect host:port`` from another machine), tracked separately so
    elastic respawn can count it against capacity without ever holding
    a process handle for it.  When a ``token`` is set (or
    ``REPRO_FLEET_TOKEN``), every hello must carry it or the connection
    is answered with ``denied`` and dropped.

    Two lifetimes:

    * **one-shot** (default) — built for a single ``drain()``: once every
      submitted task is done, idle workers are told to exit.  This is
      the :class:`FleetExecutor` path.
    * **persistent** (``persistent=True``) — a multi-request lifetime
      for :class:`PersistentFleet` / ``repro.serve``: an empty queue
      means *idle*, not *done*; tasks may be added at any time;
      completed tasks are handed out (and their tables reclaimed)
      through :meth:`take_completed`; and a graceful
      :meth:`begin_drain` finishes in-flight leases before workers are
      released.
    """

    def __init__(self, policy: RetryPolicy,
                 persistent: bool = False,
                 host: Optional[str] = None,
                 port: Optional[int] = None,
                 token: Optional[str] = None) -> None:
        self.policy = policy
        self.persistent = persistent
        if host is None and port is None:
            host, port = parse_bind(os.environ.get(ENV_BIND))
        self.token = token if token is not None \
            else os.environ.get(ENV_TOKEN, "")
        self._listener = socket.create_server(
            (host or "127.0.0.1", port or 0))
        self._listener.settimeout(0.2)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._lock = threading.RLock()
        self._tasks: Dict[str, TaskSpec] = {}
        self._payloads: Dict[str, bytes] = {}
        self._order: List[str] = []
        self._results: Dict[str, Any] = {}
        self._records: Dict[str, TaskResult] = {}
        #: (ready_time, seq, task_id, attempt_no) min-heap
        self._queue: List[Tuple[float, int, str, int]] = []
        self._seq = 0
        self._leases: Dict[str, _Lease] = {}          # task_id -> lease
        self._worker_lease: Dict[str, str] = {}       # worker -> task_id
        self._worker_pids: Dict[str, int] = {}
        #: worker names the owner will spawn itself (pids killable)
        self._expected: Set[str] = set()
        #: externally-joined TCP workers currently connected
        self._external: Set[str] = set()
        self._conns: List[socket.socket] = []
        self._exhausted: Set[str] = set()
        #: task ids in completion order, not yet taken (persistent mode)
        self._completed: List[str] = []
        self._draining = False
        self._closed = False
        self._threads: List[threading.Thread] = []

    # -- setup ---------------------------------------------------------------

    def add_task(self, task: TaskSpec) -> None:
        with self._lock:
            self._tasks[task.id] = task
            self._order.append(task.id)
            self._records[task.id] = TaskResult(task_id=task.id)
            self._payloads[task.id] = wire.dumps(
                (task.fn, task.args, task.kwargs)
            )
            self._seq += 1
            heapq.heappush(self._queue, (0.0, self._seq, task.id, 1))

    def expect_worker(self, name: str) -> None:
        """Announce a worker the owner spawns itself; any other hello
        name counts as an external TCP join."""
        with self._lock:
            self._expected.add(name)

    def external_workers(self) -> int:
        """Externally-joined workers currently connected."""
        with self._lock:
            return len(self._external)

    def start(self) -> None:
        thread = threading.Thread(target=self._accept_loop,
                                  name="dispatch-broker-accept",
                                  daemon=True)
        thread.start()
        self._threads.append(thread)

    # -- status --------------------------------------------------------------

    def finished(self) -> bool:
        with self._lock:
            return (len(self._results) + len(self._exhausted)
                    >= len(self._tasks))

    def results(self) -> List[TaskResult]:
        """Task results in submission order (quarantine not yet run)."""
        with self._lock:
            out = []
            for task_id in self._order:
                record = self._records[task_id]
                if task_id in self._results:
                    record.value = self._results[task_id]
                out.append(record)
            return out

    def exhausted_tasks(self) -> List[Tuple[TaskSpec, TaskResult]]:
        with self._lock:
            return [(self._tasks[tid], self._records[tid])
                    for tid in self._order if tid in self._exhausted]

    def idle(self) -> bool:
        """No queued work, no active leases, nothing waiting to be
        taken — the moment a persistent broker can be drained for free."""
        with self._lock:
            return (not self._leases and not self._completed
                    and not any(tid in self._tasks
                                for _, _, tid, _ in self._queue))

    def take_completed(self) -> List[Tuple[TaskSpec, TaskResult, bool]]:
        """Hand out newly finished tasks in completion order and reclaim
        their tables (persistent mode's result channel).

        Returns ``(spec, result, exhausted)`` triples; ``exhausted``
        tasks burned their whole attempt budget and still need the
        caller's quarantine decision.  Each task is returned exactly
        once; afterwards the broker forgets it entirely, which is what
        keeps a long-running fleet's memory bounded.
        """
        with self._lock:
            out: List[Tuple[TaskSpec, TaskResult, bool]] = []
            for task_id in self._completed:
                record = self._records[task_id]
                if task_id in self._results:
                    record.value = self._results[task_id]
                out.append((self._tasks[task_id], record,
                            task_id in self._exhausted))
                self._tasks.pop(task_id, None)
                self._payloads.pop(task_id, None)
                self._results.pop(task_id, None)
                self._records.pop(task_id, None)
                self._exhausted.discard(task_id)
                try:
                    self._order.remove(task_id)
                except ValueError:
                    pass
            self._completed.clear()
            return out

    def begin_drain(self) -> None:
        """Graceful shutdown, step one: in-flight leases finish, queued
        tasks still get leased, but a worker asking for work when none
        is left is released with ``exit`` instead of parked on ``idle``."""
        with self._lock:
            self._draining = True

    # -- lease lifecycle -----------------------------------------------------

    def _record_attempt(self, task_id: str, attempt_no: int, worker: str,
                        outcome: str, wall: float,
                        error: Optional[str] = None) -> None:
        attempt = Attempt(
            index=attempt_no, worker=worker, outcome=outcome,
            wall_s=wall, error=error,
        )
        self._records[task_id].attempts.append(attempt)
        observe_attempt(task_id, attempt)

    def _requeue(self, task_id: str, attempt_no: int) -> None:
        """Queue the next attempt, or exhaust the task's budget."""
        if attempt_no >= self.policy.max_attempts:
            self._exhausted.add(task_id)
            self._completed.append(task_id)
            record = self._records[task_id]
            record.error = (
                f"task {task_id!r} exhausted its "
                f"{self.policy.max_attempts}-attempt budget on the fleet"
            )
            return
        self._seq += 1
        ready = time.monotonic() + self.policy.backoff(attempt_no + 1)
        heapq.heappush(self._queue,
                       (ready, self._seq, task_id, attempt_no + 1))

    def _release_lease(self, task_id: str, outcome: str,
                       error: Optional[str] = None) -> None:
        """Drop an active lease and requeue its task (lock held)."""
        lease = self._leases.pop(task_id, None)
        if lease is None:
            return
        self._worker_lease.pop(lease.worker, None)
        self._record_attempt(
            task_id, lease.attempt_no, lease.worker, outcome,
            time.monotonic() - lease.started, error,
        )
        self._requeue(task_id, lease.attempt_no)

    def expire_stale(self) -> List[int]:
        """Expire overdue/stalled leases; returns worker pids to kill.

        Called from the drain loop every tick.  A lease past the task
        timeout is a ``timeout``; one whose heartbeats stopped is
        ``no-heartbeat``.  Either way the worker can no longer be
        trusted with the lease, so its pid is returned for SIGKILL (the
        disconnect handler will find the lease already gone and not
        double-record the attempt).
        """
        now = time.monotonic()
        pids: List[int] = []
        with self._lock:
            for task_id, lease in list(self._leases.items()):
                task = self._tasks[task_id]
                timeout = task.effective_timeout(self.policy)
                if now - lease.started > timeout:
                    outcome, error = "timeout", (
                        f"lease exceeded its {timeout:.1f}s budget on "
                        f"worker {lease.worker}"
                    )
                elif now - lease.last_beat \
                        > self.policy.heartbeat_timeout_s:
                    outcome, error = "no-heartbeat", (
                        f"no heartbeat from {lease.worker} for "
                        f"{now - lease.last_beat:.1f}s"
                    )
                else:
                    continue
                # External workers live on other hosts: their reported
                # pid means nothing here, so never SIGKILL it locally —
                # expiring the lease is the whole remedy.
                pid = self._worker_pids.get(lease.worker)
                if pid and lease.worker not in self._external:
                    pids.append(pid)
                self._release_lease(task_id, outcome, error)
        return pids

    def fail_unfinished(self, reason: str) -> None:
        """Exhaust every task still outstanding (fleet lost all workers
        or hit the drain hard-deadline) so quarantine can finish the
        run."""
        with self._lock:
            for task_id in list(self._leases):
                self._release_lease(task_id, "worker-died", reason)
            for task_id in self._order:
                if (task_id in self._results
                        or task_id in self._exhausted):
                    continue
                self._exhausted.add(task_id)
                self._completed.append(task_id)
                record = self._records[task_id]
                if record.error is None:
                    record.error = reason

    # -- connection handling -------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn.settimeout(None)
            with self._lock:
                self._conns.append(conn)
            thread = threading.Thread(
                target=self._handle, args=(conn,),
                name="dispatch-broker-conn", daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _handle(self, conn: socket.socket) -> None:
        worker = "?"
        try:
            hello = wire.recv_msg(conn)
            if hello.get("type") != "hello":
                return
            if (hello.get("token") or "") != self.token:
                telemetry.inc("repro_fleet_denied_total",
                              help="Worker hellos rejected by the auth "
                                   "token handshake.")
                telemetry.emit("fleet.denied",
                               worker=str(hello.get("worker", "?")))
                wire.send_msg(conn, {
                    "type": "denied",
                    "error": "fleet auth token mismatch",
                })
                return
            worker = hello["worker"]
            with self._lock:
                self._worker_pids[worker] = hello.get("pid", 0)
                external = worker not in self._expected
                if external:
                    self._external.add(worker)
            if external:
                telemetry.inc("repro_fleet_joins_total",
                              help="Externally-joined TCP workers "
                                   "accepted by the broker.")
                telemetry.emit("fleet.join", worker=worker,
                               worker_pid=hello.get("pid", 0))
            while True:
                message = wire.recv_msg(conn)
                kind = message.get("type")
                if kind == "ready":
                    self._on_ready(conn, worker)
                elif kind == "heartbeat":
                    self._on_heartbeat(worker, message.get("task"))
                elif kind == "result":
                    self._on_result(worker, message)
                else:
                    return
        except (wire.WireError, OSError):
            pass
        finally:
            with self._lock:
                self._external.discard(worker)
                task_id = self._worker_lease.get(worker)
                if task_id is not None:
                    self._release_lease(
                        task_id, "worker-died",
                        f"worker {worker} disconnected mid-lease",
                    )
            try:
                conn.close()
            except OSError:
                pass

    def _on_ready(self, conn: socket.socket, worker: str) -> None:
        with self._lock:
            # A ready with an open lease means the worker finished (or
            # abandoned) a task without reporting: the result is lost.
            held = self._worker_lease.get(worker)
            if held is not None:
                self._release_lease(
                    held, "lost",
                    f"worker {worker} surrendered the lease without a "
                    f"result",
                )
            if not self.persistent and self.finished():
                wire.send_msg(conn, {"type": "exit"})
                return
            now = time.monotonic()
            while self._queue:
                ready, _seq, task_id, attempt_no = self._queue[0]
                if task_id not in self._tasks \
                        or task_id in self._results \
                        or task_id in self._exhausted \
                        or task_id in self._leases:
                    heapq.heappop(self._queue)
                    continue
                if ready > now:
                    break
                heapq.heappop(self._queue)
                self._leases[task_id] = _Lease(
                    task_id=task_id, attempt_no=attempt_no,
                    worker=worker, started=now, last_beat=now,
                )
                self._worker_lease[worker] = task_id
                wire.send_msg(conn, {
                    "type": "task",
                    "id": task_id,
                    "attempt": attempt_no,
                    "payload": self._payloads[task_id],
                    "heartbeat_s": self.policy.heartbeat_s,
                })
                telemetry.inc("repro_dispatch_leases_total",
                              help="Task leases granted to fleet "
                                   "workers.")
                telemetry.emit("dispatch.lease", task=task_id,
                               worker=worker, attempt=attempt_no)
                return
            if self._draining and not self._queue and not self._leases:
                # Graceful drain: nothing left this worker could ever be
                # handed (active leases may still requeue, so keep spare
                # workers parked until the last lease resolves).
                wire.send_msg(conn, {"type": "exit"})
                return
            wire.send_msg(conn, {"type": "idle", "sleep": _TICK_S})

    def _on_heartbeat(self, worker: str, task_id: Optional[str]) -> None:
        with self._lock:
            lease = self._leases.get(task_id or "")
            if lease is not None and lease.worker == worker:
                lease.last_beat = time.monotonic()
                telemetry.emit("dispatch.heartbeat", task=task_id,
                               worker=worker)

    def _on_result(self, worker: str, message: Dict[str, Any]) -> None:
        task_id = message.get("id", "")
        with self._lock:
            lease = self._leases.get(task_id)
            if lease is None or lease.worker != worker:
                # Late result for an expired/requeued lease: the attempt
                # was already recorded as lost/timeout — ignore it.
                return
            wall = time.monotonic() - lease.started
            del self._leases[task_id]
            self._worker_lease.pop(worker, None)
            if not message.get("ok"):
                self._record_attempt(
                    task_id, lease.attempt_no, worker, "error", wall,
                    message.get("error", "worker reported failure"),
                )
                self._requeue(task_id, lease.attempt_no)
                return
            try:
                value = wire.loads(message["payload"])
            except Exception as exc:
                self._record_attempt(
                    task_id, lease.attempt_no, worker, "corrupt", wall,
                    f"result payload failed to decode: {exc}",
                )
                self._requeue(task_id, lease.attempt_no)
                return
            self._record_attempt(task_id, lease.attempt_no, worker,
                                 "ok", wall)
            self._results[task_id] = value
            self._completed.append(task_id)
            record = self._records[task_id]
            record.error = None
            record.error_exc = None

    # -- teardown ------------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass


def _spawn_worker(address: Tuple[str, int], name: str,
                  token: str = "") -> Optional[subprocess.Popen]:
    """Launch one ``repro.dispatch.worker`` against ``address``.

    Workers must resolve the same modules the parent can (the task
    payloads pickle functions *by reference*), regardless of the
    worker's cwd — so the parent's import path ships in the
    environment, and so does the broker's auth token.
    """
    host, port = address
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    if token:
        env[ENV_TOKEN] = token
    try:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.dispatch.worker",
             "--connect", f"{host}:{port}", "--worker", name],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
    except Exception:
        return None
    telemetry.inc("repro_dispatch_worker_spawns_total",
                  help="Fleet worker processes launched "
                       "(initial complement plus respawns).")
    telemetry.emit("dispatch.worker.spawn", worker=name,
                   worker_pid=proc.pid)
    return proc


def _kill_pid(pid: int) -> None:
    try:
        os.kill(pid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError, OSError):
        pass


class FleetExecutor:
    """Socket broker + N ``repro.dispatch.worker`` processes."""

    name = "fleet"

    def __init__(self, jobs: Optional[int] = None,
                 policy: Optional[RetryPolicy] = None) -> None:
        self.jobs = max(1, jobs if jobs is not None
                        else (os.cpu_count() or 1))
        self.policy = policy if policy is not None \
            else RetryPolicy.from_env()
        self._tasks: List[TaskSpec] = []
        self._procs: List[_WorkerProc] = []
        self.faults_spec = os.environ.get(ENV_FAULTS, "").strip() or None

    def submit(self, task: TaskSpec) -> None:
        self._tasks.append(task)

    # -- worker process management -------------------------------------------

    def _spawn(self, broker: Broker, index: int) -> Optional[_WorkerProc]:
        name = f"fleet-{index}"
        broker.expect_worker(name)
        proc = _spawn_worker(broker.address, name, broker.token)
        if proc is None:
            return None
        worker = _WorkerProc(name=name, proc=proc)
        self._procs.append(worker)
        return worker

    def _kill_pid(self, pid: int) -> None:
        _kill_pid(pid)

    def _reap_and_respawn(self, broker: Broker,
                          spawn_budget: List[int]) -> int:
        """Collect dead workers; spawn replacements while budget lasts.

        Externally-joined TCP workers count toward the ``jobs`` target
        (an elastic fleet scales local spawning *down* when remote
        capacity joins) but never against the spawn budget — the broker
        holds no process handle for them.  Returns local live +
        external workers.
        """
        external = broker.external_workers()
        live = 0
        for worker in self._procs:
            if worker.dead:
                continue
            if worker.proc.poll() is None:
                live += 1
            else:
                worker.dead = True
                telemetry.inc("repro_dispatch_worker_deaths_total",
                              help="Fleet workers that exited before "
                                   "the drain finished.")
                telemetry.emit("dispatch.worker.death",
                               worker=worker.name,
                               returncode=worker.proc.returncode)
        while live + external < self.jobs and spawn_budget[0] > 0 \
                and not broker.finished():
            spawn_budget[0] -= 1
            spawned = self._spawn(broker, len(self._procs))
            if spawned is None:
                break
            live += 1
        telemetry.set_gauge("repro_dispatch_workers", live,
                            help="Live fleet workers (gauge; merges as "
                                 "max across processes).")
        telemetry.set_gauge("repro_dispatch_external_workers", external,
                            help="Externally-joined TCP workers "
                                 "currently connected (gauge).")
        return live + external

    # -- the drain loop ------------------------------------------------------

    def drain(self) -> List[TaskResult]:
        tasks = self._tasks
        self._tasks = []
        if not tasks:
            return []
        policy = self.policy
        broker = Broker(policy)
        for task in tasks:
            broker.add_task(task)
        broker.start()

        # Every task can burn its whole attempt budget plus backoff and
        # still finish; past this the drain machinery itself is declared
        # wedged and the run completes through quarantine.
        per_task = max(t.effective_timeout(policy) for t in tasks)
        hard_deadline = time.monotonic() + 30.0 + (
            policy.max_attempts
            * (per_task + policy.backoff_cap_s
               + policy.heartbeat_timeout_s)
        )
        # A worker that dies consumes an attempt before it needs a
        # replacement, so the respawn budget is bounded by the total
        # attempt budget — a crash-looping fleet converges to
        # quarantine instead of forking forever.
        spawn_budget = [self.jobs + len(tasks) * policy.max_attempts]

        try:
            for index in range(min(self.jobs, len(tasks))):
                spawn_budget[0] -= 1
                self._spawn(broker, index)
            while not broker.finished():
                if time.monotonic() > hard_deadline:
                    broker.fail_unfinished(
                        "fleet drain hit its hard deadline; remaining "
                        "tasks quarantined to the inline path"
                    )
                    break
                for pid in broker.expire_stale():
                    self._kill_pid(pid)
                live = self._reap_and_respawn(broker, spawn_budget)
                if live == 0 and not broker.finished():
                    broker.fail_unfinished(
                        "no fleet workers left (spawn budget "
                        "exhausted); remaining tasks quarantined to "
                        "the inline path"
                    )
                    break
                time.sleep(_TICK_S)
        finally:
            broker.close()
            self._terminate_workers()

        results = broker.results()
        quarantine_inline(broker.exhausted_tasks(), policy)
        return results

    def _terminate_workers(self) -> None:
        for worker in self._procs:
            if worker.dead or worker.proc.poll() is not None:
                continue
            worker.proc.terminate()
        deadline = time.monotonic() + 2.0
        for worker in self._procs:
            if worker.dead:
                continue
            remaining = deadline - time.monotonic()
            try:
                worker.proc.wait(timeout=max(0.1, remaining))
            except subprocess.TimeoutExpired:
                self._kill_pid(worker.proc.pid)
                try:
                    worker.proc.wait(timeout=1.0)
                except subprocess.TimeoutExpired:
                    pass
            worker.dead = True

    def shutdown(self) -> None:
        self._terminate_workers()
        self._tasks = []


class PersistentFleet:
    """A warm, multi-request worker fleet for ``repro.serve``.

    Where :class:`FleetExecutor` builds a broker, drains one batch, and
    tears everything down, this keeps one persistent :class:`Broker` and
    a stable complement of ``jobs`` workers alive across arbitrarily
    many requests — so the second request never pays process spawn or
    import cost again.  The interface is a task pump, not a batch
    barrier:

    * :meth:`submit` enqueues a task at any time;
    * :meth:`poll` returns whatever finished since the last poll, in
      completion order (exhausted tasks are quarantined to the caller's
      inline path first, same contract as the executors);
    * a background monitor thread expires stale leases, SIGKILLs wedged
      workers, reaps the dead, and respawns replacements for as long as
      the fleet is up (a persistent service heals; it does not budget);
    * :meth:`shutdown` drains gracefully — in-flight leases finish,
      idle workers are released with ``exit`` — and hard-kills whatever
      outlives the grace period.

    Thread-safe: submit/poll may be called from any thread (the serve
    front calls them from the asyncio event loop).

    Multi-host: pass ``bind="HOST[:PORT]"`` (or set
    ``REPRO_FLEET_BIND``) to put the broker on a real interface and let
    ``python -m repro.dispatch.worker --connect host:port`` join from
    other machines; ``jobs=0`` runs an **external-only** fleet — no
    local complement at all, capacity comes entirely from TCP joins.
    """

    def __init__(self, jobs: Optional[int] = None,
                 policy: Optional[RetryPolicy] = None,
                 bind: Optional[str] = None,
                 token: Optional[str] = None) -> None:
        self.jobs = max(0, jobs) if jobs is not None \
            else max(1, os.cpu_count() or 1)
        self.policy = policy if policy is not None \
            else RetryPolicy.from_env()
        host, port = parse_bind(bind) if bind is not None \
            else (None, None)
        self.broker = Broker(self.policy, persistent=True,
                             host=host, port=port, token=token)
        self.broker.start()
        self._procs: List[_WorkerProc] = []
        self._procs_lock = threading.Lock()
        self._spawned = 0
        self._closed = False
        self._draining = False
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="serve-fleet-monitor",
            daemon=True,
        )
        self._monitor.start()

    # -- task pump -----------------------------------------------------------

    def submit(self, task: TaskSpec) -> None:
        if self._closed or self._draining:
            raise RuntimeError("fleet is shutting down")
        self.broker.add_task(task)

    def poll(self) -> List[TaskResult]:
        """Newly completed tasks since the last poll, completion order.

        Tasks that exhausted their fleet attempt budget degrade to one
        inline attempt in the calling process (the executors'
        poison-task quarantine), so every submitted task eventually
        comes back exactly once — as a value or a structured error,
        never silence.
        """
        done = self.broker.take_completed()
        exhausted = [(task, record) for task, record, dead in done
                     if dead]
        if exhausted:
            quarantine_inline(exhausted, self.policy)
        return [record for _task, record, _dead in done]

    def workers_alive(self) -> int:
        with self._procs_lock:
            return sum(1 for w in self._procs
                       if not w.dead and w.proc.poll() is None)

    def workers_spawned(self) -> int:
        return self._spawned

    def workers_external(self) -> int:
        """Externally-joined TCP workers currently connected."""
        return self.broker.external_workers()

    # -- monitor -------------------------------------------------------------

    def _spawn(self) -> None:
        name = f"serve-fleet-{self._spawned}"
        self.broker.expect_worker(name)
        proc = _spawn_worker(self.broker.address, name,
                             self.broker.token)
        if proc is None:
            return
        self._spawned += 1
        with self._procs_lock:
            self._procs.append(_WorkerProc(name=name, proc=proc))

    def _monitor_loop(self) -> None:
        for _ in range(self.jobs):
            self._spawn()
        while not self._closed:
            for pid in self.broker.expire_stale():
                _kill_pid(pid)
            live = 0
            with self._procs_lock:
                procs = list(self._procs)
            for worker in procs:
                if worker.dead:
                    continue
                if worker.proc.poll() is None:
                    live += 1
                    continue
                worker.dead = True
                telemetry.inc("repro_dispatch_worker_deaths_total",
                              help="Fleet workers that exited before "
                                   "the drain finished.")
                telemetry.emit("dispatch.worker.death",
                               worker=worker.name,
                               returncode=worker.proc.returncode)
            if not self._draining:
                while live < self.jobs:
                    self._spawn()
                    live += 1
            telemetry.set_gauge("repro_dispatch_workers", live,
                                help="Live fleet workers (gauge; merges "
                                     "as max across processes).")
            telemetry.set_gauge("repro_dispatch_external_workers",
                                self.broker.external_workers(),
                                help="Externally-joined TCP workers "
                                     "currently connected (gauge).")
            time.sleep(_TICK_S)

    # -- teardown ------------------------------------------------------------

    def shutdown(self, grace_s: float = 10.0) -> None:
        """Graceful drain, then hard stop.  Idempotent."""
        if self._closed:
            return
        self._draining = True
        self.broker.begin_drain()
        deadline = time.monotonic() + max(0.0, grace_s)
        while time.monotonic() < deadline:
            if self.broker.idle() and self.workers_alive() == 0:
                break
            time.sleep(_TICK_S)
        self._closed = True
        self._monitor.join(timeout=2.0)
        self.broker.close()
        with self._procs_lock:
            procs = list(self._procs)
        for worker in procs:
            if worker.dead or worker.proc.poll() is not None:
                worker.dead = True
                continue
            worker.proc.terminate()
        for worker in procs:
            if worker.dead:
                continue
            try:
                worker.proc.wait(timeout=1.0)
            except subprocess.TimeoutExpired:
                _kill_pid(worker.proc.pid)
                try:
                    worker.proc.wait(timeout=1.0)
                except subprocess.TimeoutExpired:
                    pass
            worker.dead = True


__all__ = ["Broker", "ENV_BIND", "ENV_TOKEN", "FleetExecutor",
           "PersistentFleet", "parse_bind"]
