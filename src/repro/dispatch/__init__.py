"""Fault-tolerant pluggable execution backends for the sweep engine.

"How cells get executed" is a registered component, exactly like
prefetchers and branch predictors: the :data:`repro.registry.EXECUTORS`
registry maps a name (``REPRO_EXECUTOR``, ``--executor``) to a factory
producing an object with the :class:`~repro.registry.protocols.Executor`
surface — ``submit(task)`` / ``drain()`` / ``shutdown()``, returning
per-task :class:`TaskResult`\\ s whose :class:`Attempt` records say
exactly how each cell was obtained.

Three built-ins:

==========  ===========================================================
``inline``  serial, in the parent process; the determinism baseline and
            the quarantine fallback for the other two
``pool``    ``ProcessPoolExecutor`` (the pre-dispatch parallel path)
            with per-attempt deadlines, in-pool retries, and quarantine
``fleet``   a loopback TCP broker leasing tasks to
            ``python -m repro.dispatch.worker`` processes, with
            heartbeats, dead-worker requeue, exponential-backoff
            retries, and poison-task quarantine
==========  ===========================================================

Whatever the backend and whatever faults are injected
(``REPRO_DISPATCH_FAULTS`` — see :mod:`repro.dispatch.faults`), results
are bit-identical: tasks are pure functions, retries re-execute them,
and the golden-stats suite gates every path.
"""

from repro.dispatch.base import (
    Attempt,
    CellDeadlockError,
    CellTimeoutError,
    DispatchError,
    DispatchReport,
    RetryPolicy,
    TaskFailedError,
    TaskResult,
    TaskSpec,
    quarantine_inline,
)
from repro.dispatch.faults import ENV_FAULTS, FaultPlan, FaultSpecError
from repro.dispatch.watchdog import cell_deadline

#: Environment knob naming the executor ``run_apps`` should use.
ENV_EXECUTOR = "REPRO_EXECUTOR"

__all__ = [
    "Attempt",
    "CellDeadlockError",
    "CellTimeoutError",
    "DispatchError",
    "DispatchReport",
    "ENV_EXECUTOR",
    "ENV_FAULTS",
    "FaultPlan",
    "FaultSpecError",
    "RetryPolicy",
    "TaskFailedError",
    "TaskResult",
    "TaskSpec",
    "cell_deadline",
    "quarantine_inline",
]
