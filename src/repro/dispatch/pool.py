"""The pool executor: today's ``ProcessPoolExecutor`` path, supervised.

This is the migrated PR-1 parallel backend with the ad-hoc crash
handling replaced by the dispatch layer's uniform machinery:

* at most ``jobs`` attempts are in flight at once (a submission *window*,
  so a task's wall-clock deadline starts when it actually reaches a
  worker, not when it joined a long queue);
* a failed attempt is retried in the pool with exponential backoff until
  the :class:`RetryPolicy` attempt budget is spent, then the task is
  *quarantined*: degraded to the parent's inline path, which either
  produces the (deterministic) result or surfaces the original error;
* an attempt that exceeds its deadline is recorded as a ``timeout`` and
  quarantined immediately — ``ProcessPoolExecutor`` cannot preempt a
  running worker, so resubmitting would just stack work behind the
  wedged one (the abandoned future's late result, if any, is ignored);
* a broken pool (a worker SIGKILLed by the OS kills the whole
  ``ProcessPoolExecutor``) downgrades every unfinished task to the
  quarantine path instead of sinking the run — that total-loss mode is
  exactly what the fleet executor exists to avoid.
"""

from __future__ import annotations

import heapq
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import BrokenExecutor
from typing import Dict, List, Optional, Tuple

from repro.dispatch.base import (
    Attempt,
    RetryPolicy,
    TaskResult,
    TaskSpec,
    observe_attempt,
    quarantine_inline,
)
from repro.dispatch.watchdog import run_attempt


class PoolExecutor:
    """``ProcessPoolExecutor`` with retries, deadlines, and quarantine."""

    name = "pool"

    def __init__(self, jobs: Optional[int] = None,
                 policy: Optional[RetryPolicy] = None) -> None:
        import os
        self.jobs = max(1, jobs if jobs is not None
                        else (os.cpu_count() or 1))
        self.policy = policy if policy is not None \
            else RetryPolicy.from_env()
        self._tasks: List[TaskSpec] = []

    def submit(self, task: TaskSpec) -> None:
        self._tasks.append(task)

    def drain(self) -> List[TaskResult]:
        tasks = self._tasks
        self._tasks = []
        if not tasks:
            return []
        results: Dict[str, TaskResult] = {
            task.id: TaskResult(task_id=task.id) for task in tasks
        }
        order = {task.id: index for index, task in enumerate(tasks)}
        quarantined: List[Tuple[TaskSpec, TaskResult]] = []
        try:
            pool = ProcessPoolExecutor(
                max_workers=min(self.jobs, len(tasks))
            )
        except Exception:
            # Pool unavailable (1-core boxes, sandboxes that forbid
            # fork): degrade the whole batch to serial in-parent
            # execution, the pre-dispatch fallback.
            self._drain_degraded(tasks, results)
            return [results[task.id] for task in tasks]
        try:
            self._drain_pool(pool, tasks, results, quarantined)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        quarantined.sort(key=lambda pair: order[pair[0].id])
        quarantine_inline(quarantined, self.policy)
        return [results[task.id] for task in tasks]

    def shutdown(self) -> None:
        self._tasks = []

    # -- internals -----------------------------------------------------------

    def _drain_degraded(self, tasks: List[TaskSpec],
                        results: Dict[str, TaskResult]) -> None:
        """Serial fail-fast fallback when no pool can be created."""
        failed = False
        for task in tasks:
            result = results[task.id]
            if failed:
                skipped = Attempt(
                    index=1, worker="inline", outcome="skipped",
                    error="not attempted: an earlier task failed",
                )
                result.attempts.append(skipped)
                observe_attempt(task.id, skipped)
                result.error = "skipped after an earlier task failure"
                continue
            attempt, value, exc = run_attempt(
                task, index=1, worker="inline",
                timeout_s=task.effective_timeout(self.policy),
            )
            result.attempts.append(attempt)
            observe_attempt(task.id, attempt)
            if exc is None:
                result.value = value
            else:
                result.error = attempt.error
                result.error_exc = exc
                failed = True

    def _drain_pool(
        self,
        pool: ProcessPoolExecutor,
        tasks: List[TaskSpec],
        results: Dict[str, TaskResult],
        quarantined: List[Tuple[TaskSpec, TaskResult]],
    ) -> None:
        policy = self.policy
        window = min(self.jobs, len(tasks))
        pending = deque((task, 1) for task in tasks)
        retry_heap: List[Tuple[float, int, TaskSpec, int]] = []
        in_flight: Dict[object, Tuple[TaskSpec, int, float, float]] = {}
        broken = False
        seq = 0

        def _quarantine(task: TaskSpec) -> None:
            quarantined.append((task, results[task.id]))

        def _fail_attempt(task: TaskSpec, attempt_no: int,
                          outcome: str, wall: float, error: str) -> None:
            nonlocal seq
            result = results[task.id]
            attempt = Attempt(
                index=attempt_no, worker="pool", outcome=outcome,
                wall_s=wall, error=error,
            )
            result.attempts.append(attempt)
            observe_attempt(task.id, attempt)
            # Timeouts never go back into the pool (the worker that
            # timed out is still wedged inside it); everything else
            # retries until the budget is spent.
            if (outcome != "timeout" and not broken
                    and attempt_no < policy.max_attempts):
                seq += 1
                ready = time.monotonic() + policy.backoff(attempt_no + 1)
                heapq.heappush(retry_heap,
                               (ready, seq, task, attempt_no + 1))
            else:
                _quarantine(task)

        while pending or retry_heap or in_flight:
            now = time.monotonic()
            while retry_heap and retry_heap[0][0] <= now:
                _, _, task, attempt_no = heapq.heappop(retry_heap)
                if broken:
                    _quarantine(task)
                else:
                    pending.append((task, attempt_no))
            while pending and len(in_flight) < window:
                task, attempt_no = pending.popleft()
                if broken:
                    _quarantine(task)
                    continue
                try:
                    future = pool.submit(task.fn, *task.args,
                                         **task.kwargs)
                except Exception:
                    # Unpicklable task or pool already torn down:
                    # deterministic failure, straight to quarantine.
                    _fail_attempt(task, attempt_no, "error", 0.0,
                                  traceback.format_exc(limit=20))
                    continue
                started = time.monotonic()
                deadline = started + task.effective_timeout(policy)
                in_flight[future] = (task, attempt_no, started, deadline)
            if not in_flight:
                if retry_heap:
                    time.sleep(max(0.0,
                                   retry_heap[0][0] - time.monotonic()))
                    continue
                if pending:
                    continue
                break

            next_deadline = min(entry[3] for entry in in_flight.values())
            next_retry = retry_heap[0][0] if retry_heap else float("inf")
            wait_s = max(0.0, min(next_deadline, next_retry)
                         - time.monotonic())
            done, _ = wait(list(in_flight), timeout=wait_s,
                           return_when=FIRST_COMPLETED)

            for future in done:
                task, attempt_no, started, _ = in_flight.pop(future)
                wall = time.monotonic() - started
                exc = future.exception()
                if exc is None:
                    result = results[task.id]
                    attempt = Attempt(
                        index=attempt_no, worker="pool", outcome="ok",
                        wall_s=wall,
                    )
                    result.attempts.append(attempt)
                    observe_attempt(task.id, attempt)
                    result.value = future.result()
                    continue
                if isinstance(exc, BrokenExecutor):
                    broken = True
                    _fail_attempt(
                        task, attempt_no, "worker-died", wall,
                        f"process pool broke during the attempt: {exc}",
                    )
                    continue
                error = "".join(traceback.format_exception(
                    type(exc), exc, exc.__traceback__, limit=20))
                _fail_attempt(task, attempt_no, "error", wall, error)

            now = time.monotonic()
            for future in [f for f, entry in in_flight.items()
                           if now >= entry[3]]:
                task, attempt_no, started, _ = in_flight.pop(future)
                future.cancel()
                _fail_attempt(
                    task, attempt_no, "timeout", now - started,
                    f"attempt exceeded its "
                    f"{task.effective_timeout(policy):.1f}s budget in "
                    f"the pool",
                )


__all__ = ["PoolExecutor"]
