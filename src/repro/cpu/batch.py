"""Batched lockstep simulation engine (the registry's ``batch`` engine).

The paper's grids (Figs 11-13) simulate the *same* sampled trace under
many hardware/scheme cells.  The inline :class:`repro.cpu.pipeline.
Simulator` pays per-cycle Python dispatch for every cell independently;
this engine removes that cost by splitting a cell into

1. **profiles** — everything the cycle loop obtains from the stateful
   branch/memory components, precomputed by replaying those components
   once in trace order (their state evolution is position-ordered, not
   timing-ordered, so the replay is exact — see below), and
2. a **cycle kernel** (:mod:`repro.cpu._batchkernel`) — pure integer
   stepping over the profiles, run either as compiled C (default) or as
   the bit-identical pure-Python reference.

Cells sharing a trace then advance together in lockstep rounds of a few
thousand cycles each, and profiles are weakly memoized per trace so a
seven-config hardware sweep replays the branch predictor and memory
system once per distinct configuration class, not once per cell.

Why the replay is exact
-----------------------

* Branch state (gshare + RAS) advances only when a branch is *consumed*
  at fetch, and fetch consumes trace positions strictly in order — so
  prediction outcomes are a pure function of position.
* I-side cache state advances only at i-line transitions of the fetch
  stream (again position-ordered).  The one timing-dependent quantity —
  the residual latency of an in-flight next-line prefetch — is resolved
  at run time from the *event times* the kernel records.
* The d-cache is private to the cell and is modeled dynamically inside
  the kernel (runtime-ordered LRU, same mechanics as
  :class:`repro.memory.replacement.LruPolicy`).
* The shared L2 is the only coupling between the i-side replay and the
  d-side runtime.  The engine proves per trace x config that no L2 set
  ever holds more distinct lines than its associativity (warm fills plus
  every replay fill), in which case no L2 access can miss and the L2 is
  order-independent; otherwise the cell **falls back to inline**.

Fallbacks are per-cell and lossless: a cell the engine cannot vectorize
(a load-observing prefetcher such as ``clpt``, a truncated
``max_cycles`` run, a cold-start run, an attached flight recorder, an
L2-unsafe trace, or a kernel ring overflow) runs on the inline
simulator with identical arguments.  Either way the returned
``SimStats`` are bit-identical to the inline engine — the golden-stats
suite and the ``--engine`` fuzz metamorphic enforce this.
"""

from __future__ import annotations

import os
import weakref
from dataclasses import astuple
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro import telemetry
from repro.cpu import _batchkernel as bk
from repro.cpu.branch import ReturnAddressStack, TwoLevelPredictor
from repro.cpu.config import CpuConfig, GOOGLE_TABLET
from repro.cpu.pipeline import (
    _BR_CALL,
    _BR_RETURN,
    _BR_SWITCH,
    Simulator,
    _observes,
    _tables_for,
    _validator_from_env,
)
from repro.cpu.stats import STAGES, SimStats
from repro.memory.prefetch import (
    CriticalNextLinePrefetcher,
    EFetchPrefetcher,
)
from repro.memory.replacement import LruPolicy, TrripPolicy
from repro.registry import BRANCH_PREDICTORS, ICACHE_POLICIES, PREFETCHERS
from repro.trace.dynamic import Trace

#: Lockstep horizon: every active cell advances to ``round * _ROUND`` and
#: yields, so a batch interleaves at a few-thousand-cycle grain.
_ROUND_CYCLES = 4096


def _require_numpy():
    """numpy, or a loud error naming this engine (satellite contract:
    ``inline`` must stay importable and usable without numpy)."""
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - numpy is a runtime dep
        raise ImportError(
            "the 'batch' simulation engine requires numpy (a runtime "
            "dependency of repro since the batch engine landed); install "
            "numpy or select the inline engine (--engine inline, "
            "REPRO_SIM_ENGINE=inline, or simulate(..., engine='inline'))"
        ) from exc
    return numpy


# -- profiles ------------------------------------------------------------------


class _BranchProfile:
    """Per-position fetch actions + total mispredicts for one predictor
    configuration over one trace."""

    __slots__ = ("bact", "mispredicts", "np_cache")

    def __init__(self) -> None:
        self.np_cache: Dict[str, Any] = {}


class _MemoryProfile:
    """I-side event stream + warmed d-cache image for one memory
    configuration over one trace (``unsafe`` names the reason when the
    L2-safety precondition fails and the cell must run inline)."""

    __slots__ = (
        "iev", "ev_kind", "ev_lat", "ev_creator", "n_events",
        "icache_accesses", "icache_misses", "l2_accesses",
        "dc_snapshot", "prefetch_issued", "unsafe", "np_cache",
    )

    def __init__(self) -> None:
        self.unsafe: Optional[str] = None
        self.np_cache: Dict[str, Any] = {}


#: trace -> {profile key: profile} (weak, like the trace tables)
_profiles: "weakref.WeakKeyDictionary[Trace, Dict[Any, Any]]" = \
    weakref.WeakKeyDictionary()

#: trace -> flavour-independent derived arrays (CSR dependence maps,
#: packed entry flags, d-cache address splits) + cached numpy views
_derived: "weakref.WeakKeyDictionary[Trace, Dict[Any, Any]]" = \
    weakref.WeakKeyDictionary()


def _profile_cache(trace: Trace) -> Dict[Any, Any]:
    cache = _profiles.get(trace)
    if cache is None:
        cache = {}
        _profiles[trace] = cache
    return cache


def _derived_cache(trace: Trace) -> Dict[Any, Any]:
    cache = _derived.get(trace)
    if cache is None:
        cache = {}
        _derived[trace] = cache
    return cache


def _build_branch_profile(trace: Trace, tables, config) -> _BranchProfile:
    """Replay the branch unit over the trace's branches, in trace order.

    Mirrors ``Simulator._handle_branch``: the RAS trains at calls, the
    predictor at predicated conditionals, both strictly in fetch-
    consumption order — which is trace order — so outcomes are exact.
    """
    n = len(trace.entries)
    bact = bytearray(n)
    bpu = BRANCH_PREDICTORS.create(config.branch_predictor, config)
    ras = ReturnAddressStack(perfect=config.perfect_branch)
    brt = tables.brt
    brpred = tables.brpred
    pcs = tables.pcs
    sizes = tables.sizes
    takens = tables.takens
    wrong = 0
    for pos in range(n):
        b = brt[pos]
        if not b:
            continue
        if b == _BR_SWITCH:
            bact[pos] = 3
        elif b == _BR_CALL:
            if pos + 1 < n:
                ras.push(pcs[pos] + sizes[pos])
            bact[pos] = 1
        elif b == _BR_RETURN:
            if ras.predict_return():
                bact[pos] = 1
            else:
                wrong += 1
                bact[pos] = 2
        else:
            taken = bool(takens[pos])
            if brpred[pos]:
                if bpu.predict_conditional(pcs[pos], taken):
                    bact[pos] = 1 if taken else 0
                else:
                    wrong += 1
                    bact[pos] = 2
            else:
                bact[pos] = 1 if taken else 0
    profile = _BranchProfile()
    profile.bact = bact
    profile.mispredicts = wrong + bpu.stats.cond_mispredicts
    return profile


def _branch_profile(trace: Trace, tables, config) -> _BranchProfile:
    """Memoized per trace when the predictor is the stock two-level one
    (a custom registered predictor could read arbitrary config fields,
    so it gets a fresh, unmemoized replay per cell)."""
    bpu = BRANCH_PREDICTORS.create(config.branch_predictor, config)
    if type(bpu) is not TwoLevelPredictor:
        return _build_branch_profile(trace, tables, config)
    key = (
        "bp", BRANCH_PREDICTORS.identity(config.branch_predictor),
        config.bpu_entries, config.bpu_history_bits,
        config.perfect_branch,
    )
    cache = _profile_cache(trace)
    profile = cache.get(key)
    if profile is None:
        profile = _build_branch_profile(trace, tables, config)
        cache[key] = profile
    return profile


def _build_memory_profile(trace: Trace, tables, config,
                          crit: bytearray) -> _MemoryProfile:
    """Replay warmup + the i-side of the memory system in trace order.

    Produces the fetch-event stream (one event per i-line transition of
    the fetch stream, exactly as ``MemorySystem.ifetch`` would see it),
    the post-warm d-cache image, and the L2-safety verdict.
    """
    from repro.memory.hierarchy import MemorySystem

    mc = config.memory
    ms = MemorySystem(mc)
    icache = ms.icache
    l2 = ms.l2
    dcache = ms.dcache
    line_bytes = mc.line_bytes
    num_l2_sets = l2.num_sets
    l2_assoc = l2.assoc

    # Distinct-lines-per-L2-set tracking: eviction happens iff a set ever
    # sees more distinct lines than ways, which is order-independent — so
    # sets of tags decide safety regardless of interleaving.
    l2_seen: Dict[int, Set[int]] = {}

    def track(addr: int) -> None:
        line = addr // line_bytes
        s = line % num_l2_sets
        tags = l2_seen.get(s)
        if tags is None:
            tags = l2_seen[s] = set()
        tags.add(line // num_l2_sets)

    # warmup: mirror of MemorySystem.warm, with L2-set tracking
    last_iline = -1
    for entry in trace:
        iline = entry.pc // line_bytes
        if iline != last_iline:
            addr = iline * line_bytes
            l2.fill(addr)
            icache.fill(addr)
            track(addr)
            last_iline = iline
        if entry.mem_addr is not None:
            l2.fill(entry.mem_addr)
            dcache.fill(entry.mem_addr)
            track(entry.mem_addr)

    prefetchers = tuple(
        PREFETCHERS.create(name, config)
        for name in config.active_prefetchers()
    )
    fetch_pfs = tuple(
        p for p in prefetchers if _observes(p, "observe_fetch"))
    call_pfs = tuple(
        p for p in prefetchers if _observes(p, "observe_call"))

    n = len(trace.entries)
    pcs = tables.pcs
    brt = tables.brt
    iev = [-1] * n
    ev_kind = bytearray()
    ev_lat: List[int] = []
    ev_creator: List[int] = []
    #: line -> creator event index (mirror of ``_inflight_ilines``, whose
    #: state evolution depends only on membership, never on the stored
    #: ready times — those are reconstructed at run time as
    #: ``ev_time[creator] + l2_hit``)
    inflight: Dict[int, int] = {}
    nlp = mc.next_line_prefetch
    icache_hit = mc.icache_hit
    l2_hit = mc.l2_hit
    probe = icache.probe
    ilookup = icache.lookup
    l2lookup = l2.lookup
    unsafe: Optional[str] = None
    last_line = -1

    for pos in range(n):
        pc = pcs[pos]
        line = pc // line_bytes
        if line != last_line:
            ev = len(ev_lat)
            iev[pos] = ev
            last_line = line
            for k in range(1, nlp + 1):
                target = line + k
                if target not in inflight \
                        and not probe(target * line_bytes):
                    inflight[target] = ev
            if ilookup(pc):
                inflight.pop(line, None)
                ev_kind.append(0)
                ev_lat.append(icache_hit)
                ev_creator.append(0)
            else:
                creator = inflight.pop(line, None)
                if creator is not None:
                    ev_kind.append(1)
                    ev_lat.append(0)
                    ev_creator.append(creator)
                else:
                    track(pc)
                    if l2lookup(pc):
                        ev_kind.append(0)
                        ev_lat.append(icache_hit + l2_hit)
                        ev_creator.append(0)
                    else:
                        unsafe = "i-side L2 miss"
                        break
            if fetch_pfs:
                critical = bool(crit[pos])
                for pf in fetch_pfs:
                    for ln in pf.observe_fetch(line, critical):
                        addr = ln * line_bytes
                        l2.fill(addr)
                        icache.fill(addr)
                        track(addr)
        if call_pfs and brt[pos] == _BR_CALL and pos + 1 < n:
            target_line = pcs[pos + 1] // line_bytes
            for pf in call_pfs:
                for ln in pf.observe_call(target_line):
                    addr = ln * line_bytes
                    l2.fill(addr)
                    icache.fill(addr)
                    track(addr)

    profile = _MemoryProfile()
    if unsafe is None:
        for tags in l2_seen.values():
            if len(tags) > l2_assoc:
                unsafe = "L2 set conflict (lines exceed associativity)"
                break
    profile.unsafe = unsafe
    if unsafe is not None:
        return profile

    profile.iev = iev
    profile.ev_kind = ev_kind
    profile.ev_lat = ev_lat
    profile.ev_creator = ev_creator
    profile.n_events = len(ev_lat)
    profile.icache_accesses = icache.stats.accesses
    profile.icache_misses = icache.stats.misses
    profile.l2_accesses = l2.stats.accesses
    profile.prefetch_issued = tuple(
        (pf.name, pf.issued) for pf in prefetchers)

    occ = [len(ways) for ways in dcache._sets]
    flat = [0] * (dcache.num_sets * dcache.assoc)
    for s, ways in enumerate(dcache._sets):
        base = s * dcache.assoc
        for w, tag in enumerate(ways):
            flat[base + w] = tag
    profile.dc_snapshot = (dcache.num_sets, dcache.assoc, occ, flat)
    return profile


def _memory_profile(trace: Trace, tables, config, crit: bytearray,
                    created) -> _MemoryProfile:
    """Memoized per trace when every composed component is a known
    builtin (custom factories may read arbitrary config fields, so they
    replay fresh per cell — still exact, just unshared)."""
    from repro.memory.replacement import make_policy

    shareable = all(
        type(p) in (EFetchPrefetcher, CriticalNextLinePrefetcher)
        for p in created
    ) and type(make_policy(config.memory.icache_policy)) \
        in (LruPolicy, TrripPolicy)
    if not shareable:
        return _build_memory_profile(trace, tables, config, crit)
    key: Tuple[Any, ...] = (
        "mem", astuple(config.memory),
        tuple(PREFETCHERS.identity(name)
              for name in config.active_prefetchers()),
        ICACHE_POLICIES.identity(config.memory.icache_policy),
    )
    if any(_observes(p, "observe_fetch") for p in created):
        # fetch-observing prefetchers see per-position criticality
        key = key + (bytes(crit),)
    cache = _profile_cache(trace)
    profile = cache.get(key)
    if profile is None:
        profile = _build_memory_profile(trace, tables, config, crit)
        cache[key] = profile
    return profile


# -- shared-array assembly -----------------------------------------------------


def _trace_derived(trace: Trace, tables) -> Dict[str, Any]:
    """Flavour-independent per-trace arrays: CSR dependence maps, packed
    entry flags, and the trace's max base latency (wheel sizing)."""
    cache = _derived_cache(trace)
    rec = cache.get("base")
    if rec is not None:
        return rec
    n = len(trace.entries)
    flags = bytearray(n)
    isld = tables.isld
    isst = tables.isst
    iscdp = tables.iscdp
    for pos in range(n):
        flags[pos] = ((bk.FLAG_LOAD if isld[pos] else 0)
                      | (bk.FLAG_STORE if isst[pos] else 0)
                      | (bk.FLAG_CDP if iscdp[pos] else 0))
    prod_ptr = [0] * (n + 1)
    total = 0
    for pos, prods in enumerate(tables.producers):
        total += len(prods)
        prod_ptr[pos + 1] = total
    prod_idx = [0] * total
    k = 0
    for prods in tables.producers:
        for p in prods:
            prod_idx[k] = p
            k += 1
    cons_ptr = [0] * (n + 1)
    total = 0
    for pos, cons in enumerate(tables.consumers):
        total += len(cons)
        cons_ptr[pos + 1] = total
    cons_idx = [0] * total
    k = 0
    for cons in tables.consumers:
        for c in cons:
            cons_idx[k] = c
            k += 1
    rec = {
        "flags": flags,
        "prod_ptr": prod_ptr,
        "prod_idx": prod_idx,
        "cons_ptr": cons_ptr,
        "cons_idx": cons_idx,
        "max_lat": max(tables.lats) if n else 1,
    }
    cache["base"] = rec
    return rec


def _dcache_map(trace: Trace, tables, line_bytes: int,
                dc_sets: int) -> Tuple[List[int], List[int]]:
    """Per-position d-cache (set, tag) split; tag -1 encodes "no memory
    address" (entries whose ``mem_addr`` is None never touch memory)."""
    cache = _derived_cache(trace)
    key = ("dmap", line_bytes, dc_sets)
    rec = cache.get(key)
    if rec is not None:
        return rec
    n = len(trace.entries)
    d_set = [0] * n
    d_tag = [-1] * n
    mems = tables.mems
    isld = tables.isld
    isst = tables.isst
    for pos in range(n):
        if isld[pos] or isst[pos]:
            addr = mems[pos]
            if addr is not None:
                line = addr // line_bytes
                d_set[pos] = line % dc_sets
                d_tag[pos] = line // dc_sets
    rec = (d_set, d_tag)
    cache[key] = rec
    return rec


def _np_i32(np, values, cache: Dict[str, Any], key: str):
    arr = cache.get(key)
    if arr is None:
        arr = np.array(values, dtype=np.int32)
        cache[key] = arr
    return arr


def _np_i64(np, values, cache: Dict[str, Any], key: str):
    arr = cache.get(key)
    if arr is None:
        arr = np.array(values, dtype=np.int64)
        cache[key] = arr
    return arr


def _np_u8(np, values, cache: Dict[str, Any], key: str):
    arr = cache.get(key)
    if arr is None:
        arr = np.frombuffer(bytes(values), dtype=np.uint8)
        cache[key] = arr
    return arr


def _make_shared(np, trace: Trace, tables, config, bp: _BranchProfile,
                 mp: _MemoryProfile, crit: bytearray,
                 crit_np) -> bk.SharedArrays:
    """Assemble one cell class's read-only arrays.

    ``np`` is the numpy module for the C kernel or ``None`` for the
    Python reference kernel; heavyweight n-sized arrays are cached per
    trace (and per profile) so cells of the same class share them.
    """
    derived = _trace_derived(trace, tables)
    dc_sets = mp.dc_snapshot[0]
    d_set, d_tag = _dcache_map(trace, tables, config.memory.line_bytes,
                               dc_sets)
    sh = bk.SharedArrays()
    sh.n = len(trace.entries)
    if np is None:
        sh.sizes = tables.sizes
        sh.lats = tables.lats
        sh.fus = tables.fus
        sh.flags = derived["flags"]
        sh.bact = bp.bact
        sh.crit = crit
        sh.iev = mp.iev
        sh.ev_kind = mp.ev_kind
        sh.ev_lat = mp.ev_lat
        sh.ev_creator = mp.ev_creator
        sh.prod_ptr = derived["prod_ptr"]
        sh.prod_idx = derived["prod_idx"]
        sh.cons_ptr = derived["cons_ptr"]
        sh.cons_idx = derived["cons_idx"]
        sh.d_set = d_set
        sh.d_tag = d_tag
        return sh
    cache = _derived_cache(trace)
    npc = cache.setdefault("np", {})
    sh.sizes = _np_i32(np, tables.sizes, npc, "sizes")
    sh.lats = _np_i32(np, tables.lats, npc, "lats")
    sh.fus = _np_u8(np, tables.fus, npc, "fus")
    sh.flags = _np_u8(np, derived["flags"], npc, "flags")
    sh.prod_ptr = _np_i32(np, derived["prod_ptr"], npc, "prod_ptr")
    sh.prod_idx = _np_i32(np, derived["prod_idx"], npc, "prod_idx")
    sh.cons_ptr = _np_i32(np, derived["cons_ptr"], npc, "cons_ptr")
    sh.cons_idx = _np_i32(np, derived["cons_idx"], npc, "cons_idx")
    sh.bact = _np_u8(np, bp.bact, bp.np_cache, "bact")
    sh.crit = crit_np
    sh.iev = _np_i32(np, mp.iev, mp.np_cache, "iev")
    sh.ev_kind = _np_u8(np, mp.ev_kind, mp.np_cache, "ev_kind")
    sh.ev_lat = _np_i32(np, mp.ev_lat, mp.np_cache, "ev_lat")
    sh.ev_creator = _np_i32(np, mp.ev_creator, mp.np_cache, "ev_creator")
    dkey = ("d_set", config.memory.line_bytes, dc_sets)
    tkey = ("d_tag", config.memory.line_bytes, dc_sets)
    sh.d_set = _np_i32(np, d_set, npc, dkey)
    sh.d_tag = _np_i64(np, d_tag, npc, tkey)
    return sh


# -- stats assembly ------------------------------------------------------------


def _as_list(arr) -> List[int]:
    return arr.tolist() if hasattr(arr, "tolist") else list(arr)


def _finalize_cell(np, trace: Trace, config, cell: bk.CellState,
                   bp: _BranchProfile, mp: _MemoryProfile,
                   crit_mask, chain_mask, validator) -> SimStats:
    """Assemble one cell's ``SimStats`` from kernel registers + stage
    timestamp matrices — field for field what the inline finalize does."""
    regs = cell.regs
    n = len(trace.entries)

    def g(index: int) -> int:
        return int(regs[index])

    stats = SimStats(name=config.name)
    stats.cycles = g(bk.R_NOW)
    stats.instructions = g(bk.R_COMMITTED)
    stats.truncated = False
    stats.cdp_decoded = g(bk.R_CDP_DECODED)
    stats.iq_occupancy_sum = g(bk.R_IQ_OCC_SUM)
    stats.iq_full_cycles = g(bk.R_IQ_FULL)
    stats.rob_occupancy_sum = g(bk.R_ROB_OCC_SUM)

    fstall = stats.fetch
    fstall.active = g(bk.R_F_ACTIVE)
    fstall.stall_icache = g(bk.R_F_ICACHE)
    fstall.stall_branch = g(bk.R_F_BRANCH)
    fstall.stall_switch = g(bk.R_F_SWITCH)
    fstall.stall_backpressure = g(bk.R_F_BP)
    fstall.drained = g(bk.R_F_DRAINED)
    fcrit = stats.fetch_critical
    fcrit.active = g(bk.R_FC_ACTIVE)
    fcrit.stall_icache = g(bk.R_FC_ICACHE)
    fcrit.stall_branch = g(bk.R_FC_BRANCH)
    fcrit.stall_switch = g(bk.R_FC_SWITCH)
    fcrit.stall_backpressure = g(bk.R_FC_BP)

    head = np.asarray(cell.head_c, dtype=np.int64)
    dec = np.asarray(cell.decode_c, dtype=np.int64)
    dsp = np.asarray(cell.dispatch_c, dtype=np.int64)
    iss = np.asarray(cell.issue_c, dtype=np.int64)
    cmp_c = np.asarray(cell.complete_c, dtype=np.int64)
    cmt = np.asarray(cell.commit_c, dtype=np.int64)
    iw = iss - dsp
    stage_cols = (
        np.maximum(dec - head, 0),
        np.maximum(dsp - dec, 0),
        (iw > 0).astype(np.int64),
        np.maximum(iw - 1, 0),
        np.maximum(cmp_c - iss, 0),
        np.maximum(cmt - cmp_c, 0),
    )
    for bucket, mask in (
        (stats.residency_all, None),
        (stats.residency_critical, crit_mask),
        (stats.residency_chain, chain_mask),
    ):
        if mask is None:
            bucket.instructions = n
            totals = [int(col.sum()) for col in stage_cols]
        elif mask is False:
            continue  # no chain positions: all-zero bucket, like inline
        else:
            bucket.instructions = int(mask.sum())
            totals = [int(col[mask].sum()) for col in stage_cols]
        for stage, cycles in zip(STAGES, totals):
            bucket.totals[stage] = cycles

    stats.icache_accesses = mp.icache_accesses
    stats.icache_misses = mp.icache_misses
    stats.dcache_accesses = g(bk.R_DC_ACC)
    stats.dcache_misses = g(bk.R_DC_MISS)
    stats.l2_accesses = mp.l2_accesses + g(bk.R_L2D_ACC)
    stats.l2_misses = 0
    stats.dram_reads = 0
    stats.branch_mispredicts = bp.mispredicts
    total = 0
    for name, issued in mp.prefetch_issued:
        total += issued
        if name == "clpt":
            stats.clpt_prefetches_issued = issued
        elif name == "efetch":
            stats.efetch_prefetches_issued = issued
        else:
            stats.component_counters[f"prefetch.{name}"] = issued
    stats.prefetches_issued = total

    if validator is not None:
        validator.on_run(
            trace_name=trace.name,
            config_name=config.name,
            stats=stats,
            n=n,
            head=_as_list(cell.head_c),
            fetch=_as_list(cell.fetch_c),
            decode=_as_list(cell.decode_c),
            dispatch=_as_list(cell.dispatch_c),
            issue=_as_list(cell.issue_c),
            complete=_as_list(cell.complete_c),
            commit=_as_list(cell.commit_c),
        )
    return stats


# -- the engine ----------------------------------------------------------------


class _CellPlan:
    __slots__ = ("index", "config", "reason", "bp", "mp", "shared",
                 "cell", "status")

    def __init__(self, index: int, config) -> None:
        self.index = index
        self.config = config
        self.reason: Optional[str] = None
        self.bp: Optional[_BranchProfile] = None
        self.mp: Optional[_MemoryProfile] = None
        self.shared = None
        self.cell = None
        self.status = 1


#: diagnostics of the most recent ``simulate_batch`` call (tests and the
#: dispatch report read this; purely observational)
_last_report: Optional[Dict[str, Any]] = None


def last_batch_report() -> Optional[Dict[str, Any]]:
    """Diagnostics of the most recent batch: width, fast/fallback split
    (with per-cell reasons), lockstep rounds, and the kernel used."""
    return _last_report


def simulate_batch(
    trace: Trace,
    configs: Sequence[CpuConfig],
    critical_positions: Optional[Set[int]] = None,
    chain_positions: Optional[Set[int]] = None,
    max_cycles: Optional[int] = None,
    warm: bool = True,
    recorder=None,
    validator=None,
    validate: Optional[bool] = None,
) -> List[SimStats]:
    """Simulate one trace under many configurations; returns per-config
    ``SimStats``, bit-identical to running each cell inline.

    Cells the engine cannot vectorize run on the inline simulator with
    identical arguments (see the module docstring for the triggers);
    ``last_batch_report()`` tells which path each cell took.
    """
    global _last_report
    np = _require_numpy()
    configs = list(configs)

    # Resolve the validator exactly once, mirroring Simulator.__init__
    # (fallback cells receive the same resolved instance).
    if validate is False:
        resolved = None
    elif validate is True and validator is None:
        from repro.validate.invariants import RunValidator
        resolved = RunValidator()
    elif validator is not None:
        resolved = validator
    else:
        resolved = _validator_from_env()

    tables = _tables_for(trace)
    n = len(trace.entries)
    crit = bytearray(n)
    crit_source = tables.default_critical \
        if critical_positions is None else critical_positions
    for pos in crit_source:
        if 0 <= pos < n:
            crit[pos] = 1
    chainb = bytearray(n)
    for pos in (chain_positions or ()):
        if 0 <= pos < n:
            chainb[pos] = 1

    if max_cycles is not None:
        global_reason: Optional[str] = "max-cycles"
    elif not warm:
        global_reason = "cold-start"
    elif recorder is not None \
            or os.environ.get("REPRO_FLIGHT_RECORDER", ""):
        global_reason = "flight-recorder"
    else:
        global_reason = None

    plans = [_CellPlan(i, config) for i, config in enumerate(configs)]
    for plan in plans:
        if global_reason is not None:
            plan.reason = global_reason
            continue
        created = tuple(
            PREFETCHERS.create(name, plan.config)
            for name in plan.config.active_prefetchers()
        )
        if any(_observes(p, "observe_load") for p in created):
            plan.reason = "load-observing prefetcher"
            continue
        plan.bp = _branch_profile(trace, tables, plan.config)
        plan.mp = _memory_profile(trace, tables, plan.config, crit,
                                  created)
        if plan.mp.unsafe is not None:
            plan.reason = plan.mp.unsafe

    fast = [plan for plan in plans if plan.reason is None]
    kernel_name = "none"
    rounds = 0
    active_cell_rounds = 0
    with telemetry.span("simulate.batch", width=len(plans)) as span:
        if fast:
            kernel_name, cfn = bk.get_kernel()
            npmod = np if kernel_name == "c" else None
            crit_np = np.frombuffer(bytes(crit), dtype=np.uint8) \
                if npmod is not None else None
            shared_cache: Dict[Any, Any] = {}
            for plan in fast:
                skey = (id(plan.bp), id(plan.mp))
                sh = shared_cache.get(skey)
                if sh is None:
                    sh = _make_shared(npmod, trace, tables, plan.config,
                                      plan.bp, plan.mp, crit, crit_np)
                    shared_cache[skey] = sh
                plan.shared = sh
                mc = plan.config.memory
                max_latency = max(_trace_derived(trace, tables)["max_lat"],
                                  mc.dcache_hit + mc.l2_hit, 1)
                plan.cell = bk.make_cell(sh, plan.mp.n_events, plan.config,
                                         plan.mp.dc_snapshot, max_latency,
                                         np=npmod)

            running = list(fast)
            while running:
                rounds += 1
                horizon = rounds * _ROUND_CYCLES
                active_cell_rounds += len(running)
                still = []
                for plan in running:
                    if kernel_name == "c":
                        status = bk.advance_cell_c(
                            cfn, plan.shared, plan.cell, horizon)
                    else:
                        status = bk.advance_cell(
                            plan.shared, plan.cell, horizon)
                    if status == 1:
                        still.append(plan)
                    else:
                        plan.status = status
                        if status == 2:
                            plan.reason = "kernel deadlock"
                        elif status == 3:
                            plan.reason = "kernel ring overflow"
                running = still

        # occupancy: mean fraction of the batch still active per round
        span.attrs.update(
            fast=sum(1 for p in plans if p.reason is None),
            fallbacks=sum(1 for p in plans if p.reason is not None),
            rounds=rounds,
            kernel=kernel_name,
            occupancy=round(
                active_cell_rounds / (rounds * len(plans)), 4)
            if rounds else 0.0,
        )

        crit_mask = np.frombuffer(bytes(crit),
                                  dtype=np.uint8).astype(bool)
        chain_mask = np.frombuffer(bytes(chainb),
                                   dtype=np.uint8).astype(bool) \
            if chain_positions else False

        results: List[Optional[SimStats]] = [None] * len(plans)
        for plan in plans:
            if plan.reason is None:
                results[plan.index] = _finalize_cell(
                    np, trace, plan.config, plan.cell, plan.bp, plan.mp,
                    crit_mask, chain_mask, resolved,
                )
            else:
                sim = Simulator(
                    trace, plan.config,
                    critical_positions=None if critical_positions is None
                    else set(critical_positions),
                    chain_positions=chain_positions,
                    warm=warm,
                    recorder=recorder,
                    validator=resolved,
                    validate=False if resolved is None else None,
                )
                results[plan.index] = sim.run(max_cycles=max_cycles)

    telemetry.count("simulate.batch.cells", len(plans))
    telemetry.count("simulate.batch.fallback_cells",
                    sum(1 for p in plans if p.reason is not None))
    telemetry.count("simulate.batch.instructions",
                    sum(r.instructions for r in results))
    fast_cells = sum(1 for p in plans if p.reason is None)
    fallbacks = [(p.config.name, p.reason) for p in plans
                 if p.reason is not None]
    occupancy = (round(active_cell_rounds / (rounds * len(plans)), 4)
                 if rounds else 0.0)
    telemetry.inc("repro_batch_groups_total",
                  help="Lockstep batch groups simulated, by kernel.",
                  kernel=kernel_name)
    telemetry.observe("repro_batch_group_width", len(plans),
                      buckets=telemetry.metrics.WIDTH_BUCKETS,
                      help="Cells per lockstep batch group.")
    telemetry.inc("repro_batch_cells_total", fast_cells,
                  help="Cells by batch execution path.", path="fast")
    if fallbacks:
        telemetry.inc("repro_batch_cells_total", len(fallbacks),
                      help="Cells by batch execution path.",
                      path="fallback")
    for config_name, reason in fallbacks:
        telemetry.inc("repro_batch_fallback_total",
                      help="Per-cell inline fallbacks by reason.",
                      reason=reason)
        telemetry.emit("batch.fallback", config=config_name,
                       reason=reason, trace_len=len(trace.entries))
    if rounds:
        telemetry.observe("repro_batch_occupancy", occupancy,
                          buckets=telemetry.metrics.RATIO_BUCKETS,
                          help="Mean fraction of a batch group still "
                               "active per lockstep round.")
    telemetry.emit("batch.group", width=len(plans), fast=fast_cells,
                   fallbacks=len(fallbacks), rounds=rounds,
                   kernel=kernel_name, occupancy=occupancy)
    _last_report = {
        "width": len(plans),
        "fast": fast_cells,
        "fallbacks": fallbacks,
        "rounds": rounds,
        "kernel": kernel_name,
        "occupancy": occupancy,
    }
    return results  # type: ignore[return-value]


def simulate_cell(
    trace: Trace,
    config: CpuConfig = GOOGLE_TABLET,
    critical_positions: Optional[Set[int]] = None,
    chain_positions: Optional[Set[int]] = None,
    max_cycles: Optional[int] = None,
    warm: bool = True,
    recorder=None,
    validator=None,
    validate: Optional[bool] = None,
) -> SimStats:
    """Single-cell entry point (the ``SIMULATORS['batch']`` engine's
    ``simulate()``-compatible surface): a batch of width one."""
    return simulate_batch(
        trace, [config],
        critical_positions=critical_positions,
        chain_positions=chain_positions,
        max_cycles=max_cycles,
        warm=warm,
        recorder=recorder,
        validator=validator,
        validate=validate,
    )[0]
