"""Cycle-level CPU model: config (Table I), pipeline, branch prediction."""

from repro.cpu.branch import (
    BranchStats,
    ReturnAddressStack,
    TwoLevelPredictor,
)
from repro.cpu.config import (
    CpuConfig,
    FuConfig,
    GOOGLE_TABLET,
    HARDWARE_VARIANTS,
    config_2xfd,
    config_4x_icache,
    config_all_hw,
    config_backend_prio,
    config_critical_prefetch,
    config_efetch,
    config_perfect_br,
    format_table1,
)
from repro.cpu.pipeline import Simulator, simulate
from repro.cpu.stats import (
    FetchStalls,
    STAGES,
    SimStats,
    StageResidency,
    speedup,
)

__all__ = [
    "BranchStats",
    "CpuConfig",
    "FetchStalls",
    "FuConfig",
    "GOOGLE_TABLET",
    "HARDWARE_VARIANTS",
    "ReturnAddressStack",
    "STAGES",
    "SimStats",
    "Simulator",
    "StageResidency",
    "TwoLevelPredictor",
    "config_2xfd",
    "config_4x_icache",
    "config_all_hw",
    "config_backend_prio",
    "config_critical_prefetch",
    "config_efetch",
    "config_perfect_br",
    "format_table1",
    "simulate",
    "speedup",
]
