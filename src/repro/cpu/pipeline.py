"""Cycle-level out-of-order superscalar pipeline (the gem5 stand-in).

Models the Table I Google-Tablet core: byte-granular fetch (so 16-bit Thumb
encodings double effective fetch bandwidth), i-cache and branch-prediction
driven supply stalls, a fetch queue whose back-pressure exposes
decode-to-commit congestion, a 128-entry ROB, dependence-driven wake-up,
FU-constrained issue, and in-order commit.

Stage processing order within a cycle is reverse-pipeline (commit,
writeback, issue, dispatch, decode, fetch), giving standard one-cycle
producer-to-consumer forwarding.

The simulator consumes a :class:`~repro.trace.dynamic.Trace` — the actual
executed path — and models *timing* faithfully: branch mispredictions stall
fetch until the branch resolves, i-cache misses stall supply, CDP format
switches cost a decode cycle, and Approach-1 switch branches inject fetch
bubbles.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cpu.branch import ReturnAddressStack, TwoLevelPredictor
from repro.cpu.config import CpuConfig, GOOGLE_TABLET
from repro.cpu.stats import FetchStalls, SimStats, StageResidency
from repro.dfg.fanout import HIGH_FANOUT_THRESHOLD
from repro.isa.condition import Cond
from repro.isa.opcodes import InstrKind, Opcode
from repro.memory.hierarchy import MemorySystem
from repro.memory.prefetch import CriticalLoadPrefetcher, EFetchPrefetcher
from repro.trace.dependence import compute_consumers, compute_producers
from repro.trace.dynamic import Trace

#: FU class per InstrKind (branch and system ride the ALU pool's sidecar).
_FU_OF = {
    InstrKind.ALU: "alu",
    InstrKind.MUL: "mul",
    InstrKind.DIV: "mul",
    InstrKind.LOAD: "mem",
    InstrKind.STORE: "mem",
    InstrKind.BRANCH: "branch",
    InstrKind.FP: "fp",
    InstrKind.SYSTEM: "alu",
}


def _is_switch_branch(instr) -> bool:
    """Approach-1 format-switch branch: unconditional B to the next PC."""
    return (instr.opcode is Opcode.B and instr.target is None
            and instr.cond is Cond.AL)


class Simulator:
    """One run of one trace on one CPU configuration."""

    def __init__(
        self,
        trace: Trace,
        config: CpuConfig = GOOGLE_TABLET,
        memory: Optional[MemorySystem] = None,
        critical_positions: Optional[Set[int]] = None,
        chain_positions: Optional[Set[int]] = None,
        warm: bool = True,
    ):
        """
        Args:
            trace: the dynamic stream to execute.
            config: hardware configuration.
            memory: optionally share/warm a memory system; a fresh one is
                built from ``config.memory`` when omitted.
            critical_positions: positions counted as "critical" for scoped
                stats and criticality-driven baselines; computed from
                direct fanout (threshold 8) when omitted.
            chain_positions: positions that are CritIC members (scoped
                residency stats for Fig 10b analyses).
        """
        self.trace = trace
        self.config = config
        self.memory = memory or MemorySystem(config.memory)
        if warm:
            self.memory.warm(trace)
        self.entries = trace.entries
        self.n = len(self.entries)

        self.producers = compute_producers(trace)
        self.consumers = compute_consumers(self.producers)
        if critical_positions is None:
            fanouts = [len(c) for c in self.consumers]
            critical_positions = {
                i for i, f in enumerate(fanouts)
                if f >= HIGH_FANOUT_THRESHOLD
            }
        self.critical = critical_positions
        self.chain = chain_positions or set()

        self.bpu = TwoLevelPredictor(
            config.bpu_entries, config.bpu_history_bits,
            perfect=config.perfect_branch,
        )
        self.ras = ReturnAddressStack(perfect=config.perfect_branch)
        self.clpt = CriticalLoadPrefetcher() \
            if config.critical_load_prefetch else None
        self.efetch = EFetchPrefetcher() if config.efetch else None

        self.stats = SimStats(name=config.name)

    # -- main loop --------------------------------------------------------------

    def run(self, max_cycles: Optional[int] = None) -> SimStats:
        """Simulate to completion (or ``max_cycles``) and return stats."""
        n = self.n
        entries = self.entries
        config = self.config
        mem = self.memory

        # timestamps (-1 = not yet)
        head_c = [-1] * n
        fetch_c = [-1] * n
        decode_c = [-1] * n
        dispatch_c = [-1] * n
        issue_c = [-1] * n
        complete_c = [-1] * n

        completed = bytearray(n)
        dispatched = bytearray(n)
        remaining = [0] * n

        fetch_buffer: List[int] = []
        decode_buffer: List[int] = []
        rob: List[int] = []
        rob_head = 0
        ready: List[int] = []
        ready_critical: List[int] = []
        completing: Dict[int, List[int]] = {}
        sched_window = config.scheduling_window
        pending: List[int] = []
        pending_head = 0

        fetch_pos = 0
        unissued = 0
        icache_ready = 0
        fetch_resume = 0
        redirect_pos = -1
        last_line = -1
        line_bytes = mem.config.line_bytes

        decode_cap = config.decode_buffer_entries
        fq_cap = config.fetch_queue_entries
        backend_prio = config.backend_priority
        critical = self.critical
        fu_caps = {
            "alu": config.fu.alu, "mul": config.fu.mul,
            "fp": config.fu.fp, "mem": config.fu.mem,
            "branch": config.fu.branch,
        }

        stats = self.stats
        fstall = stats.fetch
        fstall_crit = stats.fetch_critical
        committed = 0
        now = 0
        limit = max_cycles if max_cycles is not None else 1 << 62

        while committed < n and now < limit:
            # ---- commit ----
            width = config.commit_width
            while width and rob_head < len(rob):
                pos = rob[rob_head]
                if not completed[pos]:
                    break
                self._account_commit(pos, now, head_c, fetch_c, decode_c,
                                     dispatch_c, issue_c, complete_c)
                rob_head += 1
                committed += 1
                width -= 1
            if rob_head > 4096:
                del rob[:rob_head]
                rob_head = 0

            # ---- writeback / wake-up ----
            for pos in completing.pop(now, ()):  # type: ignore[arg-type]
                completed[pos] = 1
                complete_c[pos] = now
                for consumer in self.consumers[pos]:
                    if dispatched[consumer] and not completed[consumer]:
                        remaining[consumer] -= 1
                        if remaining[consumer] == 0 and not sched_window:
                            if backend_prio and consumer in critical:
                                ready_critical.append(consumer)
                            else:
                                ready.append(consumer)

            # ---- issue ----
            if sched_window:
                # Restricted scheduler: out-of-order issue only among the
                # oldest `sched_window` unissued instructions.
                while pending_head < len(pending) \
                        and issue_c[pending[pending_head]] >= 0:
                    pending_head += 1
                if pending_head > 2048:
                    del pending[:pending_head]
                    pending_head = 0
                slots = config.issue_width
                caps = dict(fu_caps)
                window: List[int] = []
                idx = pending_head
                while idx < len(pending) and len(window) < sched_window:
                    pos = pending[idx]
                    if issue_c[pos] < 0:
                        window.append(pos)
                    idx += 1
                if backend_prio:
                    window.sort(key=lambda p: p not in critical)
                for pos in window:
                    if slots == 0:
                        break
                    if remaining[pos] != 0:
                        continue
                    instr = entries[pos].instr
                    fu = _FU_OF[instr.kind]
                    if caps[fu] <= 0:
                        continue
                    caps[fu] -= 1
                    slots -= 1
                    unissued -= 1
                    issue_c[pos] = now
                    latency = self._execute_latency(pos, instr)
                    completing.setdefault(now + latency, []).append(pos)
            elif ready or ready_critical:
                slots = config.issue_width
                caps = dict(fu_caps)
                queues = ((ready_critical, ready) if backend_prio
                          else (ready,))
                for queue in queues:
                    if not queue:
                        continue
                    leftovers: List[int] = []
                    for pos in queue:
                        if slots == 0:
                            leftovers.append(pos)
                            continue
                        instr = entries[pos].instr
                        fu = _FU_OF[instr.kind]
                        if caps[fu] <= 0:
                            leftovers.append(pos)
                            continue
                        caps[fu] -= 1
                        slots -= 1
                        unissued -= 1
                        issue_c[pos] = now
                        latency = self._execute_latency(pos, instr)
                        completing.setdefault(now + latency, []).append(pos)
                    queue[:] = leftovers

            # ---- dispatch / rename ----
            width = config.rename_width
            while width and decode_buffer and len(rob) - rob_head \
                    < config.rob_entries \
                    and unissued < config.issue_queue_entries:
                pos = decode_buffer.pop(0)
                unissued += 1
                dispatch_c[pos] = now
                dispatched[pos] = 1
                rem = 0
                for producer in self.producers[pos]:
                    if not completed[producer]:
                        rem += 1
                remaining[pos] = rem
                rob.append(pos)
                if sched_window:
                    pending.append(pos)
                elif rem == 0:
                    if backend_prio and pos in critical:
                        ready_critical.append(pos)
                    else:
                        ready.append(pos)
                width -= 1

            # ---- decode ----
            # The decoder processes fetch words: decode_width 32-bit parcels
            # per cycle, i.e. up to 2x as many Thumb16 instructions — the
            # decoder-side half of the "nearly doubled fetch bandwidth".
            decode_bytes = config.decode_width * 4
            while decode_bytes > 0 and fetch_buffer \
                    and len(decode_buffer) < decode_cap:
                pos = fetch_buffer[0]
                instr = entries[pos].instr
                size = instr.size_bytes
                if size > decode_bytes:
                    break
                if instr.opcode is Opcode.CDP:
                    fetch_buffer.pop(0)
                    decode_c[pos] = now
                    # The CDP is consumed at decode (mode switch); the
                    # paper's conservative +1 decode-cycle cost is modeled
                    # as a full extra parcel of decoder occupancy.
                    stats.cdp_decoded += 1
                    completed[pos] = 1  # never dispatched; commit skips it
                    complete_c[pos] = now
                    dispatch_c[pos] = now
                    issue_c[pos] = now
                    rob.append(pos)
                    dispatched[pos] = 1
                    decode_bytes -= size + 4 * config.cdp_decode_penalty
                    continue
                fetch_buffer.pop(0)
                decode_c[pos] = now
                decode_buffer.append(pos)
                decode_bytes -= size

            # ---- fetch ----
            if fetch_pos < n:
                if head_c[fetch_pos] < 0:
                    head_c[fetch_pos] = now
                is_crit_head = fetch_pos in critical
                if redirect_pos >= 0:
                    done = complete_c[redirect_pos]
                    if done >= 0 and done + config.redirect_penalty <= now:
                        redirect_pos = -1
                if redirect_pos >= 0:
                    fstall.stall_branch += 1
                    if is_crit_head:
                        fstall_crit.stall_branch += 1
                elif now < fetch_resume:
                    fstall.stall_switch += 1
                    if is_crit_head:
                        fstall_crit.stall_switch += 1
                elif now < icache_ready:
                    fstall.stall_icache += 1
                    if is_crit_head:
                        fstall_crit.stall_icache += 1
                elif len(fetch_buffer) >= fq_cap:
                    fstall.stall_backpressure += 1
                    if is_crit_head:
                        fstall_crit.stall_backpressure += 1
                else:
                    fetched, fetch_pos, last_line, icache_ready, \
                        fetch_resume, redirect_pos = self._fetch_group(
                            now, fetch_pos, last_line, fetch_buffer,
                            fq_cap, fetch_c, head_c, line_bytes,
                        )
                    if fetched:
                        fstall.active += 1
                        if is_crit_head:
                            fstall_crit.active += 1
                    else:
                        fstall.stall_icache += 1
                        if is_crit_head:
                            fstall_crit.stall_icache += 1
            else:
                fstall.drained += 1

            stats.iq_occupancy_sum += unissued
            if unissued >= config.issue_queue_entries:
                stats.iq_full_cycles += 1
            stats.rob_occupancy_sum += len(rob) - rob_head
            now += 1

        stats.cycles = now
        stats.instructions = committed
        self._finalize_memory_stats()
        return stats

    # -- helpers ---------------------------------------------------------------

    def _fetch_group(
        self, now: int, fetch_pos: int, last_line: int,
        fetch_buffer: List[int], fq_cap: int,
        fetch_c: List[int], head_c: List[int], line_bytes: int,
    ) -> Tuple[bool, int, int, int, int, int]:
        """Fetch up to fetch_bytes_per_cycle of instructions this cycle.

        Returns (fetched_any, new_fetch_pos, last_line, icache_ready,
        fetch_resume, redirect_pos).
        """
        config = self.config
        entries = self.entries
        mem = self.memory
        budget = config.fetch_bytes_per_cycle
        fetched = False
        icache_ready = 0
        fetch_resume = 0
        redirect_pos = -1
        n = self.n

        while fetch_pos < n and budget > 0 \
                and len(fetch_buffer) < fq_cap:
            entry = entries[fetch_pos]
            instr = entry.instr
            size = instr.size_bytes
            if size > budget:
                break
            line = entry.pc // line_bytes
            if line != last_line:
                latency = mem.ifetch(entry.pc, now)
                last_line = line
                if latency > mem.config.icache_hit:
                    icache_ready = now + latency
                    break
            budget -= size
            fetch_buffer.append(fetch_pos)
            fetch_c[fetch_pos] = now
            if head_c[fetch_pos] < 0:
                head_c[fetch_pos] = now
            fetched = True
            pos = fetch_pos
            fetch_pos += 1

            if instr.is_branch:
                stop, redirect_pos, fetch_resume = self._handle_branch(
                    pos, entry, now, line_bytes
                )
                if stop:
                    break
        return (fetched, fetch_pos, last_line, icache_ready,
                fetch_resume, redirect_pos)

    def _handle_branch(self, pos: int, entry, now: int,
                       line_bytes: int) -> Tuple[bool, int, int]:
        """Branch bookkeeping at fetch; returns (stop_group, redirect_pos,
        fetch_resume)."""
        config = self.config
        instr = entry.instr
        if _is_switch_branch(instr):
            # Approach-1 format switch: no misprediction, but the decoder
            # flushes its prefetched bytes around the mode change.
            return True, -1, now + 1 + config.switch_branch_bubble

        if instr.opcode is Opcode.BL:
            if pos + 1 < self.n:
                self.ras.push(entry.pc + instr.size_bytes)
                if self.efetch is not None:
                    target_line = self.entries[pos + 1].pc // line_bytes
                    for line in self.efetch.observe_call(target_line):
                        self.memory.prefetch_instruction_line(line)
                    self.stats.prefetches_issued = self.efetch.issued
            return True, -1, 0  # unconditional taken: group ends

        if instr.opcode is Opcode.BX:
            correct = self.ras.predict_return()
            if not correct:
                self.stats.branch_mispredicts += 1
                return True, pos, 0
            return True, -1, 0

        # conditional (or direct unconditional) B
        taken = bool(entry.taken)
        if instr.cond.is_predicated:
            correct = self.bpu.predict_conditional(entry.pc, taken)
            if not correct:
                self.stats.branch_mispredicts += 1
                return True, pos, 0
            return taken, -1, 0
        return taken, -1, 0

    def _execute_latency(self, pos: int, instr) -> int:
        """Execute latency including the memory system for loads/stores."""
        latency = instr.latency
        entry = self.entries[pos]
        if instr.is_load and entry.mem_addr is not None:
            latency = max(latency, self.memory.load(entry.mem_addr))
            if self.clpt is not None:
                prefetches = self.clpt.observe(
                    entry.pc, entry.mem_addr, pos in self.critical
                )
                for addr in prefetches:
                    self.memory.prefetch_data(addr)
                self.stats.prefetches_issued = self.clpt.issued
        elif instr.is_store and entry.mem_addr is not None:
            latency = max(latency, self.memory.store(entry.mem_addr))
        return max(1, latency)

    def _account_commit(self, pos: int, now: int, head_c, fetch_c,
                        decode_c, dispatch_c, issue_c, complete_c) -> None:
        """Accumulate per-stage residency at commit time."""
        issue_wait = issue_c[pos] - dispatch_c[pos]
        stages = (
            ("fetch", decode_c[pos] - head_c[pos]),
            ("decode", dispatch_c[pos] - decode_c[pos]),
            ("dispatch", 1 if issue_wait > 0 else 0),
            ("issue_wait", issue_wait - 1),
            ("execute", complete_c[pos] - issue_c[pos]),
            ("commit_wait", now - complete_c[pos]),
        )
        buckets = [self.stats.residency_all]
        if pos in self.critical:
            buckets.append(self.stats.residency_critical)
        if pos in self.chain:
            buckets.append(self.stats.residency_chain)
        for bucket in buckets:
            bucket.instructions += 1
            for stage, cycles in stages:
                if cycles > 0:
                    bucket.add(stage, cycles)

    def _finalize_memory_stats(self) -> None:
        stats = self.stats
        mem = self.memory
        stats.icache_accesses = mem.icache.stats.accesses
        stats.icache_misses = mem.icache.stats.misses
        stats.dcache_accesses = mem.dcache.stats.accesses
        stats.dcache_misses = mem.dcache.stats.misses
        stats.l2_accesses = mem.l2.stats.accesses
        stats.l2_misses = mem.l2.stats.misses
        stats.dram_reads = mem.dram.reads
        stats.branch_mispredicts += self.bpu.stats.cond_mispredicts


def simulate(
    trace: Trace,
    config: CpuConfig = GOOGLE_TABLET,
    critical_positions: Optional[Set[int]] = None,
    chain_positions: Optional[Set[int]] = None,
    max_cycles: Optional[int] = None,
    warm: bool = True,
) -> SimStats:
    """Convenience wrapper: build a Simulator and run it."""
    sim = Simulator(
        trace, config,
        critical_positions=critical_positions,
        chain_positions=chain_positions,
        warm=warm,
    )
    return sim.run(max_cycles=max_cycles)
