"""Cycle-level out-of-order superscalar pipeline (the gem5 stand-in).

Models the Table I Google-Tablet core: byte-granular fetch (so 16-bit Thumb
encodings double effective fetch bandwidth), i-cache and branch-prediction
driven supply stalls, a fetch queue whose back-pressure exposes
decode-to-commit congestion, a 128-entry ROB, dependence-driven wake-up,
FU-constrained issue, and in-order commit.

Stage processing order within a cycle is reverse-pipeline (commit,
writeback, issue, dispatch, decode, fetch), giving standard one-cycle
producer-to-consumer forwarding.

The simulator consumes a :class:`~repro.trace.dynamic.Trace` — the actual
executed path — and models *timing* faithfully: branch mispredictions stall
fetch until the branch resolves, i-cache misses stall supply, CDP format
switches cost a decode cycle, and Approach-1 switch branches inject fetch
bubbles.

Performance note: the cycle loop never touches :class:`Instruction` objects.
All per-entry facts it needs (byte size, FU class, base latency, branch
type, memory behaviour) are flattened into parallel arrays once per
``Simulator``, resolved per *static* instruction and broadcast over its
dynamic occurrences.  The loop then runs on plain list/bytearray indexing,
which is what lets the pure-Python model approach the paper's 100x500k
sample methodology at usable speed.
"""

from __future__ import annotations

import os
import weakref
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cpu.branch import ReturnAddressStack
from repro.cpu.config import CpuConfig, GOOGLE_TABLET
from repro.cpu.stats import STAGES, FetchStalls, SimStats, StageResidency
from repro.dfg.fanout import HIGH_FANOUT_THRESHOLD
from repro.isa.condition import Cond
from repro.isa.opcodes import InstrKind, Opcode
from repro.memory.hierarchy import MemorySystem
from repro.registry import BRANCH_PREDICTORS, PREFETCHERS
from repro.registry.protocols import PrefetcherBase
from repro.telemetry.recorder import (
    FlightRecorder,
    STALL_BACKPRESSURE,
    STALL_BRANCH,
    STALL_ICACHE,
    STALL_SWITCH,
)
from repro.trace.dependence import compute_consumers, compute_producers
from repro.trace.dynamic import Trace

#: FU class per InstrKind (branch and system ride the ALU pool's sidecar).
_FU_OF = {
    InstrKind.ALU: "alu",
    InstrKind.MUL: "mul",
    InstrKind.DIV: "mul",
    InstrKind.LOAD: "mem",
    InstrKind.STORE: "mem",
    InstrKind.BRANCH: "branch",
    InstrKind.FP: "fp",
    InstrKind.SYSTEM: "alu",
}

#: FU pool order used by the flattened per-entry FU-index array.
_FU_NAMES = ("alu", "mul", "fp", "mem", "branch")
_FU_INDEX = {name: i for i, name in enumerate(_FU_NAMES)}

#: Branch-type codes for the flattened per-entry array.
_BR_NONE = 0      # not a branch
_BR_SWITCH = 1    # Approach-1 format-switch branch
_BR_CALL = 2      # BL
_BR_RETURN = 3    # BX
_BR_OTHER = 4     # conditional or direct unconditional B


#: Forward-progress watchdog granularity: the pipeline state is
#: snapshotted every ``_WATCHDOG_PERIOD`` cycles, and two consecutive
#: snapshots with no commits, no fetch advance, and nothing in flight
#: mean the simulation can never finish.  Far above any real stall (the
#: longest modeled latency is a DRAM access, well under 1k cycles).
_WATCHDOG_PERIOD = 8192


class PipelineDeadlockError(RuntimeError):
    """The simulation made no forward progress and can never finish.

    Raised by the no-forward-progress watchdog instead of letting a
    ``run()`` without ``max_cycles`` spin toward ``1 << 62``.  The
    message carries the stuck state (cycle, commit point, buffer
    occupancies) for diagnosis.
    """


def _validator_from_env():
    """A strict :class:`repro.validate.RunValidator` when
    ``REPRO_VALIDATE`` is set (imported lazily: validation must cost
    nothing — not even an import — when off)."""
    value = os.environ.get("REPRO_VALIDATE", "").strip().lower()
    if value in ("", "0", "false", "off", "no"):
        return None
    from repro.validate.invariants import RunValidator
    return RunValidator()


def _is_switch_branch(instr) -> bool:
    """Approach-1 format-switch branch: unconditional B to the next PC."""
    return (instr.opcode is Opcode.B and instr.target is None
            and instr.cond is Cond.AL)


def _observes(prefetcher, method: str) -> bool:
    """Whether a prefetcher component overrides one observation point.

    Routing is decided once per simulator from the component's *class*,
    so the cycle loop only ever visits prefetchers that actually listen
    to the event in question.
    """
    impl = getattr(type(prefetcher), method, None)
    return impl is not None and impl is not getattr(PrefetcherBase, method)


class _TraceTables:
    """Flat per-entry arrays + dependence maps for one trace.

    Everything here is a pure function of the trace contents, so instances
    are memoized per-``Trace`` (weakly) and shared across every
    :class:`Simulator` built over the same trace — e.g. the Fig 11 hardware
    sweep simulates one trace on seven configurations and pays for this
    analysis once.  All fields are read-only to the simulator.
    """

    __slots__ = (
        "producers", "consumers", "default_critical",
        "sizes", "lats", "fus", "isld", "isst", "iscdp",
        "brt", "brpred", "pcs", "mems", "takens",
    )

    def __init__(self, trace: Trace):
        self.producers = compute_producers(trace)
        self.consumers = compute_consumers(self.producers)
        self.default_critical = frozenset(
            i for i, c in enumerate(self.consumers)
            if len(c) >= HIGH_FANOUT_THRESHOLD
        )

        entries = trace.entries
        n = len(entries)
        sizes = [0] * n
        lats = [0] * n
        fus = bytearray(n)
        isld = bytearray(n)
        isst = bytearray(n)
        iscdp = bytearray(n)
        brt = bytearray(n)
        brpred = bytearray(n)
        pcs = [0] * n
        mems: List[Optional[int]] = [None] * n
        takens = bytearray(n)

        # Static facts are resolved once per distinct instruction object
        # and broadcast over its dynamic occurrences.
        static_info: Dict[int, tuple] = {}
        info_get = static_info.get
        for pos, entry in enumerate(entries):
            instr = entry.instr
            info = info_get(id(instr))
            if info is None:
                kind = instr.kind
                br = _BR_NONE
                pred = False
                if kind is InstrKind.BRANCH:
                    op = instr.opcode
                    if _is_switch_branch(instr):
                        br = _BR_SWITCH
                    elif op is Opcode.BL:
                        br = _BR_CALL
                    elif op is Opcode.BX:
                        br = _BR_RETURN
                    else:
                        br = _BR_OTHER
                        pred = instr.cond.is_predicated
                info = (
                    instr.size_bytes, instr.latency, _FU_INDEX[_FU_OF[kind]],
                    instr.is_load, instr.is_store,
                    instr.opcode is Opcode.CDP, br, pred,
                )
                static_info[id(instr)] = info
            sizes[pos] = info[0]
            lats[pos] = info[1]
            fus[pos] = info[2]
            isld[pos] = info[3]
            isst[pos] = info[4]
            iscdp[pos] = info[5]
            brt[pos] = info[6]
            brpred[pos] = info[7]
            pcs[pos] = entry.pc
            mems[pos] = entry.mem_addr
            takens[pos] = bool(entry.taken)

        self.sizes = sizes
        self.lats = lats
        self.fus = fus
        self.isld = isld
        self.isst = isst
        self.iscdp = iscdp
        self.brt = brt
        self.brpred = brpred
        self.pcs = pcs
        self.mems = mems
        self.takens = takens


_trace_tables: "weakref.WeakKeyDictionary[Trace, _TraceTables]" = \
    weakref.WeakKeyDictionary()


def _tables_for(trace: Trace) -> _TraceTables:
    """Memoized :class:`_TraceTables` for ``trace``."""
    tables = _trace_tables.get(trace)
    if tables is None:
        tables = _TraceTables(trace)
        _trace_tables[trace] = tables
    return tables


class Simulator:
    """One run of one trace on one CPU configuration."""

    __slots__ = (
        "trace", "config", "memory", "entries", "n",
        "producers", "consumers", "critical", "chain",
        "bpu", "ras", "prefetchers", "stats", "recorder", "validator",
        "_t", "_crit", "_chainb",
        "_load_pfs", "_call_pfs", "_fetch_pfs",
    )

    def __init__(
        self,
        trace: Trace,
        config: CpuConfig = GOOGLE_TABLET,
        memory: Optional[MemorySystem] = None,
        critical_positions: Optional[Set[int]] = None,
        chain_positions: Optional[Set[int]] = None,
        warm: bool = True,
        recorder: Optional[FlightRecorder] = None,
        validator=None,
        validate: Optional[bool] = None,
    ):
        """
        Args:
            trace: the dynamic stream to execute.
            config: hardware configuration.
            memory: optionally share/warm a memory system; a fresh one is
                built from ``config.memory`` when omitted.
            critical_positions: positions counted as "critical" for scoped
                stats and criticality-driven baselines; computed from
                direct fanout (threshold 8) when omitted.
            chain_positions: positions that are CritIC members (scoped
                residency stats for Fig 10b analyses).
            recorder: pipeline flight recorder to feed with per-instruction
                stage timings and fetch-stall causes; defaults to a
                file-backed one when ``REPRO_FLIGHT_RECORDER`` is set.
                Purely observational — stats are identical with or
                without it.
            validator: a :class:`repro.validate.RunValidator` to check
                the finished run's invariants; like the recorder it is
                purely observational (stats are bit-identical with it on
                or off), but a strict validator raises
                :class:`repro.validate.InvariantViolationError` on any
                violation.
            validate: force validation on (``True``: a fresh strict
                validator) or off (``False``), overriding both the
                ``validator`` default and the ``REPRO_VALIDATE``
                environment switch; ``None`` defers to them.
        """
        self.trace = trace
        self.config = config
        self.memory = memory or MemorySystem(config.memory)
        if warm:
            self.memory.warm(trace)
        self.entries = trace.entries
        self.n = len(self.entries)

        tables = _tables_for(trace)
        self._t = tables
        self.producers = tables.producers
        self.consumers = tables.consumers
        if critical_positions is None:
            critical_positions = set(tables.default_critical)
        self.critical = critical_positions
        self.chain = chain_positions or set()

        n = self.n
        crit = bytearray(n)
        for pos in self.critical:
            if 0 <= pos < n:
                crit[pos] = 1
        self._crit = crit
        chainb = bytearray(n)
        for pos in self.chain:
            if 0 <= pos < n:
                chainb[pos] = 1
        self._chainb = chainb

        self.bpu = BRANCH_PREDICTORS.create(config.branch_predictor, config)
        self.ras = ReturnAddressStack(perfect=config.perfect_branch)
        # Compose the prefetcher set from the registry and route each
        # component to the observation points its class implements —
        # decided here, once, so the cycle loop never probes capabilities.
        self.prefetchers = tuple(
            PREFETCHERS.create(name, config)
            for name in config.active_prefetchers()
        )
        self._load_pfs = tuple(
            p for p in self.prefetchers if _observes(p, "observe_load"))
        self._call_pfs = tuple(
            p for p in self.prefetchers if _observes(p, "observe_call"))
        self._fetch_pfs = tuple(
            p for p in self.prefetchers if _observes(p, "observe_fetch"))
        self.recorder = recorder if recorder is not None \
            else FlightRecorder.from_env()
        if validate is False:
            self.validator = None
        elif validate is True and validator is None:
            from repro.validate.invariants import RunValidator
            self.validator = RunValidator()
        elif validator is not None:
            self.validator = validator
        else:
            self.validator = _validator_from_env()

        self.stats = SimStats(name=config.name)

    # -- main loop --------------------------------------------------------------

    def run(self, max_cycles: Optional[int] = None) -> SimStats:
        """Simulate to completion (or ``max_cycles``) and return stats."""
        n = self.n
        config = self.config
        mem = self.memory
        producers = self.producers
        consumers = self.consumers

        tables = self._t
        sizes = tables.sizes
        lats = tables.lats
        fus = tables.fus
        isld = tables.isld
        isst = tables.isst
        iscdp = tables.iscdp
        pcs = tables.pcs
        mems = tables.mems
        crit = self._crit
        chainb = self._chainb
        have_chain = bool(self.chain)

        mem_load = mem.load
        mem_store = mem.store
        load_pfs = self._load_pfs

        # timestamps (-1 = not yet)
        head_c = [-1] * n
        fetch_c = [-1] * n
        decode_c = [-1] * n
        dispatch_c = [-1] * n
        issue_c = [-1] * n
        complete_c = [-1] * n

        completed = bytearray(n)
        dispatched = bytearray(n)
        remaining = [0] * n

        # Flight-recorder/validator scratch: the commit column is only
        # allocated when an observer needs it, so the common path pays one
        # `is not None` test per commit/stall; neither observer ever feeds
        # back into timing.
        recorder = self.recorder
        validator = self.validator
        commit_c = [-1] * n \
            if recorder is not None or validator is not None else None
        stall_log: Optional[List[Tuple[int, int]]] = \
            [] if recorder is not None else None

        fetch_buffer: List[int] = []
        decode_buffer: List[int] = []
        rob: List[int] = []
        rob_head = 0
        ready: List[int] = []
        ready_critical: List[int] = []
        completing: Dict[int, List[int]] = {}
        completing_pop = completing.pop
        completing_get = completing.get
        sched_window = config.scheduling_window
        pending: List[int] = []
        pending_head = 0

        fetch_pos = 0
        unissued = 0
        icache_ready = 0
        fetch_resume = 0
        redirect_pos = -1
        last_line = -1
        line_bytes = mem.config.line_bytes

        decode_cap = config.decode_buffer_entries
        fq_cap = config.fetch_queue_entries
        backend_prio = config.backend_priority
        commit_width = config.commit_width
        rename_width = config.rename_width
        issue_width = config.issue_width
        rob_entries = config.rob_entries
        iq_entries = config.issue_queue_entries
        decode_width_bytes = config.decode_width * 4
        cdp_extra_bytes = 4 * config.cdp_decode_penalty
        redirect_penalty = config.redirect_penalty
        fu = config.fu
        fu_base = [fu.alu, fu.mul, fu.fp, fu.mem, fu.branch]

        def exec_latency(pos: int) -> int:
            """Execute latency including the memory system for loads/stores."""
            latency = lats[pos]
            if isld[pos]:
                addr = mems[pos]
                if addr is not None:
                    mlat = mem_load(addr)
                    if mlat > latency:
                        latency = mlat
                    if load_pfs:
                        critical = bool(crit[pos])
                        for pf in load_pfs:
                            for a in pf.observe_load(
                                    pcs[pos], addr, critical):
                                mem.prefetch_data(a)
            elif isst[pos]:
                addr = mems[pos]
                if addr is not None:
                    mlat = mem_store(addr)
                    if mlat > latency:
                        latency = mlat
            return latency if latency > 1 else 1

        stats = self.stats
        # Fetch-stall and occupancy counters accumulate in locals and flush
        # into the stats dataclasses once, after the loop.
        f_active = 0
        f_icache = 0
        f_branch = 0
        f_switch = 0
        f_bp = 0
        f_drained = 0
        fc_active = 0
        fc_icache = 0
        fc_branch = 0
        fc_switch = 0
        fc_bp = 0
        iq_occ_sum = 0
        iq_full = 0
        rob_occ_sum = 0
        cdp_decoded = 0
        # Per-stage residency accumulators (all / critical / chain classes).
        res_all = [0] * 6
        res_all_n = 0
        res_crit = [0] * 6
        res_crit_n = 0
        res_chain = [0] * 6
        res_chain_n = 0

        committed = 0
        now = 0
        limit = max_cycles if max_cycles is not None else 1 << 62
        # No-forward-progress watchdog state (see PipelineDeadlockError).
        wd_mask = _WATCHDOG_PERIOD - 1
        wd_committed = -1
        wd_fetch_pos = -1

        while committed < n and now < limit:
            # ---- commit ----
            width = commit_width
            while width and rob_head < len(rob):
                pos = rob[rob_head]
                if not completed[pos]:
                    break
                # Per-stage residency accounting, inlined and unrolled for
                # the common (non-critical, non-chain) case.
                iss = issue_c[pos]
                cmp_c = complete_c[pos]
                dsp = dispatch_c[pos]
                dec = decode_c[pos]
                issue_wait = iss - dsp
                res_all_n += 1
                v = dec - head_c[pos]
                if v > 0:
                    res_all[0] += v
                v = dsp - dec
                if v > 0:
                    res_all[1] += v
                if issue_wait > 0:
                    res_all[2] += 1
                    if issue_wait > 1:
                        res_all[3] += issue_wait - 1
                v = cmp_c - iss
                if v > 0:
                    res_all[4] += v
                v = now - cmp_c
                if v > 0:
                    res_all[5] += v
                if crit[pos] or (have_chain and chainb[pos]):
                    vals = (
                        dec - head_c[pos],
                        dsp - dec,
                        1 if issue_wait > 0 else 0,
                        issue_wait - 1,
                        cmp_c - iss,
                        now - cmp_c,
                    )
                    if crit[pos]:
                        res_crit_n += 1
                        for k in range(6):
                            v = vals[k]
                            if v > 0:
                                res_crit[k] += v
                    if have_chain and chainb[pos]:
                        res_chain_n += 1
                        for k in range(6):
                            v = vals[k]
                            if v > 0:
                                res_chain[k] += v
                if commit_c is not None:
                    commit_c[pos] = now
                rob_head += 1
                committed += 1
                width -= 1
            if rob_head > 4096:
                del rob[:rob_head]
                rob_head = 0

            # ---- writeback / wake-up ----
            done = completing_pop(now, None)
            if done is not None:
                for pos in done:
                    completed[pos] = 1
                    complete_c[pos] = now
                    for consumer in consumers[pos]:
                        if dispatched[consumer] and not completed[consumer]:
                            rem = remaining[consumer] - 1
                            remaining[consumer] = rem
                            if rem == 0 and not sched_window:
                                if backend_prio and crit[consumer]:
                                    ready_critical.append(consumer)
                                else:
                                    ready.append(consumer)

            # ---- issue ----
            if sched_window:
                # Restricted scheduler: out-of-order issue only among the
                # oldest `sched_window` unissued instructions.
                while pending_head < len(pending) \
                        and issue_c[pending[pending_head]] >= 0:
                    pending_head += 1
                if pending_head > 2048:
                    del pending[:pending_head]
                    pending_head = 0
                slots = issue_width
                caps = fu_base[:]
                window: List[int] = []
                idx = pending_head
                pending_len = len(pending)
                while idx < pending_len and len(window) < sched_window:
                    pos = pending[idx]
                    if issue_c[pos] < 0:
                        window.append(pos)
                    idx += 1
                if backend_prio:
                    window.sort(key=lambda p: not crit[p])
                for pos in window:
                    if slots == 0:
                        break
                    if remaining[pos] != 0:
                        continue
                    fu_i = fus[pos]
                    if caps[fu_i] <= 0:
                        continue
                    caps[fu_i] -= 1
                    slots -= 1
                    unissued -= 1
                    issue_c[pos] = now
                    t = now + exec_latency(pos)
                    lst = completing_get(t)
                    if lst is None:
                        completing[t] = [pos]
                    else:
                        lst.append(pos)
            elif ready or ready_critical:
                slots = issue_width
                caps = fu_base[:]
                queues = ((ready_critical, ready) if backend_prio
                          else (ready,))
                for queue in queues:
                    if not queue:
                        continue
                    leftovers: List[int] = []
                    for pos in queue:
                        if slots == 0:
                            leftovers.append(pos)
                            continue
                        fu_i = fus[pos]
                        if caps[fu_i] <= 0:
                            leftovers.append(pos)
                            continue
                        caps[fu_i] -= 1
                        slots -= 1
                        unissued -= 1
                        issue_c[pos] = now
                        t = now + exec_latency(pos)
                        lst = completing_get(t)
                        if lst is None:
                            completing[t] = [pos]
                        else:
                            lst.append(pos)
                    queue[:] = leftovers

            # ---- dispatch / rename ----
            width = rename_width
            while width and decode_buffer and len(rob) - rob_head \
                    < rob_entries \
                    and unissued < iq_entries:
                pos = decode_buffer.pop(0)
                unissued += 1
                dispatch_c[pos] = now
                dispatched[pos] = 1
                rem = 0
                for producer in producers[pos]:
                    if not completed[producer]:
                        rem += 1
                remaining[pos] = rem
                rob.append(pos)
                if sched_window:
                    pending.append(pos)
                elif rem == 0:
                    if backend_prio and crit[pos]:
                        ready_critical.append(pos)
                    else:
                        ready.append(pos)
                width -= 1

            # ---- decode ----
            # The decoder processes fetch words: decode_width 32-bit parcels
            # per cycle, i.e. up to 2x as many Thumb16 instructions — the
            # decoder-side half of the "nearly doubled fetch bandwidth".
            decode_bytes = decode_width_bytes
            while decode_bytes > 0 and fetch_buffer \
                    and len(decode_buffer) < decode_cap:
                pos = fetch_buffer[0]
                size = sizes[pos]
                if size > decode_bytes:
                    break
                if iscdp[pos]:
                    fetch_buffer.pop(0)
                    decode_c[pos] = now
                    # The CDP is consumed at decode (mode switch); the
                    # paper's conservative +1 decode-cycle cost is modeled
                    # as a full extra parcel of decoder occupancy.
                    cdp_decoded += 1
                    completed[pos] = 1  # never dispatched; commit skips it
                    complete_c[pos] = now
                    dispatch_c[pos] = now
                    issue_c[pos] = now
                    rob.append(pos)
                    dispatched[pos] = 1
                    decode_bytes -= size + cdp_extra_bytes
                    continue
                fetch_buffer.pop(0)
                decode_c[pos] = now
                decode_buffer.append(pos)
                decode_bytes -= size

            # ---- fetch ----
            if fetch_pos < n:
                if head_c[fetch_pos] < 0:
                    head_c[fetch_pos] = now
                is_crit_head = crit[fetch_pos]
                if redirect_pos >= 0:
                    done_c = complete_c[redirect_pos]
                    if done_c >= 0 and done_c + redirect_penalty <= now:
                        redirect_pos = -1
                if redirect_pos >= 0:
                    f_branch += 1
                    if is_crit_head:
                        fc_branch += 1
                    if stall_log is not None:
                        stall_log.append((now, STALL_BRANCH))
                elif now < fetch_resume:
                    f_switch += 1
                    if is_crit_head:
                        fc_switch += 1
                    if stall_log is not None:
                        stall_log.append((now, STALL_SWITCH))
                elif now < icache_ready:
                    f_icache += 1
                    if is_crit_head:
                        fc_icache += 1
                    if stall_log is not None:
                        stall_log.append((now, STALL_ICACHE))
                elif len(fetch_buffer) >= fq_cap:
                    f_bp += 1
                    if is_crit_head:
                        fc_bp += 1
                    if stall_log is not None:
                        stall_log.append((now, STALL_BACKPRESSURE))
                else:
                    fetched, fetch_pos, last_line, icache_ready, \
                        fetch_resume, redirect_pos = self._fetch_group(
                            now, fetch_pos, last_line, fetch_buffer,
                            fq_cap, fetch_c, head_c, line_bytes,
                        )
                    if fetched:
                        f_active += 1
                        if is_crit_head:
                            fc_active += 1
                    else:
                        f_icache += 1
                        if is_crit_head:
                            fc_icache += 1
                        if stall_log is not None:
                            stall_log.append((now, STALL_ICACHE))
            else:
                f_drained += 1

            iq_occ_sum += unissued
            if unissued >= iq_entries:
                iq_full += 1
            rob_occ_sum += len(rob) - rob_head

            # Watchdog: with nothing in flight and neither the commit
            # point nor the fetch point moving for a whole period, no
            # future cycle can differ from this one — fail loudly instead
            # of spinning toward the cycle limit.
            if now & wd_mask == wd_mask:
                if committed == wd_committed and fetch_pos == wd_fetch_pos \
                        and not completing:
                    raise PipelineDeadlockError(
                        f"no forward progress in {_WATCHDOG_PERIOD} "
                        f"cycles at cycle {now}: committed {committed}/"
                        f"{n}, fetch_pos={fetch_pos}, "
                        f"rob={len(rob) - rob_head}, unissued={unissued}, "
                        f"fetch_buffer={len(fetch_buffer)}, "
                        f"decode_buffer={len(decode_buffer)}, "
                        f"redirect_pos={redirect_pos} "
                        f"(trace {self.trace.name!r} on {config.name!r})"
                    )
                wd_committed = committed
                wd_fetch_pos = fetch_pos
            now += 1

        stats.cycles = now
        stats.instructions = committed
        stats.truncated = committed < n
        stats.cdp_decoded += cdp_decoded
        stats.iq_occupancy_sum += iq_occ_sum
        stats.iq_full_cycles += iq_full
        stats.rob_occupancy_sum += rob_occ_sum

        fstall = stats.fetch
        fstall.active += f_active
        fstall.stall_icache += f_icache
        fstall.stall_branch += f_branch
        fstall.stall_switch += f_switch
        fstall.stall_backpressure += f_bp
        fstall.drained += f_drained
        fstall_crit = stats.fetch_critical
        fstall_crit.active += fc_active
        fstall_crit.stall_icache += fc_icache
        fstall_crit.stall_branch += fc_branch
        fstall_crit.stall_switch += fc_switch
        fstall_crit.stall_backpressure += fc_bp

        for bucket, totals, count in (
            (stats.residency_all, res_all, res_all_n),
            (stats.residency_critical, res_crit, res_crit_n),
            (stats.residency_chain, res_chain, res_chain_n),
        ):
            bucket.instructions += count
            for stage, cycles in zip(STAGES, totals):
                if cycles:
                    bucket.totals[stage] += cycles

        self._finalize_memory_stats()

        if recorder is not None:
            recorder.on_run(
                trace_name=self.trace.name,
                config_name=config.name,
                cycles=now,
                instructions=committed,
                pcs=pcs,
                head=head_c,
                fetch=fetch_c,
                decode=decode_c,
                dispatch=dispatch_c,
                issue=issue_c,
                complete=complete_c,
                commit=commit_c,
                stalls=stall_log,
            )
        if validator is not None:
            validator.on_run(
                trace_name=self.trace.name,
                config_name=config.name,
                stats=stats,
                n=n,
                head=head_c,
                fetch=fetch_c,
                decode=decode_c,
                dispatch=dispatch_c,
                issue=issue_c,
                complete=complete_c,
                commit=commit_c,
            )
        return stats

    # -- helpers ---------------------------------------------------------------

    def _fetch_group(
        self, now: int, fetch_pos: int, last_line: int,
        fetch_buffer: List[int], fq_cap: int,
        fetch_c: List[int], head_c: List[int], line_bytes: int,
    ) -> Tuple[bool, int, int, int, int, int]:
        """Fetch up to fetch_bytes_per_cycle of instructions this cycle.

        Returns (fetched_any, new_fetch_pos, last_line, icache_ready,
        fetch_resume, redirect_pos).
        """
        config = self.config
        mem = self.memory
        tables = self._t
        sizes = tables.sizes
        pcs = tables.pcs
        brts = tables.brt
        budget = config.fetch_bytes_per_cycle
        fetched = False
        icache_ready = 0
        fetch_resume = 0
        redirect_pos = -1
        n = self.n
        icache_hit = mem.config.icache_hit
        buffered = len(fetch_buffer)
        fetch_pfs = self._fetch_pfs
        crit = self._crit

        while fetch_pos < n and budget > 0 and buffered < fq_cap:
            size = sizes[fetch_pos]
            if size > budget:
                break
            pc = pcs[fetch_pos]
            line = pc // line_bytes
            if line != last_line:
                latency = mem.ifetch(pc, now)
                last_line = line
                if fetch_pfs:
                    critical = bool(crit[fetch_pos])
                    for pf in fetch_pfs:
                        for ln in pf.observe_fetch(line, critical):
                            mem.prefetch_instruction_line(ln)
                if latency > icache_hit:
                    icache_ready = now + latency
                    break
            budget -= size
            fetch_buffer.append(fetch_pos)
            buffered += 1
            fetch_c[fetch_pos] = now
            if head_c[fetch_pos] < 0:
                head_c[fetch_pos] = now
            fetched = True
            pos = fetch_pos
            fetch_pos += 1

            if brts[pos]:
                stop, redirect_pos, fetch_resume = self._handle_branch(
                    pos, now, line_bytes
                )
                if stop:
                    break
        return (fetched, fetch_pos, last_line, icache_ready,
                fetch_resume, redirect_pos)

    def _handle_branch(self, pos: int, now: int,
                       line_bytes: int) -> Tuple[bool, int, int]:
        """Branch bookkeeping at fetch; returns (stop_group, redirect_pos,
        fetch_resume)."""
        tables = self._t
        brt = tables.brt[pos]
        if brt == _BR_SWITCH:
            # Approach-1 format switch: no misprediction, but the decoder
            # flushes its prefetched bytes around the mode change.
            return True, -1, now + 1 + self.config.switch_branch_bubble

        if brt == _BR_CALL:
            if pos + 1 < self.n:
                self.ras.push(tables.pcs[pos] + tables.sizes[pos])
                if self._call_pfs:
                    target_line = tables.pcs[pos + 1] // line_bytes
                    for pf in self._call_pfs:
                        for line in pf.observe_call(target_line):
                            self.memory.prefetch_instruction_line(line)
            return True, -1, 0  # unconditional taken: group ends

        if brt == _BR_RETURN:
            correct = self.ras.predict_return()
            if not correct:
                self.stats.branch_mispredicts += 1
                return True, pos, 0
            return True, -1, 0

        # conditional (or direct unconditional) B
        taken = bool(tables.takens[pos])
        if tables.brpred[pos]:
            correct = self.bpu.predict_conditional(tables.pcs[pos], taken)
            if not correct:
                self.stats.branch_mispredicts += 1
                return True, pos, 0
            return taken, -1, 0
        return taken, -1, 0

    def _finalize_memory_stats(self) -> None:
        stats = self.stats
        mem = self.memory
        stats.icache_accesses = mem.icache.stats.accesses
        stats.icache_misses = mem.icache.stats.misses
        stats.dcache_accesses = mem.dcache.stats.accesses
        stats.dcache_misses = mem.dcache.stats.misses
        stats.l2_accesses = mem.l2.stats.accesses
        stats.l2_misses = mem.l2.stats.misses
        stats.dram_reads = mem.dram.reads
        stats.branch_mispredicts += self.bpu.stats.cond_mispredicts
        # Per-prefetcher counts stay distinct (they used to race for one
        # field: the last observe() won when CLPT and EFetch were both
        # enabled); the combined counter is their sum.  The historical
        # components keep their dedicated SimStats fields; every other
        # registered prefetcher reports under ``component_counters``.
        total = 0
        for pf in self.prefetchers:
            total += pf.issued
            if pf.name == "clpt":
                stats.clpt_prefetches_issued = pf.issued
            elif pf.name == "efetch":
                stats.efetch_prefetches_issued = pf.issued
            else:
                stats.component_counters[f"prefetch.{pf.name}"] = pf.issued
        stats.prefetches_issued = total


def simulate(
    trace: Trace,
    config: CpuConfig = GOOGLE_TABLET,
    critical_positions: Optional[Set[int]] = None,
    chain_positions: Optional[Set[int]] = None,
    max_cycles: Optional[int] = None,
    warm: bool = True,
    recorder: Optional[FlightRecorder] = None,
    validator=None,
    validate: Optional[bool] = None,
    engine: Optional[str] = None,
) -> SimStats:
    """Convenience wrapper: build a Simulator and run it.

    ``validate=True`` attaches a strict invariant checker to this run
    (``False`` forces it off; ``None`` defers to an explicit
    ``validator`` or the ``REPRO_VALIDATE`` environment switch).  See
    :mod:`repro.validate`.

    ``engine`` selects the simulation engine from the
    :data:`repro.registry.SIMULATORS` registry (``None`` defers to
    ``REPRO_SIM_ENGINE``, else ``inline``).  Engines are bit-identical;
    see :mod:`repro.cpu.engines`.
    """
    resolved = (engine or os.environ.get("REPRO_SIM_ENGINE", "")).strip() \
        or "inline"
    if resolved != "inline":
        from repro.registry import SIMULATORS
        return SIMULATORS.create(resolved)(
            trace, config,
            critical_positions=critical_positions,
            chain_positions=chain_positions,
            max_cycles=max_cycles,
            warm=warm,
            recorder=recorder,
            validator=validator,
            validate=validate,
        )
    sim = Simulator(
        trace, config,
        critical_positions=critical_positions,
        chain_positions=chain_positions,
        warm=warm,
        recorder=recorder,
        validator=validator,
        validate=validate,
    )
    return sim.run(max_cycles=max_cycles)
