/* C twin of the pure-Python cycle kernel in _batchkernel.py.
 *
 * Compiled on demand by repro.cpu._batchkernel.get_kernel() with the
 * system C compiler (cc -O2 -shared -fPIC) and loaded via ctypes; it
 * must stay a line-for-line transcription of advance_cell() — the
 * Python kernel is the executable specification, and the test suite
 * runs both against the inline simulator's golden numbers.
 *
 * Return codes: 0 done, 1 horizon reached, 2 deadlock, 3 ring overflow.
 */

/* register layout — must match _batchkernel.py exactly */
#define R_NOW 0
#define R_COMMITTED 1
#define R_FETCH_POS 2
#define R_ICACHE_READY 3
#define R_FETCH_RESUME 4
#define R_REDIRECT_POS 5
#define R_ROB_HEAD 6
#define R_ROB_TAIL 7
#define R_FQ_HEAD 8
#define R_FQ_TAIL 9
#define R_DQ_HEAD 10
#define R_DQ_TAIL 11
#define R_PEND_HEAD 12
#define R_PEND_TAIL 13
#define R_READY_N 14
#define R_READYC_N 15
#define R_UNISSUED 16
#define R_NEXT_EV 17
#define R_INFLIGHT 18
#define R_WD_COMMITTED 19
#define R_WD_FETCH_POS 20
#define R_F_ACTIVE 21
#define R_F_ICACHE 22
#define R_F_BRANCH 23
#define R_F_SWITCH 24
#define R_F_BP 25
#define R_F_DRAINED 26
#define R_FC_ACTIVE 27
#define R_FC_ICACHE 28
#define R_FC_BRANCH 29
#define R_FC_SWITCH 30
#define R_FC_BP 31
#define R_IQ_OCC_SUM 32
#define R_IQ_FULL 33
#define R_ROB_OCC_SUM 34
#define R_CDP_DECODED 35
#define R_DC_ACC 36
#define R_DC_MISS 37
#define R_L2D_ACC 38
#define R_COMMIT_W 39
#define R_RENAME_W 40
#define R_ISSUE_W 41
#define R_ROB_ENTRIES 42
#define R_IQ_ENTRIES 43
#define R_DECODE_BYTES 44
#define R_CDP_EXTRA 45
#define R_FETCH_BYTES 46
#define R_FQ_CAP 47
#define R_DECODE_CAP 48
#define R_SCHED_WIN 49
#define R_BACKEND_PRIO 50
#define R_REDIRECT_PEN 51
#define R_SWITCH_BUBBLE 52
#define R_FU_ALU 53
#define R_FU_MUL 54
#define R_FU_FP 55
#define R_FU_MEM 56
#define R_FU_BRANCH 57
#define R_ICACHE_HIT 58
#define R_L2_HIT 59
#define R_DCACHE_HIT 60
#define R_DC_SETS 61
#define R_DC_ASSOC 62
#define R_ROB_MASK 63
#define R_FQ_MASK 64
#define R_DQ_MASK 65
#define R_PEND_MASK 66
#define R_WHEEL_MASK 67

#define FLAG_LOAD 1
#define FLAG_STORE 2
#define FLAG_CDP 4

#define WD_MASK 8191

typedef long long i64;
typedef int i32;
typedef unsigned char u8;

i64 repro_batch_advance(
    i64 n, i64 max_now,
    /* shared (read-only) */
    const i32 *sizes, const i32 *lats, const u8 *fus, const u8 *flags,
    const u8 *bact, const u8 *crit,
    const i32 *iev, const u8 *ev_kind, const i32 *ev_lat,
    const i32 *ev_creator,
    const i32 *prod_ptr, const i32 *prod_idx,
    const i32 *cons_ptr, const i32 *cons_idx,
    const i32 *d_set, const i64 *d_tag,
    /* cell (mutable) */
    i64 *regs, i64 *head_c, i64 *fetch_c, i64 *decode_c, i64 *dispatch_c,
    i64 *issue_c, i64 *complete_c, i64 *commit_c,
    u8 *completed, u8 *dispatched, i32 *remaining,
    i32 *rob, i32 *fq, i32 *dq, i32 *pending, i32 *ready, i32 *readyc,
    i32 *wheel_head, i32 *wheel_tail, i32 *next_comp, i64 *ev_time,
    i64 *dc_tags, i32 *dc_occ, i32 *window)
{
    i64 now = regs[R_NOW];
    i64 committed = regs[R_COMMITTED];
    i64 fetch_pos = regs[R_FETCH_POS];
    i64 icache_ready = regs[R_ICACHE_READY];
    i64 fetch_resume = regs[R_FETCH_RESUME];
    i64 redirect_pos = regs[R_REDIRECT_POS];
    i64 rob_head = regs[R_ROB_HEAD];
    i64 rob_tail = regs[R_ROB_TAIL];
    i64 fq_head = regs[R_FQ_HEAD];
    i64 fq_tail = regs[R_FQ_TAIL];
    i64 dq_head = regs[R_DQ_HEAD];
    i64 dq_tail = regs[R_DQ_TAIL];
    i64 pend_head = regs[R_PEND_HEAD];
    i64 pend_tail = regs[R_PEND_TAIL];
    i64 nready = regs[R_READY_N];
    i64 nreadyc = regs[R_READYC_N];
    i64 unissued = regs[R_UNISSUED];
    i64 next_ev = regs[R_NEXT_EV];
    i64 in_flight = regs[R_INFLIGHT];
    i64 wd_committed = regs[R_WD_COMMITTED];
    i64 wd_fetch_pos = regs[R_WD_FETCH_POS];

    i64 f_active = regs[R_F_ACTIVE];
    i64 f_icache = regs[R_F_ICACHE];
    i64 f_branch = regs[R_F_BRANCH];
    i64 f_switch = regs[R_F_SWITCH];
    i64 f_bp = regs[R_F_BP];
    i64 f_drained = regs[R_F_DRAINED];
    i64 fc_active = regs[R_FC_ACTIVE];
    i64 fc_icache = regs[R_FC_ICACHE];
    i64 fc_branch = regs[R_FC_BRANCH];
    i64 fc_switch = regs[R_FC_SWITCH];
    i64 fc_bp = regs[R_FC_BP];
    i64 iq_occ_sum = regs[R_IQ_OCC_SUM];
    i64 iq_full = regs[R_IQ_FULL];
    i64 rob_occ_sum = regs[R_ROB_OCC_SUM];
    i64 cdp_decoded = regs[R_CDP_DECODED];
    i64 dc_acc = regs[R_DC_ACC];
    i64 dc_miss = regs[R_DC_MISS];
    i64 l2d_acc = regs[R_L2D_ACC];

    const i64 commit_w = regs[R_COMMIT_W];
    const i64 rename_w = regs[R_RENAME_W];
    const i64 issue_w = regs[R_ISSUE_W];
    const i64 rob_entries = regs[R_ROB_ENTRIES];
    const i64 iq_entries = regs[R_IQ_ENTRIES];
    const i64 decode_bytes_w = regs[R_DECODE_BYTES];
    const i64 cdp_extra = regs[R_CDP_EXTRA];
    const i64 fetch_bytes = regs[R_FETCH_BYTES];
    const i64 fq_cap = regs[R_FQ_CAP];
    const i64 decode_cap = regs[R_DECODE_CAP];
    const i64 sched_win = regs[R_SCHED_WIN];
    const i64 backend_prio = regs[R_BACKEND_PRIO];
    const i64 redirect_pen = regs[R_REDIRECT_PEN];
    const i64 switch_bubble = regs[R_SWITCH_BUBBLE];
    i64 fu_base[5];
    const i64 icache_hit = regs[R_ICACHE_HIT];
    const i64 l2_hit = regs[R_L2_HIT];
    const i64 dcache_hit = regs[R_DCACHE_HIT];
    const i64 dc_assoc = regs[R_DC_ASSOC];
    const i64 rob_mask = regs[R_ROB_MASK];
    const i64 fq_mask = regs[R_FQ_MASK];
    const i64 dq_mask = regs[R_DQ_MASK];
    const i64 pend_mask = regs[R_PEND_MASK];
    const i64 wheel_mask = regs[R_WHEEL_MASK];

    i64 status = 1;
    i64 caps[5];
    fu_base[0] = regs[R_FU_ALU];
    fu_base[1] = regs[R_FU_MUL];
    fu_base[2] = regs[R_FU_FP];
    fu_base[3] = regs[R_FU_MEM];
    fu_base[4] = regs[R_FU_BRANCH];

    for (;;) {
        if (committed >= n) { status = 0; break; }
        if (now >= max_now) { status = 1; break; }

        /* ---- commit ---- */
        {
            i64 width = commit_w;
            while (width && rob_head != rob_tail) {
                i64 pos = rob[rob_head & rob_mask];
                if (!completed[pos]) break;
                commit_c[pos] = now;
                rob_head += 1;
                committed += 1;
                width -= 1;
            }
        }

        /* ---- writeback / wake-up ---- */
        {
            i64 slot = now & wheel_mask;
            i64 link = wheel_head[slot];
            if (link) {
                wheel_head[slot] = 0;
                wheel_tail[slot] = 0;
                while (link) {
                    i64 pos = link - 1;
                    i64 k;
                    completed[pos] = 1;
                    complete_c[pos] = now;
                    in_flight -= 1;
                    for (k = cons_ptr[pos]; k < cons_ptr[pos + 1]; k++) {
                        i64 consumer = cons_idx[k];
                        if (dispatched[consumer]
                                && !completed[consumer]) {
                            i64 rem = remaining[consumer] - 1;
                            remaining[consumer] = (i32)rem;
                            if (rem == 0 && !sched_win) {
                                if (backend_prio && crit[consumer]) {
                                    readyc[nreadyc++] = (i32)consumer;
                                } else {
                                    ready[nready++] = (i32)consumer;
                                }
                            }
                        }
                    }
                    link = next_comp[pos];
                }
            }
        }

        /* ---- issue ---- */
        if (sched_win) {
            i64 slots = issue_w;
            i64 wn = 0, wcrit = 0, idx, i;
            while (pend_head != pend_tail
                    && issue_c[pending[pend_head & pend_mask]] >= 0)
                pend_head += 1;
            caps[0] = fu_base[0]; caps[1] = fu_base[1];
            caps[2] = fu_base[2]; caps[3] = fu_base[3];
            caps[4] = fu_base[4];
            idx = pend_head;
            while (idx != pend_tail && wn < sched_win) {
                i64 pos = pending[idx & pend_mask];
                if (issue_c[pos] < 0) window[wn++] = (i32)pos;
                idx += 1;
            }
            if (backend_prio && wn) {
                /* stable critical-first partition into the scratch
                 * upper half, then copy back */
                i64 m = 0;
                for (i = 0; i < wn; i++)
                    if (crit[window[i]]) window[wn + m++] = window[i];
                wcrit = m;
                for (i = 0; i < wn; i++)
                    if (!crit[window[i]]) window[wn + m++] = window[i];
                for (i = 0; i < wn; i++) window[i] = window[wn + i];
                (void)wcrit;
            }
            for (i = 0; i < wn; i++) {
                i64 pos = window[i];
                i64 latency, t, slot2, tail;
                i64 flag;
                if (slots == 0) break;
                if (remaining[pos] != 0) continue;
                if (caps[fus[pos]] <= 0) continue;
                caps[fus[pos]] -= 1;
                slots -= 1;
                unissued -= 1;
                issue_c[pos] = now;
                latency = lats[pos];
                flag = flags[pos];
                if (flag & 3) {
                    i64 tag = d_tag[pos];
                    if (tag >= 0) {
                        i64 base = (i64)d_set[pos] * dc_assoc;
                        i64 occ = dc_occ[d_set[pos]];
                        i64 way = -1, w, mlat;
                        dc_acc += 1;
                        for (w = 0; w < occ; w++) {
                            if (dc_tags[base + w] == tag) { way = w; break; }
                        }
                        if (way >= 0) {
                            for (w = way; w > 0; w--)
                                dc_tags[base + w] = dc_tags[base + w - 1];
                            dc_tags[base] = tag;
                            mlat = dcache_hit;
                        } else {
                            i64 end;
                            dc_miss += 1;
                            l2d_acc += 1;
                            if (occ < dc_assoc) {
                                dc_occ[d_set[pos]] = (i32)(occ + 1);
                                end = occ;
                            } else {
                                end = dc_assoc - 1;
                            }
                            for (w = end; w > 0; w--)
                                dc_tags[base + w] = dc_tags[base + w - 1];
                            dc_tags[base] = tag;
                            mlat = (flag & FLAG_LOAD)
                                ? dcache_hit + l2_hit : dcache_hit;
                        }
                        if (mlat > latency) latency = mlat;
                    }
                }
                if (latency < 1) latency = 1;
                t = now + latency;
                slot2 = t & wheel_mask;
                tail = wheel_tail[slot2];
                if (tail) next_comp[tail - 1] = (i32)(pos + 1);
                else wheel_head[slot2] = (i32)(pos + 1);
                wheel_tail[slot2] = (i32)(pos + 1);
                next_comp[pos] = 0;
                in_flight += 1;
            }
        } else if (nready || nreadyc) {
            i64 slots = issue_w;
            i64 q;
            caps[0] = fu_base[0]; caps[1] = fu_base[1];
            caps[2] = fu_base[2]; caps[3] = fu_base[3];
            caps[4] = fu_base[4];
            for (q = backend_prio ? 1 : 0; q >= 0; q--) {
                i32 *queue = q ? readyc : ready;
                i64 count = q ? nreadyc : nready;
                i64 kept = 0, i;
                if (!count) continue;
                for (i = 0; i < count; i++) {
                    i64 pos = queue[i];
                    i64 latency, t, slot2, tail, flag;
                    if (slots == 0 || caps[fus[pos]] <= 0) {
                        queue[kept++] = (i32)pos;
                        continue;
                    }
                    caps[fus[pos]] -= 1;
                    slots -= 1;
                    unissued -= 1;
                    issue_c[pos] = now;
                    latency = lats[pos];
                    flag = flags[pos];
                    if (flag & 3) {
                        i64 tag = d_tag[pos];
                        if (tag >= 0) {
                            i64 base = (i64)d_set[pos] * dc_assoc;
                            i64 occ = dc_occ[d_set[pos]];
                            i64 way = -1, w, mlat;
                            dc_acc += 1;
                            for (w = 0; w < occ; w++) {
                                if (dc_tags[base + w] == tag) {
                                    way = w; break;
                                }
                            }
                            if (way >= 0) {
                                for (w = way; w > 0; w--)
                                    dc_tags[base + w] =
                                        dc_tags[base + w - 1];
                                dc_tags[base] = tag;
                                mlat = dcache_hit;
                            } else {
                                i64 end;
                                dc_miss += 1;
                                l2d_acc += 1;
                                if (occ < dc_assoc) {
                                    dc_occ[d_set[pos]] = (i32)(occ + 1);
                                    end = occ;
                                } else {
                                    end = dc_assoc - 1;
                                }
                                for (w = end; w > 0; w--)
                                    dc_tags[base + w] =
                                        dc_tags[base + w - 1];
                                dc_tags[base] = tag;
                                mlat = (flag & FLAG_LOAD)
                                    ? dcache_hit + l2_hit : dcache_hit;
                            }
                            if (mlat > latency) latency = mlat;
                        }
                    }
                    if (latency < 1) latency = 1;
                    t = now + latency;
                    slot2 = t & wheel_mask;
                    tail = wheel_tail[slot2];
                    if (tail) next_comp[tail - 1] = (i32)(pos + 1);
                    else wheel_head[slot2] = (i32)(pos + 1);
                    wheel_tail[slot2] = (i32)(pos + 1);
                    next_comp[pos] = 0;
                    in_flight += 1;
                }
                if (q) nreadyc = kept;
                else nready = kept;
            }
        }

        /* ---- dispatch / rename ---- */
        {
            i64 width = rename_w;
            while (width && dq_head != dq_tail
                    && rob_tail - rob_head < rob_entries
                    && unissued < iq_entries) {
                i64 pos = dq[dq_head & dq_mask];
                i64 rem = 0, k;
                dq_head += 1;
                unissued += 1;
                dispatch_c[pos] = now;
                dispatched[pos] = 1;
                for (k = prod_ptr[pos]; k < prod_ptr[pos + 1]; k++)
                    if (!completed[prod_idx[k]]) rem += 1;
                remaining[pos] = (i32)rem;
                if (rob_tail - rob_head > rob_mask) return 3;
                rob[rob_tail & rob_mask] = (i32)pos;
                rob_tail += 1;
                if (sched_win) {
                    if (pend_tail - pend_head > pend_mask) return 3;
                    pending[pend_tail & pend_mask] = (i32)pos;
                    pend_tail += 1;
                } else if (rem == 0) {
                    if (backend_prio && crit[pos]) {
                        readyc[nreadyc++] = (i32)pos;
                    } else {
                        ready[nready++] = (i32)pos;
                    }
                }
                width -= 1;
            }
        }

        /* ---- decode ---- */
        {
            i64 decode_bytes = decode_bytes_w;
            while (decode_bytes > 0 && fq_head != fq_tail
                    && dq_tail - dq_head < decode_cap) {
                i64 pos = fq[fq_head & fq_mask];
                i64 size = sizes[pos];
                if (size > decode_bytes) break;
                if (flags[pos] & FLAG_CDP) {
                    fq_head += 1;
                    decode_c[pos] = now;
                    cdp_decoded += 1;
                    completed[pos] = 1;
                    complete_c[pos] = now;
                    dispatch_c[pos] = now;
                    issue_c[pos] = now;
                    if (rob_tail - rob_head > rob_mask) return 3;
                    rob[rob_tail & rob_mask] = (i32)pos;
                    rob_tail += 1;
                    dispatched[pos] = 1;
                    decode_bytes -= size + cdp_extra;
                    continue;
                }
                fq_head += 1;
                decode_c[pos] = now;
                dq[dq_tail & dq_mask] = (i32)pos;
                dq_tail += 1;
                decode_bytes -= size;
            }
        }

        /* ---- fetch ---- */
        if (fetch_pos < n) {
            i64 is_crit_head;
            if (head_c[fetch_pos] < 0) head_c[fetch_pos] = now;
            is_crit_head = crit[fetch_pos];
            if (redirect_pos >= 0) {
                i64 done_c = complete_c[redirect_pos];
                if (done_c >= 0 && done_c + redirect_pen <= now)
                    redirect_pos = -1;
            }
            if (redirect_pos >= 0) {
                f_branch += 1;
                if (is_crit_head) fc_branch += 1;
            } else if (now < fetch_resume) {
                f_switch += 1;
                if (is_crit_head) fc_switch += 1;
            } else if (now < icache_ready) {
                f_icache += 1;
                if (is_crit_head) fc_icache += 1;
            } else if (fq_tail - fq_head >= fq_cap) {
                f_bp += 1;
                if (is_crit_head) fc_bp += 1;
            } else {
                i64 budget = fetch_bytes;
                i64 fetched = 0;
                i64 buffered = fq_tail - fq_head;
                icache_ready = 0;
                fetch_resume = 0;
                redirect_pos = -1;
                while (fetch_pos < n && budget > 0 && buffered < fq_cap) {
                    i64 size = sizes[fetch_pos];
                    i64 ev, pos, action;
                    if (size > budget) break;
                    ev = iev[fetch_pos];
                    if (ev >= next_ev) {
                        i64 latency;
                        ev_time[ev] = now;
                        next_ev = ev + 1;
                        if (ev_kind[ev]) {
                            i64 residual = ev_time[ev_creator[ev]]
                                + l2_hit - now;
                            if (residual < 0) residual = 0;
                            latency = icache_hit + residual;
                        } else {
                            latency = ev_lat[ev];
                        }
                        if (latency > icache_hit) {
                            icache_ready = now + latency;
                            break;
                        }
                    }
                    budget -= size;
                    fq[fq_tail & fq_mask] = (i32)fetch_pos;
                    fq_tail += 1;
                    buffered += 1;
                    fetch_c[fetch_pos] = now;
                    if (head_c[fetch_pos] < 0) head_c[fetch_pos] = now;
                    fetched = 1;
                    pos = fetch_pos;
                    fetch_pos += 1;
                    action = bact[pos];
                    if (action) {
                        if (action == 1) break;
                        if (action == 2) { redirect_pos = pos; break; }
                        fetch_resume = now + 1 + switch_bubble;
                        break;
                    }
                }
                if (fetched) {
                    f_active += 1;
                    if (is_crit_head) fc_active += 1;
                } else {
                    f_icache += 1;
                    if (is_crit_head) fc_icache += 1;
                }
            }
        } else {
            f_drained += 1;
        }

        iq_occ_sum += unissued;
        if (unissued >= iq_entries) iq_full += 1;
        rob_occ_sum += rob_tail - rob_head;

        if ((now & WD_MASK) == WD_MASK) {
            if (committed == wd_committed && fetch_pos == wd_fetch_pos
                    && !in_flight) {
                status = 2;
                now += 1;
                break;
            }
            wd_committed = committed;
            wd_fetch_pos = fetch_pos;
        }
        now += 1;
    }

    regs[R_NOW] = now;
    regs[R_COMMITTED] = committed;
    regs[R_FETCH_POS] = fetch_pos;
    regs[R_ICACHE_READY] = icache_ready;
    regs[R_FETCH_RESUME] = fetch_resume;
    regs[R_REDIRECT_POS] = redirect_pos;
    regs[R_ROB_HEAD] = rob_head;
    regs[R_ROB_TAIL] = rob_tail;
    regs[R_FQ_HEAD] = fq_head;
    regs[R_FQ_TAIL] = fq_tail;
    regs[R_DQ_HEAD] = dq_head;
    regs[R_DQ_TAIL] = dq_tail;
    regs[R_PEND_HEAD] = pend_head;
    regs[R_PEND_TAIL] = pend_tail;
    regs[R_READY_N] = nready;
    regs[R_READYC_N] = nreadyc;
    regs[R_UNISSUED] = unissued;
    regs[R_NEXT_EV] = next_ev;
    regs[R_INFLIGHT] = in_flight;
    regs[R_WD_COMMITTED] = wd_committed;
    regs[R_WD_FETCH_POS] = wd_fetch_pos;
    regs[R_F_ACTIVE] = f_active;
    regs[R_F_ICACHE] = f_icache;
    regs[R_F_BRANCH] = f_branch;
    regs[R_F_SWITCH] = f_switch;
    regs[R_F_BP] = f_bp;
    regs[R_F_DRAINED] = f_drained;
    regs[R_FC_ACTIVE] = fc_active;
    regs[R_FC_ICACHE] = fc_icache;
    regs[R_FC_BRANCH] = fc_branch;
    regs[R_FC_SWITCH] = fc_switch;
    regs[R_FC_BP] = fc_bp;
    regs[R_IQ_OCC_SUM] = iq_occ_sum;
    regs[R_IQ_FULL] = iq_full;
    regs[R_ROB_OCC_SUM] = rob_occ_sum;
    regs[R_CDP_DECODED] = cdp_decoded;
    regs[R_DC_ACC] = dc_acc;
    regs[R_DC_MISS] = dc_miss;
    regs[R_L2D_ACC] = l2d_acc;
    return status;
}
