"""The simulation-engine registry's built-in providers.

A *simulation engine* is a ``simulate()``-compatible callable: it takes a
trace plus a :class:`~repro.cpu.config.CpuConfig` (and the standard
observational kwargs) and returns :class:`~repro.cpu.stats.SimStats`.
Engines are bit-identical by contract — they differ only in *how* the
numbers are computed:

``inline``
    The reference pure-Python cycle loop
    (:class:`repro.cpu.pipeline.Simulator`).  No dependencies beyond the
    stdlib; always available.

``batch``
    The lockstep many-cells-per-trace engine (:mod:`repro.cpu.batch`).
    Requires numpy; precomputes branch/memory profiles and steps the
    cycle loop in a compiled kernel, falling back per-cell to ``inline``
    whenever a cell is not vectorizable.

Selection, in precedence order: the ``simulate(..., engine=)`` kwarg,
the ``REPRO_SIM_ENGINE`` environment variable, else ``inline``.
Factories take no arguments and return the engine callable, so
``SIMULATORS.create(name)`` is the whole lookup.
"""

from __future__ import annotations

import functools

from repro.registry import SIMULATORS

#: Environment selector honored by :func:`repro.cpu.pipeline.simulate`.
ENV_ENGINE = "REPRO_SIM_ENGINE"


@SIMULATORS.register("inline", version=1)
def _inline_engine():
    from repro.cpu.pipeline import simulate

    # engine= pinned so the env selector cannot re-route the call back
    # into the registry (no recursion under REPRO_SIM_ENGINE=batch).
    return functools.partial(simulate, engine="inline")


@SIMULATORS.register("batch", version=1)
def _batch_engine():
    # Imported here, not at module top: listing/identifying engines must
    # work (and ``inline`` must stay usable) without numpy installed.
    from repro.cpu.batch import simulate_cell

    return simulate_cell
