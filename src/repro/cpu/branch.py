"""Branch prediction: two-level adaptive predictor + return-address stack.

Table I: "4k Entry 2 level BPU".  Conditional branches are predicted by a
gshare-style two-level scheme (global history XOR PC into a 4k-entry
2-bit-counter table).  Unconditional direct branches and calls are always
predicted correctly (BTB assumed warm); returns are predicted through a
return-address stack and only mispredict on overflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.registry import BRANCH_PREDICTORS


@dataclass
class BranchStats:
    """Prediction counters."""

    conditional: int = 0
    cond_mispredicts: int = 0
    returns: int = 0
    return_mispredicts: int = 0

    @property
    def mispredicts(self) -> int:
        return self.cond_mispredicts + self.return_mispredicts

    @property
    def cond_accuracy(self) -> float:
        if not self.conditional:
            return 1.0
        return 1.0 - self.cond_mispredicts / self.conditional


class TwoLevelPredictor:
    """Gshare: global-history-indexed 2-bit counters."""

    __slots__ = ("entries", "history_bits", "perfect", "_counters",
                 "_history", "stats")

    def __init__(self, entries: int = 4096, history_bits: int = 12,
                 perfect: bool = False):
        self.entries = entries
        self.history_bits = history_bits
        self.perfect = perfect
        self._counters: List[int] = [2] * entries  # weakly taken
        self._history = 0
        self.stats = BranchStats()

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) % self.entries

    def predict_conditional(self, pc: int, actual_taken: bool) -> bool:
        """Predict a conditional branch; returns True if predicted right.

        The actual outcome is known from the trace; training happens
        immediately (at-execute training is approximated as at-predict,
        which slightly favors the predictor — noted in DESIGN.md).
        """
        self.stats.conditional += 1
        if self.perfect:
            self._push_history(actual_taken)
            return True
        index = self._index(pc)
        counter = self._counters[index]
        predicted_taken = counter >= 2
        if actual_taken and counter < 3:
            self._counters[index] = counter + 1
        elif not actual_taken and counter > 0:
            self._counters[index] = counter - 1
        self._push_history(actual_taken)
        return predicted_taken == actual_taken

    def _push_history(self, taken: bool) -> None:
        self._history = (
            (self._history << 1) | int(taken)
        ) & ((1 << self.history_bits) - 1)


class ReturnAddressStack:
    """Bounded RAS; returns mispredict only when the stack has overflowed."""

    __slots__ = ("depth", "perfect", "_stack", "_overflowed", "stats")

    def __init__(self, depth: int = 16, perfect: bool = False):
        self.depth = depth
        self.perfect = perfect
        self._stack: List[int] = []
        self._overflowed = False
        self.stats = BranchStats()

    def push(self, return_pc: int) -> None:
        self._stack.append(return_pc)
        if len(self._stack) > self.depth:
            self._stack.pop(0)
            self._overflowed = True

    def predict_return(self) -> bool:
        """Pop; returns True if the prediction is considered correct."""
        self.stats.returns += 1
        if self.perfect:
            if self._stack:
                self._stack.pop()
            return True
        if self._stack:
            self._stack.pop()
            return True
        self.stats.return_mispredicts += 1
        return False


#: Table I's predictor, as a registered component: the factory reads the
#: BPU geometry (and the PerfectBr oracle flag) off the ``CpuConfig``.
BRANCH_PREDICTORS.register(
    "two-level",
    lambda config: TwoLevelPredictor(
        config.bpu_entries, config.bpu_history_bits,
        perfect=config.perfect_branch,
    ),
    version=1,
)
