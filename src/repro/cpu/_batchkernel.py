"""Per-cell cycle kernels for the batch simulation engine.

The batch engine (:mod:`repro.cpu.batch`) precomputes everything the
inline :class:`repro.cpu.pipeline.Simulator` derives from the memory
system and branch predictor into flat *profiles* (branch actions, i-side
fetch events, a warmed d-cache image), which reduces one grid cell's
cycle loop to pure integer state-machine stepping over those arrays.
This module holds that stepper in two bit-identical implementations:

* :func:`advance_cell` — the pure-Python reference kernel.  It is the
  executable specification: a line-for-line transcription of the inline
  simulator's ``run()`` loop with the memory/branch components replaced
  by profile lookups.
* a small C translation (``_batchkernel.c``), compiled on first use with
  the system C compiler into a per-user cache directory and loaded via
  :mod:`ctypes`.  No third-party build machinery, no pip dependency —
  when no compiler is available the Python kernel runs instead (same
  numbers, less speed).

``REPRO_BATCH_CKERNEL=0`` forces the Python kernel (CI uses this to
prove the two stay in lockstep).

Both kernels operate on one *cell* (a :class:`CellState`) at a time and
advance it up to a caller-chosen cycle horizon, which is what lets the
batch engine run many cells in lockstep rounds.  All mutable state lives
in the cell's ``regs`` vector and side arrays, so a cell can be resumed
across rounds (and across kernels) freely.

Status codes returned by both kernels:

====  ========================================================
0     trace fully committed (``regs[R_NOW]`` is the cycle count)
1     cycle horizon reached; resume with a later horizon
2     no-forward-progress deadlock (mirror of the inline watchdog)
3     ring-capacity overflow — caller must redo the cell inline
====  ========================================================
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from typing import Any, List, Optional, Tuple

# -- register layout -----------------------------------------------------------
# One int64 vector per cell holds every scalar the cycle loop mutates
# (machine state, statistics counters) plus the cell's configuration
# constants, so a kernel call is pure array-in/array-out.  The C kernel
# mirrors these indices with #defines; `tests/test_batch_engine.py`
# asserts parity of the two kernels, which pins the layout.

# mutable machine state
R_NOW = 0
R_COMMITTED = 1
R_FETCH_POS = 2
R_ICACHE_READY = 3
R_FETCH_RESUME = 4
R_REDIRECT_POS = 5
R_ROB_HEAD = 6
R_ROB_TAIL = 7
R_FQ_HEAD = 8
R_FQ_TAIL = 9
R_DQ_HEAD = 10
R_DQ_TAIL = 11
R_PEND_HEAD = 12
R_PEND_TAIL = 13
R_READY_N = 14
R_READYC_N = 15
R_UNISSUED = 16
R_NEXT_EV = 17
R_INFLIGHT = 18
R_WD_COMMITTED = 19
R_WD_FETCH_POS = 20
# statistics counters
R_F_ACTIVE = 21
R_F_ICACHE = 22
R_F_BRANCH = 23
R_F_SWITCH = 24
R_F_BP = 25
R_F_DRAINED = 26
R_FC_ACTIVE = 27
R_FC_ICACHE = 28
R_FC_BRANCH = 29
R_FC_SWITCH = 30
R_FC_BP = 31
R_IQ_OCC_SUM = 32
R_IQ_FULL = 33
R_ROB_OCC_SUM = 34
R_CDP_DECODED = 35
R_DC_ACC = 36
R_DC_MISS = 37
R_L2D_ACC = 38
# configuration constants
R_COMMIT_W = 39
R_RENAME_W = 40
R_ISSUE_W = 41
R_ROB_ENTRIES = 42
R_IQ_ENTRIES = 43
R_DECODE_BYTES = 44
R_CDP_EXTRA = 45
R_FETCH_BYTES = 46
R_FQ_CAP = 47
R_DECODE_CAP = 48
R_SCHED_WIN = 49
R_BACKEND_PRIO = 50
R_REDIRECT_PEN = 51
R_SWITCH_BUBBLE = 52
R_FU_ALU = 53
R_FU_MUL = 54
R_FU_FP = 55
R_FU_MEM = 56
R_FU_BRANCH = 57
R_ICACHE_HIT = 58
R_L2_HIT = 59
R_DCACHE_HIT = 60
R_DC_SETS = 61
R_DC_ASSOC = 62
R_ROB_MASK = 63
R_FQ_MASK = 64
R_DQ_MASK = 65
R_PEND_MASK = 66
R_WHEEL_MASK = 67

R_COUNT = 68

#: entry flag bits (packed from the trace tables' isld/isst/iscdp)
FLAG_LOAD = 1
FLAG_STORE = 2
FLAG_CDP = 4

#: matches repro.cpu.pipeline._WATCHDOG_PERIOD
_WD_MASK = 8191


def pow2ceil(value: int) -> int:
    """Smallest power of two >= max(value, 1)."""
    size = 1
    while size < value:
        size <<= 1
    return size


class SharedArrays:
    """Read-only per-batch arrays shared by every cell of one class.

    Either plain Python lists/bytearrays (Python kernel) or numpy arrays
    (C kernel); the batch engine builds the right flavour once.
    """

    __slots__ = (
        "n", "sizes", "lats", "fus", "flags", "bact", "crit",
        "iev", "ev_kind", "ev_lat", "ev_creator",
        "prod_ptr", "prod_idx", "cons_ptr", "cons_idx",
        "d_set", "d_tag",
    )


class CellState:
    """All mutable state of one in-flight grid cell."""

    __slots__ = (
        "regs", "head_c", "fetch_c", "decode_c", "dispatch_c",
        "issue_c", "complete_c", "commit_c",
        "completed", "dispatched", "remaining",
        "rob", "fq", "dq", "pending", "ready", "readyc",
        "wheel_head", "wheel_tail", "next_comp", "ev_time",
        "dc_tags", "dc_occ", "window",
        "shared", "index", "cptrs",
    )


def make_cell(shared: SharedArrays, n_events: int, config: Any,
              dc_snapshot: Tuple[int, int, List[int], List[int]],
              max_latency: int, np: Any = None) -> CellState:
    """Build the initial :class:`CellState` for one config.

    ``np`` selects the array flavour: the numpy module for the C kernel,
    ``None`` for Python lists (reference kernel).  ``dc_snapshot`` is the
    warmed d-cache image ``(num_sets, assoc, occupancy, flat MRU tags)``.
    """
    n = shared.n
    dc_sets, dc_assoc, dc_occ_img, dc_tags_img = dc_snapshot

    rob_cap = pow2ceil(4 * config.rob_entries + 256)
    fq_cap_ring = pow2ceil(config.fetch_queue_entries)
    dq_cap = pow2ceil(config.decode_buffer_entries)
    wheel_cap = pow2ceil(max_latency + 2)
    ready_cap = config.issue_queue_entries + 8
    win_cap = 2 * max(config.scheduling_window, 1) + 2

    cs = CellState()
    cs.shared = shared
    cs.cptrs = None

    regs = [0] * R_COUNT
    regs[R_REDIRECT_POS] = -1
    regs[R_WD_COMMITTED] = -1
    regs[R_WD_FETCH_POS] = -1
    regs[R_COMMIT_W] = config.commit_width
    regs[R_RENAME_W] = config.rename_width
    regs[R_ISSUE_W] = config.issue_width
    regs[R_ROB_ENTRIES] = config.rob_entries
    regs[R_IQ_ENTRIES] = config.issue_queue_entries
    regs[R_DECODE_BYTES] = config.decode_width * 4
    regs[R_CDP_EXTRA] = 4 * config.cdp_decode_penalty
    regs[R_FETCH_BYTES] = config.fetch_bytes_per_cycle
    regs[R_FQ_CAP] = config.fetch_queue_entries
    regs[R_DECODE_CAP] = config.decode_buffer_entries
    regs[R_SCHED_WIN] = config.scheduling_window
    regs[R_BACKEND_PRIO] = 1 if config.backend_priority else 0
    regs[R_REDIRECT_PEN] = config.redirect_penalty
    regs[R_SWITCH_BUBBLE] = config.switch_branch_bubble
    regs[R_FU_ALU] = config.fu.alu
    regs[R_FU_MUL] = config.fu.mul
    regs[R_FU_FP] = config.fu.fp
    regs[R_FU_MEM] = config.fu.mem
    regs[R_FU_BRANCH] = config.fu.branch
    regs[R_ICACHE_HIT] = config.memory.icache_hit
    regs[R_L2_HIT] = config.memory.l2_hit
    regs[R_DCACHE_HIT] = config.memory.dcache_hit
    regs[R_DC_SETS] = dc_sets
    regs[R_DC_ASSOC] = dc_assoc
    regs[R_ROB_MASK] = rob_cap - 1
    regs[R_FQ_MASK] = fq_cap_ring - 1
    regs[R_DQ_MASK] = dq_cap - 1
    regs[R_PEND_MASK] = rob_cap - 1
    regs[R_WHEEL_MASK] = wheel_cap - 1

    dc_flat = list(dc_tags_img)
    dc_flat += [0] * (dc_sets * dc_assoc - len(dc_flat))

    if np is None:
        cs.regs = regs
        cs.head_c = [-1] * n
        cs.fetch_c = [-1] * n
        cs.decode_c = [-1] * n
        cs.dispatch_c = [-1] * n
        cs.issue_c = [-1] * n
        cs.complete_c = [-1] * n
        cs.commit_c = [-1] * n
        cs.completed = bytearray(n)
        cs.dispatched = bytearray(n)
        cs.remaining = [0] * n
        cs.rob = [0] * rob_cap
        cs.fq = [0] * fq_cap_ring
        cs.dq = [0] * dq_cap
        cs.pending = [0] * rob_cap
        cs.ready = [0] * ready_cap
        cs.readyc = [0] * ready_cap
        cs.wheel_head = [0] * wheel_cap
        cs.wheel_tail = [0] * wheel_cap
        cs.next_comp = [0] * n
        cs.ev_time = [0] * max(n_events, 1)
        cs.dc_tags = dc_flat
        cs.dc_occ = list(dc_occ_img)
        cs.window = [0] * win_cap
    else:
        cs.regs = np.array(regs, dtype=np.int64)
        for name in ("head_c", "fetch_c", "decode_c", "dispatch_c",
                     "issue_c", "complete_c", "commit_c"):
            setattr(cs, name, np.full(n, -1, dtype=np.int64))
        cs.completed = np.zeros(n, dtype=np.uint8)
        cs.dispatched = np.zeros(n, dtype=np.uint8)
        cs.remaining = np.zeros(n, dtype=np.int32)
        cs.rob = np.zeros(rob_cap, dtype=np.int32)
        cs.fq = np.zeros(fq_cap_ring, dtype=np.int32)
        cs.dq = np.zeros(dq_cap, dtype=np.int32)
        cs.pending = np.zeros(rob_cap, dtype=np.int32)
        cs.ready = np.zeros(ready_cap, dtype=np.int32)
        cs.readyc = np.zeros(ready_cap, dtype=np.int32)
        cs.wheel_head = np.zeros(wheel_cap, dtype=np.int32)
        cs.wheel_tail = np.zeros(wheel_cap, dtype=np.int32)
        cs.next_comp = np.zeros(n, dtype=np.int32)
        cs.ev_time = np.zeros(max(n_events, 1), dtype=np.int64)
        cs.dc_tags = np.array(dc_flat, dtype=np.int64)
        cs.dc_occ = np.array(dc_occ_img, dtype=np.int32)
        cs.window = np.zeros(win_cap, dtype=np.int32)
    return cs


# -- pure-Python reference kernel ----------------------------------------------

def advance_cell(sh: SharedArrays, cs: CellState, max_now: int) -> int:
    """Advance one cell until done or ``regs[R_NOW] >= max_now``.

    A transcription of ``Simulator.run()``'s cycle loop (reverse-pipeline
    stage order: commit, writeback, issue, dispatch, decode, fetch) with
    the branch unit replaced by the ``bact`` action profile, ``ifetch``
    by the i-side event stream, and the d-cache modeled in place.
    """
    regs = cs.regs
    n = sh.n

    now = regs[R_NOW]
    committed = regs[R_COMMITTED]
    fetch_pos = regs[R_FETCH_POS]
    icache_ready = regs[R_ICACHE_READY]
    fetch_resume = regs[R_FETCH_RESUME]
    redirect_pos = regs[R_REDIRECT_POS]
    rob_head = regs[R_ROB_HEAD]
    rob_tail = regs[R_ROB_TAIL]
    fq_head = regs[R_FQ_HEAD]
    fq_tail = regs[R_FQ_TAIL]
    dq_head = regs[R_DQ_HEAD]
    dq_tail = regs[R_DQ_TAIL]
    pend_head = regs[R_PEND_HEAD]
    pend_tail = regs[R_PEND_TAIL]
    nready = regs[R_READY_N]
    nreadyc = regs[R_READYC_N]
    unissued = regs[R_UNISSUED]
    next_ev = regs[R_NEXT_EV]
    in_flight = regs[R_INFLIGHT]
    wd_committed = regs[R_WD_COMMITTED]
    wd_fetch_pos = regs[R_WD_FETCH_POS]

    f_active = regs[R_F_ACTIVE]
    f_icache = regs[R_F_ICACHE]
    f_branch = regs[R_F_BRANCH]
    f_switch = regs[R_F_SWITCH]
    f_bp = regs[R_F_BP]
    f_drained = regs[R_F_DRAINED]
    fc_active = regs[R_FC_ACTIVE]
    fc_icache = regs[R_FC_ICACHE]
    fc_branch = regs[R_FC_BRANCH]
    fc_switch = regs[R_FC_SWITCH]
    fc_bp = regs[R_FC_BP]
    iq_occ_sum = regs[R_IQ_OCC_SUM]
    iq_full = regs[R_IQ_FULL]
    rob_occ_sum = regs[R_ROB_OCC_SUM]
    cdp_decoded = regs[R_CDP_DECODED]
    dc_acc = regs[R_DC_ACC]
    dc_miss = regs[R_DC_MISS]
    l2d_acc = regs[R_L2D_ACC]

    commit_w = regs[R_COMMIT_W]
    rename_w = regs[R_RENAME_W]
    issue_w = regs[R_ISSUE_W]
    rob_entries = regs[R_ROB_ENTRIES]
    iq_entries = regs[R_IQ_ENTRIES]
    decode_bytes_w = regs[R_DECODE_BYTES]
    cdp_extra = regs[R_CDP_EXTRA]
    fetch_bytes = regs[R_FETCH_BYTES]
    fq_cap = regs[R_FQ_CAP]
    decode_cap = regs[R_DECODE_CAP]
    sched_win = regs[R_SCHED_WIN]
    backend_prio = regs[R_BACKEND_PRIO]
    redirect_pen = regs[R_REDIRECT_PEN]
    switch_bubble = regs[R_SWITCH_BUBBLE]
    fu_base = (regs[R_FU_ALU], regs[R_FU_MUL], regs[R_FU_FP],
               regs[R_FU_MEM], regs[R_FU_BRANCH])
    icache_hit = regs[R_ICACHE_HIT]
    l2_hit = regs[R_L2_HIT]
    dcache_hit = regs[R_DCACHE_HIT]
    dc_sets = regs[R_DC_SETS]
    dc_assoc = regs[R_DC_ASSOC]
    rob_mask = regs[R_ROB_MASK]
    fq_mask = regs[R_FQ_MASK]
    dq_mask = regs[R_DQ_MASK]
    pend_mask = regs[R_PEND_MASK]
    wheel_mask = regs[R_WHEEL_MASK]

    sizes = sh.sizes
    lats = sh.lats
    fus = sh.fus
    flags = sh.flags
    bact = sh.bact
    crit = sh.crit
    iev = sh.iev
    ev_kind = sh.ev_kind
    ev_lat = sh.ev_lat
    ev_creator = sh.ev_creator
    prod_ptr = sh.prod_ptr
    prod_idx = sh.prod_idx
    cons_ptr = sh.cons_ptr
    cons_idx = sh.cons_idx
    d_set = sh.d_set
    d_tag = sh.d_tag

    head_c = cs.head_c
    fetch_c = cs.fetch_c
    decode_c = cs.decode_c
    dispatch_c = cs.dispatch_c
    issue_c = cs.issue_c
    complete_c = cs.complete_c
    commit_c = cs.commit_c
    completed = cs.completed
    dispatched = cs.dispatched
    remaining = cs.remaining
    rob = cs.rob
    fq = cs.fq
    dq = cs.dq
    pending = cs.pending
    ready = cs.ready
    readyc = cs.readyc
    wheel_head = cs.wheel_head
    wheel_tail = cs.wheel_tail
    next_comp = cs.next_comp
    ev_time = cs.ev_time
    dc_tags = cs.dc_tags
    dc_occ = cs.dc_occ

    status = 1
    while True:
        if committed >= n:
            status = 0
            break
        if now >= max_now:
            status = 1
            break

        # ---- commit ----
        width = commit_w
        while width and rob_head != rob_tail:
            pos = rob[rob_head & rob_mask]
            if not completed[pos]:
                break
            commit_c[pos] = now
            rob_head += 1
            committed += 1
            width -= 1

        # ---- writeback / wake-up ----
        slot = now & wheel_mask
        link = wheel_head[slot]
        if link:
            wheel_head[slot] = 0
            wheel_tail[slot] = 0
            while link:
                pos = link - 1
                completed[pos] = 1
                complete_c[pos] = now
                in_flight -= 1
                for k in range(cons_ptr[pos], cons_ptr[pos + 1]):
                    consumer = cons_idx[k]
                    if dispatched[consumer] and not completed[consumer]:
                        rem = remaining[consumer] - 1
                        remaining[consumer] = rem
                        if rem == 0 and not sched_win:
                            if backend_prio and crit[consumer]:
                                readyc[nreadyc] = consumer
                                nreadyc += 1
                            else:
                                ready[nready] = consumer
                                nready += 1
                link = next_comp[pos]

        # ---- issue ----
        if sched_win:
            while pend_head != pend_tail \
                    and issue_c[pending[pend_head & pend_mask]] >= 0:
                pend_head += 1
            slots = issue_w
            caps = list(fu_base)
            window: List[int] = []
            idx = pend_head
            while idx != pend_tail and len(window) < sched_win:
                pos = pending[idx & pend_mask]
                if issue_c[pos] < 0:
                    window.append(pos)
                idx += 1
            if backend_prio and window:
                # stable critical-first partition (== sort by `not crit`)
                window = ([p for p in window if crit[p]]
                          + [p for p in window if not crit[p]])
            for pos in window:
                if slots == 0:
                    break
                if remaining[pos] != 0:
                    continue
                fu_i = fus[pos]
                if caps[fu_i] <= 0:
                    continue
                caps[fu_i] -= 1
                slots -= 1
                unissued -= 1
                issue_c[pos] = now
                # exec latency incl. the modeled d-cache
                latency = lats[pos]
                flag = flags[pos]
                if flag & 3:
                    tag = d_tag[pos]
                    if tag >= 0:
                        base = d_set[pos] * dc_assoc
                        occ = dc_occ[d_set[pos]]
                        dc_acc += 1
                        way = -1
                        for w in range(occ):
                            if dc_tags[base + w] == tag:
                                way = w
                                break
                        if way >= 0:
                            for w in range(way, 0, -1):
                                dc_tags[base + w] = dc_tags[base + w - 1]
                            dc_tags[base] = tag
                            mlat = dcache_hit
                        else:
                            dc_miss += 1
                            l2d_acc += 1
                            if occ < dc_assoc:
                                dc_occ[d_set[pos]] = occ + 1
                                end = occ
                            else:
                                end = dc_assoc - 1
                            for w in range(end, 0, -1):
                                dc_tags[base + w] = dc_tags[base + w - 1]
                            dc_tags[base] = tag
                            if flag & FLAG_LOAD:
                                mlat = dcache_hit + l2_hit
                            else:
                                mlat = dcache_hit
                        if mlat > latency:
                            latency = mlat
                if latency < 1:
                    latency = 1
                t = now + latency
                slot2 = t & wheel_mask
                tail = wheel_tail[slot2]
                if tail:
                    next_comp[tail - 1] = pos + 1
                else:
                    wheel_head[slot2] = pos + 1
                wheel_tail[slot2] = pos + 1
                next_comp[pos] = 0
                in_flight += 1
        elif nready or nreadyc:
            slots = issue_w
            caps = list(fu_base)
            for qsel in ((1, 0) if backend_prio else (0,)):
                queue = readyc if qsel else ready
                count = nreadyc if qsel else nready
                if not count:
                    continue
                kept = 0
                for i in range(count):
                    pos = queue[i]
                    if slots == 0 or caps[fus[pos]] <= 0:
                        queue[kept] = pos
                        kept += 1
                        continue
                    caps[fus[pos]] -= 1
                    slots -= 1
                    unissued -= 1
                    issue_c[pos] = now
                    latency = lats[pos]
                    flag = flags[pos]
                    if flag & 3:
                        tag = d_tag[pos]
                        if tag >= 0:
                            base = d_set[pos] * dc_assoc
                            occ = dc_occ[d_set[pos]]
                            dc_acc += 1
                            way = -1
                            for w in range(occ):
                                if dc_tags[base + w] == tag:
                                    way = w
                                    break
                            if way >= 0:
                                for w in range(way, 0, -1):
                                    dc_tags[base + w] = \
                                        dc_tags[base + w - 1]
                                dc_tags[base] = tag
                                mlat = dcache_hit
                            else:
                                dc_miss += 1
                                l2d_acc += 1
                                if occ < dc_assoc:
                                    dc_occ[d_set[pos]] = occ + 1
                                    end = occ
                                else:
                                    end = dc_assoc - 1
                                for w in range(end, 0, -1):
                                    dc_tags[base + w] = \
                                        dc_tags[base + w - 1]
                                dc_tags[base] = tag
                                if flag & FLAG_LOAD:
                                    mlat = dcache_hit + l2_hit
                                else:
                                    mlat = dcache_hit
                            if mlat > latency:
                                latency = mlat
                    if latency < 1:
                        latency = 1
                    t = now + latency
                    slot2 = t & wheel_mask
                    tail = wheel_tail[slot2]
                    if tail:
                        next_comp[tail - 1] = pos + 1
                    else:
                        wheel_head[slot2] = pos + 1
                    wheel_tail[slot2] = pos + 1
                    next_comp[pos] = 0
                    in_flight += 1
                if qsel:
                    nreadyc = kept
                else:
                    nready = kept

        # ---- dispatch / rename ----
        width = rename_w
        while width and dq_head != dq_tail \
                and rob_tail - rob_head < rob_entries \
                and unissued < iq_entries:
            pos = dq[dq_head & dq_mask]
            dq_head += 1
            unissued += 1
            dispatch_c[pos] = now
            dispatched[pos] = 1
            rem = 0
            for k in range(prod_ptr[pos], prod_ptr[pos + 1]):
                if not completed[prod_idx[k]]:
                    rem += 1
            remaining[pos] = rem
            if rob_tail - rob_head > rob_mask:
                return 3
            rob[rob_tail & rob_mask] = pos
            rob_tail += 1
            if sched_win:
                if pend_tail - pend_head > pend_mask:
                    return 3
                pending[pend_tail & pend_mask] = pos
                pend_tail += 1
            elif rem == 0:
                if backend_prio and crit[pos]:
                    readyc[nreadyc] = pos
                    nreadyc += 1
                else:
                    ready[nready] = pos
                    nready += 1
            width -= 1

        # ---- decode ----
        decode_bytes = decode_bytes_w
        while decode_bytes > 0 and fq_head != fq_tail \
                and dq_tail - dq_head < decode_cap:
            pos = fq[fq_head & fq_mask]
            size = sizes[pos]
            if size > decode_bytes:
                break
            if flags[pos] & FLAG_CDP:
                fq_head += 1
                decode_c[pos] = now
                cdp_decoded += 1
                completed[pos] = 1
                complete_c[pos] = now
                dispatch_c[pos] = now
                issue_c[pos] = now
                if rob_tail - rob_head > rob_mask:
                    return 3
                rob[rob_tail & rob_mask] = pos
                rob_tail += 1
                dispatched[pos] = 1
                decode_bytes -= size + cdp_extra
                continue
            fq_head += 1
            decode_c[pos] = now
            dq[dq_tail & dq_mask] = pos
            dq_tail += 1
            decode_bytes -= size

        # ---- fetch ----
        if fetch_pos < n:
            if head_c[fetch_pos] < 0:
                head_c[fetch_pos] = now
            is_crit_head = crit[fetch_pos]
            if redirect_pos >= 0:
                done_c = complete_c[redirect_pos]
                if done_c >= 0 and done_c + redirect_pen <= now:
                    redirect_pos = -1
            if redirect_pos >= 0:
                f_branch += 1
                if is_crit_head:
                    fc_branch += 1
            elif now < fetch_resume:
                f_switch += 1
                if is_crit_head:
                    fc_switch += 1
            elif now < icache_ready:
                f_icache += 1
                if is_crit_head:
                    fc_icache += 1
            elif fq_tail - fq_head >= fq_cap:
                f_bp += 1
                if is_crit_head:
                    fc_bp += 1
            else:
                budget = fetch_bytes
                fetched = 0
                icache_ready = 0
                fetch_resume = 0
                redirect_pos = -1
                buffered = fq_tail - fq_head
                while fetch_pos < n and budget > 0 and buffered < fq_cap:
                    size = sizes[fetch_pos]
                    if size > budget:
                        break
                    ev = iev[fetch_pos]
                    if ev >= next_ev:
                        # this i-line transition fires now
                        ev_time[ev] = now
                        next_ev = ev + 1
                        if ev_kind[ev]:
                            # in-flight next-line prefetch: pay residual
                            residual = ev_time[ev_creator[ev]] \
                                + l2_hit - now
                            if residual < 0:
                                residual = 0
                            latency = icache_hit + residual
                        else:
                            latency = ev_lat[ev]
                        if latency > icache_hit:
                            icache_ready = now + latency
                            break
                    budget -= size
                    fq[fq_tail & fq_mask] = fetch_pos
                    fq_tail += 1
                    buffered += 1
                    fetch_c[fetch_pos] = now
                    if head_c[fetch_pos] < 0:
                        head_c[fetch_pos] = now
                    fetched = 1
                    pos = fetch_pos
                    fetch_pos += 1
                    action = bact[pos]
                    if action:
                        if action == 1:
                            break
                        if action == 2:
                            redirect_pos = pos
                            break
                        fetch_resume = now + 1 + switch_bubble
                        break
                if fetched:
                    f_active += 1
                    if is_crit_head:
                        fc_active += 1
                else:
                    f_icache += 1
                    if is_crit_head:
                        fc_icache += 1
        else:
            f_drained += 1

        iq_occ_sum += unissued
        if unissued >= iq_entries:
            iq_full += 1
        rob_occ_sum += rob_tail - rob_head

        if now & _WD_MASK == _WD_MASK:
            if committed == wd_committed and fetch_pos == wd_fetch_pos \
                    and not in_flight:
                status = 2
                now += 1
                break
            wd_committed = committed
            wd_fetch_pos = fetch_pos
        now += 1

    regs[R_NOW] = now
    regs[R_COMMITTED] = committed
    regs[R_FETCH_POS] = fetch_pos
    regs[R_ICACHE_READY] = icache_ready
    regs[R_FETCH_RESUME] = fetch_resume
    regs[R_REDIRECT_POS] = redirect_pos
    regs[R_ROB_HEAD] = rob_head
    regs[R_ROB_TAIL] = rob_tail
    regs[R_FQ_HEAD] = fq_head
    regs[R_FQ_TAIL] = fq_tail
    regs[R_DQ_HEAD] = dq_head
    regs[R_DQ_TAIL] = dq_tail
    regs[R_PEND_HEAD] = pend_head
    regs[R_PEND_TAIL] = pend_tail
    regs[R_READY_N] = nready
    regs[R_READYC_N] = nreadyc
    regs[R_UNISSUED] = unissued
    regs[R_NEXT_EV] = next_ev
    regs[R_INFLIGHT] = in_flight
    regs[R_WD_COMMITTED] = wd_committed
    regs[R_WD_FETCH_POS] = wd_fetch_pos
    regs[R_F_ACTIVE] = f_active
    regs[R_F_ICACHE] = f_icache
    regs[R_F_BRANCH] = f_branch
    regs[R_F_SWITCH] = f_switch
    regs[R_F_BP] = f_bp
    regs[R_F_DRAINED] = f_drained
    regs[R_FC_ACTIVE] = fc_active
    regs[R_FC_ICACHE] = fc_icache
    regs[R_FC_BRANCH] = fc_branch
    regs[R_FC_SWITCH] = fc_switch
    regs[R_FC_BP] = fc_bp
    regs[R_IQ_OCC_SUM] = iq_occ_sum
    regs[R_IQ_FULL] = iq_full
    regs[R_ROB_OCC_SUM] = rob_occ_sum
    regs[R_CDP_DECODED] = cdp_decoded
    regs[R_DC_ACC] = dc_acc
    regs[R_DC_MISS] = dc_miss
    regs[R_L2D_ACC] = l2d_acc
    return status


# -- C kernel loading ----------------------------------------------------------

_ENV_CKERNEL = "REPRO_BATCH_CKERNEL"

#: pointer-argument order of the C entry point (after the two scalars
#: ``n`` and ``max_now``); must match ``repro_batch_advance`` exactly.
_PTR_FIELDS = (
    # shared
    "sizes", "lats", "fus", "flags", "bact", "crit",
    "iev", "ev_kind", "ev_lat", "ev_creator",
    "prod_ptr", "prod_idx", "cons_ptr", "cons_idx", "d_set", "d_tag",
    # cell
    "regs", "head_c", "fetch_c", "decode_c", "dispatch_c", "issue_c",
    "complete_c", "commit_c", "completed", "dispatched", "remaining",
    "rob", "fq", "dq", "pending", "ready", "readyc",
    "wheel_head", "wheel_tail", "next_comp", "ev_time",
    "dc_tags", "dc_occ", "window",
)

_SHARED_FIELDS = _PTR_FIELDS[:16]
_CELL_FIELDS = _PTR_FIELDS[16:]

_ckernel: Any = False  # tri-state: False = not probed, None = unavailable


def _c_source_path() -> str:
    return os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "_batchkernel.c")


def _build_ckernel() -> Optional[ctypes.CDLL]:
    source = _c_source_path()
    try:
        with open(source, "rb") as handle:
            text = handle.read()
    except OSError:
        return None
    digest = hashlib.sha256(text).hexdigest()[:16]
    cache_dir = os.environ.get("REPRO_BATCH_KERNEL_DIR", "").strip() \
        or os.path.join(tempfile.gettempdir(),
                        f"repro-batchkernel-{os.getuid()}")
    so_path = os.path.join(cache_dir, f"batchkernel-{digest}.so")
    if not os.path.exists(so_path):
        compiler = os.environ.get("CC", "").strip() or "cc"
        try:
            os.makedirs(cache_dir, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=cache_dir, suffix=".so")
            os.close(fd)
            proc = subprocess.run(
                [compiler, "-O2", "-shared", "-fPIC", "-o", tmp, source],
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
                timeout=120,
            )
            if proc.returncode != 0:
                os.unlink(tmp)
                return None
            os.replace(tmp, so_path)
        except (OSError, subprocess.SubprocessError):
            return None
    try:
        lib = ctypes.CDLL(so_path)
        fn = lib.repro_batch_advance
    except (OSError, AttributeError):
        return None
    fn.restype = ctypes.c_longlong
    fn.argtypes = [ctypes.c_longlong, ctypes.c_longlong] \
        + [ctypes.c_void_p] * len(_PTR_FIELDS)
    return fn


def get_kernel() -> Tuple[str, Any]:
    """Pick the cycle kernel: ``("c", fn)`` or ``("py", None)``.

    The C kernel is compiled once per source revision into a per-user
    cache dir; any failure (no compiler, read-only disk) silently falls
    back to the Python reference kernel.  ``REPRO_BATCH_CKERNEL=0``
    forces the fallback.
    """
    global _ckernel
    forced = os.environ.get(_ENV_CKERNEL, "").strip().lower()
    if forced in ("0", "false", "off", "no", "py"):
        return "py", None
    if _ckernel is False:
        _ckernel = _build_ckernel()
    if _ckernel is None:
        return "py", None
    return "c", _ckernel


def cell_pointers(sh: SharedArrays, cs: CellState) -> List[int]:
    """The C call's pointer-argument vector for one cell (cached)."""
    if cs.cptrs is None:
        ptrs = [getattr(sh, name).ctypes.data for name in _SHARED_FIELDS]
        ptrs += [getattr(cs, name).ctypes.data for name in _CELL_FIELDS]
        cs.cptrs = ptrs
    return cs.cptrs


def advance_cell_c(fn: Any, sh: SharedArrays, cs: CellState,
                   max_now: int) -> int:
    return int(fn(sh.n, max_now, *cell_pointers(sh, cs)))
