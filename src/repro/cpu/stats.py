"""Simulation statistics: cycle accounting and per-stage residency.

The fetch-stall taxonomy follows the paper (Fig 3b):

* **F.StallForI** — the fetch stage cannot *supply* instructions: i-cache
  miss outstanding, branch redirect pending, or a format-switch bubble.
* **F.StallForR+D** — the fetch stage cannot *drain*: the fetch queue is
  full because decode-to-commit is backed up (resources/dependences).

Per-instruction stage residencies (Fig 3a) are accumulated for the whole
stream and for the *critical* subset (high-fanout instructions).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict

#: Stage keys for residency breakdowns, in pipeline order.
STAGES = ("fetch", "decode", "dispatch", "issue_wait", "execute",
          "commit_wait")


@dataclass
class FetchStalls:
    """Per-cycle classification of the fetch stage."""

    active: int = 0
    stall_icache: int = 0
    stall_branch: int = 0
    stall_switch: int = 0
    stall_backpressure: int = 0
    drained: int = 0  # nothing left to fetch

    @property
    def stall_for_i(self) -> int:
        """Supply-side stalls (paper's F.StallForI)."""
        return self.stall_icache + self.stall_branch + self.stall_switch

    @property
    def stall_for_rd(self) -> int:
        """Drain-side stalls (paper's F.StallForR+D)."""
        return self.stall_backpressure

    def stall_counts(self) -> Dict[str, int]:
        """Stalled cycles per cause, keyed by the flight recorder's cause
        taxonomy (:data:`repro.telemetry.recorder.STALL_CAUSES`)."""
        return {
            "icache": self.stall_icache,
            "branch": self.stall_branch,
            "switch": self.stall_switch,
            "backpressure": self.stall_backpressure,
        }


@dataclass
class StageResidency:
    """Summed per-stage cycles for one instruction class."""

    instructions: int = 0
    totals: Dict[str, int] = field(
        default_factory=lambda: {stage: 0 for stage in STAGES}
    )

    def add(self, stage: str, cycles: int) -> None:
        self.totals[stage] += cycles

    def fractions(self) -> Dict[str, float]:
        """Share of each stage in the class's total pipeline time."""
        total = sum(self.totals.values())
        if total == 0:
            return {stage: 0.0 for stage in STAGES}
        return {stage: v / total for stage, v in self.totals.items()}

    def mean(self, stage: str) -> float:
        if not self.instructions:
            return 0.0
        return self.totals[stage] / self.instructions


@dataclass
class SimStats:
    """Everything a simulation run reports."""

    name: str = ""
    cycles: int = 0
    instructions: int = 0
    #: True when the run hit ``max_cycles`` before committing the whole
    #: trace — the stats describe a *prefix*, not a completed execution.
    #: Persisted through the cache/JSON round-trip so a truncated run can
    #: never masquerade as a finished one.
    truncated: bool = False
    fetch: FetchStalls = field(default_factory=FetchStalls)
    fetch_critical: FetchStalls = field(default_factory=FetchStalls)
    residency_all: StageResidency = field(default_factory=StageResidency)
    residency_critical: StageResidency = field(default_factory=StageResidency)
    residency_chain: StageResidency = field(default_factory=StageResidency)

    # event counters (feed the energy model)
    icache_accesses: int = 0
    icache_misses: int = 0
    dcache_accesses: int = 0
    dcache_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    dram_reads: int = 0
    branch_mispredicts: int = 0
    cdp_decoded: int = 0
    #: combined prefetch count: always the sum of the per-prefetcher
    #: counters below (the invariant checker enforces this).
    prefetches_issued: int = 0
    clpt_prefetches_issued: int = 0
    efetch_prefetches_issued: int = 0
    #: counters from registered components beyond the historical ones,
    #: keyed ``"<kind>.<registry name>"`` (e.g.
    #: ``"prefetch.critical-nextline"``).  Serialized only when non-empty
    #: so runs that use no extra components keep their legacy JSON shape.
    component_counters: Dict[str, int] = field(default_factory=dict)

    # occupancy telemetry
    iq_occupancy_sum: int = 0
    iq_full_cycles: int = 0
    rob_occupancy_sum: int = 0

    @property
    def iq_avg_occupancy(self) -> float:
        return self.iq_occupancy_sum / self.cycles if self.cycles else 0.0

    @property
    def rob_avg_occupancy(self) -> float:
        return self.rob_occupancy_sum / self.cycles if self.cycles else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-safe; every field is an int or str).

        ``component_counters`` is omitted when empty, so runs that use no
        extra registered components serialize byte-identically to the
        pre-registry format (golden snapshots and cache hashes agree).
        """
        data = asdict(self)
        if not data.get("component_counters"):
            data.pop("component_counters", None)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimStats":
        """Rebuild from :meth:`to_dict` output; exact round-trip."""
        fields = dict(data)
        fields.setdefault("component_counters", {})
        fields["fetch"] = FetchStalls(**fields["fetch"])
        fields["fetch_critical"] = FetchStalls(**fields["fetch_critical"])
        for name in ("residency_all", "residency_critical",
                     "residency_chain"):
            raw = fields[name]
            residency = StageResidency(instructions=raw["instructions"])
            residency.totals = {stage: raw["totals"][stage]
                                for stage in STAGES}
            fields[name] = residency
        return cls(**fields)

    def fetch_stall_fractions(self) -> Dict[str, float]:
        """Fractions of total execution cycles (Fig 3b / Fig 10b)."""
        if not self.cycles:
            return {"stall_for_i": 0.0, "stall_for_rd": 0.0, "active": 0.0}
        return {
            "stall_for_i": self.fetch.stall_for_i / self.cycles,
            "stall_for_rd": self.fetch.stall_for_rd / self.cycles,
            "active": self.fetch.active / self.cycles,
        }


def speedup(baseline: SimStats, optimized: SimStats) -> float:
    """Relative speedup of ``optimized`` over ``baseline`` (1.0 = equal).

    Both runs must execute the same logical work (same walk); cycle ratio
    is then the honest speedup metric even when the optimized stream has a
    different dynamic instruction count (CDPs added, etc.).
    """
    if optimized.cycles == 0:
        return 0.0
    return baseline.cycles / optimized.cycles
