"""CPU configuration (paper Table I) and the evaluated hardware variants.

The baseline is the Google-Tablet configuration: a 4-wide superscalar
(fetch/decode/rename/ROB/issue/execute/commit), 128-entry ROB, 4k-entry
two-level BPU, 32KB 2-way i-cache / 64KB d-cache (2-cycle hits), 8-way 2MB
L2 (10-cycle hits) and LPDDR3 DRAM.

The hardware-comparison variants of Fig 11 (2xFD, 4x i-cache, EFetch,
PerfectBr, BackendPrio, AllHW) are expressed as named constructors, and
every variant — plus the TRRIP i-cache study — is registered in
:data:`repro.registry.HARDWARE_CONFIGS` under its display name, which is
how the sweep engine and CLIs address them.

A configuration *composes* registered components: ``branch_predictor``
names the BPU implementation, ``memory.icache_policy`` the i-cache
replacement policy, and :meth:`CpuConfig.active_prefetchers` resolves the
prefetcher set (legacy boolean flags plus the open-ended ``prefetchers``
tuple) to registry names.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Tuple

from repro.memory.hierarchy import MemoryConfig
from repro.registry import HARDWARE_CONFIGS


@dataclass(frozen=True)
class FuConfig:
    """Functional-unit counts for the issue stage."""

    alu: int = 4
    mul: int = 1   # also serves DIV
    fp: int = 1
    mem: int = 2
    branch: int = 1


@dataclass(frozen=True)
class CpuConfig:
    """One simulated hardware configuration."""

    name: str = "google-tablet"

    # front end
    fetch_bytes_per_cycle: int = 16       # 4 x 32-bit words
    fetch_queue_entries: int = 8
    decode_width: int = 4
    decode_buffer_entries: int = 6
    #: extra decode occupancy when a CDP format switch is processed
    cdp_decode_penalty: int = 1
    #: fetch bubble after an Approach-1 format-switch branch
    switch_branch_bubble: int = 1
    #: redirect bubble after a resolved mispredicted branch
    redirect_penalty: int = 2

    # back end
    rename_width: int = 4
    rob_entries: int = 128
    #: scheduler (issue queue) capacity: dispatched-but-unissued
    #: instructions; the structure dependence chains clog
    issue_queue_entries: int = 20
    issue_width: int = 4
    #: scheduling window: instructions may issue out of order only within
    #: the oldest ``scheduling_window`` unissued instructions — the
    #: restricted schedulers of tablet-class cores (the paper's Google
    #: Tablet era: Krait/A15-class, far shallower than server parts).
    #: Dependence chains at the window head then gate issue exactly as the
    #: paper's F.StallForR+D analysis describes.  0 means unrestricted.
    scheduling_window: int = 12
    commit_width: int = 4
    fu: FuConfig = field(default_factory=FuConfig)

    # branch prediction
    bpu_entries: int = 4096
    bpu_history_bits: int = 12
    perfect_branch: bool = False
    #: BPU implementation, by :data:`repro.registry.BRANCH_PREDICTORS` name
    branch_predictor: str = "two-level"

    # memory
    memory: MemoryConfig = field(default_factory=MemoryConfig)

    # optimizations / baselines
    critical_load_prefetch: bool = False
    backend_priority: bool = False
    efetch: bool = False
    #: additional prefetcher components, by
    #: :data:`repro.registry.PREFETCHERS` name (on top of the legacy
    #: ``critical_load_prefetch``/``efetch`` flags)
    prefetchers: Tuple[str, ...] = ()

    def with_name(self, name: str) -> "CpuConfig":
        return replace(self, name=name)

    def active_prefetchers(self) -> Tuple[str, ...]:
        """The registry names of every prefetcher this config enables.

        The legacy boolean flags come first (their historical order), the
        open-ended ``prefetchers`` tuple after, de-duplicated.
        """
        names = []
        if self.critical_load_prefetch:
            names.append("clpt")
        if self.efetch:
            names.append("efetch")
        for name in self.prefetchers:
            if name not in names:
                names.append(name)
        return tuple(names)

    def with_components(
        self,
        *,
        prefetchers: Optional[Tuple[str, ...]] = None,
        icache_policy: Optional[str] = None,
        branch_predictor: Optional[str] = None,
    ) -> "CpuConfig":
        """Copy with component overrides, renamed to show the overrides.

        The derived name (``google-tablet+pf=critical-nextline``) keeps
        every stats table and manifest self-describing, and guarantees
        distinct in-process memo keys for distinct compositions.
        """
        config = self
        suffix = []
        if prefetchers is not None:
            config = replace(config, prefetchers=tuple(prefetchers))
            suffix.append("pf=" + ",".join(prefetchers))
        if icache_policy is not None:
            config = replace(config, memory=replace(
                config.memory, icache_policy=icache_policy))
            suffix.append(f"i$={icache_policy}")
        if branch_predictor is not None:
            config = replace(config, branch_predictor=branch_predictor)
            suffix.append(f"bp={branch_predictor}")
        if suffix:
            config = replace(
                config, name=f"{config.name}+{'+'.join(suffix)}")
        return config


#: Table I baseline.
GOOGLE_TABLET = CpuConfig()


def config_2xfd(base: CpuConfig = GOOGLE_TABLET) -> CpuConfig:
    """2xFD: double fetch/decode bandwidth, halve i-cache hit latency."""
    memory = replace(base.memory,
                     icache_hit=max(1, base.memory.icache_hit // 2))
    return replace(
        base, name="2xFD",
        fetch_bytes_per_cycle=base.fetch_bytes_per_cycle * 2,
        decode_width=base.decode_width * 2,
        fetch_queue_entries=base.fetch_queue_entries * 2,
        memory=memory,
    )


def config_4x_icache(base: CpuConfig = GOOGLE_TABLET) -> CpuConfig:
    """4x i-cache capacity (128KB vs 32KB)."""
    return replace(base, name="4xI$", memory=base.memory.scaled_icache(4))


def config_efetch(base: CpuConfig = GOOGLE_TABLET) -> CpuConfig:
    """EFetch call-history instruction prefetcher."""
    return replace(base, name="EFetch", efetch=True)


def config_perfect_br(base: CpuConfig = GOOGLE_TABLET) -> CpuConfig:
    """Oracle branch prediction."""
    return replace(base, name="PerfectBr", perfect_branch=True)


def config_backend_prio(base: CpuConfig = GOOGLE_TABLET) -> CpuConfig:
    """Token-based back-end prioritization of critical instructions."""
    return replace(base, name="BackendPrio", backend_priority=True)


def config_critical_prefetch(base: CpuConfig = GOOGLE_TABLET) -> CpuConfig:
    """HPCA'09-style critical-load prefetching."""
    return replace(base, name="CritLoadPrefetch",
                   critical_load_prefetch=True)


def config_all_hw(base: CpuConfig = GOOGLE_TABLET) -> CpuConfig:
    """AllHW: 4x i-cache + EFetch + PerfectBr + BackendPrio."""
    return replace(
        base, name="AllHW",
        memory=base.memory.scaled_icache(4),
        efetch=True, perfect_branch=True, backend_priority=True,
    )


def config_trrip_icache(base: CpuConfig = GOOGLE_TABLET) -> CpuConfig:
    """Temperature-based (TRRIP) i-cache replacement study."""
    return replace(base, name="trrip-icache",
                   memory=replace(base.memory, icache_policy="trrip"))


#: The Fig-11 hardware-mechanism variants, in the paper's order.
HARDWARE_VARIANTS: Dict[str, Callable[[], CpuConfig]] = {
    "2xFD": config_2xfd,
    "4xI$": config_4x_icache,
    "EFetch": config_efetch,
    "PerfectBr": config_perfect_br,
    "BackendPrio": config_backend_prio,
    "AllHW": config_all_hw,
}

# Every variant is addressable by name through the registry: the Table I
# baseline first, then the Fig-11 set, then the comparison baselines and
# the replacement-policy study.
HARDWARE_CONFIGS.register("google-tablet", lambda: GOOGLE_TABLET,
                          version=1)
for _name, _make in HARDWARE_VARIANTS.items():
    HARDWARE_CONFIGS.register(_name, _make, version=1)
HARDWARE_CONFIGS.register("CritLoadPrefetch", config_critical_prefetch,
                          version=1)
HARDWARE_CONFIGS.register("trrip-icache", config_trrip_icache, version=1)
del _name, _make


def format_table1(config: CpuConfig = GOOGLE_TABLET) -> str:
    """Render the Table I configuration as fixed-width text."""
    m = config.memory
    rows = [
        ("CPU", f"{config.decode_width}-wide superscalar, "
                f"{config.rob_entries}-entry ROB, "
                f"{config.bpu_entries}-entry 2-level BPU"),
        ("Fetch", f"{config.fetch_bytes_per_cycle} B/cycle, "
                  f"{config.fetch_queue_entries}-entry fetch queue"),
        ("FUs", f"{config.fu.alu} ALU, {config.fu.mul} MUL/DIV, "
                f"{config.fu.fp} FP, {config.fu.mem} MEM ports"),
        ("I-cache", f"{m.icache_bytes // 1024}KB {m.icache_assoc}-way, "
                    f"{m.icache_hit}-cycle hit"),
        ("D-cache", f"{m.dcache_bytes // 1024}KB {m.dcache_assoc}-way, "
                    f"{m.dcache_hit}-cycle hit"),
        ("L2", f"{m.l2_bytes // (1024 * 1024)}MB {m.l2_assoc}-way, "
               f"{m.l2_hit}-cycle hit"),
        ("DRAM", "LPDDR3, 1 ch x 2 ranks x 8 banks, open-page"),
    ]
    width = max(len(k) for k, _ in rows)
    return "\n".join(f"{k:<{width}}  {v}" for k, v in rows)
