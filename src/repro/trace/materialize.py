"""Materialize a dynamic trace from a program and a block walk.

The workload generator produces a :class:`~repro.trace.program.Program` and a
*walk* — the sequence of basic-block executions (the analogue of replaying
the same recorded user input, paper Sec. III-A2).  Materializing the walk
over a program yields the dynamic trace; materializing the same walk over a
*compiler-transformed* program yields the transformed stream, giving a fair
before/after comparison.

Memory addresses are supplied by a :class:`MemoryModel` keyed by static
instruction uid and dynamic occurrence number, so the address stream is also
invariant across compiler transforms (uids survive rewrites).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

from repro.trace.dynamic import Trace, TraceEntry
from repro.trace.program import Program


class MemoryModel(Protocol):
    """Maps (static uid, occurrence index) to an effective byte address."""

    def address_for(self, uid: int, occurrence: int) -> int:
        """Return the address of the ``occurrence``-th execution of ``uid``."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class StridedPattern:
    """Classic strided access: ``base + (occurrence * stride) % region``.

    ``region`` bounds the footprint so reuse (cache hits) happens once the
    pattern wraps.  ``stride == 0`` models a scalar/field repeatedly accessed.
    """

    base: int
    stride: int
    region: int

    def address_for(self, occurrence: int) -> int:
        if self.region <= 0:
            return self.base
        offset = (occurrence * self.stride) % self.region
        return self.base + (offset & ~0x3)

    def span(self) -> Tuple[int, int]:
        """[lo, hi) byte range this pattern can touch."""
        return (self.base, self.base + max(4, self.region))


@dataclass(frozen=True)
class HashedPattern:
    """Pseudo-random accesses within a region (pointer-chasing-like)."""

    base: int
    region: int
    salt: int = 0

    def address_for(self, occurrence: int) -> int:
        if self.region <= 0:
            return self.base
        mixed = zlib.crc32(
            occurrence.to_bytes(8, "little") + self.salt.to_bytes(8, "little")
        )
        return self.base + ((mixed % self.region) & ~0x3)

    def span(self) -> Tuple[int, int]:
        """[lo, hi) byte range this pattern can touch."""
        return (self.base, self.base + max(4, self.region))


class TableMemoryModel:
    """MemoryModel backed by a per-uid pattern table with a default region."""

    def __init__(self, default_base: int = 0x8000_0000,
                 default_region: int = 1 << 14):
        self._patterns: Dict[int, object] = {}
        self._default = StridedPattern(default_base, 4, default_region)

    def set_pattern(self, uid: int, pattern) -> None:
        """Assign an access pattern to a static memory instruction."""
        self._patterns[uid] = pattern

    def pattern_for(self, uid: int):
        """Return the pattern assigned to ``uid`` (default if none)."""
        return self._patterns.get(uid, self._default)

    def address_for(self, uid: int, occurrence: int) -> int:
        pattern = self._patterns.get(uid, self._default)
        return pattern.address_for(occurrence)


def materialize(
    program: Program,
    walk: Sequence[int],
    memory: Optional[MemoryModel] = None,
    name: str = "trace",
) -> Trace:
    """Execute ``walk`` over ``program`` and return the dynamic trace.

    Branch outcomes are derived from the walk itself: a block-ending branch
    is *taken* iff the next block in the walk is its target (unconditional
    branches are always taken).
    """
    memory = memory if memory is not None else TableMemoryModel()
    layout = program.layout()
    occurrences: Dict[int, int] = {}
    entries: List[TraceEntry] = []
    seq = 0

    for idx, block_id in enumerate(walk):
        block = program.block(block_id)
        next_block = walk[idx + 1] if idx + 1 < len(walk) else None
        for pos, instr in enumerate(block.instructions):
            mem_addr = None
            if instr.is_memory:
                occ = occurrences.get(instr.uid, 0)
                occurrences[instr.uid] = occ + 1
                mem_addr = memory.address_for(instr.uid, occ)
            taken = None
            if instr.is_branch:
                if not instr.cond.is_predicated:
                    taken = True
                elif next_block is None:
                    taken = False
                else:
                    taken = next_block == instr.target
            entries.append(
                TraceEntry(
                    seq=seq,
                    instr=instr,
                    pc=layout[instr.uid],
                    mem_addr=mem_addr,
                    taken=taken,
                )
            )
            seq += 1

    return Trace(entries, name=name, program_name=program.name)
