"""Dynamic trace containers.

A :class:`Trace` is the dynamic instruction stream of one app execution —
the analogue of the paper's QEMU-disassembler dump (Sec. III-C "Trace
Collection").  Each :class:`TraceEntry` records the static instruction
executed, its PC (from the program layout), the effective memory address for
loads/stores, and the actual branch outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.isa.instruction import Instruction


@dataclass(frozen=True)
class TraceEntry:
    """One executed dynamic instruction."""

    seq: int
    instr: Instruction
    pc: int
    mem_addr: Optional[int] = None
    taken: Optional[bool] = None

    @property
    def uid(self) -> int:
        """Uid of the static instruction this entry executes."""
        return self.instr.uid


class Trace:
    """A dynamic instruction stream plus provenance metadata."""

    def __init__(
        self,
        entries: Sequence[TraceEntry],
        name: str = "trace",
        program_name: str = "",
    ):
        self.entries: List[TraceEntry] = list(entries)
        self.name = name
        self.program_name = program_name

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def __getitem__(self, index):
        return self.entries[index]

    def window(self, start: int, length: int) -> "Trace":
        """Return a sub-trace of ``length`` entries starting at ``start``."""
        return Trace(
            self.entries[start:start + length],
            name=f"{self.name}[{start}:{start + length}]",
            program_name=self.program_name,
        )

    def dynamic_bytes(self) -> int:
        """Total fetched bytes along the dynamic stream (encoding-aware)."""
        return sum(e.instr.size_bytes for e in self.entries)

    def count_thumb(self) -> int:
        """Number of dynamic instructions in 16-bit encoding."""
        from repro.isa.instruction import Encoding

        return sum(
            1 for e in self.entries if e.instr.encoding is Encoding.THUMB16
        )
