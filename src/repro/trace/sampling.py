"""Trace sampling, mirroring the paper's evaluation methodology.

The paper profiles ~100M instructions per app and evaluates on "100 samples
at random, each containing ~500k contiguous instructions" (Sec. IV-C).  At
laptop scale we keep the *structure* — N random contiguous windows drawn with
a seeded RNG, identical windows reused across all evaluated configurations —
with smaller defaults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.trace.dynamic import Trace


@dataclass(frozen=True)
class SamplePlan:
    """A reproducible set of contiguous trace windows."""

    windows: Tuple[Tuple[int, int], ...]  # (start, length) pairs

    def apply(self, trace: Trace) -> List[Trace]:
        """Cut the planned windows out of ``trace``."""
        return [trace.window(start, length) for start, length in self.windows]


def plan_samples(
    trace_length: int,
    num_samples: int,
    window_length: int,
    seed: int = 0,
) -> SamplePlan:
    """Choose ``num_samples`` random contiguous windows of ``window_length``.

    Windows are clamped to the trace; if the trace is shorter than one
    window, a single full-trace window is returned.
    """
    if trace_length <= 0:
        raise ValueError("trace_length must be positive")
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    if window_length <= 0:
        raise ValueError("window_length must be positive")

    if trace_length <= window_length:
        return SamplePlan(windows=((0, trace_length),))

    rng = random.Random(seed)
    max_start = trace_length - window_length
    starts = sorted(rng.randrange(max_start + 1) for _ in range(num_samples))
    return SamplePlan(
        windows=tuple((start, window_length) for start in starts)
    )


def sample_trace(
    trace: Trace,
    num_samples: int,
    window_length: int,
    seed: int = 0,
) -> List[Trace]:
    """Plan and apply sampling in one step."""
    plan = plan_samples(len(trace), num_samples, window_length, seed)
    return plan.apply(trace)
