"""Trace serialization: dump/load dynamic streams as text.

The paper's profiling flow instruments the QEMU disassembler to "output the
trace of instructions executed and data accessed" for offline analysis
(Sec. III-C).  This module is that interchange format: one tab-separated
line per dynamic instruction —

    seq <TAB> uid <TAB> pc-hex <TAB> mem-hex|- <TAB> taken|-|T|N <TAB> asm

The assembly column round-trips through :mod:`repro.isa.assembly`, so a
dumped trace reloads without needing the generating program.
"""

from __future__ import annotations

from typing import Iterable, List, TextIO, Union

from repro.isa.assembly import parse_line
from repro.trace.dynamic import Trace, TraceEntry

#: Format marker written as the first line.
HEADER = "# repro-trace v1"


def dump_trace(trace: Trace, stream: TextIO) -> int:
    """Write ``trace`` to ``stream``; returns the number of entries."""
    stream.write(HEADER + "\n")
    stream.write(f"# name={trace.name}\n")
    stream.write(f"# program={trace.program_name}\n")
    count = 0
    for entry in trace:
        mem = f"{entry.mem_addr:#x}" if entry.mem_addr is not None else "-"
        if entry.taken is None:
            taken = "-"
        else:
            taken = "T" if entry.taken else "N"
        stream.write(
            f"{entry.seq}\t{entry.uid}\t{entry.pc:#x}\t{mem}\t{taken}\t"
            f"{entry.instr.to_text()}\n"
        )
        count += 1
    return count


def dump_trace_to_path(trace: Trace, path: str) -> int:
    """Write ``trace`` to a file path."""
    with open(path, "w") as handle:
        return dump_trace(trace, handle)


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed."""


def load_trace(stream: TextIO) -> Trace:
    """Parse a trace previously written by :func:`dump_trace`.

    A dynamic stream repeats a few thousand *static* instructions across
    tens of thousands of entries, so parsed instructions are memoized by
    their ``(uid, asm)`` line — repeats share one ``Instruction`` object,
    exactly as a materialized trace shares the program's objects (the
    simulator's static-info caches rely on that identity).
    """
    first = stream.readline().rstrip("\n")
    if first != HEADER:
        raise TraceFormatError(f"bad header {first!r}; expected {HEADER!r}")
    name = "trace"
    program_name = ""
    entries: List[TraceEntry] = []
    statics: dict = {}
    statics_get = statics.get
    for lineno, raw in enumerate(stream, start=2):
        line = raw.rstrip("\n")
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            if body.startswith("name="):
                name = body[len("name="):]
            elif body.startswith("program="):
                program_name = body[len("program="):]
            continue
        fields = line.split("\t")
        if len(fields) != 6:
            raise TraceFormatError(
                f"line {lineno}: expected 6 tab-separated fields, "
                f"got {len(fields)}"
            )
        seq_s, uid_s, pc_s, mem_s, taken_s, asm = fields
        try:
            static_key = (uid_s, asm)
            instr = statics_get(static_key)
            if instr is None:
                instr = parse_line(asm).with_uid(int(uid_s))
                statics[static_key] = instr
            entries.append(TraceEntry(
                seq=int(seq_s),
                instr=instr,
                pc=int(pc_s, 16),
                mem_addr=None if mem_s == "-" else int(mem_s, 16),
                taken=None if taken_s == "-" else taken_s == "T",
            ))
        except (ValueError, KeyError) as exc:
            raise TraceFormatError(f"line {lineno}: {exc}") from exc
    return Trace(entries, name=name, program_name=program_name)


def load_trace_from_path(path: str) -> Trace:
    """Load a trace from a file path."""
    with open(path) as handle:
        return load_trace(handle)
