"""Programs, dynamic traces, dependence analysis, and sampling."""

from repro.trace.dependence import (
    FLAG_WRITERS,
    compute_consumers,
    compute_fanouts,
    compute_producers,
    reads_flags,
    writes_flags,
)
from repro.trace.dynamic import Trace, TraceEntry
from repro.trace.materialize import (
    HashedPattern,
    MemoryModel,
    StridedPattern,
    TableMemoryModel,
    materialize,
)
from repro.trace.program import BLOCK_ALIGN, BasicBlock, Program, TEXT_BASE
from repro.trace.sampling import SamplePlan, plan_samples, sample_trace
from repro.trace.trace_io import (
    TraceFormatError,
    dump_trace,
    dump_trace_to_path,
    load_trace,
    load_trace_from_path,
)

__all__ = [
    "BasicBlock",
    "BLOCK_ALIGN",
    "FLAG_WRITERS",
    "HashedPattern",
    "MemoryModel",
    "Program",
    "SamplePlan",
    "StridedPattern",
    "TableMemoryModel",
    "TEXT_BASE",
    "Trace",
    "TraceEntry",
    "TraceFormatError",
    "compute_consumers",
    "dump_trace",
    "dump_trace_to_path",
    "load_trace",
    "load_trace_from_path",
    "compute_fanouts",
    "compute_producers",
    "materialize",
    "plan_samples",
    "reads_flags",
    "sample_trace",
    "writes_flags",
]
