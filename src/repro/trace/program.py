"""Static program representation: basic blocks of instructions.

A :class:`Program` is an ordered collection of :class:`BasicBlock`s.  The
synthetic workload generator (``repro.workloads``) produces programs plus a
*walk* (a sequence of block executions); materializing the walk over the
program yields the dynamic trace the simulator consumes.  Compiler passes
rewrite blocks in place (producing new Program instances), after which the
same walk re-materializes into the transformed dynamic stream — giving an
apples-to-apples before/after comparison, exactly like recompiling an app and
re-running the same input script (paper Sec. III-C uses recorded user inputs
the same way).

Byte addresses are assigned by :meth:`Program.layout`, which packs each
block's instructions back-to-back honoring each instruction's encoding size
(4 bytes for ARM32, 2 for Thumb16).  Blocks start at word-aligned addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.isa.instruction import Instruction

#: Default base address for program text (arbitrary but nonzero).
TEXT_BASE = 0x1_0000

#: Alignment of basic-block start addresses, in bytes.
BLOCK_ALIGN = 4


@dataclass
class BasicBlock:
    """A straight-line sequence of instructions with a stable id."""

    block_id: int
    instructions: List[Instruction] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def byte_size(self) -> int:
        """Encoded size of the block, padded to BLOCK_ALIGN."""
        raw = sum(i.size_bytes for i in self.instructions)
        pad = (-raw) % BLOCK_ALIGN
        return raw + pad


class Program:
    """An ordered set of basic blocks with uid-stamped instructions.

    Instruction ``uid``s are globally unique within the program and survive
    compiler rewrites of *other* instructions, so profiles (keyed by uid) stay
    valid across passes that only re-encode or reorder.
    """

    def __init__(self, blocks: Sequence[BasicBlock], name: str = "program"):
        self.name = name
        self.blocks: List[BasicBlock] = list(blocks)
        self._by_block: Dict[int, BasicBlock] = {}
        self._by_uid: Dict[int, Tuple[int, int]] = {}
        self._next_uid = 0
        for block in self.blocks:
            if block.block_id in self._by_block:
                raise ValueError(f"duplicate block id {block.block_id}")
            self._by_block[block.block_id] = block
        self._stamp_uids()

    def _stamp_uids(self) -> None:
        """Assign uids to any instruction that lacks one; index positions."""
        taken = set()
        for block in self.blocks:
            for instr in block.instructions:
                if instr.uid >= 0:
                    if instr.uid in taken:
                        raise ValueError(f"duplicate uid {instr.uid}")
                    taken.add(instr.uid)
        next_uid = max(taken) + 1 if taken else 0
        for block in self.blocks:
            for pos, instr in enumerate(block.instructions):
                if instr.uid < 0:
                    while next_uid in taken:
                        next_uid += 1
                    block.instructions[pos] = instr.with_uid(next_uid)
                    taken.add(next_uid)
                    next_uid += 1
        self._reindex()

    def reindex(self) -> None:
        """Refresh the uid index after in-place edits to block lists.

        Compiler passes that mutate ``block.instructions`` directly must
        call this before the program is used for lookups or layout.
        """
        self._reindex()

    def _reindex(self) -> None:
        self._by_uid.clear()
        for block in self.blocks:
            for pos, instr in enumerate(block.instructions):
                self._by_uid[instr.uid] = (block.block_id, pos)
        self._next_uid = 1 + max(self._by_uid, default=-1)

    # -- lookups -----------------------------------------------------------

    def block(self, block_id: int) -> BasicBlock:
        """Return the block with ``block_id``."""
        return self._by_block[block_id]

    def find(self, uid: int) -> Instruction:
        """Return the instruction with the given uid."""
        block_id, pos = self._by_uid[uid]
        return self._by_block[block_id].instructions[pos]

    def locate(self, uid: int) -> Tuple[int, int]:
        """Return (block_id, position) of the instruction with ``uid``."""
        return self._by_uid[uid]

    def fresh_uid(self) -> int:
        """Reserve and return a new unused uid (for inserted instructions)."""
        uid = self._next_uid
        self._next_uid += 1
        return uid

    def __iter__(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def instruction_count(self) -> int:
        """Total static instruction count."""
        return sum(len(b) for b in self.blocks)

    # -- mutation (used by compiler passes) ---------------------------------

    def replace_block(self, block_id: int, instrs: Iterable[Instruction]) -> None:
        """Replace a block's instruction list and refresh the uid index."""
        block = self._by_block[block_id]
        block.instructions = list(instrs)
        self._stamp_uids()

    def copy(self) -> "Program":
        """Deep-enough copy: new blocks/lists, shared immutable instructions."""
        blocks = [
            BasicBlock(b.block_id, list(b.instructions)) for b in self.blocks
        ]
        return Program(blocks, name=self.name)

    # -- layout -------------------------------------------------------------

    def layout(self, base: int = TEXT_BASE) -> Dict[int, int]:
        """Assign a byte address to every instruction (keyed by uid).

        Blocks are laid out in order, each starting word-aligned; within a
        block instructions pack back-to-back at their encoded size.  Returns
        a dict uid -> address.
        """
        addresses: Dict[int, int] = {}
        cursor = base
        for block in self.blocks:
            pad = (-cursor) % BLOCK_ALIGN
            cursor += pad
            for instr in block.instructions:
                addresses[instr.uid] = cursor
                cursor += instr.size_bytes
        return addresses

    def code_bytes(self, base: int = TEXT_BASE) -> int:
        """Total laid-out code size in bytes (including alignment padding)."""
        cursor = base
        for block in self.blocks:
            cursor += (-cursor) % BLOCK_ALIGN
            cursor += sum(i.size_bytes for i in block.instructions)
        return cursor - base
