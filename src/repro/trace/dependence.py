"""Dynamic dependence analysis over a trace.

Produces, for each dynamic instruction, the sequence numbers of its direct
producers: register producers (last writer of each source register), flag
producers (``CMP``/``TST`` feed conditional branches and predicated
instructions), and memory producers (last store to the same word feeds a
load from it).  This is the edge set of the dynamic Data Flow Graph the
paper's criticality machinery operates on (Sec. II-A, III-A).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.trace.dynamic import Trace, TraceEntry

#: Opcodes that set the condition flags.
FLAG_WRITERS = (Opcode.CMP, Opcode.TST)

#: Word granularity used to match store->load memory dependences.
_WORD_MASK = ~0x3


def writes_flags(instr: Instruction) -> bool:
    """True if ``instr`` sets the condition flags."""
    return instr.opcode in FLAG_WRITERS


def reads_flags(instr: Instruction) -> bool:
    """True if ``instr`` consumes the condition flags."""
    if instr.is_predicated:
        return True
    return instr.is_branch and instr.cond.is_predicated


def compute_producers(trace: Trace) -> List[Tuple[int, ...]]:
    """Return producer seq-number tuples, one per trace entry.

    Producer seqs are *positions within the trace window* (0-based), which is
    what the DFG, the chain finder, and the simulator's wake-up logic all
    index by.

    Single pass over the stream.  The per-instruction classification
    (sources, destinations, flag behaviour, memory behaviour) depends only
    on the *static* instruction, so it is resolved once per distinct
    ``Instruction`` object and reused for every dynamic occurrence — traces
    repeat a few thousand statics across tens of thousands of entries.
    """
    last_reg_writer: Dict[int, int] = {}
    last_flag_writer = -1
    last_store_to: Dict[int, int] = {}
    producers: List[Tuple[int, ...]] = []
    append = producers.append
    reg_get = last_reg_writer.get
    store_get = last_store_to.get
    # id(instr) -> (srcs, dests, reads_flags, writes_flags, is_load, is_store)
    static_info: Dict[int, tuple] = {}
    info_get = static_info.get

    for pos, entry in enumerate(trace.entries):
        instr = entry.instr
        info = info_get(id(instr))
        if info is None:
            info = (instr.srcs, instr.dests, reads_flags(instr),
                    writes_flags(instr), instr.is_load, instr.is_store)
            static_info[id(instr)] = info
        srcs, dests, rflags, wflags, is_load, is_store = info

        # Collect producers, deduplicating in first-occurrence order (the
        # list is at most a handful of entries, so linear membership tests
        # beat building a set per entry).
        found: List[int] = []
        for reg in srcs:
            writer = reg_get(reg, -1)
            if writer >= 0 and writer not in found:
                found.append(writer)
        if rflags and last_flag_writer >= 0 \
                and last_flag_writer not in found:
            found.append(last_flag_writer)
        mem_addr = entry.mem_addr
        if is_load and mem_addr is not None:
            store = store_get(mem_addr & _WORD_MASK, -1)
            if store >= 0 and store not in found:
                found.append(store)
        append(tuple(found))

        for reg in dests:
            last_reg_writer[reg] = pos
        if wflags:
            last_flag_writer = pos
        if is_store and mem_addr is not None:
            last_store_to[mem_addr & _WORD_MASK] = pos

    return producers


def compute_consumers(
    producers: Sequence[Tuple[int, ...]],
) -> List[List[int]]:
    """Invert a producer map into per-entry direct consumer lists."""
    consumers: List[List[int]] = [[] for _ in producers]
    for pos, prods in enumerate(producers):
        for p in prods:
            consumers[p].append(pos)
    return consumers


def compute_fanouts(trace: Trace) -> List[int]:
    """Direct dynamic fanout (number of consumers) of every entry.

    Single array pass over the producer map — no consumer lists are built.
    """
    producers = compute_producers(trace)
    fanouts = [0] * len(producers)
    for prods in producers:
        for p in prods:
            fanouts[p] += 1
    return fanouts
