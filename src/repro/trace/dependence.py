"""Dynamic dependence analysis over a trace.

Produces, for each dynamic instruction, the sequence numbers of its direct
producers: register producers (last writer of each source register), flag
producers (``CMP``/``TST`` feed conditional branches and predicated
instructions), and memory producers (last store to the same word feeds a
load from it).  This is the edge set of the dynamic Data Flow Graph the
paper's criticality machinery operates on (Sec. II-A, III-A).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.trace.dynamic import Trace, TraceEntry

#: Opcodes that set the condition flags.
FLAG_WRITERS = (Opcode.CMP, Opcode.TST)

#: Word granularity used to match store->load memory dependences.
_WORD_MASK = ~0x3


def writes_flags(instr: Instruction) -> bool:
    """True if ``instr`` sets the condition flags."""
    return instr.opcode in FLAG_WRITERS


def reads_flags(instr: Instruction) -> bool:
    """True if ``instr`` consumes the condition flags."""
    if instr.is_predicated:
        return True
    return instr.is_branch and instr.cond.is_predicated


def compute_producers(trace: Trace) -> List[Tuple[int, ...]]:
    """Return producer seq-number tuples, one per trace entry.

    Producer seqs are *positions within the trace window* (0-based), which is
    what the DFG, the chain finder, and the simulator's wake-up logic all
    index by.
    """
    last_reg_writer: Dict[int, int] = {}
    last_flag_writer = -1
    last_store_to: Dict[int, int] = {}
    producers: List[Tuple[int, ...]] = []

    for pos, entry in enumerate(trace.entries):
        instr = entry.instr
        found: List[int] = []
        for reg in instr.srcs:
            writer = last_reg_writer.get(reg, -1)
            if writer >= 0:
                found.append(writer)
        if reads_flags(instr) and last_flag_writer >= 0:
            found.append(last_flag_writer)
        if instr.is_load and entry.mem_addr is not None:
            word = entry.mem_addr & _WORD_MASK
            store = last_store_to.get(word, -1)
            if store >= 0:
                found.append(store)

        # Deduplicate while preserving order.
        seen = set()
        unique = tuple(p for p in found if not (p in seen or seen.add(p)))
        producers.append(unique)

        for reg in instr.dests:
            last_reg_writer[reg] = pos
        if writes_flags(instr):
            last_flag_writer = pos
        if instr.is_store and entry.mem_addr is not None:
            last_store_to[entry.mem_addr & _WORD_MASK] = pos

    return producers


def compute_consumers(
    producers: Sequence[Tuple[int, ...]],
) -> List[List[int]]:
    """Invert a producer map into per-entry direct consumer lists."""
    consumers: List[List[int]] = [[] for _ in producers]
    for pos, prods in enumerate(producers):
        for p in prods:
            consumers[p].append(pos)
    return consumers


def compute_fanouts(trace: Trace) -> List[int]:
    """Direct dynamic fanout (number of consumers) of every entry."""
    producers = compute_producers(trace)
    fanouts = [0] * len(producers)
    for prods in producers:
        for p in prods:
            fanouts[p] += 1
    return fanouts
