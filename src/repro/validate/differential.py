"""Differential validation: OoO simulator vs the in-order reference.

Runs the same trace/config through :func:`repro.cpu.simulate` and
:func:`repro.validate.reference.reference_run` (each on its own freshly
warmed memory system) and checks:

* **commit agreement** — both models retire exactly the trace;
* **IPC lower bound** — the out-of-order core is never slower than the
  fully serialized in-order reference;
* **order-insensitive agreement** — branch mispredicts, i-cache demand
  accesses/misses, and fetched bytes match exactly.

Returns a :class:`~repro.validate.invariants.ValidationReport`; callers
(the fuzzer, tests, the CLI) decide whether to raise.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.cpu.config import CpuConfig, GOOGLE_TABLET
from repro.cpu.pipeline import simulate
from repro.cpu.stats import SimStats
from repro.validate.invariants import ValidationReport
from repro.validate.reference import ReferenceStats, reference_run
from repro.trace.dynamic import Trace


def differential_check(
    trace: Trace,
    config: CpuConfig = GOOGLE_TABLET,
    critical_positions: Optional[Set[int]] = None,
    ooo_stats: Optional[SimStats] = None,
) -> ValidationReport:
    """Compare one trace's OoO run against the in-order reference.

    ``ooo_stats`` short-circuits the OoO run when the caller already has
    fresh stats for exactly this trace/config (the fuzzer reuses its
    invariant-checked runs).
    """
    report = ValidationReport(trace_name=trace.name,
                              config_name=config.name)
    if ooo_stats is None:
        ooo_stats = simulate(trace, config,
                             critical_positions=critical_positions,
                             validate=False)
    ref = reference_run(trace, config)
    _compare(report, trace, ooo_stats, ref)
    return report


def _compare(report: ValidationReport, trace: Trace, ooo: SimStats,
             ref: ReferenceStats) -> None:
    n = len(trace)
    if ooo.instructions != n:
        report.add(
            "diff_commit",
            f"OoO committed {ooo.instructions} of {n} trace entries",
        )
    if ref.instructions != n:
        report.add(
            "diff_commit",
            f"reference retired {ref.instructions} of {n} trace entries",
        )
    if ooo.cycles > ref.cycles:
        report.add(
            "diff_ipc_bound",
            f"OoO run took {ooo.cycles} cycles, slower than the serial "
            f"in-order reference's {ref.cycles}",
            ooo_ipc=ooo.ipc, ref_ipc=ref.ipc,
        )
    if ooo.branch_mispredicts != ref.branch_mispredicts:
        report.add(
            "diff_branch_mispredicts",
            f"OoO saw {ooo.branch_mispredicts} mispredicts, reference "
            f"{ref.branch_mispredicts} (order-insensitive: must match)",
        )
    if (ooo.icache_accesses != ref.icache_accesses
            or ooo.icache_misses != ref.icache_misses):
        report.add(
            "diff_icache",
            f"i-cache disagreement: OoO {ooo.icache_misses}/"
            f"{ooo.icache_accesses} misses/accesses, reference "
            f"{ref.icache_misses}/{ref.icache_accesses}",
        )
    expected_bytes = trace.dynamic_bytes()
    if ref.fetched_bytes != expected_bytes:
        report.add(
            "diff_fetched_bytes",
            f"reference fetched {ref.fetched_bytes} bytes, trace carries "
            f"{expected_bytes}",
        )
