"""Invariant checking over :class:`repro.cpu.pipeline.Simulator` runs.

The simulator's hot path has been rewritten twice for speed (flat
``_TraceTables``, locals-accumulated counters); the only guard so far was
"bit-identical SimStats" spot checks, which catch *drift* but not *shared*
bugs.  This module checks structural invariants any correct run must
satisfy, independent of the expected numbers:

* **Timestamp monotonicity** — every committed instruction advances
  through the pipeline in order: ``head <= fetch <= decode <= dispatch <=
  issue <= complete <= commit`` (CDPs collapse decode..complete onto one
  cycle, which still satisfies the chain).
* **Fetch-stall conservation** — every cycle classifies the fetch stage
  exactly once, so ``active + stalls + drained == cycles``; the critical
  sub-classification never exceeds the full one.
* **Residency conservation** — summed per-stage residencies equal total
  committed pipeline occupancy (``commit - head`` summed over committed
  instructions); the critical/chain sub-classes never exceed the full
  class.
* **Commit completeness** — a non-truncated run commits exactly the trace
  length.
* **Cache/DRAM conservation** — misses never exceed accesses at any
  level; L2 demand traffic is bounded by L1 misses; DRAM reads are
  bounded by L2 misses; prefetch counters sum across prefetchers.

Checking is wired into :func:`repro.cpu.simulate` behind the
``REPRO_VALIDATE`` environment variable (or an explicit ``validate=``
kwarg) and costs nothing when off: the simulator only allocates the
commit-cycle column and calls :meth:`RunValidator.on_run` when a
validator is attached, and stats are bit-identical either way.

Violations are counted as telemetry counters
(``validate.violation.<kind>``) and carry flight-recorder-style context —
the stage-entry cycles of the offending instruction and its neighbours —
so a failure is diagnosable without re-running.  By default a violation
raises :class:`InvariantViolationError`; pass ``strict=False`` to collect
a :class:`ValidationReport` instead.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro import telemetry

#: Environment switch for process-wide validation.
ENV_VALIDATE = "REPRO_VALIDATE"

#: Values of ``REPRO_VALIDATE`` that mean "off".
_OFF = ("", "0", "false", "off", "no")

#: Stage keys in pipeline order (mirrors repro.cpu.stats.STAGES, inlined
#: here so importing this module never triggers the repro.cpu package —
#: the pipeline imports us lazily, and a package-level cycle would be
#: easy to reintroduce).
_STAGES = ("fetch", "decode", "dispatch", "issue_wait", "execute",
           "commit_wait")

#: Timestamp columns in pipeline order, for monotonicity and context.
_TS_NAMES = ("head", "fetch", "decode", "dispatch", "issue", "complete",
             "commit")


def validation_enabled() -> bool:
    """True when ``REPRO_VALIDATE`` requests validation."""
    return os.environ.get(ENV_VALIDATE, "").strip().lower() not in _OFF


@dataclass
class Violation:
    """One failed invariant, with enough context to diagnose it."""

    kind: str
    message: str
    pos: Optional[int] = None
    context: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "message": self.message,
            "pos": self.pos,
            "context": self.context,
        }

    def __str__(self) -> str:
        where = f" @pos={self.pos}" if self.pos is not None else ""
        return f"[{self.kind}]{where} {self.message}"


@dataclass
class ValidationReport:
    """All violations found while checking one simulation run."""

    trace_name: str = ""
    config_name: str = ""
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, kind: str, message: str, pos: Optional[int] = None,
            **context: Any) -> None:
        self.violations.append(Violation(kind, message, pos, context))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace": self.trace_name,
            "config": self.config_name,
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
        }

    def summary(self) -> str:
        if self.ok:
            return (f"{self.trace_name} on {self.config_name}: "
                    f"all invariants hold")
        lines = [f"{self.trace_name} on {self.config_name}: "
                 f"{len(self.violations)} invariant violation(s)"]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)


class InvariantViolationError(AssertionError):
    """A simulation run violated a pipeline invariant."""

    def __init__(self, report: ValidationReport):
        super().__init__(report.summary())
        self.report = report


def _timeline_context(pos: int, columns: Sequence[Sequence[int]],
                      window: int = 2) -> Dict[str, List[int]]:
    """Flight-recorder-style excerpt: stage-entry cycles around ``pos``."""
    n = len(columns[0])
    lo = max(0, pos - window)
    hi = min(n, pos + window + 1)
    out: Dict[str, List[int]] = {"positions": list(range(lo, hi))}
    for name, col in zip(_TS_NAMES, columns):
        out[name] = [col[i] for i in range(lo, hi)]
    return out


# -- individual checks (each standalone-testable) ---------------------------


def check_timestamps(report: ValidationReport,
                     columns: Sequence[Sequence[int]],
                     max_violations: int = 8) -> None:
    """Per-instruction stage-entry cycles must be monotonic.

    ``columns`` is the 7-tuple ``(head, fetch, decode, dispatch, issue,
    complete, commit)``; entries with ``commit < 0`` (not committed, e.g.
    after a ``max_cycles`` cutoff) are skipped.
    """
    commit = columns[-1]
    found = 0
    for pos in range(len(commit)):
        if commit[pos] < 0:
            continue
        prev = 0
        prev_name = "start"
        for name, col in zip(_TS_NAMES, columns):
            t = col[pos]
            if t < prev:
                report.add(
                    "timestamp_monotonicity",
                    f"{name}={t} precedes {prev_name}={prev}",
                    pos=pos,
                    timeline=_timeline_context(pos, columns),
                )
                found += 1
                break
            prev = t
            prev_name = name
        if found >= max_violations:
            report.add("timestamp_monotonicity",
                       f"stopping after {max_violations} violations")
            return


def check_fetch_stalls(report: ValidationReport, stats: Any) -> None:
    """Every cycle classifies the fetch stage exactly once."""
    f = stats.fetch
    total = (f.active + f.stall_icache + f.stall_branch + f.stall_switch
             + f.stall_backpressure + f.drained)
    if total != stats.cycles:
        report.add(
            "fetch_stall_conservation",
            f"fetch-cycle classes sum to {total}, expected cycles="
            f"{stats.cycles}",
            active=f.active, icache=f.stall_icache, branch=f.stall_branch,
            switch=f.stall_switch, backpressure=f.stall_backpressure,
            drained=f.drained,
        )
    fc = stats.fetch_critical
    for attr in ("active", "stall_icache", "stall_branch", "stall_switch",
                 "stall_backpressure"):
        sub, full = getattr(fc, attr), getattr(f, attr)
        if sub > full:
            report.add(
                "fetch_stall_subset",
                f"critical fetch counter {attr}={sub} exceeds "
                f"all-instruction counter {full}",
            )


def check_residency(report: ValidationReport, stats: Any,
                    head: Sequence[int], commit: Sequence[int]) -> None:
    """Residency totals must equal committed pipeline occupancy."""
    res = stats.residency_all
    if res.instructions != stats.instructions:
        report.add(
            "residency_instructions",
            f"residency_all covers {res.instructions} instructions, "
            f"stats committed {stats.instructions}",
        )
    occupancy = 0
    for pos in range(len(commit)):
        if commit[pos] >= 0:
            occupancy += commit[pos] - head[pos]
    total = sum(res.totals.values())
    if total != occupancy:
        report.add(
            "residency_conservation",
            f"summed residencies {total} != committed occupancy "
            f"{occupancy} (sum of commit-head)",
            totals=dict(res.totals),
        )
    for name in ("residency_critical", "residency_chain"):
        sub = getattr(stats, name)
        if sub.instructions > res.instructions:
            report.add(
                "residency_subset",
                f"{name} covers {sub.instructions} instructions, more "
                f"than residency_all's {res.instructions}",
            )
        for stage in _STAGES:
            if sub.totals.get(stage, 0) > res.totals.get(stage, 0):
                report.add(
                    "residency_subset",
                    f"{name}.{stage}={sub.totals[stage]} exceeds "
                    f"residency_all.{stage}={res.totals[stage]}",
                )


def check_commit(report: ValidationReport, stats: Any, n: int) -> None:
    """Non-truncated runs commit the whole trace; truncated ones never
    commit more than it."""
    if stats.truncated:
        if stats.instructions >= n and n > 0:
            report.add(
                "commit_truncated",
                f"run marked truncated but committed {stats.instructions} "
                f"of {n}",
            )
        return
    if stats.instructions != n:
        report.add(
            "commit_completeness",
            f"committed {stats.instructions} instructions, trace has {n}",
        )


def check_memory(report: ValidationReport, stats: Any) -> None:
    """Cache/DRAM event conservation."""
    for level in ("icache", "dcache", "l2"):
        misses = getattr(stats, f"{level}_misses")
        accesses = getattr(stats, f"{level}_accesses")
        if misses > accesses:
            report.add(
                "cache_conservation",
                f"{level} misses {misses} exceed accesses {accesses}",
            )
        if misses < 0 or accesses < 0:
            report.add(
                "cache_conservation",
                f"negative {level} counters: accesses={accesses} "
                f"misses={misses}",
            )
    l1_misses = stats.icache_misses + stats.dcache_misses
    if stats.l2_accesses > l1_misses:
        report.add(
            "cache_conservation",
            f"L2 demand accesses {stats.l2_accesses} exceed L1 misses "
            f"{l1_misses} (demand traffic must originate at L1)",
        )
    if stats.dram_reads > stats.l2_misses:
        report.add(
            "cache_conservation",
            f"DRAM reads {stats.dram_reads} exceed L2 misses "
            f"{stats.l2_misses}",
        )
    component = sum(
        count for key, count
        in getattr(stats, "component_counters", {}).items()
        if key.startswith("prefetch.")
    )
    total = (stats.clpt_prefetches_issued + stats.efetch_prefetches_issued
             + component)
    if stats.prefetches_issued != total:
        report.add(
            "prefetch_conservation",
            f"prefetches_issued={stats.prefetches_issued} != CLPT "
            f"{stats.clpt_prefetches_issued} + EFetch "
            f"{stats.efetch_prefetches_issued} + components {component}",
        )


class RunValidator:
    """Checks one (or more) finished simulation runs.

    The simulator calls :meth:`on_run` with the same per-instruction
    timestamp columns the flight recorder gets, plus the run's
    :class:`~repro.cpu.stats.SimStats`.  Purely observational: attaching
    a validator never changes stats.
    """

    def __init__(self, strict: bool = True):
        self.strict = strict
        self.reports: List[ValidationReport] = []

    # -- called by the simulator ---------------------------------------------

    def on_run(
        self,
        *,
        trace_name: str,
        config_name: str,
        stats: Any,
        n: int,
        head: Sequence[int],
        fetch: Sequence[int],
        decode: Sequence[int],
        dispatch: Sequence[int],
        issue: Sequence[int],
        complete: Sequence[int],
        commit: Sequence[int],
    ) -> ValidationReport:
        """Check every invariant for one finished run."""
        report = ValidationReport(trace_name=trace_name,
                                 config_name=config_name)
        columns = (head, fetch, decode, dispatch, issue, complete, commit)
        check_timestamps(report, columns)
        check_fetch_stalls(report, stats)
        check_residency(report, stats, head, commit)
        check_commit(report, stats, n)
        check_memory(report, stats)
        self.reports.append(report)
        for violation in report.violations:
            telemetry.count(f"validate.violation.{violation.kind}")
        if self.strict and not report.ok:
            raise InvariantViolationError(report)
        return report

    # -- consumers -----------------------------------------------------------

    @property
    def violations(self) -> List[Violation]:
        return [v for report in self.reports for v in report.violations]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "runs": len(self.reports),
            "violations": sum(len(r.violations) for r in self.reports),
            "reports": [r.to_dict() for r in self.reports
                        if not r.ok],
        }
