"""Seeded workload fuzzer + metamorphic suite for the whole pipeline.

Drives randomized :class:`~repro.workloads.WorkloadProfile`s through all
eight compiler schemes and several hardware configurations, with the
pipeline invariant checker attached to every simulation and the in-order
differential oracle run on the baseline trace.  On top of the per-run
invariants it asserts *cross-run metamorphic properties* — relations that
must hold between runs regardless of the absolute numbers:

* **Thumb monotonicity** — re-encoding schemes (CritIC/CDP, OPP16,
  Compress, their combinations) never *increase* dynamically fetched
  bytes; pure hoisting preserves them exactly.  (Approach-1 branch
  switching is exempt: its switch-branch pairs add real instructions.)
* **PerfectBr never slower** — oracle branch prediction can only remove
  redirect stalls.
* **Bigger i-cache never misses more** — scaling capacity cannot add
  demand misses on the same fetch stream.
* **CritIC.Ideal dominates CritIC** — the no-constraints upper bound must
  achieve at least the deployable scheme's speedup.
* **Dual prefetchers sum** — with CLPT and EFetch both enabled,
  ``prefetches_issued`` equals the two per-prefetcher counters' sum (the
  PR-3 last-writer-wins regression).
* **Registry prefetchers count** — a registry-only prefetcher
  (critical-nextline) reports its issues via ``component_counters`` and
  those feed ``prefetches_issued`` too.
* **Next-line dominance** — the criticality-weighted next-line
  instruction prefetcher never *adds* demand i-cache misses beyond
  alignment/pollution noise: its fills install lines ahead of the fetch
  stream, they never count as demand accesses.
* **Dispatch equivalence** — one grid, run once per execution backend
  (``inline``, ``pool``, and ``fleet`` with seeded fault injection
  active), must produce identical ``SimStats`` for every cell *and*
  identical manifest ``config_hash`` values: how cells were executed —
  including how many workers were SIGKILLed along the way — is
  provenance, never part of the result.

Both new registered components (the TRRIP i-cache policy and the
critical-nextline prefetcher) are also run under the in-order
differential oracle each round, with exact i-cache agreement demanded
against the out-of-order pipeline.

Entry point: ``python -m repro.validate --fuzz N --seed S``.  All
randomness flows from one ``random.Random(seed)``, so a failing seed is
a reproducer.
"""

from __future__ import annotations

import os
import random
import tempfile
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.cpu.config import (
    CpuConfig,
    GOOGLE_TABLET,
    config_4x_icache,
    config_critical_prefetch,
    config_efetch,
    config_perfect_br,
)
from repro.cpu.pipeline import simulate
from repro.cpu.stats import SimStats
from repro.experiments.runner import SCHEMES, AppContext
from repro.registry import HARDWARE_CONFIGS
from repro.validate.differential import differential_check
from repro.validate.invariants import RunValidator, ValidationReport
from repro.workloads import ALL_PROFILES, WorkloadProfile

#: Schemes whose transformation is a pure (hoist +) Thumb re-encoding —
#: fetched bytes must never increase relative to baseline.
THUMB_SCHEMES = ("critic", "critic_ideal", "opp16", "compress",
                 "opp16_critic")


def random_profile(rng: random.Random, index: int,
                   walk_blocks: int = 120) -> WorkloadProfile:
    """A randomized workload: a catalog profile with fuzzed knobs.

    Starting from a real Table II profile keeps the structural guarantees
    the generator documents (register conventions, chain shapes) while
    the fuzzed knobs explore the parameter space the catalog never hits.
    """
    base = rng.choice(sorted(ALL_PROFILES.values(), key=lambda p: p.name))
    lo = rng.randint(2, 5)
    return replace(
        base,
        name=f"fuzz{index}-{base.name}",
        seed=rng.randrange(1, 1 << 30),
        num_functions=rng.randint(4, 48),
        blocks_per_function=(lo, lo + rng.randint(0, 3)),
        chain_motif_prob=round(rng.uniform(0.0, 0.95), 3),
        chain_length=(3 + rng.randint(0, 3), 8 + rng.randint(0, 8)),
        chain_load_head_frac=round(rng.uniform(0.0, 1.0), 3),
        chain_load_frac=round(rng.uniform(0.0, 0.6), 3),
        chain_hostile_frac=round(rng.uniform(0.0, 0.15), 3),
        indep_critical_prob=round(rng.uniform(0.0, 0.6), 3),
        long_latency_frac=round(rng.uniform(0.0, 0.2), 3),
        fp_frac=round(rng.uniform(0.0, 0.3), 3),
        load_frac=round(rng.uniform(0.05, 0.3), 3),
        store_frac=round(rng.uniform(0.02, 0.15), 3),
        filler_high_reg_frac=round(rng.uniform(0.0, 0.8), 3),
        filler_wide_imm_frac=round(rng.uniform(0.0, 0.5), 3),
        call_frac=round(rng.uniform(0.0, 0.5), 3),
        skip_branch_frac=round(rng.uniform(0.0, 0.35), 3),
        hard_branch_frac=round(rng.uniform(0.0, 0.6), 3),
        loop_iterations=(2, rng.randint(3, 12)),
        walk_blocks=walk_blocks,
    )


@dataclass
class FuzzResult:
    """Outcome of one fuzz campaign."""

    iterations: int = 0
    simulations: int = 0
    properties_checked: int = 0
    reports: List[ValidationReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.reports)

    @property
    def failures(self) -> List[ValidationReport]:
        return [r for r in self.reports if not r.ok]

    def to_dict(self) -> Dict:
        return {
            "iterations": self.iterations,
            "simulations": self.simulations,
            "properties_checked": self.properties_checked,
            "ok": self.ok,
            "failures": [r.to_dict() for r in self.failures],
        }


def _meta(report: ValidationReport, result: FuzzResult, ok: bool,
          kind: str, message: str, **context) -> None:
    """Record one metamorphic property evaluation."""
    result.properties_checked += 1
    if not ok:
        report.add(kind, message, **context)


def fuzz_iteration(profile: WorkloadProfile, result: FuzzResult,
                   differential: bool = True) -> ValidationReport:
    """One fuzz round: all schemes x configs for one randomized profile.

    Every simulation runs with the invariant checker attached
    (non-strict: violations land in the returned report instead of
    raising, so one bad run doesn't mask the rest of the round).
    """
    validator = RunValidator(strict=False)
    ctx = AppContext(app_profile=profile)
    report = ValidationReport(trace_name=profile.name,
                              config_name="metamorphic")

    def run(trace, config: CpuConfig) -> SimStats:
        result.simulations += 1
        return simulate(trace, config, validator=validator)

    baseline = ctx.trace()
    traces = {scheme: ctx.scheme_trace(scheme) for scheme in SCHEMES}
    cycles: Dict[str, int] = {}
    for scheme in SCHEMES:
        cycles[scheme] = run(traces[scheme], GOOGLE_TABLET).cycles

    # -- Thumb re-encoding never increases fetched bytes -------------------
    base_bytes = baseline.dynamic_bytes()
    for scheme in THUMB_SCHEMES:
        scheme_bytes = traces[scheme].dynamic_bytes()
        _meta(
            report, result, scheme_bytes <= base_bytes,
            "meta_thumb_bytes",
            f"{scheme} fetches {scheme_bytes} bytes, more than the "
            f"baseline's {base_bytes}",
            scheme=scheme,
        )
    hoist_bytes = traces["hoist"].dynamic_bytes()
    _meta(
        report, result, hoist_bytes == base_bytes,
        "meta_hoist_bytes",
        f"hoist (reorder-only) changed fetched bytes: {hoist_bytes} vs "
        f"baseline {base_bytes}",
    )

    # -- hardware metamorphics on the baseline trace ------------------------
    tablet = run(baseline, GOOGLE_TABLET)
    perfect = run(baseline, config_perfect_br())
    _meta(
        report, result, perfect.cycles <= tablet.cycles,
        "meta_perfect_branch",
        f"perfect branch prediction slower than the real predictor: "
        f"{perfect.cycles} vs {tablet.cycles} cycles",
    )
    _meta(
        report, result, perfect.branch_mispredicts == 0,
        "meta_perfect_branch",
        f"perfect branch prediction still mispredicted "
        f"{perfect.branch_mispredicts} branches",
    )
    big_icache = run(baseline, config_4x_icache())
    _meta(
        report, result, big_icache.icache_misses <= tablet.icache_misses,
        "meta_icache_capacity",
        f"4x i-cache missed more: {big_icache.icache_misses} vs "
        f"{tablet.icache_misses}",
    )

    # -- dual prefetchers: counters must sum, not overwrite ------------------
    dual = run(baseline, replace(
        config_critical_prefetch(config_efetch()), name="CLPT+EFetch",
    ))
    _meta(
        report, result,
        dual.prefetches_issued == (dual.clpt_prefetches_issued
                                   + dual.efetch_prefetches_issued),
        "meta_prefetch_sum",
        f"prefetches_issued={dual.prefetches_issued} but CLPT issued "
        f"{dual.clpt_prefetches_issued} and EFetch "
        f"{dual.efetch_prefetches_issued}",
    )

    # -- registry components: TRRIP i-cache + critical-nextline prefetch ----
    trrip = run(baseline, HARDWARE_CONFIGS.create("trrip-icache"))
    nextline_config = GOOGLE_TABLET.with_components(
        prefetchers=("critical-nextline",))
    nextline = run(baseline, nextline_config)
    issued = nextline.component_counters.get("prefetch.critical-nextline", 0)
    _meta(
        report, result, nextline.prefetches_issued == issued,
        "meta_prefetch_sum",
        f"prefetches_issued={nextline.prefetches_issued} but the "
        f"critical-nextline component counter says {issued}",
    )
    # Prefetch fills never count as demand accesses, so the prefetcher
    # can only convert demand misses into hits — up to second-order
    # pollution (a fill evicting a still-live line), bounded like the
    # critic_ideal alignment noise at 0.5%.
    miss_bound = tablet.icache_misses + max(4, tablet.icache_misses // 200)
    _meta(
        report, result, nextline.icache_misses <= miss_bound,
        "meta_nextline_dominance",
        f"critical-nextline prefetching added demand i-cache misses: "
        f"{nextline.icache_misses} vs {tablet.icache_misses} without "
        f"(bound {miss_bound})",
    )

    # -- CritIC.Ideal dominates CritIC --------------------------------------
    # Not a strict theorem at cycle granularity: Ideal re-encodes at more
    # sites, and the extra CDP bytes shift i-cache line alignment, which
    # can cost a handful of cycles on adversarial layouts.  Allow that
    # second-order noise (0.5%) but catch any real regression.
    ideal_bound = cycles["critic"] + max(4, cycles["critic"] // 200)
    _meta(
        report, result, cycles["critic_ideal"] <= ideal_bound,
        "meta_critic_ideal",
        f"CritIC.Ideal ({cycles['critic_ideal']} cycles) slower than "
        f"deployable CritIC ({cycles['critic']} cycles) beyond "
        f"alignment noise (bound {ideal_bound})",
    )

    # -- differential oracle -------------------------------------------------
    if differential:
        result.reports.append(
            differential_check(baseline, GOOGLE_TABLET, ooo_stats=tablet)
        )
        result.reports.append(
            differential_check(traces["critic"], GOOGLE_TABLET,
                               ooo_stats=None)
        )
        # Both new registered components under the in-order oracle, with
        # exact i-cache agreement demanded against the OoO pipeline.
        result.reports.append(
            differential_check(baseline, HARDWARE_CONFIGS.create(
                "trrip-icache"), ooo_stats=trrip)
        )
        result.reports.append(
            differential_check(baseline, nextline_config,
                               ooo_stats=nextline)
        )

    result.reports.extend(validator.reports)
    result.reports.append(report)
    return report


#: Fault spec injected into the fleet leg of the dispatch metamorphic:
#: aggressive enough that workers reliably die mid-campaign, seeded so a
#: failure is a reproducer.
DISPATCH_FAULTS = "kill:0.35,drop:0.25,corrupt:0.2;seed={seed}"


def dispatch_metamorphic(rng: random.Random, result: FuzzResult,
                         walk_blocks: int = 80) -> ValidationReport:
    """One grid, three execution backends, bitwise-identical results.

    Runs the same app x scheme x config grid under ``inline``, ``pool``,
    and ``fleet`` — the fleet leg with seeded fault injection killing and
    corrupting workers — each against its own throwaway artifact cache,
    then demands identical :class:`SimStats` for every cell and an
    identical manifest ``config_hash``: execution provenance (executor,
    attempts, retries, quarantines) must never leak into results or
    cache identity.
    """
    from repro.cache import ENV_DIR, ENV_ENABLE, reset_cache
    from repro.dispatch import ENV_EXECUTOR, ENV_FAULTS
    from repro.experiments import runner
    from repro.telemetry.manifest import LAST_RUN, load_manifest, \
        manifest_dir

    report = ValidationReport(trace_name="dispatch", config_name="grid")
    app = rng.choice(sorted(ALL_PROFILES)[:8])
    scheme = rng.choice(["hoist", "critic", "opp16"])
    faults = DISPATCH_FAULTS.format(seed=rng.randrange(1, 1 << 16))
    legs: List[Tuple[str, Optional[str]]] = [
        ("inline", None), ("pool", None), ("fleet", faults),
    ]
    grids: Dict[str, Dict] = {}
    hashes: Dict[str, str] = {}
    reports: Dict[str, Optional[Dict]] = {}
    saved = {name: os.environ.get(name)
             for name in (ENV_DIR, ENV_ENABLE, ENV_EXECUTOR, ENV_FAULTS)}
    try:
        with tempfile.TemporaryDirectory(prefix="repro-fuzz-dispatch-") \
                as root:
            for backend, fault_spec in legs:
                os.environ[ENV_ENABLE] = "1"
                os.environ[ENV_DIR] = os.path.join(root, backend)
                os.environ.pop(ENV_EXECUTOR, None)
                if fault_spec:
                    os.environ[ENV_FAULTS] = fault_spec
                else:
                    os.environ.pop(ENV_FAULTS, None)
                reset_cache()
                runner.clear_cache()
                grids[backend] = runner.run_apps(
                    [app], schemes=("baseline", scheme), jobs=2,
                    configs=(GOOGLE_TABLET, config_4x_icache()),
                    walk_blocks=walk_blocks, executor=backend,
                )
                result.simulations += 4
                manifest = load_manifest(
                    str(manifest_dir() / LAST_RUN))
                hashes[backend] = manifest["config_hash"]
                reports[backend] = manifest.get("dispatch")
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        reset_cache()
        runner.clear_cache()

    for backend, _ in legs[1:]:
        _meta(
            report, result, grids[backend] == grids["inline"],
            "meta_dispatch_stats",
            f"{backend} executor changed SimStats for {app}/{scheme} "
            f"(faults={faults if backend == 'fleet' else None!r})",
            backend=backend,
        )
        _meta(
            report, result, hashes[backend] == hashes["inline"],
            "meta_dispatch_manifest",
            f"{backend} executor changed the manifest config_hash: "
            f"{hashes[backend]} vs inline {hashes['inline']}",
            backend=backend,
        )
    fleet = reports["fleet"] or {}
    _meta(
        report, result, fleet.get("executor") == "fleet@1",
        "meta_dispatch_manifest",
        f"fleet manifest lacks executor provenance: {fleet}",
    )
    _meta(
        report, result, fleet.get("faults") == faults,
        "meta_dispatch_manifest",
        f"fleet manifest lost the active fault spec: {fleet}",
    )
    result.reports.append(report)
    return report


def engine_metamorphic(rng: random.Random, result: FuzzResult,
                       walk_blocks: int = 80) -> ValidationReport:
    """One grid, every simulation engine, bitwise-identical results.

    Runs the same app x scheme x config grid under the ``inline`` and
    ``batch`` engines — each against its own throwaway artifact cache —
    and demands identical :class:`SimStats` for every cell plus an
    identical manifest ``config_hash``: the engine is provenance (the
    manifest must *record* it), never part of the result or the cache
    identity.  The config list deliberately mixes plain cells (batched
    fast path) with a CLPT config whose load-observing prefetcher cannot
    be vectorized, so the per-cell inline fallback inside a batch is
    exercised every round.
    """
    from repro.cache import ENV_DIR, ENV_ENABLE, reset_cache
    from repro.experiments import runner
    from repro.telemetry.manifest import LAST_RUN, load_manifest, \
        manifest_dir

    report = ValidationReport(trace_name="engine", config_name="grid")
    app = rng.choice(sorted(ALL_PROFILES)[:8])
    scheme = rng.choice(["hoist", "critic", "opp16"])
    configs = (GOOGLE_TABLET, config_4x_icache(),
               config_critical_prefetch())
    legs = ("inline", "batch")
    grids: Dict[str, Dict] = {}
    hashes: Dict[str, str] = {}
    identities: Dict[str, Optional[str]] = {}
    saved = {name: os.environ.get(name) for name in (ENV_DIR, ENV_ENABLE)}
    try:
        with tempfile.TemporaryDirectory(prefix="repro-fuzz-engine-") \
                as root:
            for engine in legs:
                os.environ[ENV_ENABLE] = "1"
                os.environ[ENV_DIR] = os.path.join(root, engine)
                reset_cache()
                runner.clear_cache()
                grids[engine] = runner.run_apps(
                    [app], schemes=("baseline", scheme), jobs=1,
                    configs=configs, walk_blocks=walk_blocks,
                    engine=engine,
                )
                result.simulations += 2 * len(configs)
                manifest = load_manifest(str(manifest_dir() / LAST_RUN))
                hashes[engine] = manifest["config_hash"]
                identities[engine] = manifest.get("engine")
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        reset_cache()
        runner.clear_cache()

    _meta(
        report, result, grids["batch"] == grids["inline"],
        "meta_engine_stats",
        f"batch engine changed SimStats for {app}/{scheme}: the engines "
        f"must be bit-identical",
    )
    _meta(
        report, result, hashes["batch"] == hashes["inline"],
        "meta_engine_manifest",
        f"engine choice changed the manifest config_hash: "
        f"{hashes['batch']} vs inline {hashes['inline']}",
    )
    _meta(
        report, result, identities["batch"] == "batch@1",
        "meta_engine_manifest",
        f"batch manifest lacks engine provenance: {identities['batch']!r}",
    )
    result.reports.append(report)
    return report


def family_metamorphic(rng: random.Random, result: FuzzResult,
                       walk_blocks: int = 100) -> ValidationReport:
    """Every workload family, four metamorphic properties per family.

    For each registered family except ``trace-replay`` (which is the
    round-trip target, not a generator):

    * **Determinism** — two builds from the same seeded profile produce
      bit-identical traces; family identity plus the profile is the
      cache key, so this is load-bearing, not cosmetic.
    * **PerfectBr dominance** — oracle branch prediction never slows a
      family's stream down.
    * **4xI$ dominance** — quadrupled i-cache capacity never misses
      more, whatever the family did to the code footprint.
    * **Replay round-trip** — recording the family's trace and
      rebuilding a workload from it via :func:`replay_workload` yields
      the recording back bit-identically (same entries, same
      ``SimStats``).

    Each family's baseline trace also runs under the in-order
    differential oracle.
    """
    from repro.registry import WORKLOAD_FAMILIES
    from repro.workloads import build_workload, replay_workload

    report = ValidationReport(trace_name="families",
                              config_name="metamorphic")
    base = rng.choice(sorted(ALL_PROFILES.values(), key=lambda p: p.name))
    profile = replace(
        base,
        name=f"family-{base.name}",
        seed=rng.randrange(1, 1 << 30),
        num_functions=min(base.num_functions, 36),
        walk_blocks=walk_blocks,
    )

    def run(trace, config: CpuConfig) -> SimStats:
        result.simulations += 1
        return simulate(trace, config)

    for family in WORKLOAD_FAMILIES.names():
        if family == "trace-replay":
            continue
        trace = build_workload(family, profile).trace()
        again = build_workload(family, profile).trace()
        _meta(
            report, result, list(trace) == list(again),
            "meta_family_determinism",
            f"family {family} is not deterministic for "
            f"seed={profile.seed}",
            family=family,
        )
        tablet = run(trace, GOOGLE_TABLET)
        perfect = run(trace, config_perfect_br())
        _meta(
            report, result, perfect.cycles <= tablet.cycles,
            "meta_family_perfect_branch",
            f"family {family}: perfect branch prediction slower than "
            f"the real predictor ({perfect.cycles} vs "
            f"{tablet.cycles} cycles)",
            family=family,
        )
        big_icache = run(trace, config_4x_icache())
        _meta(
            report, result,
            big_icache.icache_misses <= tablet.icache_misses,
            "meta_family_icache_capacity",
            f"family {family}: 4x i-cache missed more "
            f"({big_icache.icache_misses} vs {tablet.icache_misses})",
            family=family,
        )
        replayed = replay_workload(profile, trace)
        replay_trace = replayed.trace()
        _meta(
            report, result, list(replay_trace) == list(trace),
            "meta_family_replay",
            f"family {family}: trace-replay round trip changed the "
            f"trace entries",
            family=family,
        )
        _meta(
            report, result, run(replay_trace, GOOGLE_TABLET) == tablet,
            "meta_family_replay",
            f"family {family}: SimStats differ between the recording "
            f"and its replay",
            family=family,
        )
        result.reports.append(
            differential_check(trace, GOOGLE_TABLET, ooo_stats=tablet)
        )
    result.reports.append(report)
    return report


def run_fuzz(
    iterations: int,
    seed: int = 3,
    walk_blocks: int = 120,
    differential: bool = True,
    dispatch: bool = False,
    engines: bool = False,
    families: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzResult:
    """Run ``iterations`` fuzz rounds; deterministic for a given seed.

    With ``dispatch=True`` the campaign ends with one
    :func:`dispatch_metamorphic` round (the grid-under-every-executor
    equivalence check) — off by default because it spawns real worker
    processes and throwaway caches.  With ``engines=True`` it ends with
    one :func:`engine_metamorphic` round (the grid-under-every-engine
    equivalence check; in-process, but needs a throwaway cache pair).
    With ``families=True`` it ends with one :func:`family_metamorphic`
    round covering every registered workload family.
    """
    rng = random.Random(seed)
    result = FuzzResult()
    for index in range(iterations):
        profile = random_profile(rng, index, walk_blocks=walk_blocks)
        report = fuzz_iteration(profile, result,
                                differential=differential)
        result.iterations += 1
        if progress is not None:
            status = "ok" if report.ok else "FAIL"
            progress(
                f"[{index + 1}/{iterations}] {profile.name} "
                f"(seed={profile.seed}): {status}"
            )
    if dispatch:
        report = dispatch_metamorphic(rng, result,
                                      walk_blocks=min(walk_blocks, 80))
        result.iterations += 1
        if progress is not None:
            status = "ok" if report.ok else "FAIL"
            progress(f"[dispatch] inline/pool/fleet equivalence: {status}")
    if engines:
        report = engine_metamorphic(rng, result,
                                    walk_blocks=min(walk_blocks, 80))
        result.iterations += 1
        if progress is not None:
            status = "ok" if report.ok else "FAIL"
            progress(f"[engine] inline/batch equivalence: {status}")
    if families:
        report = family_metamorphic(rng, result,
                                    walk_blocks=min(walk_blocks, 100))
        result.iterations += 1
        if progress is not None:
            status = "ok" if report.ok else "FAIL"
            progress(f"[families] workload-family metamorphics: {status}")
    return result
