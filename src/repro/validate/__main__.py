"""CLI: ``python -m repro.validate``.

Modes:

* ``--fuzz N`` — run N randomized workload-fuzzer rounds (all schemes x
  configs, invariants + metamorphic properties + differential oracle);
* ``--app NAME`` — validate one catalog app's baseline trace
  (invariants on every hardware variant + differential oracle).

On failure a JSON violation report is written (``--report``, default
``validate-report.json``) for CI artifact upload, and the exit code is 1.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List

from repro.cache import reset_cache
from repro.validate.invariants import RunValidator, ValidationReport


def _validate_app(name: str, walk_blocks: int) -> List[ValidationReport]:
    """Invariant + differential sweep over one catalog app."""
    from repro.cpu.config import GOOGLE_TABLET, HARDWARE_VARIANTS
    from repro.cpu.pipeline import simulate
    from repro.experiments.runner import app_context
    from repro.validate.differential import differential_check

    ctx = app_context(name, walk_blocks)
    trace = ctx.trace()
    validator = RunValidator(strict=False)
    configs = [GOOGLE_TABLET] + [make() for make in
                                 HARDWARE_VARIANTS.values()]
    for config in configs:
        simulate(trace, config, validator=validator)
    reports = list(validator.reports)
    reports.append(differential_check(trace, GOOGLE_TABLET))
    return reports


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.validate",
        description="Pipeline invariants, differential oracle, and "
                    "workload fuzzing.",
    )
    parser.add_argument("--fuzz", type=int, metavar="N", default=0,
                        help="run N workload-fuzzer rounds")
    parser.add_argument("--seed", type=int, default=3,
                        help="fuzzer RNG seed (default 3)")
    parser.add_argument("--walk-blocks", type=int, default=120,
                        help="dynamic blocks per fuzzed walk (default 120)")
    parser.add_argument("--app", action="append", default=[],
                        metavar="NAME",
                        help="validate a catalog app (repeatable)")
    parser.add_argument("--no-differential", action="store_true",
                        help="skip the in-order differential oracle")
    parser.add_argument("--dispatch", action="store_true",
                        help="end the fuzz campaign with the dispatch "
                             "metamorphic (same grid under inline/pool/"
                             "fleet-with-faults must agree bitwise)")
    parser.add_argument("--engine", action="store_true",
                        help="end the fuzz campaign with the engine "
                             "metamorphic (same grid under the inline "
                             "and batch simulation engines must agree "
                             "bitwise, including manifest config_hash)")
    parser.add_argument("--families", action="store_true",
                        help="end the fuzz campaign with the workload-"
                             "family metamorphic (every registered "
                             "family: determinism, PerfectBr/4xI$ "
                             "dominance, trace-replay round trip, "
                             "differential oracle)")
    parser.add_argument("--report", default="validate-report.json",
                        help="violation report path (written on failure)")
    args = parser.parse_args(argv)
    if not args.fuzz and not args.app:
        parser.error("nothing to do: pass --fuzz N and/or --app NAME")

    # Fuzzed profiles are throwaway: never persist their artifacts (the
    # env still wins if the caller insists on a cache).
    if "REPRO_CACHE" not in os.environ:
        os.environ["REPRO_CACHE"] = "0"
        reset_cache()

    reports: List[ValidationReport] = []
    checked = 0
    simulations = 0

    for name in args.app:
        app_reports = _validate_app(name, args.walk_blocks)
        simulations += len(app_reports)
        reports.extend(app_reports)
        bad = sum(1 for r in app_reports if not r.ok)
        print(f"app {name}: {len(app_reports)} checks, "
              f"{bad} violation report(s)")

    if args.fuzz:
        from repro.validate.fuzz import run_fuzz

        result = run_fuzz(
            args.fuzz, seed=args.seed, walk_blocks=args.walk_blocks,
            differential=not args.no_differential,
            dispatch=args.dispatch,
            engines=args.engine,
            families=args.families,
            progress=lambda line: print(line, flush=True),
        )
        checked += result.properties_checked
        simulations += result.simulations
        reports.extend(result.reports)

    failures = [r for r in reports if not r.ok]
    total_violations = sum(len(r.violations) for r in failures)
    print(
        f"validate: {len(reports)} reports, {simulations} simulations, "
        f"{checked} metamorphic properties, "
        f"{total_violations} violation(s)"
    )
    if failures:
        payload = {
            "seed": args.seed,
            "reports": [r.to_dict() for r in failures],
        }
        try:
            with open(args.report, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            print(f"violation report written to {args.report}",
                  file=sys.stderr)
        except OSError as exc:
            print(f"could not write {args.report}: {exc}", file=sys.stderr)
        for report in failures[:10]:
            print(report.summary(), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
