"""Differential validation & invariant checking for the pipeline model.

Three layers (see each submodule's docstring):

* :mod:`repro.validate.invariants` — structural invariants over every
  simulation run, wired into :func:`repro.cpu.simulate` behind
  ``REPRO_VALIDATE=1`` / ``validate=``;
* :mod:`repro.validate.reference` + :mod:`repro.validate.differential` —
  an in-order scalar reference model used as a differential oracle;
* :mod:`repro.validate.fuzz` — seeded workload fuzzer + metamorphic
  suite (``python -m repro.validate --fuzz N --seed S``).

Only the invariant layer is imported here: :mod:`differential` and
:mod:`fuzz` pull in the simulator and the experiment runner, which would
make ``import repro.validate`` heavyweight (and circular from
:mod:`repro.cpu.pipeline`, which lazily imports the invariants).  Import
them as submodules where needed.
"""

from repro.validate.invariants import (
    ENV_VALIDATE,
    InvariantViolationError,
    RunValidator,
    ValidationReport,
    Violation,
    validation_enabled,
)

__all__ = [
    "ENV_VALIDATE",
    "InvariantViolationError",
    "RunValidator",
    "ValidationReport",
    "Violation",
    "validation_enabled",
]
