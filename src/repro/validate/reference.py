"""In-order scalar reference timing model: the differential oracle.

A deliberately naive model of the same trace on the same memory system,
kept structurally dissimilar from :class:`repro.cpu.pipeline.Simulator`
on purpose: no flat-array tricks beyond reusing the shared per-trace
tables, no buffers, no overlap.  Each instruction is fetched, executed,
and retired *serially*, paying its full latency:

* a fresh cache line pays the full i-fetch latency;
* every instruction pays ``max(1, exec latency)`` including the memory
  system for loads/stores;
* mispredicted branches pay the redirect penalty, format-switch branches
  the switch bubble, CDPs the decode penalty.

Because nothing overlaps, the reference's cycle count is an *upper bound*
for any working out-of-order model of the same machine — the OoO
simulator must never be slower (an IPC lower-bound check).  And because
the reference consults the branch predictors and the i-side of the memory
hierarchy in exactly the trace order the OoO front end does, the two
models must agree exactly on every order-insensitive fact:

* branch mispredicts (predictor state is a pure function of the branch
  sequence);
* i-cache demand accesses and misses (one lookup per line transition
  along the trace, EFetch fills replicated at the same points);
* total fetched bytes (a pure trace property).

:func:`repro.validate.differential.differential_check` asserts all of
this for any trace/config pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cpu.branch import ReturnAddressStack
from repro.cpu.config import CpuConfig, GOOGLE_TABLET
from repro.cpu.pipeline import (
    _BR_CALL,
    _BR_RETURN,
    _BR_SWITCH,
    _observes,
    _tables_for,
)
from repro.memory.hierarchy import MemorySystem
from repro.registry import BRANCH_PREDICTORS, PREFETCHERS
from repro.trace.dynamic import Trace


@dataclass
class ReferenceStats:
    """What the reference model reports (the comparable subset)."""

    cycles: int = 0
    instructions: int = 0
    branch_mispredicts: int = 0
    icache_accesses: int = 0
    icache_misses: int = 0
    fetched_bytes: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


def reference_run(
    trace: Trace,
    config: CpuConfig = GOOGLE_TABLET,
    memory: Optional[MemorySystem] = None,
    warm: bool = True,
) -> ReferenceStats:
    """Run ``trace`` through the in-order scalar model."""
    mem = memory or MemorySystem(config.memory)
    if warm:
        mem.warm(trace)

    tables = _tables_for(trace)
    sizes = tables.sizes
    lats = tables.lats
    isld = tables.isld
    isst = tables.isst
    iscdp = tables.iscdp
    brt = tables.brt
    brpred = tables.brpred
    pcs = tables.pcs
    mems = tables.mems
    takens = tables.takens

    bpu = BRANCH_PREDICTORS.create(config.branch_predictor, config)
    ras = ReturnAddressStack(perfect=config.perfect_branch)
    # Replicate the *instruction-side* prefetcher components, built fresh
    # from the registry so their tables start in the same state as the
    # OoO simulator's.  Load-observing prefetchers (CLPT) are skipped:
    # their fills touch only the d-side, which the differential check
    # never compares.
    prefetchers = tuple(PREFETCHERS.create(name, config)
                        for name in config.active_prefetchers())
    call_pfs = tuple(p for p in prefetchers if _observes(p, "observe_call"))
    fetch_pfs = tuple(p for p in prefetchers
                      if _observes(p, "observe_fetch"))
    default_critical = tables.default_critical

    line_bytes = mem.config.line_bytes
    redirect_penalty = config.redirect_penalty
    switch_cost = 1 + config.switch_branch_bubble
    cdp_cost = config.cdp_decode_penalty

    n = len(trace)
    cycles = 0
    mispredicts = 0
    fetched_bytes = 0
    last_line = -1

    for pos in range(n):
        # -- fetch: one i-cache consultation per line transition ----------
        line = pcs[pos] // line_bytes
        if line != last_line:
            cycles += mem.ifetch(pcs[pos], cycles)
            last_line = line
            if fetch_pfs:
                critical = pos in default_critical
                for pf in fetch_pfs:
                    for pline in pf.observe_fetch(line, critical):
                        mem.prefetch_instruction_line(pline)
        fetched_bytes += sizes[pos]

        # -- decode/execute: full serial latency ---------------------------
        if iscdp[pos]:
            cycles += 1 + cdp_cost
            continue
        latency = lats[pos]
        addr = mems[pos]
        if addr is not None:
            mlat = mem.load(addr) if isld[pos] else (
                mem.store(addr) if isst[pos] else 0)
            if mlat > latency:
                latency = mlat
        cycles += latency if latency > 1 else 1

        # -- branches: same predictor consultation order as the OoO fetch --
        b = brt[pos]
        if not b:
            continue
        if b == _BR_SWITCH:
            cycles += switch_cost
        elif b == _BR_CALL:
            if pos + 1 < n:
                ras.push(pcs[pos] + sizes[pos])
                if call_pfs:
                    target_line = pcs[pos + 1] // line_bytes
                    for pf in call_pfs:
                        for pline in pf.observe_call(target_line):
                            mem.prefetch_instruction_line(pline)
        elif b == _BR_RETURN:
            if not ras.predict_return():
                mispredicts += 1
                cycles += redirect_penalty
        elif brpred[pos]:
            if not bpu.predict_conditional(pcs[pos], bool(takens[pos])):
                mispredicts += 1
                cycles += redirect_penalty

    return ReferenceStats(
        cycles=cycles,
        instructions=n,
        branch_mispredicts=mispredicts + bpu.stats.cond_mispredicts,
        icache_accesses=mem.icache.stats.accesses,
        icache_misses=mem.icache.stats.misses,
        fetched_bytes=fetched_bytes,
    )
