"""The serve front's message vocabulary + asyncio framing helpers.

The wire front speaks the exact same length-prefixed pickle framing as
the fleet broker/worker link (:mod:`repro.dispatch.wire` — ``>I`` length
header, :data:`~repro.dispatch.wire.MAX_FRAME` cap), reused here over
asyncio streams.  Messages are dicts with a ``type`` field:

Client → server:

* ``{"type": "hello", "client": <name>}`` — optional handshake; the
  server answers ``welcome`` with its identity and limits.
* ``{"type": "ping"}`` → ``{"type": "pong"}`` — liveness probe.
* ``{"type": "sweep", "id": <client-job-id>, "spec": {...}}`` — submit
  one sweep job; ``spec`` is :meth:`repro.experiments.sweep.SweepSpec.
  to_dict` shaped.  The server streams back ``accepted``, one ``cell``
  per app x scheme x config as each completes, then ``done``.
* ``{"type": "shutdown"}`` — ask the server to drain gracefully
  (answered with ``bye`` before the drain starts).
* ``{"type": "cache.get", "kind": ..., "key": ..., "token": ...}`` —
  fetch one artifact blob from this host's local cache tier (the
  ``remote:``/``tiered:`` cache backends' read path); answered with
  ``cache.blob``.
* ``{"type": "join", "worker": <name>, "token": ...}`` — worker
  registration: ask where the fleet broker lives; answered with
  ``fleet`` (or ``error`` on an executor=inline server).

Server → client:

* ``{"type": "accepted", "id": ..., "job": <server-job-id>,
  "cells": N}``
* ``{"type": "cell", "id": ..., "app": ..., "scheme": ...,
  "config": ..., "cached": bool, "wall_s": float, "stats": {...}}`` —
  ``stats`` is ``SimStats.to_dict()``; ``cached`` cells were answered
  from the artifact cache without touching the fleet.  A failed cell
  carries ``"error"`` instead of ``"stats"``.
* ``{"type": "done", "id": ..., "cells": N, "cached": M,
  "computed": K, "coalesced": C, "failed": F, "wall_s": float}`` —
  ``coalesced`` cells subscribed to another job's in-flight
  computation instead of recomputing.
* ``{"type": "busy", "id": ..., "error": <text>, "active": N,
  "max_pending": M}`` — admission backpressure: the pending-job table
  is full; retry later (the HTTP front answers 503 instead).
* ``{"type": "error", "id": ..., "error": <text>}`` — the job was
  rejected at admission (bad spec, unknown registry name, draining).
* ``{"type": "cache.blob", "kind": ..., "key": ..., "hit": bool,
  "text": <blob or None>}`` — one cache-endpoint answer.
* ``{"type": "fleet", "host": ..., "port": ..., "token_required":
  bool, "external": N}`` — where the fleet broker listens.
* ``{"type": "denied", "error": <text>}`` — the request's auth token
  did not match the server's.

Every record is JSON-safe by construction, so the HTTP front streams
the *same* ``accepted``/``cell``/``done`` records as ndjson lines.

Version history: v2 added ``busy`` backpressure, per-cell
``coalesced`` marks, and the multi-host ``cache.get``/``join``
endpoints.
"""

from __future__ import annotations

import asyncio
import pickle
from typing import Any

from repro.dispatch import wire

#: Protocol revision, reported in ``welcome`` / ``/healthz``.
PROTOCOL_VERSION = 2


class ProtocolError(ConnectionError):
    """The peer sent an oversized or undecodable frame."""


async def read_msg(reader: asyncio.StreamReader) -> Any:
    """Read one framed message; raises :class:`ProtocolError` on a bad
    frame and ``asyncio.IncompleteReadError`` on EOF."""
    header = await reader.readexactly(wire._HEADER.size)
    (length,) = wire._HEADER.unpack(header)
    if length > wire.MAX_FRAME:
        raise ProtocolError(f"oversized frame ({length} bytes)")
    payload = await reader.readexactly(length)
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc


async def write_msg(writer: asyncio.StreamWriter, message: Any) -> None:
    payload = wire.dumps(message)
    writer.write(wire._HEADER.pack(len(payload)) + payload)
    await writer.drain()


__all__ = ["PROTOCOL_VERSION", "ProtocolError", "read_msg", "write_msg"]
