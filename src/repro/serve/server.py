"""The persistent sweep/cell job server behind ``python -m repro.serve``.

One :class:`ServeServer` owns:

* a **persistent fleet** (:class:`repro.dispatch.fleet.PersistentFleet`)
  — or, with ``executor="inline"``, a serialized in-process execution
  lane — that stays warm across requests;
* a **wire front** (length-prefixed pickle messages, see
  :mod:`repro.serve.protocol`) and an **HTTP/JSON front**
  (``/healthz``, ``/metrics``, ``POST /sweep``, ``POST /shutdown``);
* a **job engine** that admits :class:`~repro.experiments.sweep.
  SweepSpec` payloads, answers warm cells straight from the artifact
  cache, fans cold cells out to the fleet, and streams every cell back
  the moment it completes.

Cells run through the exact same
:func:`repro.experiments.runner._cell_task` body the batch sweep engine
uses, so a served grid is bit-identical to an inline sweep of the same
spec — the acceptance gate the loadgen asserts.

Hardening and multi-host duties layered on top:

* **admission backpressure** — ``max_pending`` bounds the in-flight
  job table; past it, admission answers a structured ``busy`` record
  (HTTP 503) instead of growing latency without bound;
* **in-flight cell coalescing** — concurrent jobs that need the same
  uncached cell subscribe to the first computation (keyed by the
  cell's content address), so a cold concurrent burst computes each
  grid cell exactly once;
* **cache-read endpoint** (``cache.get``) — remote/tiered cache
  backends on other hosts read artifacts through the wire front, each
  answered from the local tier only (see
  :meth:`repro.cache.ArtifactCache.peek_local`);
* **worker registration** (``join``) — a TCP worker asks where the
  fleet broker lives, then ``--connect``\\ s to it directly (both
  guarded by the fleet auth token when one is set).
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Dict, List, Optional, Set, Tuple

from repro import telemetry
from repro.cache import get_cache
from repro.cpu import CpuConfig
from repro.dispatch import RetryPolicy, TaskResult, TaskSpec
from repro.dispatch.fleet import ENV_TOKEN, PersistentFleet
from repro.experiments.runner import (
    DEFAULT_WALK_BLOCKS,
    _cell_task,
    _drain_spool,
    app_context,
)
from repro.experiments.sweep import SweepSpec
from repro.registry import (
    WORKLOAD_FAMILIES,
    all_registries,
    component_identity,
)
from repro.workloads import get_profile
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    read_msg,
    write_msg,
)

#: How often the result pump polls the fleet, seconds.
_PUMP_S = 0.02

#: Executor lanes the server knows how to drive.
EXECUTOR_CHOICES = ("fleet", "inline")


class JobError(ValueError):
    """A job failed admission (bad spec, unknown name, draining)."""


class JobBusyError(JobError):
    """Admission refused: the pending-job table is at ``max_pending``."""


@dataclass
class _Job:
    """Book-keeping for one in-flight sweep job."""

    id: str
    client_id: str
    front: str
    spec: SweepSpec
    configs: Tuple[CpuConfig, ...]
    blocks: int
    queue: "asyncio.Queue[Any]" = field(
        default_factory=asyncio.Queue)
    pending: Set[str] = field(default_factory=set)
    #: in-flight cell futures this job owns, by stats artifact key
    owned_keys: Set[str] = field(default_factory=set)
    cached: int = 0
    computed: int = 0
    coalesced: int = 0
    failed: int = 0


class ServeServer:
    """Persistent simulation service: warm fleet + hot cache + two
    streaming job fronts."""

    def __init__(self, workers: Optional[int] = None,
                 executor: str = "fleet",
                 host: str = "127.0.0.1",
                 wire_port: int = 0,
                 http_port: int = 0,
                 policy: Optional[RetryPolicy] = None,
                 fleet_bind: Optional[str] = None,
                 token: Optional[str] = None,
                 max_pending: Optional[int] = None) -> None:
        if executor not in EXECUTOR_CHOICES:
            raise ValueError(
                f"unknown serve executor {executor!r} "
                f"(choose from {', '.join(EXECUTOR_CHOICES)})"
            )
        self.executor = executor
        self.workers = workers
        self.host = host
        self._wire_port = wire_port
        self._http_port = http_port
        self.policy = policy if policy is not None \
            else RetryPolicy.from_env()
        self.fleet_bind = fleet_bind
        self.token = token if token is not None \
            else os.environ.get(ENV_TOKEN, "")
        self.max_pending = max_pending
        self.fleet: Optional[PersistentFleet] = None
        self.started_unix = time.time()
        self._jobs: Dict[str, _Job] = {}
        self._job_seq = 0
        self._jobs_total = 0
        self._jobs_failed = 0
        self._cells = {"cached": 0, "computed": 0, "coalesced": 0,
                       "failed": 0}
        #: cells being computed right now, stats-key -> outcome future
        self._inflight: Dict[str, "asyncio.Future[Any]"] = {}
        self._draining = False
        self._stopped = asyncio.Event()
        self._wire_server: Optional[asyncio.base_events.Server] = None
        self._http_server: Optional[asyncio.base_events.Server] = None
        self._pump_task: Optional[asyncio.Task] = None
        self._inline_lock = asyncio.Lock()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind both fronts and warm the fleet."""
        if self.executor == "fleet":
            self.fleet = await asyncio.to_thread(
                lambda: PersistentFleet(
                    self.workers, self.policy,
                    bind=self.fleet_bind, token=self.token,
                ),
            )
            self._pump_task = asyncio.create_task(self._pump_fleet())
        self._wire_server = await asyncio.start_server(
            self._handle_wire, self.host, self._wire_port)
        self._http_server = await asyncio.start_server(
            self._handle_http, self.host, self._http_port)
        telemetry.emit("serve.start", host=self.host,
                       wire_port=self.wire_port,
                       http_port=self.http_port,
                       executor=self.executor)
        telemetry.set_gauge("repro_serve_up", 1,
                            help="1 while the serve front is accepting "
                                 "jobs.")

    @property
    def wire_port(self) -> int:
        assert self._wire_server is not None
        return self._wire_server.sockets[0].getsockname()[1]

    @property
    def http_port(self) -> int:
        assert self._http_server is not None
        return self._http_server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` completes."""
        await self._stopped.wait()

    async def stop(self, grace_s: float = 10.0) -> None:
        """Graceful drain: stop admitting, let in-flight jobs finish
        (bounded by ``grace_s``), release the fleet, close the fronts."""
        if self._draining:
            return
        self._draining = True
        telemetry.set_gauge("repro_serve_up", 0,
                            help="1 while the serve front is accepting "
                                 "jobs.")
        deadline = time.monotonic() + max(0.0, grace_s)
        while self._jobs and time.monotonic() < deadline:
            await asyncio.sleep(_PUMP_S)
        if self._pump_task is not None:
            self._pump_task.cancel()
        if self.fleet is not None:
            await asyncio.to_thread(self.fleet.shutdown, grace_s)
        for server in (self._wire_server, self._http_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        telemetry.emit("serve.stop", jobs_total=self._jobs_total)
        self._stopped.set()

    # -- health --------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        cache = get_cache()
        record: Dict[str, Any] = {
            "ok": True,
            "status": "draining" if self._draining else "serving",
            "pid": os.getpid(),
            "protocol": PROTOCOL_VERSION,
            "uptime_s": round(time.time() - self.started_unix, 3),
            "executor": self.executor,
            "jobs": {
                "active": len(self._jobs),
                "total": self._jobs_total,
                "failed": self._jobs_failed,
                "max_pending": self.max_pending,
            },
            "cells": dict(self._cells),
            "cache": {"hits": cache.hits, "misses": cache.misses,
                      "backend": cache.backend_spec()},
            # Every component registry, by versioned identity — clients
            # discover what this server can sweep (including the
            # workload families) without a round trip per kind.
            "registries": {
                kind: [registry.identity(name)
                       for name in registry.names()]
                for kind, registry in all_registries().items()
            },
        }
        if self.fleet is not None:
            host, port = self.fleet.broker.address
            record["workers"] = {
                "configured": self.fleet.jobs,
                "alive": self.fleet.workers_alive(),
                "spawned": self.fleet.workers_spawned(),
                "external": self.fleet.workers_external(),
            }
            record["fleet"] = {"host": host, "port": port,
                               "token_required": bool(self.token)}
        else:
            record["workers"] = {"configured": 1, "alive": 1,
                                 "spawned": 0, "external": 0}
        return record

    # -- the job engine ------------------------------------------------------

    def _admit(self, payload: Any, client_id: str, front: str) -> _Job:
        """Validate a sweep payload and register the job, or raise
        :class:`JobError` (:class:`JobBusyError` when the pending-job
        table is full) with a client-presentable message.  Rejection
        accounting happens here, so both fronts share it."""
        if self._draining:
            self._reject(front, "server is draining; job rejected")
        if self.max_pending is not None \
                and len(self._jobs) >= self.max_pending:
            telemetry.inc("repro_serve_busy_total",
                          help="Jobs refused at admission because the "
                               "pending-job table was full.",
                          front=front)
            telemetry.emit("serve.job.busy", front=front,
                           active=len(self._jobs),
                           max_pending=self.max_pending)
            raise JobBusyError(
                f"server busy: {len(self._jobs)} jobs pending "
                f"(max {self.max_pending})"
            )
        try:
            spec = SweepSpec.from_dict(payload)
            spec.validate()
            configs = spec.resolve_configs()
            for name in spec.apps:
                get_profile(name)
        except (ValueError, KeyError) as exc:
            self._reject(front, str(exc).strip("\"'"), cause=exc)
        blocks = spec.walk_blocks if spec.walk_blocks is not None \
            else DEFAULT_WALK_BLOCKS
        self._job_seq += 1
        job = _Job(
            id=f"job-{self._job_seq}", client_id=client_id, front=front,
            spec=spec, configs=configs, blocks=blocks,
        )
        self._jobs[job.id] = job
        self._jobs_total += 1
        telemetry.inc("repro_serve_jobs_total",
                      help="Sweep jobs admitted, by front.", front=front)
        telemetry.set_gauge("repro_serve_active_jobs", len(self._jobs),
                            help="Jobs currently streaming results.")
        telemetry.emit("serve.job.start", job=job.id, front=front,
                       apps=",".join(spec.apps),
                       schemes=",".join(spec.schemes),
                       configs=",".join(c.name for c in configs))
        return job

    def _reject(self, front: str, error: str,
                cause: Optional[BaseException] = None) -> None:
        self._jobs_failed += 1
        telemetry.inc("repro_serve_jobs_rejected_total",
                      help="Jobs that failed admission.")
        telemetry.emit("serve.job.rejected", front=front, error=error)
        raise JobError(error) from cause

    def _busy_record(self, client_id: str,
                     exc: JobBusyError) -> Dict[str, Any]:
        return {"type": "busy", "id": client_id, "error": str(exc),
                "active": len(self._jobs),
                "max_pending": self.max_pending}

    def _cell_record(self, job: _Job, app: str, scheme: str,
                     config: str, *, cached: bool, wall_s: float,
                     coalesced: bool = False, stats: Any = None,
                     error: Optional[str] = None) -> Dict[str, Any]:
        source = "failed" if error is not None else (
            "cached" if cached else
            "coalesced" if coalesced else "computed")
        self._cells[source] += 1
        if error is not None:
            job.failed += 1
        elif cached:
            job.cached += 1
        elif coalesced:
            job.coalesced += 1
        else:
            job.computed += 1
        telemetry.inc("repro_serve_cells_total",
                      help="Cells served, by source.", source=source)
        record: Dict[str, Any] = {
            "type": "cell", "id": job.client_id, "app": app,
            "scheme": scheme, "config": config, "cached": cached,
            "coalesced": coalesced, "wall_s": round(wall_s, 6),
        }
        if error is not None:
            record["error"] = error
        else:
            record["stats"] = stats.to_dict()
        return record

    async def run_job(self, payload: Any, client_id: str,
                      front: str) -> AsyncIterator[Dict[str, Any]]:
        """Admit + execute one sweep job, yielding JSON-safe
        ``accepted``/``cell``/``done`` records as cells complete (or a
        single ``busy``/``error`` record on admission failure)."""
        try:
            job = self._admit(payload, client_id, front)
        except JobBusyError as exc:
            yield self._busy_record(client_id, exc)
            return
        except JobError as exc:
            yield {"type": "error", "id": client_id, "error": str(exc)}
            return
        async for record in self._stream_job(job):
            yield record

    async def _stream_job(self,
                          job: _Job) -> AsyncIterator[Dict[str, Any]]:
        """Execute an already-admitted job and stream its records."""
        started = time.perf_counter()
        try:
            try:
                async for record in self._execute(job):
                    yield record
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # server-side bug, not cell error
                telemetry.emit("serve.job.error", job=job.id,
                               error=f"{type(exc).__name__}: {exc}")
                yield {"type": "error", "id": job.client_id,
                       "error": f"job failed: "
                                f"{type(exc).__name__}: {exc}"}
                job.failed += 1
                return
            wall = time.perf_counter() - started
            telemetry.observe("repro_serve_job_seconds", wall,
                              help="Wall seconds per served job.")
            telemetry.emit("serve.job.done", job=job.id,
                           cached=job.cached, computed=job.computed,
                           coalesced=job.coalesced,
                           failed=job.failed, wall_s=round(wall, 6))
            self._record_manifest(job, wall)
            yield {
                "type": "done", "id": job.client_id,
                "cells": (job.cached + job.computed + job.coalesced
                          + job.failed),
                "cached": job.cached, "computed": job.computed,
                "coalesced": job.coalesced,
                "failed": job.failed, "wall_s": round(wall, 6),
            }
        finally:
            if job.failed:
                self._jobs_failed += 1
            self._jobs.pop(job.id, None)
            telemetry.set_gauge("repro_serve_active_jobs",
                                len(self._jobs),
                                help="Jobs currently streaming "
                                     "results.")

    async def _execute(self,
                       job: _Job) -> AsyncIterator[Dict[str, Any]]:
        spec = job.spec
        engine = (spec.engine or "").strip() or None
        if engine == "inline":
            engine = None
        family = spec.workload_family or "default"
        # Probe the warm path first: memo + disk cache, no fleet.
        todo: List[Tuple[str, CpuConfig, Tuple[str, ...],
                         Dict[str, str]]] = []
        cached: List[Tuple[str, str, str, Any]] = []
        probe_started = time.perf_counter()

        def _probe() -> None:
            for name in spec.apps:
                ctx = app_context(name, job.blocks, family)
                for config in job.configs:
                    missing = []
                    keys: Dict[str, str] = {}
                    for scheme in spec.schemes:
                        stats = ctx.cached_stats(scheme, config)
                        if stats is None:
                            missing.append(scheme)
                            keys[scheme] = ctx._stats_key(
                                scheme, config, 5, 1.0)
                        else:
                            cached.append((name, scheme, config.name,
                                           stats))
                    if missing:
                        todo.append((name, config, tuple(missing),
                                     keys))

        await asyncio.to_thread(_probe)
        probe_wall = time.perf_counter() - probe_started
        total = len(spec.apps) * len(spec.schemes) * len(job.configs)
        yield {"type": "accepted", "id": job.client_id, "job": job.id,
               "cells": total, "warm": len(cached)}
        per_cell = probe_wall / max(1, len(cached))
        for name, scheme, config_name, stats in cached:
            yield self._cell_record(job, name, scheme, config_name,
                                    cached=True, wall_s=per_cell,
                                    stats=stats)
        if not todo:
            return

        # Partition cold cells: cells some other job is already
        # computing become subscriptions on its in-flight future; the
        # rest this job computes, registering futures of its own.  This
        # runs on the event loop with no await between lookup and
        # registration, so two jobs can never both claim a cell.
        loop = asyncio.get_running_loop()
        subscribe: List[Tuple[str, str, str,
                              "asyncio.Future[Any]"]] = []
        compute: List[Tuple[str, CpuConfig, Tuple[str, ...],
                            Dict[str, str]]] = []
        for name, config, missing, keys in todo:
            own = []
            for scheme in missing:
                fut = self._inflight.get(keys[scheme])
                if fut is not None:
                    subscribe.append((name, scheme, config.name, fut))
                    telemetry.inc("repro_serve_coalesced_total",
                                  help="Cold cells answered by "
                                       "subscribing to another job's "
                                       "in-flight computation.")
                    telemetry.emit("serve.cell.coalesced", job=job.id,
                                   app=name, scheme=scheme,
                                   config=config.name)
                else:
                    self._inflight[keys[scheme]] = loop.create_future()
                    job.owned_keys.add(keys[scheme])
                    own.append(scheme)
            if own:
                compute.append((name, config, tuple(own), keys))

        spool = tempfile.mkdtemp(prefix="repro-serve-spool-") \
            if self.fleet is not None and compute else None
        tasks = [
            TaskSpec(
                id=f"{job.id}|{name}|{config.name}",
                fn=_cell_task,
                args=(name, job.blocks, missing, config, engine,
                      family),
                kwargs={"spool_dir": spool, "capture_telemetry": True},
                inline_kwargs={"capture_telemetry": False},
            )
            for name, config, missing, _keys in compute
        ]
        job.pending = {task.id for task in tasks}
        by_id = {task.id: task for task in tasks}
        keys_by_task = {
            f"{job.id}|{name}|{config.name}": keys
            for name, config, _missing, keys in compute
        }
        for index, (name, scheme, config_name, fut) in \
                enumerate(subscribe):
            sub_id = f"{job.id}|sub{index}"
            job.pending.add(sub_id)
            asyncio.ensure_future(self._await_coalesced(
                job, sub_id, name, scheme, config_name, fut))
        results: List[TaskResult] = []
        try:
            if self.fleet is not None:
                for task in tasks:
                    await asyncio.to_thread(self.fleet.submit, task)
            else:
                for task in tasks:
                    asyncio.create_task(self._run_task_inline(job, task))
            while job.pending:
                item = await job.queue.get()
                if isinstance(item, tuple):  # a coalesced cell resolved
                    sub_id, name, scheme, config_name, outcome = item
                    job.pending.discard(sub_id)
                    if outcome[0] == "ok":
                        yield self._cell_record(
                            job, name, scheme, config_name,
                            cached=False, coalesced=True,
                            wall_s=outcome[2], stats=outcome[1])
                    else:
                        yield self._cell_record(
                            job, name, scheme, config_name,
                            cached=False, coalesced=True, wall_s=0.0,
                            error=outcome[1])
                    continue
                result = item
                job.pending.discard(result.task_id)
                results.append(result)
                _jid, name, config_name = result.task_id.split("|", 2)
                task_keys = keys_by_task.get(result.task_id, {})
                if result.ok:
                    app, tag, cell, snap = result.value
                    if snap is not None:
                        telemetry.merge_snapshot(snap)
                    wall = sum(a.wall_s for a in result.attempts
                               if a.outcome == "ok")
                    ctx = app_context(app, job.blocks, family)
                    for scheme, stats in cell.items():
                        ctx._stats[(scheme, tag)] = stats
                        per_scheme = wall / max(1, len(cell))
                        self._resolve_inflight(
                            job, task_keys.get(scheme),
                            ("ok", stats, per_scheme))
                        yield self._cell_record(
                            job, app, scheme, tag, cached=False,
                            wall_s=per_scheme,
                            stats=stats)
                else:
                    error = result.error or repr(result.error_exc)
                    wall = sum(a.wall_s for a in result.attempts)
                    for scheme in by_id[result.task_id].args[2]:
                        self._resolve_inflight(
                            job, task_keys.get(scheme),
                            ("error", str(error)))
                        yield self._cell_record(
                            job, name, scheme, config_name,
                            cached=False, wall_s=wall,
                            error=str(error))
        finally:
            # Whatever this job still owns resolves as an error so
            # subscribers never hang on a job that died mid-stream.
            for key in list(job.owned_keys):
                self._resolve_inflight(
                    job, key,
                    ("error", "the computing job ended before this "
                              "cell resolved"))
            if spool is not None:
                clean = {
                    tuple(r.task_id.split("|", 2)[1:]) for r in results
                    if r.ok and len(r.attempts) == 1
                    and not r.quarantined
                }
                every = {tuple(t.id.split("|", 2)[1:]) for t in tasks}
                await asyncio.to_thread(
                    _drain_spool, spool, every - clean)

    def _resolve_inflight(self, job: _Job, key: Optional[str],
                          outcome: Tuple[Any, ...]) -> None:
        """Resolve (and retire) an in-flight cell future this job owns."""
        if key is None or key not in job.owned_keys:
            return
        job.owned_keys.discard(key)
        fut = self._inflight.pop(key, None)
        if fut is not None and not fut.done():
            fut.set_result(outcome)

    async def _await_coalesced(self, job: _Job, sub_id: str, name: str,
                               scheme: str, config_name: str,
                               fut: "asyncio.Future[Any]") -> None:
        """Feed another job's cell outcome into this job's queue."""
        try:
            outcome = await asyncio.shield(fut)
        except asyncio.CancelledError:
            outcome = ("error", "the in-flight computation was "
                                "cancelled")
        job.queue.put_nowait((sub_id, name, scheme, config_name,
                              outcome))

    async def _run_task_inline(self, job: _Job, task: TaskSpec) -> None:
        """The ``executor="inline"`` lane: one cell at a time in a
        worker thread of this process, live telemetry, same quarantine-
        path task body the executors use."""
        from repro.dispatch.base import Attempt

        result = TaskResult(task_id=task.id)
        async with self._inline_lock:
            started = time.perf_counter()
            try:
                value = await asyncio.to_thread(task.run_inline)
                result.value = value
                outcome, error = "ok", None
            except Exception as exc:  # structured per-cell failure
                outcome, error = "error", f"{type(exc).__name__}: {exc}"
                result.error = error
                result.error_exc = exc
            attempt = Attempt(index=1, worker="serve-inline",
                              outcome=outcome,
                              wall_s=time.perf_counter() - started,
                              error=error)
        result.attempts.append(attempt)
        from repro.dispatch.base import observe_attempt
        observe_attempt(task.id, attempt)
        job.queue.put_nowait(result)

    def _record_manifest(self, job: _Job, wall: float) -> None:
        """Per-job run manifest (kind ``serve``) — same provenance next
        to the cache as ``run_apps``/``sweep`` write, so
        ``telemetry.compare`` and CI see served jobs too."""
        try:
            from repro.telemetry.manifest import record_run

            family = job.spec.workload_family or "default"
            record_run(
                "serve",
                apps=list(job.spec.apps),
                schemes=list(job.spec.schemes),
                configs=[c.name for c in job.configs],
                walk_blocks=job.blocks,
                seeds={name: app_context(name, job.blocks, family)
                       .app_profile.seed for name in job.spec.apps},
                wall_s=wall,
                components={c.name: component_identity(c)
                            for c in job.configs},
                workload_family=WORKLOAD_FAMILIES.identity(family),
                extra={"serve": {
                    "job": job.id, "front": job.front,
                    "executor": self.executor,
                    "cached": job.cached, "computed": job.computed,
                    "failed": job.failed,
                }},
            )
        except OSError:
            pass

    # -- fleet result pump ---------------------------------------------------

    async def _pump_fleet(self) -> None:
        """Route completed fleet tasks to their jobs' queues.

        ``poll()`` may run a quarantined cell inline (seconds of work),
        so it runs in a thread, never on the event loop.
        """
        assert self.fleet is not None
        while True:
            results = await asyncio.to_thread(self.fleet.poll)
            for result in results:
                job_id = result.task_id.split("|", 1)[0]
                job = self._jobs.get(job_id)
                if job is not None:
                    job.queue.put_nowait(result)
            await asyncio.sleep(_PUMP_S)

    # -- wire front ----------------------------------------------------------

    async def _handle_wire(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        telemetry.inc("repro_serve_connections_total",
                      help="Front connections accepted.", front="wire")
        try:
            while True:
                try:
                    message = await read_msg(reader)
                except (asyncio.IncompleteReadError, ProtocolError,
                        ConnectionError):
                    return
                if not isinstance(message, dict):
                    await write_msg(writer, {
                        "type": "error", "id": None,
                        "error": "messages must be dicts",
                    })
                    return
                kind = message.get("type")
                if kind == "hello":
                    await write_msg(writer, {
                        "type": "welcome", "server": "repro.serve",
                        "protocol": PROTOCOL_VERSION,
                        "executor": self.executor,
                    })
                elif kind == "ping":
                    await write_msg(writer, {"type": "pong"})
                elif kind == "health":
                    await write_msg(writer, {"type": "health",
                                             **self.health()})
                elif kind == "sweep":
                    client_id = str(message.get("id", ""))
                    async for record in self.run_job(
                            message.get("spec"), client_id, "wire"):
                        await write_msg(writer, record)
                elif kind == "cache.get":
                    await self._handle_cache_get(writer, message)
                elif kind == "join":
                    await self._handle_join(writer, message)
                elif kind == "shutdown":
                    await write_msg(writer, {"type": "bye"})
                    asyncio.create_task(self.stop())
                    return
                else:
                    await write_msg(writer, {
                        "type": "error", "id": message.get("id"),
                        "error": f"unknown message type {kind!r}",
                    })
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _token_ok(self, message: Dict[str, Any]) -> bool:
        return (message.get("token") or "") == (self.token or "")

    async def _handle_cache_get(self, writer: asyncio.StreamWriter,
                                message: Dict[str, Any]) -> None:
        """Serve one artifact blob to a remote cache tier.

        Answered from the *local* tier only (no hit/miss accounting,
        no recursion through this host's own remote tier — see
        :meth:`repro.cache.ArtifactCache.peek_local`).
        """
        if not self._token_ok(message):
            telemetry.inc("repro_serve_denied_total",
                          help="Wire requests refused by the auth "
                               "token check.", request="cache.get")
            await write_msg(writer, {"type": "denied",
                                     "error": "auth token mismatch"})
            return
        kind = str(message.get("kind", ""))
        key = str(message.get("key", ""))
        cache = get_cache()
        text = await asyncio.to_thread(cache.peek_local, kind, key)
        hit = text is not None
        telemetry.inc("repro_serve_cache_requests_total",
                      help="Remote cache-tier reads served, by "
                           "outcome.",
                      kind=kind, result="hit" if hit else "miss")
        telemetry.emit("serve.cache.get", artifact=kind, key=key[:12],
                       hit=hit)
        await write_msg(writer, {"type": "cache.blob", "kind": kind,
                                 "key": key, "hit": hit, "text": text})

    async def _handle_join(self, writer: asyncio.StreamWriter,
                           message: Dict[str, Any]) -> None:
        """Worker registration: tell a TCP worker where the fleet
        broker lives so it can ``--connect`` there."""
        if not self._token_ok(message):
            telemetry.inc("repro_serve_denied_total",
                          help="Wire requests refused by the auth "
                               "token check.", request="join")
            await write_msg(writer, {"type": "denied",
                                     "error": "auth token mismatch"})
            return
        if self.fleet is None:
            await write_msg(writer, {
                "type": "error", "id": None,
                "error": "this server runs executor=inline; "
                         "there is no fleet broker to join",
            })
            return
        host, port = self.fleet.broker.address
        telemetry.emit("serve.worker.register",
                       worker=str(message.get("worker", "?")))
        await write_msg(writer, {
            "type": "fleet", "host": host, "port": port,
            "token_required": bool(self.token),
            "external": self.fleet.workers_external(),
        })

    # -- HTTP front ----------------------------------------------------------

    async def _handle_http(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        telemetry.inc("repro_serve_connections_total",
                      help="Front connections accepted.", front="http")
        try:
            request = await self._read_http_request(reader)
            if request is None:
                return
            method, path, body = request
            telemetry.emit("serve.http", method=method, path=path)
            if method == "GET" and path == "/healthz":
                await self._respond_json(writer, 200, self.health())
            elif method == "GET" and path == "/metrics":
                await self._respond(
                    writer, 200, telemetry.render_prometheus(),
                    content_type="text/plain; version=0.0.4; "
                                 "charset=utf-8")
            elif method == "POST" and path == "/sweep":
                await self._http_sweep(writer, body)
            elif method == "POST" and path == "/shutdown":
                await self._respond_json(writer, 200,
                                         {"ok": True,
                                          "draining": True})
                asyncio.create_task(self.stop())
            else:
                await self._respond_json(
                    writer, 404,
                    {"ok": False,
                     "error": f"no route {method} {path}",
                     "routes": ["GET /healthz", "GET /metrics",
                                "POST /sweep", "POST /shutdown"]})
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_http_request(
        self, reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, bytes]]:
        line = await reader.readline()
        parts = line.decode("latin-1", "replace").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1", "replace") \
                .partition(":")
            headers[name.strip().lower()] = value.strip()
        length = 0
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            pass
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method, path, body

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       body: str,
                       content_type: str = "application/json",
                       extra_headers: str = "") -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  503: "Service Unavailable"}.get(status, "OK")
        payload = body.encode("utf-8")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{extra_headers}"
            f"Connection: close\r\n\r\n".encode("latin-1") + payload)
        await writer.drain()

    async def _respond_json(self, writer: asyncio.StreamWriter,
                            status: int, record: Any) -> None:
        await self._respond(writer, status,
                            json.dumps(record, sort_keys=True) + "\n")

    async def _http_sweep(self, writer: asyncio.StreamWriter,
                          body: bytes) -> None:
        """``POST /sweep``: stream ``accepted``/``cell``/``done`` as
        ndjson lines, one per completed cell, close-delimited."""
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except ValueError as exc:
            await self._respond_json(
                writer, 400,
                {"ok": False, "error": f"request body is not JSON: "
                                       f"{exc}"})
            return
        client_id = str(payload.pop("id", "") if isinstance(
            payload, dict) else "")
        # Admission happens before the status line goes out, so
        # backpressure and bad specs answer with real HTTP statuses
        # (503 busy / 400 rejected) instead of a 200 ndjson error.
        try:
            job = self._admit(payload, client_id, "http")
        except JobBusyError as exc:
            await self._respond(
                writer, 503,
                json.dumps({"ok": False, "busy": True,
                            "error": str(exc)}, sort_keys=True) + "\n",
                extra_headers="Retry-After: 1\r\n")
            return
        except JobError as exc:
            await self._respond_json(writer, 400,
                                     {"ok": False, "error": str(exc)})
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n")
        await writer.drain()
        async for record in self._stream_job(job):
            writer.write(
                (json.dumps(record, sort_keys=True) + "\n")
                .encode("utf-8"))
            await writer.drain()


__all__ = ["EXECUTOR_CHOICES", "JobBusyError", "JobError",
           "ServeServer"]
