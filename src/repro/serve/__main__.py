"""CLI front for the serve server: ``python -m repro.serve``.

Binds the wire and HTTP fronts, warms the fleet, and serves until
SIGINT/SIGTERM (or a client ``shutdown``/``POST /shutdown``) triggers a
graceful drain.  ``--ready-file`` writes a JSON record with the bound
ports once both fronts are listening — the CI smoke job and the tests
use it instead of racing the bind.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import os
import signal
import sys

from repro.serve.server import EXECUTOR_CHOICES, ServeServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Persistent simulation service: warm fleet, hot "
                    "cache, streaming sweep jobs over wire + HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: loopback only)")
    parser.add_argument("--wire-port", type=int, default=7017,
                        help="wire-front port, 0 for ephemeral "
                             "(default: 7017)")
    parser.add_argument("--http-port", type=int, default=7018,
                        help="HTTP-front port, 0 for ephemeral "
                             "(default: 7018)")
    parser.add_argument("--workers", type=int, default=None,
                        help="fleet worker processes; 0 = external "
                             "TCP workers only (default: cpu-count "
                             "capped heuristic)")
    parser.add_argument("--fleet-bind", default=None,
                        metavar="HOST[:PORT]",
                        help="bind the fleet broker here so "
                             "'repro.dispatch.worker --connect' can "
                             "join from other hosts (default: "
                             "$REPRO_FLEET_BIND or loopback)")
    parser.add_argument("--token", default=None,
                        help="auth token for worker joins and the "
                             "cache.get endpoint (default: "
                             "$REPRO_FLEET_TOKEN)")
    parser.add_argument("--max-pending", type=int, default=None,
                        help="admission backpressure: refuse jobs "
                             "with a structured busy reply past this "
                             "many pending (default: unbounded)")
    parser.add_argument("--executor", choices=EXECUTOR_CHOICES,
                        default="fleet",
                        help="execution lane: a persistent worker "
                             "fleet, or serialized in-process "
                             "(default: fleet)")
    parser.add_argument("--grace-s", type=float, default=10.0,
                        help="drain budget on shutdown, seconds "
                             "(default: 10)")
    parser.add_argument("--ready-file", default=None,
                        help="write {pid, wire_port, http_port} JSON "
                             "here once both fronts are bound")
    return parser


async def _amain(args: argparse.Namespace) -> int:
    server = ServeServer(
        workers=args.workers, executor=args.executor, host=args.host,
        wire_port=args.wire_port, http_port=args.http_port,
        fleet_bind=args.fleet_bind, token=args.token,
        max_pending=args.max_pending,
    )
    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(
                signum,
                lambda: asyncio.ensure_future(
                    server.stop(args.grace_s)),
            )
    fleet_note = ""
    if server.fleet is not None:
        fhost, fport = server.fleet.broker.address
        fleet_note = f", fleet broker on {fhost}:{fport}"
    print(f"repro.serve: wire on {args.host}:{server.wire_port}, "
          f"http on {args.host}:{server.http_port} "
          f"(executor={args.executor}){fleet_note}", flush=True)
    if args.ready_file:
        record = {"pid": os.getpid(), "host": args.host,
                  "wire_port": server.wire_port,
                  "http_port": server.http_port}
        if server.fleet is not None:
            fhost, fport = server.fleet.broker.address
            record["fleet_host"] = fhost
            record["fleet_port"] = fport
        with open(args.ready_file, "w") as handle:
            json.dump(record, handle)
            handle.write("\n")
    await server.serve_forever()
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
