"""Simulation-as-a-service: a persistent sweep/cell job server.

``python -m repro.serve`` runs a long-lived asyncio service that turns
the repository's batch-shaped machinery into a request-shaped one:

* **two fronts, one job engine** — sweep jobs arrive either over the
  fleet's length-prefixed pickle framing (:mod:`repro.dispatch.wire`,
  the high-throughput path the loadgen drives) or over a minimal
  HTTP/JSON front (``POST /sweep`` with a :class:`SweepSpec` payload,
  curl-able), and both stream per-cell results incrementally as they
  complete;
* **a warm fleet** — cells execute on a
  :class:`repro.dispatch.fleet.PersistentFleet`: the broker and worker
  processes survive across requests, so repeat traffic never pays
  spawn/import cost, and the content-addressed artifact cache
  (:mod:`repro.cache`) stays hot — a repeated request is answered from
  cache without touching the fleet at all;
* **observable by construction** — ``GET /healthz`` reports fleet and
  cache state, ``GET /metrics`` serves the
  :mod:`repro.telemetry.metrics` registry in Prometheus text format
  (including metrics merged back from fleet workers), and every job
  narrates itself through the structured event stream
  (``REPRO_EVENTS``).

Results are bit-identical to an inline sweep of the same spec — the
server runs the exact same ``ctx.stats`` path through the same executors
— which is what makes the client-side load generator
(:mod:`repro.loadgen`) an honest benchmark: it measures service
overhead, not a different computation.

Multi-host: ``--fleet-bind`` puts the fleet broker on a real interface
so ``python -m repro.dispatch.worker --connect`` (or ``--discover``
against the wire front) joins workers from other machines, and the wire
front's ``cache.get`` endpoint serves artifacts to ``remote:``/
``tiered:`` cache backends (:mod:`repro.cache`) — a sweep computed on
this host is answered 100% warm on any other.
"""

from repro.serve.server import JobBusyError, JobError, ServeServer

__all__ = ["JobBusyError", "JobError", "ServeServer"]
