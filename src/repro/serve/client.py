"""Blocking wire-front client for :mod:`repro.serve`.

The loadgen's workhorse: one :class:`ServeClient` per connection, plain
sockets and the :mod:`repro.dispatch.wire` framing — no asyncio on the
client side, so closed-loop loadgen threads stay dead simple.

    with ServeClient(("127.0.0.1", 7017)) as client:
        for record in client.sweep({"apps": ["social_feed"]}):
            ...   # accepted / cell / cell / ... / done
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.dispatch import wire


class ServeError(RuntimeError):
    """The server rejected a request (an ``error`` record)."""


class ServeBusyError(ServeError):
    """Admission backpressure: the server answered ``busy`` — the
    pending-job table is full; retry later."""


class ServeClient:
    """Synchronous client for the serve wire front."""

    def __init__(self, address: Tuple[str, int],
                 timeout_s: Optional[float] = 60.0) -> None:
        self.address = address
        self.sock = socket.create_connection(address,
                                             timeout=timeout_s)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    # -- request/response ----------------------------------------------------

    def _send(self, message: Dict[str, Any]) -> None:
        wire.send_msg(self.sock, message)

    def _recv(self) -> Any:
        return wire.recv_msg(self.sock)

    def hello(self, client: str = "repro.serve.client"
              ) -> Dict[str, Any]:
        self._send({"type": "hello", "client": client})
        return self._recv()

    def ping(self) -> bool:
        self._send({"type": "ping"})
        return self._recv().get("type") == "pong"

    def health(self) -> Dict[str, Any]:
        self._send({"type": "health"})
        return self._recv()

    def sweep(self, spec: Dict[str, Any],
              job_id: str = "") -> Iterator[Dict[str, Any]]:
        """Submit one sweep job and yield the streamed records
        (``accepted``, then one ``cell`` per completed cell, then
        ``done``).  Raises :class:`ServeError` if the job is rejected
        at admission."""
        self._send({"type": "sweep", "id": job_id, "spec": spec})
        while True:
            record = self._recv()
            kind = record.get("type") if isinstance(record, dict) \
                else None
            if kind == "busy":
                raise ServeBusyError(record.get("error", "busy"))
            if kind == "error":
                raise ServeError(record.get("error", "rejected"))
            yield record
            if kind == "done":
                return

    def cache_get(self, kind: str, key: str,
                  token: str = "") -> Dict[str, Any]:
        """Fetch one artifact blob from the server's local cache tier
        (the ``cache.blob`` record; ``hit``/``text`` carry the answer).
        Raises :class:`ServeError` on ``denied``."""
        self._send({"type": "cache.get", "kind": kind, "key": key,
                    "token": token})
        record = self._recv()
        if isinstance(record, dict) and record.get("type") == "denied":
            raise ServeError(record.get("error", "denied"))
        return record

    def fleet_info(self, worker: str = "repro.serve.client",
                   token: str = "") -> Dict[str, Any]:
        """Ask where the fleet broker lives (the ``fleet`` record).
        Raises :class:`ServeError` on ``denied`` or an inline server."""
        self._send({"type": "join", "worker": worker, "token": token})
        record = self._recv()
        if isinstance(record, dict) \
                and record.get("type") in ("denied", "error"):
            raise ServeError(record.get("error", "denied"))
        return record

    def shutdown_server(self) -> None:
        """Ask the server to drain gracefully (fire-and-forget)."""
        self._send({"type": "shutdown"})
        try:
            self._recv()  # "bye"
        except (ConnectionError, OSError, EOFError):
            pass

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = ["ServeBusyError", "ServeClient", "ServeError"]
