"""Synthetic workload generator.

Produces a :class:`Workload` — program + block walk + memory model — whose
dynamic stream reproduces the structural characteristics the paper measures
for mobile apps and SPEC (see ``profiles.py``).  All randomness is drawn from
a single seeded ``random.Random``, so generation is fully deterministic.

Register conventions (documented here because the chain-detection guarantees
depend on them):

=================  =====================================================
R0..R5             chain registers: only chain members write these, and
                   every non-head member reads exactly one of them (its
                   predecessor's dest) -> sole-producer (IC) edges hold.
R6, R7             per-function base registers, written in the entry
                   block; chain heads read both (two producers -> the
                   head is a chain *root*, so chains do not leak across
                   loop iterations in mobile profiles).
R8..R10            consumer/filler registers (low fanout by construction).
R11                high-register filler (not Thumb-encodable).
R12                the "hostile" chain register: used to make a chain
                   member non-Thumb-encodable (paper Fig 5b's ~4.5 %).
=================  =====================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.condition import Cond
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.trace.dynamic import Trace
from repro.trace.materialize import (
    HashedPattern,
    MemoryModel,
    StridedPattern,
    TableMemoryModel,
    materialize,
)
from repro.trace.program import BasicBlock, Program
from repro.workloads.profiles import WorkloadProfile

CHAIN_REGS: Tuple[int, ...] = (0, 1, 2, 3, 4, 5)
BASE_REGS: Tuple[int, int] = (6, 7)
FILLER_REGS: Tuple[int, ...] = (8, 9, 10)
HIGH_FILLER_REG = 11
HOSTILE_CHAIN_REG = 12

#: Wide immediate used to defeat Thumb encoding of a hostile chain member.
HOSTILE_IMM = 1 << 12

_CHAIN_OPS = (Opcode.ADD, Opcode.EOR, Opcode.LSL, Opcode.SUB, Opcode.ORR)
_FILLER_ALU = (Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.ORR, Opcode.EOR,
               Opcode.LSR, Opcode.MOV)
_FP_OPS = (Opcode.VADD, Opcode.VSUB, Opcode.VMUL, Opcode.VDIV)
_LONG_OPS = (Opcode.MUL, Opcode.SDIV, Opcode.UDIV)

#: Base addresses of the synthetic address space.  The three regions are
#: fully disjoint so stores never alias loads by accident (an accidental
#: store->load dependence would sever a generated chain).
HEAP_BASE = 0x8000_0000
BIG_REGION_BASE = 0xA000_0000
STORE_REGION_BASE = 0xC000_0000


@dataclass
class FunctionInfo:
    """Control-flow metadata for one generated function."""

    index: int
    entry_block: int
    body_blocks: List[int] = field(default_factory=list)
    ret_block: int = -1
    #: body position -> callee function index, for call blocks
    calls: Dict[int, int] = field(default_factory=dict)
    #: body positions ending in a skip branch; value = hard-to-predict flag
    skips: Dict[int, bool] = field(default_factory=dict)
    #: loop iteration count when entered at top level (fixed per function
    #: so the two-level predictor can learn the loop-exit pattern, like the
    #: mostly-regular loops of real code)
    loop_iters: int = 1
    #: iteration count when entered as a callee (kept at 1-2 so call trees
    #: do not expand geometrically)
    callee_iters: int = 1


@dataclass
class Workload:
    """A generated program, its walk, and its memory model."""

    profile: WorkloadProfile
    program: Program
    walk: List[int]
    memory: MemoryModel
    functions: List[FunctionInfo]
    #: per-program trace memo: ``id(program) -> (program, trace)``.  The
    #: program reference is held alongside the trace so a dead program's
    #: ``id`` can never be recycled onto a stale entry.
    _trace_memo: Dict[int, Tuple[Program, Trace]] = field(
        default_factory=dict)

    @property
    def name(self) -> str:
        return self.profile.name

    def _materialized(self, program: Program, name: str) -> Trace:
        hit = self._trace_memo.get(id(program))
        if hit is not None and hit[0] is program:
            return hit[1]
        trace = materialize(program, self.walk, self.memory, name=name)
        self._trace_memo[id(program)] = (program, trace)
        return trace

    def trace(self) -> Trace:
        """Materialize (and memoize) the dynamic trace of this workload."""
        return self._materialized(self.program, self.profile.name)

    def trace_for(self, program: Program) -> Trace:
        """Materialize the same walk over a *transformed* program.

        Memoized per program object — a mutated program *copy* can never
        be served the original program's cached trace."""
        if program is self.program:
            return self.trace()
        return self._materialized(
            program, f"{self.profile.name}:transformed")

    def adopt_trace(self, trace: Trace) -> None:
        """Seed the memo with an externally recorded/loaded trace for the
        current program (no-op if a trace is already memoized)."""
        if id(self.program) not in self._trace_memo:
            self._trace_memo[id(self.program)] = (self.program, trace)


class _Builder:
    """Internal state machine that emits one workload."""

    def __init__(self, profile: WorkloadProfile):
        self.profile = profile
        self.rng = random.Random(profile.seed)
        self.memory = TableMemoryModel()
        self.blocks: List[BasicBlock] = []
        self.functions: List[FunctionInfo] = []
        self._next_uid = 0
        self._next_block = 0
        self._filler_cursor = 0
        #: ring of recent filler destinations: sources rotate through it so
        #: background dataflow forms ~4 parallel strands (ILP ~4) instead of
        #: one serial chain that would gate the whole back end, while each
        #: destination still gets only ~1-2 readers (low fanout).
        self._recent_dests = [FILLER_REGS[0], FILLER_REGS[1],
                              FILLER_REGS[2], FILLER_REGS[0]]
        self._recent_cursor = 0
        #: outstanding (register, readers-still-needed) fanout obligations
        self._fanout_debt: List[Tuple[int, int]] = []

    # -- low-level emission --------------------------------------------------

    def _uid(self) -> int:
        uid = self._next_uid
        self._next_uid += 1
        return uid

    def _emit(self, out: List[Instruction], **kwargs) -> Instruction:
        instr = Instruction(uid=self._uid(), **kwargs)
        out.append(instr)
        return instr

    def _new_block(self) -> BasicBlock:
        block = BasicBlock(self._next_block, [])
        self._next_block += 1
        self.blocks.append(block)
        return block

    def _filler_reg(self) -> int:
        self._filler_cursor = (self._filler_cursor + 1) % len(FILLER_REGS)
        return FILLER_REGS[self._filler_cursor]

    # -- memory patterns -----------------------------------------------------

    def _hot_pattern(self, fn_index: int) -> StridedPattern:
        base = HEAP_BASE + fn_index * self.profile.hot_region_bytes
        stride = self.rng.choice((0, 4, 4, 8))
        return StridedPattern(base, stride, self.profile.hot_region_bytes)

    def _chase_pattern(self, uid: int) -> HashedPattern:
        """Pointer-chase region for chain loads: sized beyond the d-cache
        so a realistic share of chain members resolve in the L2 — the
        dependence-resolution latency behind mobile F.StallForR+D."""
        return HashedPattern(
            HEAP_BASE + 0x100_0000, self.profile.chase_region_bytes,
            salt=uid,
        )

    def _big_pattern(self, uid: int) -> object:
        # Each static load streams through its own disjoint slice of the
        # big-data space: the aggregate footprint exceeds the L2, so these
        # are genuine DRAM-bound streams (the SPEC behaviour that makes
        # critical-load prefetching shine in Fig 1a).
        base = BIG_REGION_BASE + (uid % 1024) * self.profile.big_region_bytes
        if self.rng.random() < self.profile.strided_frac:
            stride = self.rng.choice((256, 256, 512, 1024))
            return StridedPattern(base, stride,
                                  self.profile.big_region_bytes)
        return HashedPattern(base, self.profile.big_region_bytes, salt=uid)

    def _store_pattern(self, fn_index: int) -> StridedPattern:
        base = STORE_REGION_BASE + fn_index * self.profile.hot_region_bytes
        return StridedPattern(base, 4, self.profile.hot_region_bytes)

    def _assign_load_pattern(self, instr: Instruction, fn_index: int) -> None:
        if self.rng.random() < self.profile.big_region_load_frac:
            self.memory.set_pattern(instr.uid, self._big_pattern(instr.uid))
        else:
            self.memory.set_pattern(instr.uid, self._hot_pattern(fn_index))

    # -- filler --------------------------------------------------------------

    def _pay_debt(self, exclude: Optional[int] = None) -> Optional[int]:
        """Pop one pending fanout obligation: a register whose producing
        critical member still needs readers.  Background instructions source
        their operands from these registers first, so the high fanout of
        critical chain members comes from code that exists anyway instead of
        dedicated consumer instructions (keeping chain members a realistic
        ~15-20 % of the dynamic stream, like the paper's ~30 % coverage).

        ``exclude`` skips entries for one register, so the two operand draws
        of a single filler never return the same register (a duplicated
        source would be deduplicated by the dependence analysis and the
        fanout payment silently lost).
        """
        # Oldest debts first: lingering old obligations would otherwise be
        # paid *inside* later chain windows, where their register may be
        # about to be recycled — creating WAR hazards that force the
        # compiler pass to skip otherwise-hoistable chains.
        for idx in range(len(self._fanout_debt)):
            reg, remaining = self._fanout_debt[idx]
            if reg == exclude:
                continue
            if remaining <= 1:
                del self._fanout_debt[idx]
            else:
                self._fanout_debt[idx] = (reg, remaining - 1)
            return reg
        return None

    def _forgive_debt(self, reg: int) -> None:
        """Drop unpaid debt on ``reg`` when the register is recycled.

        Emitting last-instant reader instructions here would place reads
        of the dying value directly before its redefinition — a WAR hazard
        inside every chain window longer than the register pool, which
        would force the compiler to skip those chains.  Forgiving the
        remainder instead just leaves the producing critical with slightly
        lower fanout than targeted (its readers were whatever background
        instructions the debt mechanism reached in time).
        """
        self._fanout_debt = [d for d in self._fanout_debt if d[0] != reg]

    def _flush_debt(self, out: List[Instruction]) -> None:
        """Realize all outstanding debt as explicit consumers (block end:
        these sit after every chain, so they can never be bypassed)."""
        rng = self.rng
        for reg, remaining in self._fanout_debt:
            for _ in range(remaining):
                cdest = self._filler_reg()
                if rng.random() < self.profile.filler_high_reg_frac:
                    cdest = HIGH_FILLER_REG
                self._emit(out,
                           opcode=rng.choice((Opcode.ADD, Opcode.EOR)),
                           dests=(cdest,), srcs=(reg,),
                           imm=rng.randrange(0, 200))
        self._fanout_debt.clear()

    def _emit_filler(self, out: List[Instruction], fn_index: int) -> None:
        """Emit one background instruction per the profile's mix."""
        rng = self.rng
        prof = self.profile
        roll = rng.random()
        dest = self._filler_reg()
        # Source operands pay outstanding fanout debt first; otherwise read
        # a recent filler destination from the ring (concentrating filler
        # fanout at 1-2 so the background fabric never grows accidental
        # high-fanout producers, which would pollute Fig 1).
        src = self._pay_debt()
        paying = src is not None
        if src is None:
            self._recent_cursor = (self._recent_cursor + 1) % 4
            src = self._recent_dests[self._recent_cursor]
        if src == dest:
            src = next(r for r in FILLER_REGS if r != dest)
        src2 = self._pay_debt(exclude=src)
        paying = paying or src2 is not None
        if src2 is None or src2 in (dest, src):
            src2 = rng.choice(
                [r for r in FILLER_REGS if r not in (dest, src)] or [src]
            )
        self._recent_dests[self._recent_cursor] = dest
        if roll < prof.load_frac:
            # Two-register addressing (base + index): background loads must
            # not form sole-producer chains across the stream.
            if rng.random() < prof.filler_high_reg_frac:
                dest = HIGH_FILLER_REG
            instr = self._emit(
                out, opcode=Opcode.LDR, dests=(dest,), srcs=(src, src2),
            )
            self._assign_load_pattern(instr, fn_index)
            return
        if roll < prof.load_frac + prof.store_frac:
            instr = self._emit(
                out, opcode=Opcode.STR, srcs=(src, src2),
                imm=rng.randrange(0, 128, 4),
            )
            self.memory.set_pattern(instr.uid, self._store_pattern(fn_index))
            return
        roll = rng.random()
        if roll < prof.fp_frac:
            op = rng.choice(_FP_OPS)
            self._emit(out, opcode=op, dests=(dest,), srcs=(src, src2))
            return
        if roll < prof.fp_frac + prof.long_latency_frac:
            op = rng.choice(_LONG_OPS)
            self._emit(out, opcode=op, dests=(dest,), srcs=(src, src2))
            return
        op = rng.choice(_FILLER_ALU)
        if op is Opcode.MOV and paying:
            op = Opcode.ADD  # a MOV-immediate would drop the debt read
        if rng.random() < prof.filler_high_reg_frac:
            dest = HIGH_FILLER_REG
        cond = Cond.AL
        if rng.random() < prof.filler_predicated_frac:
            cond = rng.choice((Cond.EQ, Cond.NE))
        imm_hi = 4096 if rng.random() < prof.filler_wide_imm_frac else 200
        if op is Opcode.MOV:
            self._emit(out, opcode=op, dests=(dest,),
                       imm=rng.randrange(0, imm_hi), cond=cond)
        else:
            # Two register sources: background instructions must not form
            # long sole-producer chains of their own (they are the *non*
            # critical fabric), so each one has two in-window producers.
            self._emit(out, opcode=op, dests=(dest,), srcs=(src, src2),
                       imm=rng.randrange(0, imm_hi), cond=cond)

    # -- mobile critical-chain motif ------------------------------------------

    def _sample_gap(self) -> int:
        weights = self.profile.gap_weights
        total = sum(weights.values())
        roll = self.rng.random() * total
        acc = 0.0
        for gap, weight in sorted(weights.items()):
            acc += weight
            if roll <= acc:
                return gap
        return max(weights)

    def _emit_chain_motif(self, out: List[Instruction],
                          fn_index: int) -> None:
        """Emit one CritIC-style dependence chain with its fanout consumers.

        Members form a sole-producer path (each reads exactly the previous
        member's destination); *critical* members additionally get K
        single-source consumers emitted between this member and the next,
        which both creates the fanout and spreads the chain out in the
        dynamic stream (paper Fig 5a's "spread").
        """
        rng = self.rng
        prof = self.profile
        length = rng.randint(*prof.chain_length)
        hostile = rng.random() < prof.chain_hostile_frac
        hostile_pos = rng.randrange(1, max(2, length)) if hostile else -1

        # Choose which members are critical by walking the gap distribution.
        criticals = {0}
        pos = 0
        while pos < length - 1:
            pos += self._sample_gap() + 1
            if pos < length:
                criticals.add(pos)

        prev_reg: Optional[int] = None
        for j in range(length):
            dest = CHAIN_REGS[j % len(CHAIN_REGS)]
            imm = rng.randrange(1, 200)
            if j == hostile_pos:
                if rng.random() < 0.5:
                    dest = HOSTILE_CHAIN_REG
                else:
                    imm = HOSTILE_IMM
            # Pool recycling: unpaid fanout on the register we are about
            # to rewrite is forgiven (see _forgive_debt).
            self._forgive_debt(dest)
            if j == 0:
                if rng.random() < prof.chain_load_head_frac:
                    instr = self._emit(
                        out, opcode=Opcode.LDR, dests=(dest,),
                        srcs=BASE_REGS,
                    )
                    self.memory.set_pattern(
                        instr.uid, self._chase_pattern(instr.uid)
                    )
                else:
                    self._emit(out, opcode=Opcode.ADD, dests=(dest,),
                               srcs=BASE_REGS)
            else:
                assert prev_reg is not None
                if rng.random() < prof.chain_load_frac:
                    instr = self._emit(
                        out, opcode=Opcode.LDR, dests=(dest,),
                        srcs=(prev_reg,), imm=min(imm, 124) & ~0x3,
                    )
                    self.memory.set_pattern(
                        instr.uid, self._chase_pattern(instr.uid)
                    )
                else:
                    op = rng.choice(_CHAIN_OPS)
                    self._emit(out, opcode=op, dests=(dest,),
                               srcs=(prev_reg,), imm=imm)
            prev_reg = dest

            if j in criticals:
                # Record the fanout this member must accumulate; background
                # instructions (fillers, stores, loads) between here and the
                # register's next reuse will source it (see _pay_debt).
                target = rng.randint(*prof.fanout_high)
                self._fanout_debt.append((dest, target - 1))
            for _ in range(rng.randint(*prof.chain_spacing)):
                self._emit_filler(out, fn_index)

    # -- SPEC motifs ----------------------------------------------------------

    def _emit_recurrence_members(self, out: List[Instruction],
                                 count: int) -> None:
        """Emit ``count`` members of the function-wide recurrence chains.

        SPEC profiles thread accumulators (R0..R2) through every body block
        and across loop iterations, giving the very long, low-fanout ICs of
        Fig 5a.
        """
        rng = self.rng
        for _ in range(count):
            reg = CHAIN_REGS[rng.randrange(3)]
            op = rng.choice((Opcode.ADD, Opcode.EOR, Opcode.SUB))
            self._emit(out, opcode=op, dests=(reg,), srcs=(reg,),
                       imm=rng.randrange(1, 200))

    def _emit_indep_critical(self, out: List[Instruction],
                             fn_index: int) -> None:
        """Emit a SPEC-style high-fanout producer group.

        The head is typically a big-region load.  With probability
        ``indep_chained_frac`` further high-fanout producers chain *directly*
        off it (gap 0) — SPEC's dominant chaining pattern per Fig 1b, which
        single-instruction criticality optimizations still handle because
        every member is individually visible as high-fanout.  Consumers read
        a second register too, so no low-fanout sole-producer path forms.
        """
        rng = self.rng
        prof = self.profile
        f = prof.indep_chained_frac
        members = rng.choices((1, 2, 3),
                              weights=(1.0 - f, f * 0.6, f * 0.4))[0]
        regs = [CHAIN_REGS[3 + (k % 3)] for k in range(members)]
        prev = None
        for k, dest in enumerate(regs):
            if k == 0:
                if rng.random() < 0.7:
                    instr = self._emit(out, opcode=Opcode.LDR,
                                       dests=(dest,), srcs=BASE_REGS)
                    self.memory.set_pattern(
                        instr.uid, self._big_pattern(instr.uid)
                    )
                else:
                    self._emit(out, opcode=Opcode.MUL, dests=(dest,),
                               srcs=(FILLER_REGS[0], FILLER_REGS[1]))
            else:
                self._emit(out, opcode=rng.choice((Opcode.LSL, Opcode.ADD)),
                           dests=(dest,), srcs=(prev,),
                           imm=rng.randrange(1, 32))
            fanout = rng.randint(*prof.indep_fanout)
            for _ in range(fanout):
                self._emit(
                    out, opcode=rng.choice((Opcode.ADD, Opcode.EOR)),
                    dests=(self._filler_reg(),),
                    srcs=(dest, self._filler_reg()),
                )
                if rng.random() < 0.2:
                    self._emit_filler(out, fn_index)
            prev = dest

    # -- blocks / functions ----------------------------------------------------

    def _emit_block_body(self, out: List[Instruction],
                         fn_index: int) -> None:
        rng = self.rng
        prof = self.profile
        target = rng.randint(*prof.block_instructions)
        if prof.chain_recurrent:
            # Rebase R6/R7 per block so their fanout stays at ~1 reader per
            # iteration (otherwise the per-call base write accumulates one
            # reader per iteration and pollutes the critical population).
            self._emit(out, opcode=Opcode.MOV, dests=(BASE_REGS[0],),
                       imm=rng.randrange(0, 200))
            self._emit(out, opcode=Opcode.MOV, dests=(BASE_REGS[1],),
                       imm=rng.randrange(0, 200))
            self._emit_recurrence_members(out, rng.randint(2, 4))
        if rng.random() < prof.chain_motif_prob:
            self._emit_chain_motif(out, fn_index)
        if rng.random() < prof.indep_critical_prob:
            self._emit_indep_critical(out, fn_index)
        while len(out) < target:
            self._emit_filler(out, fn_index)
        # Any fanout debt not yet absorbed by background instructions is
        # realized as explicit consumers before the block ends (chain
        # registers are dead across blocks by convention).
        self._flush_debt(out)

    def _end_with_branch(self, out: List[Instruction], opcode: Opcode,
                         cond: Cond, target: int) -> None:
        if cond.is_predicated:
            # Compare the stable base registers (the loop counter of real
            # code): the branch resolves as soon as it issues instead of
            # waiting behind the chain dataflow, keeping mispredict cost
            # at pipeline depth like real cores.
            self._emit(out, opcode=Opcode.CMP, srcs=BASE_REGS)
        self._emit(out, opcode=opcode, cond=cond, target=target)

    def build_function(self, fn_index: int, callee_pool: Sequence[int]) -> FunctionInfo:
        rng = self.rng
        prof = self.profile
        n_body = rng.randint(*prof.blocks_per_function)

        entry = self._new_block()
        body = [self._new_block() for _ in range(n_body)]
        ret = self._new_block()
        info = FunctionInfo(
            index=fn_index, entry_block=entry.block_id,
            body_blocks=[b.block_id for b in body],
            ret_block=ret.block_id,
            loop_iters=rng.randint(*prof.loop_iterations),
            callee_iters=rng.randint(1, 2),
        )

        # Entry: set up the per-function base registers + a little filler.
        out: List[Instruction] = []
        self._emit(out, opcode=Opcode.MOV, dests=(BASE_REGS[0],),
                   imm=rng.randrange(0, 200))
        self._emit(out, opcode=Opcode.MOV, dests=(BASE_REGS[1],),
                   imm=rng.randrange(0, 200))
        if prof.chain_recurrent:
            # Re-root the recurrence accumulators on every call: two
            # register sources mean the reset is never a sole-producer link,
            # so recurrence ICs cannot leak across function calls.
            for reg in CHAIN_REGS[:3]:
                self._emit(out, opcode=Opcode.ADD, dests=(reg,),
                           srcs=BASE_REGS)
        for _ in range(rng.randint(2, 5)):
            self._emit_filler(out, fn_index)
        entry.instructions = out

        for pos, block in enumerate(body):
            out = []
            self._emit_block_body(out, fn_index)
            is_last = pos == n_body - 1
            if is_last:
                # Loop-back branch.  Mobile functions loop through the entry
                # block (base registers rewritten per iteration, keeping
                # their fanout low); SPEC functions loop over the body only,
                # so the entry executes once per call and the recurrence
                # accumulators thread across all iterations of one call —
                # but reset between calls, bounding IC spread to one visit.
                loop_target = (body[0].block_id if prof.chain_recurrent
                               else entry.block_id)
                self._end_with_branch(out, Opcode.B, Cond.NE, loop_target)
            elif callee_pool and rng.random() < prof.call_frac:
                callee = rng.choice(callee_pool)
                info.calls[pos] = callee
                # Target patched to the callee's entry block later.
                self._emit(out, opcode=Opcode.BL, dests=(14,), target=callee)
            elif pos + 2 < n_body and rng.random() < prof.skip_branch_frac:
                hard = rng.random() < prof.hard_branch_frac
                info.skips[pos] = hard
                self._end_with_branch(out, Opcode.B, Cond.EQ,
                                      body[pos + 2].block_id)
            block.instructions = out

        ret.instructions = []
        self._emit(ret.instructions, opcode=Opcode.BX, srcs=(14,))
        self.functions.append(info)
        return info

    def build(self) -> Tuple[Program, List[FunctionInfo]]:
        prof = self.profile
        for fn_index in range(prof.num_functions):
            callee_pool = list(range(fn_index + 1, prof.num_functions))
            self.build_function(fn_index, callee_pool)
        return self.finish()

    def finish(self) -> Tuple[Program, List[FunctionInfo]]:
        """Patch BL targets and assemble the :class:`Program`.

        Split out of :meth:`build` so workload *families*
        (:mod:`repro.workloads.patterns`) can drive
        :meth:`build_function` per function — swapping regime profiles
        between calls — and still get the same call-patching and
        program-assembly semantics.  Functions must have been built in
        increasing ``fn_index`` order (``self.functions[i].index == i``).
        """
        # Patch BL targets from callee function index to entry block id.
        for info in self.functions:
            block_ids = info.body_blocks
            for pos, callee in info.calls.items():
                block = self.blocks[block_ids[pos]]
                patched = block.instructions[-1]
                entry = self.functions[callee].entry_block
                block.instructions[-1] = Instruction(
                    opcode=Opcode.BL, dests=(14,), target=entry,
                    uid=patched.uid,
                )
        program = Program(self.blocks, name=self.profile.name)
        return program, self.functions


class _WalkBuilder:
    """Generates the dynamic block walk consistent with the program's CFG."""

    def __init__(self, profile: WorkloadProfile,
                 functions: List[FunctionInfo], rng: random.Random):
        self.profile = profile
        self.functions = functions
        self.rng = rng
        self.walk: List[int] = []
        #: per-skip-branch bias direction for easy (predictable) branches
        self._easy_bias: Dict[Tuple[int, int], bool] = {}

    def _skip_taken(self, fn_index: int, pos: int, hard: bool) -> bool:
        if hard:
            return self.rng.random() < 0.5
        key = (fn_index, pos)
        if key not in self._easy_bias:
            self._easy_bias[key] = self.rng.random() < 0.5
        bias = self._easy_bias[key]
        return bias if self.rng.random() < 0.97 else not bias

    def visit(self, fn_index: int, depth: int, budget: int) -> None:
        if len(self.walk) >= budget:
            return
        info = self.functions[fn_index]
        # Called functions run briefly (one or two loop iterations) — the
        # full iteration count only applies at the top level.  Without this
        # the call tree expands geometrically and the walk never rotates
        # across the app's many functions (killing the i-cache pressure
        # mobile apps exhibit).  Counts are per-function constants so the
        # loop-exit branch pattern is learnable (see FunctionInfo).
        iters = info.loop_iters if depth == 0 else info.callee_iters
        recurrent = self.profile.chain_recurrent
        if recurrent:
            # SPEC-style: the entry block runs once per call; the loop-back
            # branch targets the first body block.
            self.walk.append(info.entry_block)
        for _ in range(iters):
            if len(self.walk) >= budget:
                break
            if not recurrent:
                self.walk.append(info.entry_block)
            pos = 0
            body = info.body_blocks
            while pos < len(body):
                self.walk.append(body[pos])
                if pos in info.calls and depth < self.profile.max_call_depth \
                        and self.rng.random() < 0.7:
                    self.visit(info.calls[pos], depth + 1, budget)
                if pos in info.skips:
                    hard = info.skips[pos]
                    if self._skip_taken(fn_index, pos, hard):
                        pos += 2
                        continue
                pos += 1
        self.walk.append(info.ret_block)

    def build(self) -> List[int]:
        toplevel = [f.index for f in self.functions[:max(
            4, self.profile.num_functions // 4)]]
        budget = self.profile.walk_blocks
        while len(self.walk) < budget:
            fn = self.rng.choice(toplevel)
            self.visit(fn, 0, budget)
        return self.walk


def generate(profile: WorkloadProfile,
             walk_blocks: Optional[int] = None) -> Workload:
    """Generate the full workload for ``profile``.

    Args:
        profile: the workload parameterization.
        walk_blocks: optional override of the dynamic walk length (tests and
            quick benches use smaller values).
    """
    if walk_blocks is not None:
        profile = profile.scaled(walk_blocks / profile.walk_blocks)
    builder = _Builder(profile)
    program, functions = builder.build()
    walk_rng = random.Random(profile.seed ^ 0x5A5A5A)
    walk = _WalkBuilder(profile, functions, walk_rng).build()
    return Workload(
        profile=profile,
        program=program,
        walk=walk,
        memory=builder.memory,
        functions=functions,
    )
