"""Workload pattern library: the eighth registry of scenario generators.

The Table II catalog generator (:mod:`repro.workloads.generator`)
synthesizes one parameterized *family* of instruction streams.  This
module multiplies that into a library of structurally distinct scenario
shapes, registered as :data:`repro.registry.WORKLOAD_FAMILIES` behind
the narrow :class:`repro.registry.protocols.WorkloadFamily` protocol:

``default``
    The catalog generator itself, unchanged — same program, walk, and
    trace bytes as a direct :func:`~repro.workloads.generator.generate`
    call, so default-family cache keys stay byte-identical.
``phased``
    Phase-structured streams: the walk cycles through hot-loop, UI, and
    IO *regimes*, each a pool of functions built under regime-specific
    knobs (mobile apps alternate render loops, event handling, and I/O —
    Zhao et al.'s app-phase profiles).
``bursty``
    Burst/idle alternation following the cxl-fabric-sim
    ``BurstyWorkload`` shape: dense compute bursts separated by idle
    polling over long-stall loads.
``zipfian-footprint``
    Zipfian block-popularity code footprint: top-level function choice
    follows a Zipf distribution over *all* functions, so a few functions
    stay hot while a long tail churns the i-cache.
``netbound``
    Network-latency-bound profiles: most of the walk sits in small wait
    loops whose chain loads walk a DRAM-sized region (long-stall
    memory), with occasional compute bursts.
``vecmobile``
    Vectorizable mobile-kernel bodies (Khadem et al.): few functions,
    large straight-line FP-heavy blocks, fully strided streaming loads,
    long regular loops, almost no hard branches.
``trace-replay``
    Re-materializes a :class:`~repro.workloads.generator.Workload` from
    a recorded trace artifact in the content-addressed cache, making
    cached real traces first-class scenarios (record any family's trace
    via :func:`record_replay_source`, then sweep it like an app).

Every family draws all randomness from the profile's seed (build is
bit-deterministic) and composes with the existing ``_Builder`` /
``_WalkBuilder`` machinery, so the generator's register conventions —
and with them the chain-detection guarantees — hold for every family.
Family identity (``name@version``) folds into stats cache keys and run
manifests exactly like the other registries whenever the family is not
``default``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.registry import WORKLOAD_FAMILIES
from repro.trace.dynamic import Trace, TraceEntry
from repro.trace.program import BasicBlock, Program
from repro.workloads.generator import (
    FunctionInfo,
    Workload,
    _Builder,
    _WalkBuilder,
    generate,
)
from repro.workloads.profiles import WorkloadProfile

#: Walk-RNG salt (the catalog generator uses ``seed ^ 0x5A5A5A``; each
#: family salts differently so its walk is independent of the default's).
_FAMILY_WALK_SALT = 0x7A17E4


def build_workload(family: str, profile: WorkloadProfile) -> Workload:
    """Build ``profile``'s workload under the named family.

    Unknown names raise the registry's did-you-mean ``RegistryError``
    (``--workload-family zipfain`` suggests ``zipfian-footprint``).
    """
    return WORKLOAD_FAMILIES.create(family).build(profile)


# -- pooled regime machinery ---------------------------------------------------


def _pooled_program(
    profile: WorkloadProfile,
    regimes: Sequence[Tuple[str, int, WorkloadProfile]],
) -> Tuple[Program, List[FunctionInfo], object, Dict[str, List[int]]]:
    """Build one program whose functions split across *regime pools*.

    ``regimes`` is ``(name, weight, regime_profile)`` triples; the
    profile's functions are partitioned across pools proportionally to
    weight (every pool gets at least one function) and each pool's
    functions are emitted under its regime profile.  Calls stay inside
    the pool, so a walk segment spent in one pool is a phase boundary in
    the dynamic stream too.  Functions are built in increasing index
    order — the invariant :meth:`_Builder.finish` relies on.
    """
    builder = _Builder(profile)
    total_weight = sum(weight for _, weight, _ in regimes)
    n = max(profile.num_functions, len(regimes))
    pools: Dict[str, List[int]] = {}
    cursor = 0
    for pos, (name, weight, _) in enumerate(regimes):
        if pos == len(regimes) - 1:
            count = n - cursor
        else:
            count = max(1, round(n * weight / total_weight))
            count = min(count, n - cursor - (len(regimes) - 1 - pos))
        pools[name] = list(range(cursor, cursor + count))
        cursor += count
    for name, _, regime_profile in regimes:
        builder.profile = regime_profile
        for fn_index in pools[name]:
            callee_pool = [j for j in pools[name] if j > fn_index]
            builder.build_function(fn_index, callee_pool)
    builder.profile = profile
    program, functions = builder.finish()
    return program, functions, builder.memory, pools


def _pooled_walk(
    profile: WorkloadProfile,
    functions: List[FunctionInfo],
    pools: Dict[str, List[int]],
    schedule: Sequence[Tuple[str, int]],
) -> List[int]:
    """A walk alternating pool segments per ``schedule`` (cyclically).

    Each ``(pool, segment_blocks)`` entry runs top-level functions from
    that pool until the segment's block budget is spent; the schedule
    repeats until the profile's total walk budget is reached.
    """
    rng = random.Random(profile.seed ^ _FAMILY_WALK_SALT)
    walker = _WalkBuilder(profile, functions, rng)
    budget = profile.walk_blocks
    index = 0
    while len(walker.walk) < budget:
        pool_name, segment = schedule[index % len(schedule)]
        index += 1
        target = min(budget, len(walker.walk) + max(1, segment))
        pool = pools[pool_name]
        while len(walker.walk) < target:
            walker.visit(rng.choice(pool), 0, target)
    return walker.walk


# -- families ------------------------------------------------------------------


@WORKLOAD_FAMILIES.register("default", version=1)
class DefaultFamily:
    """The Table II catalog generator as a family (identity scenario)."""

    def build(self, profile: WorkloadProfile) -> Workload:
        return generate(profile)


@WORKLOAD_FAMILIES.register("phased", version=1)
class PhasedFamily:
    """Hot-loop / UI / IO regimes cycled through phase segments."""

    def build(self, profile: WorkloadProfile) -> Workload:
        hot = replace(
            profile,
            blocks_per_function=(2, 3),
            block_instructions=(36, 64),
            chain_motif_prob=min(1.0, profile.chain_motif_prob + 0.15),
            call_frac=0.05, skip_branch_frac=0.05,
            load_frac=0.10, big_region_load_frac=0.01,
            loop_iterations=(8, 16),
        )
        io = replace(
            profile,
            block_instructions=(14, 26),
            chain_motif_prob=0.25,
            load_frac=0.30, store_frac=0.12,
            big_region_load_frac=0.30, strided_frac=0.2,
            call_frac=0.20,
        )
        program, functions, memory, pools = _pooled_program(
            profile,
            [("hot", 2, hot), ("ui", 5, profile), ("io", 3, io)],
        )
        period = max(30, profile.walk_blocks // 6)
        schedule = [
            ("hot", (period * 2) // 5),
            ("ui", (period * 2) // 5),
            ("io", max(1, period // 5)),
        ]
        walk = _pooled_walk(profile, functions, pools, schedule)
        return Workload(profile=profile, program=program, walk=walk,
                        memory=memory, functions=functions)


@WORKLOAD_FAMILIES.register("bursty", version=1)
class BurstyFamily:
    """Dense compute bursts separated by idle long-stall polling.

    The cxl-fabric-sim ``BurstyWorkload`` shape: a fixed burst size and
    idle gap alternate for the whole walk; idle blocks are tiny polling
    loops whose loads sit in the uncacheably large region (the stream is
    latency-bound between bursts).
    """

    def build(self, profile: WorkloadProfile) -> Workload:
        burst = replace(
            profile,
            loop_iterations=(4, 10),
            call_frac=min(profile.call_frac, 0.15),
        )
        idle = replace(
            profile,
            blocks_per_function=(1, 2),
            block_instructions=(6, 10),
            chain_motif_prob=0.0, indep_critical_prob=0.0,
            load_frac=0.45, store_frac=0.02,
            big_region_load_frac=0.9, strided_frac=0.0,
            call_frac=0.0, skip_branch_frac=0.0,
            loop_iterations=(6, 12),
        )
        program, functions, memory, pools = _pooled_program(
            profile, [("burst", 4, burst), ("idle", 1, idle)],
        )
        burst_blocks = max(20, profile.walk_blocks // 10)
        idle_blocks = max(8, burst_blocks // 2)
        schedule = [("burst", burst_blocks), ("idle", idle_blocks)]
        walk = _pooled_walk(profile, functions, pools, schedule)
        return Workload(profile=profile, program=program, walk=walk,
                        memory=memory, functions=functions)


@WORKLOAD_FAMILIES.register("zipfian-footprint", version=1)
class ZipfianFootprintFamily:
    """Zipfian block-popularity code footprint stressing the i-cache.

    The program is the catalog build; the *walk* picks top-level
    functions with Zipf weights ``1/(rank+1)^alpha`` over all functions
    (the catalog walk only rotates the first quarter uniformly), so a
    handful of functions dominate while the long tail keeps evicting
    them — the replacement-policy stress the paper's Fig 3c footprints
    imply.
    """

    alpha = 1.1

    def build(self, profile: WorkloadProfile) -> Workload:
        prof = replace(
            profile,
            loop_iterations=(1, 3),
            call_frac=min(profile.call_frac, 0.25),
        )
        builder = _Builder(prof)
        program, functions = builder.build()
        rng = random.Random(prof.seed ^ _FAMILY_WALK_SALT)
        walker = _WalkBuilder(prof, functions, rng)
        n = prof.num_functions
        weights = [1.0 / (rank + 1) ** self.alpha for rank in range(n)]
        budget = prof.walk_blocks
        while len(walker.walk) < budget:
            fn = rng.choices(range(n), weights=weights)[0]
            walker.visit(fn, 0, budget)
        return Workload(profile=prof, program=program, walk=walker.walk,
                        memory=builder.memory, functions=functions)


@WORKLOAD_FAMILIES.register("netbound", version=1)
class NetboundFamily:
    """Latency-bound app profiles: long waits on DRAM-sized chases.

    Most of the walk sits in a small-block *wait* regime whose chains
    are nearly all pointer-chase loads over a region far beyond the L2
    (each chain member is a long memory stall — the network-round-trip
    analogue Zhao et al. measure in mobile apps), punctuated by short
    compute segments in the base regime.
    """

    def build(self, profile: WorkloadProfile) -> Workload:
        wait = replace(
            profile,
            blocks_per_function=(1, 2),
            block_instructions=(8, 14),
            chain_motif_prob=0.5,
            chain_length=(3, 6), chain_spacing=(1, 2),
            chain_load_head_frac=1.0, chain_load_frac=0.8,
            chase_region_bytes=8 * 1024 * 1024,
            load_frac=0.30, store_frac=0.02,
            big_region_load_frac=0.8, strided_frac=0.0,
            call_frac=0.0, skip_branch_frac=0.10,
            loop_iterations=(10, 24),
        )
        program, functions, memory, pools = _pooled_program(
            profile, [("app", 1, profile), ("wait", 2, wait)],
        )
        app_blocks = max(8, profile.walk_blocks // 20)
        schedule = [("app", app_blocks), ("wait", app_blocks * 3)]
        walk = _pooled_walk(profile, functions, pools, schedule)
        return Workload(profile=profile, program=program, walk=walk,
                        memory=memory, functions=functions)


@WORKLOAD_FAMILIES.register("vecmobile", version=1)
class VecMobileFamily:
    """Vectorizable mobile-kernel bodies (profile transform only).

    Few functions with large straight-line blocks, a realistic FP share,
    fully strided streaming loads, long regular loops, and almost no
    data-dependent branches — the loop nests Khadem et al. identify as
    vector-processing candidates in mobile libraries.
    """

    def build(self, profile: WorkloadProfile) -> Workload:
        prof = replace(
            profile,
            num_functions=min(profile.num_functions, 8),
            blocks_per_function=(2, 3),
            block_instructions=(48, 80),
            chain_motif_prob=0.10, indep_critical_prob=0.10,
            fp_frac=0.28, long_latency_frac=0.04,
            load_frac=0.28, store_frac=0.12,
            big_region_load_frac=0.35, strided_frac=1.0,
            filler_predicated_frac=0.0, filler_wide_imm_frac=0.05,
            call_frac=0.05, skip_branch_frac=0.04, hard_branch_frac=0.02,
            loop_iterations=(16, 40),
        )
        return generate(prof)


# -- trace replay --------------------------------------------------------------


def replay_source_key(profile: WorkloadProfile) -> str:
    """The cache key ``trace-replay`` reads its source recording from.

    Deliberately the same key shape the runner stores baseline traces
    under for the default family, so every trace a default-family sweep
    has ever cached is immediately replayable.
    """
    from repro.cache import artifact_key

    return artifact_key("trace", profile=profile, scheme="baseline")


def record_replay_source(profile: WorkloadProfile, trace: Trace) -> None:
    """Record ``trace`` as the replay source for ``profile``.

    Tests and tools use this to make *any* family's trace (or a real
    recorded one) the scenario ``trace-replay`` re-materializes.
    """
    from repro.cache import get_cache

    get_cache().store_trace(replay_source_key(profile), trace)


class ReplayMemoryModel:
    """MemoryModel replaying recorded per-uid address streams.

    Occurrence indices beyond the recording wrap around, so a replayed
    workload can still materialize walks longer than the recording.
    """

    def __init__(self) -> None:
        self._addrs: Dict[int, List[int]] = {}

    def record(self, uid: int, addr: int) -> None:
        self._addrs.setdefault(uid, []).append(addr)

    def address_for(self, uid: int, occurrence: int) -> int:
        seq = self._addrs.get(uid)
        if not seq:
            return 0x8000_0000
        return seq[occurrence % len(seq)]

    def pattern_for(self, uid: int) -> "_RecordedSpan":
        """Alias-oracle surface (``region_oracle`` calls
        ``pattern_for(uid).span()``): the recorded addresses bound the
        footprint exactly, so replayed programs stay compilable under
        every scheme recipe."""
        seq = self._addrs.get(uid)
        if not seq:
            return _RecordedSpan(0x8000_0000, 0x8000_0000 + 4)
        return _RecordedSpan(min(seq), max(seq) + 4)


@dataclass(frozen=True)
class _RecordedSpan:
    """Minimal pattern stand-in: just the [lo, hi) footprint bound."""

    lo: int
    hi: int

    def span(self) -> Tuple[int, int]:
        return (self.lo, self.hi)


def _replay_runs(trace: Trace) -> List[List[TraceEntry]]:
    """Split the dynamic stream into reconstructed basic blocks.

    Classic two-pass dynamic CFG discovery: pass one splits after every
    branch and collects the *leaders* (uids that start a post-branch
    run — branch targets and fall-throughs-after-branch); pass two also
    splits *before* any leader, so an instruction reachable both by
    branch and by fall-through starts its own block instead of being
    duplicated into two superblocks (which would break program-level uid
    uniqueness).
    """
    leaders = set()
    at_start = True
    for entry in trace:
        if at_start:
            leaders.add(entry.uid)
        at_start = entry.instr.is_branch
    runs: List[List[TraceEntry]] = []
    current: List[TraceEntry] = []
    for entry in trace:
        if current and entry.uid in leaders:
            runs.append(current)
            current = []
        current.append(entry)
        if entry.instr.is_branch:
            runs.append(current)
            current = []
    if current:
        runs.append(current)
    return runs


def replay_workload(profile: WorkloadProfile, trace: Trace) -> Workload:
    """Reconstruct a :class:`Workload` from a recorded dynamic trace.

    The reconstructed program's blocks are the trace's dynamic basic
    blocks (deduplicated by uid sequence), the walk is the recorded
    block sequence, and the memory model replays the recorded per-uid
    address streams — so ``workload.trace()`` is the recording itself
    (bit-identical ``SimStats``) while ``trace_for`` still supports
    compiler-transformed replays of the same walk.
    """
    runs = _replay_runs(trace)
    blocks_by_key: Dict[Tuple[int, ...], int] = {}
    block_instrs: List[List[Instruction]] = []
    walk: List[int] = []
    for pos, run in enumerate(runs):
        key = tuple(entry.uid for entry in run)
        block_id = blocks_by_key.get(key)
        if block_id is None and pos == len(runs) - 1:
            # A recording truncated mid-block: map the partial final run
            # onto the full block it prefixes (materialize emits a short
            # deterministic tail past the recorded end; the recorded
            # trace itself is served verbatim via the memo).
            for full_key, existing in blocks_by_key.items():
                if full_key[: len(key)] == key:
                    block_id = existing
                    break
        if block_id is None:
            block_id = len(block_instrs)
            blocks_by_key[key] = block_id
            block_instrs.append([entry.instr for entry in run])
        walk.append(block_id)

    # Remap branch targets onto reconstructed block ids: a taken
    # occurrence's successor block is the target's reconstruction.
    taken_successor: Dict[int, int] = {}
    for pos, run in enumerate(runs):
        last = run[-1]
        if last.instr.is_branch and last.taken and pos + 1 < len(runs):
            taken_successor.setdefault(last.uid, walk[pos + 1])
    pad_id = len(block_instrs)
    needs_pad = False
    blocks: List[BasicBlock] = []
    for block_id, instrs in enumerate(block_instrs):
        fixed = list(instrs)
        last = fixed[-1] if fixed else None
        if last is not None and last.is_branch and last.target is not None:
            target = taken_successor.get(last.uid)
            if target is None:
                # Never taken in the recording: point at a pad block the
                # walk never visits (materialize only needs the target
                # to differ from every fall-through successor).
                target = pad_id
                needs_pad = True
            fixed[-1] = replace(last, target=target)
        blocks.append(BasicBlock(block_id, fixed))
    if needs_pad:
        blocks.append(BasicBlock(
            pad_id, [Instruction(opcode=Opcode.MOV, dests=(8,), imm=0)],
        ))

    memory = ReplayMemoryModel()
    for entry in trace:
        if entry.mem_addr is not None:
            memory.record(entry.uid, entry.mem_addr)

    program = Program(blocks, name=f"{trace.name}:replay")
    workload = Workload(
        profile=profile, program=program, walk=walk,
        memory=memory, functions=[],
    )
    workload.adopt_trace(trace)
    return workload


@WORKLOAD_FAMILIES.register("trace-replay", version=1)
class TraceReplayFamily:
    """Re-materialize a workload from a recorded trace artifact.

    Reads the recording at :func:`replay_source_key`; when the cache has
    none (or is disabled), the default family's trace is generated,
    recorded, and replayed — so a cold ``trace-replay`` sweep is
    self-priming and still deterministic per seed.
    """

    def build(self, profile: WorkloadProfile) -> Workload:
        from repro.cache import get_cache

        trace: Optional[Trace] = get_cache().load_trace(
            replay_source_key(profile))
        if trace is None:
            trace = generate(profile).trace()
            record_replay_source(profile, trace)
        return replay_workload(profile, trace)


__all__ = [
    "BurstyFamily",
    "DefaultFamily",
    "NetboundFamily",
    "PhasedFamily",
    "ReplayMemoryModel",
    "TraceReplayFamily",
    "VecMobileFamily",
    "ZipfianFootprintFamily",
    "build_workload",
    "record_replay_source",
    "replay_source_key",
    "replay_workload",
]
