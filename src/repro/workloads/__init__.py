"""Synthetic workloads: Table II catalog, profiles, and the generator."""

from repro.workloads.catalog import (
    CatalogRow,
    format_table2,
    mobile_app_names,
    spec_float_names,
    spec_int_names,
    table2_rows,
)
from repro.workloads.generator import (
    BASE_REGS,
    CHAIN_REGS,
    FILLER_REGS,
    FunctionInfo,
    HIGH_FILLER_REG,
    HOSTILE_CHAIN_REG,
    Workload,
    generate,
)
from repro.workloads.profiles import (
    ALL_PROFILES,
    MOBILE,
    MOBILE_PROFILES,
    SPEC_FLOAT,
    SPEC_FLOAT_PROFILES,
    SPEC_INT,
    SPEC_INT_PROFILES,
    WorkloadProfile,
    get_profile,
    profiles_in_group,
)

__all__ = [
    "ALL_PROFILES",
    "BASE_REGS",
    "CHAIN_REGS",
    "CatalogRow",
    "FILLER_REGS",
    "FunctionInfo",
    "HIGH_FILLER_REG",
    "HOSTILE_CHAIN_REG",
    "MOBILE",
    "MOBILE_PROFILES",
    "SPEC_FLOAT",
    "SPEC_FLOAT_PROFILES",
    "SPEC_INT",
    "SPEC_INT_PROFILES",
    "Workload",
    "WorkloadProfile",
    "format_table2",
    "generate",
    "get_profile",
    "mobile_app_names",
    "profiles_in_group",
    "spec_float_names",
    "spec_int_names",
    "table2_rows",
]
