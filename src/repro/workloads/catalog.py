"""Table II: the evaluated app and benchmark catalog.

Mirrors the paper's Table II — ten popular Play-Store apps with the activity
performed during profiling, plus the SPEC.int and SPEC.float suites used as
the contrast class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.workloads.profiles import (
    MOBILE,
    MOBILE_PROFILES,
    SPEC_FLOAT,
    SPEC_FLOAT_PROFILES,
    SPEC_INT,
    SPEC_INT_PROFILES,
)


@dataclass(frozen=True)
class CatalogRow:
    """One row of Table II."""

    name: str
    group: str
    domain: str
    activity: str


def table2_rows() -> List[CatalogRow]:
    """All Table II rows: mobile apps first, then SPEC suites."""
    rows = [
        CatalogRow(p.name, MOBILE, p.domain, p.activity)
        for p in MOBILE_PROFILES.values()
    ]
    rows.extend(
        CatalogRow(p.name, SPEC_INT, p.domain, p.activity)
        for p in SPEC_INT_PROFILES.values()
    )
    rows.extend(
        CatalogRow(p.name, SPEC_FLOAT, p.domain, p.activity)
        for p in SPEC_FLOAT_PROFILES.values()
    )
    return rows


def mobile_app_names() -> Tuple[str, ...]:
    """The ten Play-Store app names of Table II."""
    return tuple(MOBILE_PROFILES)


def spec_int_names() -> Tuple[str, ...]:
    return tuple(SPEC_INT_PROFILES)


def spec_float_names() -> Tuple[str, ...]:
    return tuple(SPEC_FLOAT_PROFILES)


def format_table2() -> str:
    """Render Table II as fixed-width text (used by the bench harness)."""
    lines = [
        f"{'App':<14} {'Group':<11} {'Domain':<22} Activity",
        "-" * 72,
    ]
    for row in table2_rows():
        lines.append(
            f"{row.name:<14} {row.group:<11} {row.domain:<22} {row.activity}"
        )
    return "\n".join(lines)
