"""Workload profiles: the knobs that shape each synthetic app.

The paper's argument rests on measured *characteristics* of mobile vs SPEC
dynamic instruction streams (Figs 1b, 3c, 5a).  Since we cannot run Play
Store apps in QEMU here, each workload is a seeded synthetic program whose
generator is parameterized to match those characteristics:

====================  =======================  =========================
characteristic        mobile apps              SPEC
====================  =======================  =========================
IC length / spread    short (≤ ~20 / ≤ ~540)   long (≤ ~1.3K / ≤ ~6.3K)
crit-to-crit gaps     1..5 low-fanout between  mostly none or 0 (direct)
long-latency instrs   few                      many (DIV / FP)
code footprint        large (many functions)   small hot loops
d-cache behaviour     small hot regions        large strided arrays
====================  =======================  =========================

Every number here is a *generator parameter*, not a measured claim; the
resulting streams are then measured by the same analyses the paper runs
(see ``benchmarks/``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

#: Workload group tags.
MOBILE = "mobile"
SPEC_INT = "spec_int"
SPEC_FLOAT = "spec_float"


@dataclass(frozen=True)
class WorkloadProfile:
    """Full parameterization of one synthetic workload.

    Attributes are grouped by the subsystem they influence; see the module
    docstring for how they map to the paper's measured characteristics.
    """

    name: str
    group: str
    domain: str = ""
    activity: str = ""
    seed: int = 1

    # --- program shape (code footprint -> i-cache pressure) ---
    num_functions: int = 120
    blocks_per_function: Tuple[int, int] = (3, 5)
    block_instructions: Tuple[int, int] = (22, 44)

    # --- chain structure ---
    #: probability a body block contains a critical-chain motif
    chain_motif_prob: float = 0.72
    #: chain member count (criticals + gap members), sampled uniformly
    chain_length: Tuple[int, int] = (5, 14)
    #: distribution of low-fanout gap sizes between successive criticals
    gap_weights: Dict[int, float] = field(
        default_factory=lambda: {0: 0.04, 1: 0.34, 2: 0.24, 3: 0.18,
                                 4: 0.12, 5: 0.08}
    )
    #: consumers attached to each critical member (its fanout driver)
    fanout_high: Tuple[int, int] = (15, 21)
    #: filler/consumer instructions emitted between chain members (spread)
    chain_spacing: Tuple[int, int] = (2, 4)
    #: fraction of chains that start with a load (pointer chase style)
    chain_load_head_frac: float = 0.5
    #: fraction of non-head chain members that are pointer-chase loads
    chain_load_frac: float = 0.35
    #: fraction of chains containing a member that is NOT Thumb-encodable
    #: (high register or wide immediate); paper Fig 5b: ~4.5 %
    chain_hostile_frac: float = 0.05
    #: carry the chain across loop iterations (SPEC recurrences)
    chain_recurrent: bool = False
    #: independent high-fanout producer motifs (SPEC style, 2-src consumers)
    indep_critical_prob: float = 0.015
    #: consumers per independent critical producer
    indep_fanout: Tuple[int, int] = (10, 24)
    #: fraction of independent-critical producers that chain directly
    #: (0-gap) into a second high-fanout producer (SPEC.int behaviour)
    indep_chained_frac: float = 0.0

    # --- instruction mix (filler) ---
    long_latency_frac: float = 0.015  # MUL/DIV among filler ALU ops
    fp_frac: float = 0.01
    load_frac: float = 0.18
    store_frac: float = 0.08
    #: fraction of filler instructions using high registers (not Thumb-able)
    filler_high_reg_frac: float = 0.42
    #: fraction of filler instructions that are predicated
    filler_predicated_frac: float = 0.10
    #: fraction of filler ALU immediates too wide for the Thumb 8-bit field
    filler_wide_imm_frac: float = 0.18

    # --- memory behaviour ---
    hot_region_bytes: int = 12 * 1024
    #: footprint of the pointer-chase structures chain loads walk
    chase_region_bytes: int = 48 * 1024
    big_region_bytes: int = 4 * 1024 * 1024
    big_region_load_frac: float = 0.04
    strided_frac: float = 0.5  # of big-region loads, strided vs hashed

    # --- control flow / walk ---
    call_frac: float = 0.35          # body blocks ending in BL
    skip_branch_frac: float = 0.15   # body blocks ending in a skip branch
    hard_branch_frac: float = 0.12   # of skip branches, near-random outcome
    loop_iterations: Tuple[int, int] = (2, 6)
    max_call_depth: int = 3
    walk_blocks: int = 2200          # approximate dynamic block count

    def __post_init__(self) -> None:
        if self.group not in (MOBILE, SPEC_INT, SPEC_FLOAT):
            raise ValueError(f"unknown group {self.group!r}")
        total = sum(self.gap_weights.values())
        if total <= 0:
            raise ValueError("gap_weights must have positive mass")
        for frac_name in (
            "chain_motif_prob", "chain_load_head_frac", "chain_load_frac",
            "chain_hostile_frac",
            "indep_critical_prob", "long_latency_frac", "fp_frac",
            "load_frac", "store_frac", "filler_high_reg_frac",
            "filler_predicated_frac", "filler_wide_imm_frac",
            "big_region_load_frac", "strided_frac",
            "call_frac", "skip_branch_frac", "hard_branch_frac",
            "indep_chained_frac",
        ):
            value = getattr(self, frac_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{frac_name} must be in [0, 1], got {value}")

    def with_seed(self, seed: int) -> "WorkloadProfile":
        """Return a copy with a different generation seed."""
        return replace(self, seed=seed)

    def scaled(self, factor: float) -> "WorkloadProfile":
        """Return a copy with the dynamic walk scaled by ``factor``.

        Used by tests/benches to trade fidelity for runtime.
        """
        return replace(
            self, walk_blocks=max(50, int(self.walk_blocks * factor))
        )


def _mobile(name: str, domain: str, activity: str, seed: int,
            **overrides) -> WorkloadProfile:
    return WorkloadProfile(
        name=name, group=MOBILE, domain=domain, activity=activity,
        seed=seed, **overrides,
    )


# ---------------------------------------------------------------------------
# Table II: ten Play-Store apps.  Per-app overrides differentiate the apps
# the way the paper's measurements do: e.g. Maps/Youtube are the most
# F.StallForR+D-bound (Sec. IV-E), Music benefits least, Acrobat most,
# Browser has the largest code footprint.
# ---------------------------------------------------------------------------

MOBILE_PROFILES: Dict[str, WorkloadProfile] = {
    p.name: p for p in (
        _mobile(
            "Acrobat", "Document readers", "View, add comment", seed=11,
            chain_motif_prob=0.88, fanout_high=(16, 22),
            chain_length=(7, 16),
        ),
        _mobile(
            "Angrybirds", "Physics games", "1 Level of game", seed=12,
            chain_motif_prob=0.75, fp_frac=0.04, long_latency_frac=0.03,
        ),
        _mobile(
            "Browser", "Web interfaces", "Search and load pages", seed=13,
            num_functions=160, call_frac=0.45, chain_motif_prob=0.65,
            chain_spacing=(2, 3),
        ),
        _mobile(
            "Facebook", "Instant messengers", "RT-texting", seed=14,
            chain_motif_prob=0.74, call_frac=0.40,
        ),
        _mobile(
            "Email", "Email clients", "Send,receive mail", seed=15,
            chain_motif_prob=0.70, call_frac=0.38, load_frac=0.20,
        ),
        _mobile(
            "Maps", "Navigation", "Search directions", seed=16,
            chain_motif_prob=0.80, fanout_high=(16, 23),
            chain_spacing=(2, 4), load_frac=0.22,
        ),
        _mobile(
            "Music", "Music/audio players", "2 minutes song", seed=17,
            chain_motif_prob=0.55, fanout_high=(14, 20),
            call_frac=0.28, chain_length=(4, 9),
        ),
        _mobile(
            "Office", "Interactive displays", "Slide edit, present", seed=18,
            chain_motif_prob=0.78, chain_length=(6, 14),
        ),
        _mobile(
            "Photogallery", "Image browsing", "Browse Images", seed=19,
            chain_motif_prob=0.75, chain_spacing=(2, 3),
            load_frac=0.24, big_region_load_frac=0.08,
        ),
        _mobile(
            "Youtube", "Video streaming", "HQ video stream", seed=20,
            chain_motif_prob=0.80, fanout_high=(16, 23),
            chain_spacing=(2, 4), fp_frac=0.03,
        ),
    )
}


def _spec_int(name: str, seed: int, **overrides) -> WorkloadProfile:
    base = dict(
        group=SPEC_INT,
        domain="SPEC CPU int",
        activity="reference input (synthetic)",
        num_functions=6,
        blocks_per_function=(3, 5),
        block_instructions=(40, 72),
        chain_motif_prob=0.0,
        chain_recurrent=True,
        indep_critical_prob=0.50,
        indep_fanout=(10, 26),
        indep_chained_frac=0.68,
        long_latency_frac=0.10,
        fp_frac=0.0,
        load_frac=0.24,
        store_frac=0.10,
        filler_high_reg_frac=0.35,
        filler_predicated_frac=0.12,
        big_region_load_frac=0.35,
        strided_frac=0.8,
        call_frac=0.06,
        skip_branch_frac=0.25,
        hard_branch_frac=0.45,
        loop_iterations=(12, 40),
        walk_blocks=2200,
    )
    base.update(overrides)
    return WorkloadProfile(name=name, seed=seed, **base)


def _spec_float(name: str, seed: int, **overrides) -> WorkloadProfile:
    base = dict(
        group=SPEC_FLOAT,
        domain="SPEC CPU float",
        activity="reference input (synthetic)",
        num_functions=5,
        blocks_per_function=(3, 4),
        block_instructions=(48, 80),
        chain_motif_prob=0.0,
        chain_recurrent=True,
        indep_critical_prob=0.50,
        indep_fanout=(12, 30),
        indep_chained_frac=0.42,
        long_latency_frac=0.16,
        fp_frac=0.30,
        load_frac=0.26,
        store_frac=0.10,
        filler_high_reg_frac=0.40,
        filler_predicated_frac=0.06,
        big_region_load_frac=0.40,
        strided_frac=0.9,
        call_frac=0.03,
        skip_branch_frac=0.12,
        hard_branch_frac=0.15,
        loop_iterations=(16, 56),
        walk_blocks=2200,
    )
    base.update(overrides)
    return WorkloadProfile(name=name, seed=seed, **base)


SPEC_INT_PROFILES: Dict[str, WorkloadProfile] = {
    p.name: p for p in (
        _spec_int("bzip2", seed=31),
        _spec_int("hmmer", seed=32, indep_critical_prob=0.58),
        _spec_int("libquantum", seed=33, big_region_load_frac=0.45),
        _spec_int("mcf", seed=34, strided_frac=0.4,
                  big_region_load_frac=0.55),
        _spec_int("gcc", seed=35, num_functions=10, call_frac=0.12),
        _spec_int("gobmk", seed=36, hard_branch_frac=0.55),
        _spec_int("sjeng", seed=37, hard_branch_frac=0.50),
        _spec_int("h264ref", seed=38, long_latency_frac=0.14),
    )
}

SPEC_FLOAT_PROFILES: Dict[str, WorkloadProfile] = {
    p.name: p for p in (
        _spec_float("soplex", seed=41),
        _spec_float("namd", seed=42, fp_frac=0.36),
        _spec_float("gromacs", seed=43),
        _spec_float("calculix", seed=44, long_latency_frac=0.20),
        _spec_float("lbm", seed=45, big_region_load_frac=0.50),
        _spec_float("milc", seed=46, strided_frac=0.95),
        _spec_float("dealII", seed=47, num_functions=8),
        _spec_float("leslie3d", seed=48, fp_frac=0.34),
    )
}

ALL_PROFILES: Dict[str, WorkloadProfile] = {}
ALL_PROFILES.update(MOBILE_PROFILES)
ALL_PROFILES.update(SPEC_INT_PROFILES)
ALL_PROFILES.update(SPEC_FLOAT_PROFILES)


def get_profile(name: str) -> WorkloadProfile:
    """Look up a workload profile by app/benchmark name.

    Raises:
        KeyError: with the list of known names and, when the name is a
            near-miss (typo, wrong case), a "did you mean" suggestion.
    """
    try:
        return ALL_PROFILES[name]
    except KeyError:
        import difflib
        matches = difflib.get_close_matches(
            name, ALL_PROFILES, n=3, cutoff=0.6,
        )
        hint = ""
        if matches:
            quoted = " or ".join(repr(m) for m in matches)
            hint = f"; did you mean {quoted}?"
        raise KeyError(
            f"unknown workload {name!r}{hint} "
            f"(known: {sorted(ALL_PROFILES)})"
        ) from None


def profiles_in_group(group: str) -> Dict[str, WorkloadProfile]:
    """All profiles belonging to ``group`` (mobile/spec_int/spec_float)."""
    return {
        name: prof for name, prof in ALL_PROFILES.items()
        if prof.group == group
    }
