"""Static instruction representation.

An :class:`Instruction` is one static instruction of a program.  Instances are
immutable; compiler passes produce rewritten copies (``dataclasses.replace``).
Byte addresses are not stored here — they are assigned by
``repro.trace.program.Program.layout`` because they depend on each
instruction's encoding (32-bit ARM vs 16-bit Thumb).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.isa.condition import Cond
from repro.isa.opcodes import (
    InstrKind,
    Opcode,
    kind_of,
    latency_of,
    opcode_info,
)
from repro.isa.registers import register_name, validate_register

#: Maximum number of following 16-bit instructions one CDP command can cover:
#: 1 packed into the CDP word itself plus up to 2**3 indicated by the 3-bit
#: argument (paper Sec. IV-B: "1 + 2^3 = 9").
MAX_CDP_COVER = 9


class Encoding(enum.Enum):
    """Instruction encoding format."""

    ARM32 = "arm32"
    THUMB16 = "thumb16"

    @property
    def size_bytes(self) -> int:
        """Byte size of one instruction in this encoding."""
        return 4 if self is Encoding.ARM32 else 2


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    Attributes:
        opcode: the mnemonic.
        dests: registers written (architectural destinations).
        srcs: registers read.
        imm: optional immediate operand.
        cond: condition code; anything but ``Cond.AL`` means predicated.
        target: static instruction index of the branch target, for branches.
        encoding: current encoding format (compiler passes may set THUMB16).
        cdp_cover: for ``CDP`` only — how many following instructions are
            announced as 16-bit (1..MAX_CDP_COVER).
        uid: stable per-program identifier assigned by the program builder;
            lets traces reference static instructions cheaply.
    """

    opcode: Opcode
    dests: Tuple[int, ...] = ()
    srcs: Tuple[int, ...] = ()
    imm: Optional[int] = None
    cond: Cond = Cond.AL
    target: Optional[int] = None
    encoding: Encoding = Encoding.ARM32
    cdp_cover: Optional[int] = None
    uid: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        for reg in self.dests + self.srcs:
            validate_register(reg)
        if self.opcode is Opcode.CDP:
            if self.cdp_cover is None:
                raise ValueError("CDP requires cdp_cover")
            if not 1 <= self.cdp_cover <= MAX_CDP_COVER:
                raise ValueError(
                    f"cdp_cover must be 1..{MAX_CDP_COVER}, "
                    f"got {self.cdp_cover}"
                )
        elif self.cdp_cover is not None:
            raise ValueError("cdp_cover is only valid on CDP")
        direct_branch = self.opcode in (Opcode.B, Opcode.BL)
        if direct_branch and self.target is None and self.imm is None:
            raise ValueError(f"{self.opcode.value} requires a target or imm")

    # -- classification helpers ------------------------------------------

    @property
    def kind(self) -> InstrKind:
        """Functional class (selects FU / latency)."""
        return kind_of(self.opcode)

    @property
    def latency(self) -> int:
        """Execute-stage latency in cycles (memory time excluded)."""
        return latency_of(self.opcode)

    @property
    def is_branch(self) -> bool:
        return self.kind is InstrKind.BRANCH

    @property
    def is_load(self) -> bool:
        return opcode_info(self.opcode).reads_memory

    @property
    def is_store(self) -> bool:
        return opcode_info(self.opcode).writes_memory

    @property
    def is_memory(self) -> bool:
        return self.is_load or self.is_store

    @property
    def is_predicated(self) -> bool:
        return self.cond.is_predicated

    @property
    def size_bytes(self) -> int:
        """Encoded size in bytes under the instruction's current encoding."""
        return self.encoding.size_bytes

    # -- rewriting helpers -------------------------------------------------

    def with_encoding(self, encoding: Encoding) -> "Instruction":
        """Return a copy re-encoded as ``encoding``."""
        return replace(self, encoding=encoding)

    def with_uid(self, uid: int) -> "Instruction":
        """Return a copy with a new uid (used by program builders)."""
        return replace(self, uid=uid)

    # -- rendering ----------------------------------------------------------

    def signature(self) -> Tuple:
        """Opcode+operand signature identifying this static instruction shape.

        Used to identify "unique CritIC sequences" (paper Fig. 5b counts
        opcode+operands of all constituent instructions).
        """
        return (
            self.opcode.value,
            self.dests,
            self.srcs,
            self.imm,
            self.cond.value,
        )

    def to_text(self) -> str:
        """Render an assembler-like one-line form, e.g. ``ADDEQ R1, R2, #4``."""
        suffix = "" if self.cond is Cond.AL else self.cond.value
        parts = []
        parts.extend(register_name(r) for r in self.dests)
        parts.extend(register_name(r) for r in self.srcs)
        if self.imm is not None:
            parts.append(f"#{self.imm}")
        if self.target is not None:
            parts.append(f"@{self.target}")
        if self.cdp_cover is not None:
            parts.append(f"<{self.cdp_cover}>")
        text = f"{self.opcode.value}{suffix} " + ", ".join(parts)
        if self.encoding is Encoding.THUMB16:
            text += "  ; .thumb"
        return text.rstrip()

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()
