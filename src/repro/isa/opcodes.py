"""Opcode definitions for the ARM-like ISA.

Each opcode carries:

* an :class:`InstrKind` describing which functional unit executes it,
* a base execute latency in cycles (used by ``repro.cpu.execute``),
* whether a 16-bit Thumb form of the mnemonic exists at all.

The latencies follow the usual embedded in-order/out-of-order ARM folklore the
paper relies on: single-cycle integer ALU ops, a few-cycle multiply, long
latency divide and floating point, and loads whose total latency is dominated
by the cache hierarchy (the 1-cycle figure here is the *execute-stage*
occupancy; memory time is added by ``repro.memory``).

``CDP`` is singled out: the paper repurposes the co-processor data-processing
mnemonic as the Thumb-format switch for CritIC sequences (Sec. IV-B).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple


class InstrKind(enum.Enum):
    """Functional class of an instruction (selects FU and latency class)."""

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    FP = "fp"
    SYSTEM = "system"


@dataclass(frozen=True)
class OpcodeInfo:
    """Static properties of one opcode mnemonic."""

    mnemonic: str
    kind: InstrKind
    latency: int
    has_thumb_form: bool
    reads_memory: bool = False
    writes_memory: bool = False

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ValueError(f"{self.mnemonic}: latency must be >= 1")


class Opcode(enum.Enum):
    """Mnemonics of the modeled ISA subset."""

    # Integer ALU
    MOV = "MOV"
    MVN = "MVN"
    ADD = "ADD"
    SUB = "SUB"
    RSB = "RSB"
    AND = "AND"
    ORR = "ORR"
    EOR = "EOR"
    BIC = "BIC"
    LSL = "LSL"
    LSR = "LSR"
    ASR = "ASR"
    CMP = "CMP"
    TST = "TST"
    # Multiply / divide
    MUL = "MUL"
    MLA = "MLA"
    SDIV = "SDIV"
    UDIV = "UDIV"
    # Memory
    LDR = "LDR"
    LDRB = "LDRB"
    LDRH = "LDRH"
    STR = "STR"
    STRB = "STRB"
    STRH = "STRH"
    # Control flow
    B = "B"
    BL = "BL"
    BX = "BX"
    # Floating point (VFP-ish; no basic Thumb forms)
    VADD = "VADD"
    VSUB = "VSUB"
    VMUL = "VMUL"
    VDIV = "VDIV"
    VSQRT = "VSQRT"
    VLDR = "VLDR"
    VSTR = "VSTR"
    # System
    NOP = "NOP"
    CDP = "CDP"


_INFO: Dict[Opcode, OpcodeInfo] = {
    Opcode.MOV: OpcodeInfo("MOV", InstrKind.ALU, 1, True),
    Opcode.MVN: OpcodeInfo("MVN", InstrKind.ALU, 1, True),
    Opcode.ADD: OpcodeInfo("ADD", InstrKind.ALU, 1, True),
    Opcode.SUB: OpcodeInfo("SUB", InstrKind.ALU, 1, True),
    Opcode.RSB: OpcodeInfo("RSB", InstrKind.ALU, 1, False),
    Opcode.AND: OpcodeInfo("AND", InstrKind.ALU, 1, True),
    Opcode.ORR: OpcodeInfo("ORR", InstrKind.ALU, 1, True),
    Opcode.EOR: OpcodeInfo("EOR", InstrKind.ALU, 1, True),
    Opcode.BIC: OpcodeInfo("BIC", InstrKind.ALU, 1, True),
    Opcode.LSL: OpcodeInfo("LSL", InstrKind.ALU, 1, True),
    Opcode.LSR: OpcodeInfo("LSR", InstrKind.ALU, 1, True),
    Opcode.ASR: OpcodeInfo("ASR", InstrKind.ALU, 1, True),
    Opcode.CMP: OpcodeInfo("CMP", InstrKind.ALU, 1, True),
    Opcode.TST: OpcodeInfo("TST", InstrKind.ALU, 1, True),
    Opcode.MUL: OpcodeInfo("MUL", InstrKind.MUL, 4, True),
    Opcode.MLA: OpcodeInfo("MLA", InstrKind.MUL, 4, False),
    Opcode.SDIV: OpcodeInfo("SDIV", InstrKind.DIV, 12, False),
    Opcode.UDIV: OpcodeInfo("UDIV", InstrKind.DIV, 12, False),
    Opcode.LDR: OpcodeInfo("LDR", InstrKind.LOAD, 1, True, reads_memory=True),
    Opcode.LDRB: OpcodeInfo("LDRB", InstrKind.LOAD, 1, True, reads_memory=True),
    Opcode.LDRH: OpcodeInfo("LDRH", InstrKind.LOAD, 1, True, reads_memory=True),
    Opcode.STR: OpcodeInfo("STR", InstrKind.STORE, 1, True, writes_memory=True),
    Opcode.STRB: OpcodeInfo(
        "STRB", InstrKind.STORE, 1, True, writes_memory=True
    ),
    Opcode.STRH: OpcodeInfo(
        "STRH", InstrKind.STORE, 1, True, writes_memory=True
    ),
    Opcode.B: OpcodeInfo("B", InstrKind.BRANCH, 1, True),
    Opcode.BL: OpcodeInfo("BL", InstrKind.BRANCH, 1, True),
    Opcode.BX: OpcodeInfo("BX", InstrKind.BRANCH, 1, True),
    Opcode.VADD: OpcodeInfo("VADD", InstrKind.FP, 4, False),
    Opcode.VSUB: OpcodeInfo("VSUB", InstrKind.FP, 4, False),
    Opcode.VMUL: OpcodeInfo("VMUL", InstrKind.FP, 5, False),
    Opcode.VDIV: OpcodeInfo("VDIV", InstrKind.FP, 18, False),
    Opcode.VSQRT: OpcodeInfo("VSQRT", InstrKind.FP, 18, False),
    Opcode.VLDR: OpcodeInfo("VLDR", InstrKind.FP, 2, False, reads_memory=True),
    Opcode.VSTR: OpcodeInfo(
        "VSTR", InstrKind.FP, 2, False, writes_memory=True
    ),
    Opcode.NOP: OpcodeInfo("NOP", InstrKind.SYSTEM, 1, True),
    Opcode.CDP: OpcodeInfo("CDP", InstrKind.SYSTEM, 1, False),
}


def opcode_info(opcode: Opcode) -> OpcodeInfo:
    """Return the static :class:`OpcodeInfo` for ``opcode``."""
    return _INFO[opcode]


def kind_of(opcode: Opcode) -> InstrKind:
    """Return the functional class of ``opcode``."""
    return _INFO[opcode].kind


def latency_of(opcode: Opcode) -> int:
    """Return the execute-stage latency (cycles) of ``opcode``."""
    return _INFO[opcode].latency


def has_thumb_form(opcode: Opcode) -> bool:
    """Return True if a 16-bit Thumb encoding of ``opcode`` exists."""
    return _INFO[opcode].has_thumb_form


#: Execute latency above which an instruction counts as "long latency" in the
#: paper's Fig. 3(c) characterization.
LONG_LATENCY_THRESHOLD = 4


def is_long_latency(opcode: Opcode) -> bool:
    """Return True if ``opcode`` is a long-latency instruction (Fig. 3c)."""
    return _INFO[opcode].latency >= LONG_LATENCY_THRESHOLD


ALU_OPCODES: Tuple[Opcode, ...] = tuple(
    op for op, info in _INFO.items() if info.kind is InstrKind.ALU
)
LOAD_OPCODES: Tuple[Opcode, ...] = tuple(
    op for op, info in _INFO.items() if info.reads_memory
)
STORE_OPCODES: Tuple[Opcode, ...] = tuple(
    op for op, info in _INFO.items() if info.writes_memory
)
BRANCH_OPCODES: Tuple[Opcode, ...] = tuple(
    op for op, info in _INFO.items() if info.kind is InstrKind.BRANCH
)
FP_OPCODES: Tuple[Opcode, ...] = tuple(
    op for op, info in _INFO.items() if info.kind is InstrKind.FP
)
