"""Thumb (16-bit) encodability rules and chain-level conversion checks.

The paper (Sec. III-B and footnote 1) gives the constraints under which an
instruction can be represented in the 16-bit Thumb format *without any
change*:

1. the mnemonic must have a Thumb form at all (no FP/co-processor ops),
2. no predication (condition code must be ``AL``),
3. every register operand must be one of the low 11 registers (R0..R10),
4. immediates must fit the Thumb 8-bit field.

A CritIC sequence is converted **all-or-nothing**: if any member fails these
checks the entire chain is left in 32-bit format.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.isa.instruction import Encoding, Instruction
from repro.isa.opcodes import Opcode, has_thumb_form
from repro.isa.registers import all_thumb_registers

#: Largest unsigned immediate representable in the Thumb 8-bit field.
THUMB_IMM_MAX = 255


def thumb_rejection_reason(instr: Instruction) -> Optional[str]:
    """Return why ``instr`` cannot be Thumb-encoded, or None if it can.

    The returned string is a stable machine-checkable tag (useful in tests
    and profiler reports): one of ``"no-thumb-form"``, ``"predicated"``,
    ``"high-register"``, ``"immediate-range"``.
    """
    if instr.opcode is Opcode.CDP:
        # The CDP switch command is laid out as a 16-bit half-word but is not
        # itself subject to conversion; callers never ask about it.
        return "no-thumb-form"
    if not has_thumb_form(instr.opcode):
        return "no-thumb-form"
    if instr.is_predicated:
        return "predicated"
    if not all_thumb_registers(instr.dests + instr.srcs):
        return "high-register"
    if instr.imm is not None and not 0 <= instr.imm <= THUMB_IMM_MAX:
        return "immediate-range"
    return None


def is_thumb_encodable(instr: Instruction) -> bool:
    """Return True if ``instr`` can be represented in 16-bit Thumb as-is."""
    return thumb_rejection_reason(instr) is None


def chain_thumb_encodable(instrs: Iterable[Instruction]) -> bool:
    """All-or-nothing check for a CritIC sequence (paper footnote 1)."""
    return all(is_thumb_encodable(i) for i in instrs)


def convert_to_thumb(instr: Instruction) -> Instruction:
    """Return a THUMB16-encoded copy of ``instr``.

    Raises:
        ValueError: if the instruction is not Thumb-encodable.
    """
    reason = thumb_rejection_reason(instr)
    if reason is not None:
        raise ValueError(
            f"cannot Thumb-encode {instr.to_text()!r}: {reason}"
        )
    return instr.with_encoding(Encoding.THUMB16)


def convert_chain_to_thumb(
    instrs: Sequence[Instruction],
) -> Optional[List[Instruction]]:
    """Convert a whole chain to Thumb, or return None (all-or-nothing)."""
    if not chain_thumb_encodable(instrs):
        return None
    return [convert_to_thumb(i) for i in instrs]


def code_bytes(instrs: Iterable[Instruction]) -> int:
    """Total encoded byte size of ``instrs`` under current encodings."""
    return sum(i.size_bytes for i in instrs)
