"""Architectural register model for the ARM-like ISA used throughout repro.

The paper's optimization hinges on ARM's Thumb (16-bit) instruction format,
which can only name a reduced register set.  The paper states the 16-bit
format "cuts the number of architected registers as operands from 16 to 11"
(Sec. III-B), so we model:

* sixteen architected registers ``R0`` .. ``R15`` for the 32-bit format, with
  the usual special roles (``SP`` = R13, ``LR`` = R14, ``PC`` = R15), and
* the low eleven registers ``R0`` .. ``R10`` as the set addressable from the
  16-bit Thumb format.
"""

from __future__ import annotations

from typing import Iterable, Tuple

#: Total number of architected general-purpose registers (32-bit format).
NUM_REGISTERS = 16

#: Number of registers addressable from the 16-bit Thumb format (paper: 11).
NUM_THUMB_REGISTERS = 11

#: Stack pointer register index.
SP = 13
#: Link register index.
LR = 14
#: Program counter register index.
PC = 15

#: Registers usable as Thumb operands, i.e. ``R0`` .. ``R10``.
THUMB_REGISTERS: Tuple[int, ...] = tuple(range(NUM_THUMB_REGISTERS))

_SPECIAL_NAMES = {SP: "SP", LR: "LR", PC: "PC"}


def register_name(reg: int) -> str:
    """Return the assembler name for register index ``reg`` (e.g. ``"R3"``).

    Special registers render as ``SP``/``LR``/``PC``.

    Raises:
        ValueError: if ``reg`` is not a valid register index.
    """
    validate_register(reg)
    return _SPECIAL_NAMES.get(reg, f"R{reg}")


def validate_register(reg: int) -> int:
    """Validate that ``reg`` names an architected register and return it.

    Raises:
        ValueError: if ``reg`` is outside ``0 .. NUM_REGISTERS - 1``.
    """
    if not isinstance(reg, int) or isinstance(reg, bool):
        raise ValueError(f"register index must be an int, got {reg!r}")
    if not 0 <= reg < NUM_REGISTERS:
        raise ValueError(
            f"register index {reg} out of range 0..{NUM_REGISTERS - 1}"
        )
    return reg


def is_thumb_register(reg: int) -> bool:
    """Return True if ``reg`` is addressable from the 16-bit Thumb format."""
    validate_register(reg)
    return reg < NUM_THUMB_REGISTERS


def all_thumb_registers(regs: Iterable[int]) -> bool:
    """Return True if every register in ``regs`` is Thumb-addressable."""
    return all(is_thumb_register(r) for r in regs)
