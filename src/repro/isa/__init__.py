"""ARM-like ISA model: registers, opcodes, instructions, Thumb encodability.

This package models just enough of the ARM ISA for the CritIC study:
the 32-bit format, the 16-bit Thumb format and its operand restrictions
(no predication, 11 registers, 8-bit immediates), and the repurposed
``CDP`` format-switch command of the paper's Approach 2.
"""

from repro.isa.assembly import (
    AsmError,
    dest_count,
    format_program,
    parse_line,
    parse_program_text,
)
from repro.isa.condition import Cond, PREDICATED_CONDS
from repro.isa.encoding import (
    THUMB_IMM_MAX,
    chain_thumb_encodable,
    code_bytes,
    convert_chain_to_thumb,
    convert_to_thumb,
    is_thumb_encodable,
    thumb_rejection_reason,
)
from repro.isa.instruction import Encoding, Instruction, MAX_CDP_COVER
from repro.isa.opcodes import (
    ALU_OPCODES,
    BRANCH_OPCODES,
    FP_OPCODES,
    LOAD_OPCODES,
    LONG_LATENCY_THRESHOLD,
    STORE_OPCODES,
    InstrKind,
    Opcode,
    OpcodeInfo,
    has_thumb_form,
    is_long_latency,
    kind_of,
    latency_of,
    opcode_info,
)
from repro.isa.registers import (
    LR,
    NUM_REGISTERS,
    NUM_THUMB_REGISTERS,
    PC,
    SP,
    THUMB_REGISTERS,
    all_thumb_registers,
    is_thumb_register,
    register_name,
    validate_register,
)

__all__ = [
    "AsmError",
    "ALU_OPCODES",
    "BRANCH_OPCODES",
    "Cond",
    "Encoding",
    "FP_OPCODES",
    "Instruction",
    "InstrKind",
    "LOAD_OPCODES",
    "LONG_LATENCY_THRESHOLD",
    "LR",
    "MAX_CDP_COVER",
    "NUM_REGISTERS",
    "NUM_THUMB_REGISTERS",
    "Opcode",
    "OpcodeInfo",
    "PC",
    "PREDICATED_CONDS",
    "SP",
    "STORE_OPCODES",
    "THUMB_IMM_MAX",
    "THUMB_REGISTERS",
    "all_thumb_registers",
    "chain_thumb_encodable",
    "code_bytes",
    "convert_chain_to_thumb",
    "convert_to_thumb",
    "dest_count",
    "format_program",
    "has_thumb_form",
    "is_long_latency",
    "is_thumb_encodable",
    "is_thumb_register",
    "kind_of",
    "latency_of",
    "opcode_info",
    "parse_line",
    "parse_program_text",
    "register_name",
    "thumb_rejection_reason",
    "validate_register",
]
