"""Tiny assembler: render and parse the textual instruction form.

``Instruction.to_text()`` produces lines like::

    ADDEQ R1, R2, R3
    LDR R4, R5, #12
    B @17
    CDP <5>
    MOV R0, R1  ; .thumb

This module parses those lines back into :class:`Instruction` objects, which
gives the test-suite a round-trip property and the examples a readable dump
format.  The destination-register count is a function of the opcode (e.g.
``CMP``/stores/branches write no register), which makes the flat operand list
unambiguous.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.isa.condition import Cond
from repro.isa.instruction import Encoding, Instruction
from repro.isa.opcodes import Opcode, opcode_info

#: Opcodes that write no destination register.  BL is not here: it writes
#: the link register (and renders it as its destination operand).
_ZERO_DEST = {
    Opcode.CMP,
    Opcode.TST,
    Opcode.STR,
    Opcode.STRB,
    Opcode.STRH,
    Opcode.VSTR,
    Opcode.B,
    Opcode.BX,
    Opcode.NOP,
    Opcode.CDP,
}


def dest_count(opcode: Opcode) -> int:
    """Number of destination registers ``opcode`` writes."""
    return 0 if opcode in _ZERO_DEST else 1


_REG_RE = re.compile(r"^(R(\d+)|SP|LR|PC)$")
_SPECIAL = {"SP": 13, "LR": 14, "PC": 15}

# Longest-first so e.g. "LDRB" is not parsed as "LDR" + cond "B…".
_MNEMONICS = sorted((op.value for op in Opcode), key=len, reverse=True)
_CONDS = {c.value for c in Cond if c is not Cond.AL}


class AsmError(ValueError):
    """Raised when a line cannot be parsed as an instruction."""


def _parse_register(token: str) -> Optional[int]:
    match = _REG_RE.match(token)
    if not match:
        return None
    if token in _SPECIAL:
        return _SPECIAL[token]
    return int(match.group(2))


def _split_mnemonic(word: str) -> Tuple[Opcode, Cond]:
    for mnemonic in _MNEMONICS:
        if word == mnemonic:
            return Opcode(mnemonic), Cond.AL
        if word.startswith(mnemonic):
            suffix = word[len(mnemonic):]
            if suffix in _CONDS:
                return Opcode(mnemonic), Cond(suffix)
    raise AsmError(f"unknown mnemonic {word!r}")


def parse_line(line: str) -> Instruction:
    """Parse one assembler line into an :class:`Instruction`.

    Raises:
        AsmError: on any syntax problem.
    """
    text = line.strip()
    encoding = Encoding.ARM32
    if ";" in text:
        text, comment = text.split(";", 1)
        if ".thumb" in comment:
            encoding = Encoding.THUMB16
        text = text.strip()
    if not text:
        raise AsmError("empty line")

    parts = text.split(None, 1)
    opcode, cond = _split_mnemonic(parts[0])
    operands = [t.strip() for t in parts[1].split(",")] if len(parts) > 1 else []

    regs: List[int] = []
    imm: Optional[int] = None
    target: Optional[int] = None
    cdp_cover: Optional[int] = None
    for token in operands:
        if not token:
            raise AsmError(f"empty operand in {line!r}")
        reg = _parse_register(token)
        if reg is not None:
            regs.append(reg)
        elif token.startswith("#"):
            imm = int(token[1:])
        elif token.startswith("@"):
            target = int(token[1:])
        elif token.startswith("<") and token.endswith(">"):
            cdp_cover = int(token[1:-1])
        else:
            raise AsmError(f"bad operand {token!r} in {line!r}")

    # Branches-with-link may omit the implicit LR operand; everything else
    # must carry its destination.
    n_dest = min(dest_count(opcode), len(regs)) \
        if opcode is Opcode.BL else dest_count(opcode)
    if len(regs) < n_dest:
        raise AsmError(f"{opcode.value} needs {n_dest} destination register(s)")
    instr = Instruction(
        opcode=opcode,
        dests=tuple(regs[:n_dest]),
        srcs=tuple(regs[n_dest:]),
        imm=imm,
        cond=cond,
        target=target,
        encoding=encoding,
        cdp_cover=cdp_cover,
    )
    return instr


def parse_program_text(text: str) -> List[Instruction]:
    """Parse a multi-line assembler listing, skipping blanks and comments."""
    instrs = []
    for raw in text.splitlines():
        stripped = raw.strip()
        if not stripped or stripped.startswith(";"):
            continue
        instrs.append(parse_line(raw))
    return instrs


def format_program(instrs: List[Instruction]) -> str:
    """Render instructions one per line (inverse of parse_program_text)."""
    return "\n".join(i.to_text() for i in instrs)
