"""Condition codes (predication) for the ARM-like ISA.

ARM 32-bit instructions can be predicated on a condition code; the 16-bit
Thumb format cannot (paper Sec. III-B: the Thumb format "cannot have
predicated executions").  We model the usual condition-code suffixes; ``AL``
(always) means the instruction is unpredicated.
"""

from __future__ import annotations

import enum


class Cond(enum.Enum):
    """ARM condition-code suffixes."""

    AL = "AL"  # always (unpredicated)
    EQ = "EQ"
    NE = "NE"
    GT = "GT"
    LT = "LT"
    GE = "GE"
    LE = "LE"
    CS = "CS"
    CC = "CC"

    @property
    def is_predicated(self) -> bool:
        """True if this condition makes the instruction predicated."""
        return self is not Cond.AL


#: Conditions other than AL, i.e. the predicated forms.
PREDICATED_CONDS = tuple(c for c in Cond if c.is_predicated)
