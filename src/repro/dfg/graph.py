"""Dynamic Data Flow Graph over a trace window.

Nodes are positions in the trace window; edges run producer -> consumer.
This is the structure the paper's criticality analysis operates on: fanout
(out-degree) marks critical instructions, and chains of sole-producer edges
are the Instruction Chains (ICs) of Sec. III-A.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.trace.dependence import compute_consumers, compute_producers
from repro.trace.dynamic import Trace, TraceEntry


class Dfg:
    """Dependence graph of one trace window.

    Attributes:
        trace: the underlying trace window.
        producers: per-position tuple of producer positions.
        consumers: per-position list of direct consumer positions.
        fanouts: per-position direct fanout (len of consumers).
    """

    def __init__(self, trace: Trace):
        self.trace = trace
        self.producers: List[Tuple[int, ...]] = compute_producers(trace)
        self.consumers: List[List[int]] = compute_consumers(self.producers)
        self.fanouts: List[int] = [len(c) for c in self.consumers]

    def __len__(self) -> int:
        return len(self.trace)

    def entry(self, pos: int) -> TraceEntry:
        """Trace entry at window position ``pos``."""
        return self.trace.entries[pos]

    # -- sole-producer structure (the IC skeleton) --------------------------

    def sole_producer_children(self, pos: int) -> List[int]:
        """Consumers of ``pos`` whose *only* in-window producer is ``pos``.

        A kept edge ``u -> v`` means v becomes schedulable the moment u
        completes — the definition of chain membership for an IC: the path
        through kept edges is independently schedulable (paper Sec. III-A1).
        """
        return [
            v for v in self.consumers[pos] if self.producers[v] == (pos,)
        ]

    def has_sole_producer(self, pos: int) -> bool:
        """True if ``pos`` has exactly one in-window producer."""
        return len(self.producers[pos]) == 1

    def chain_roots(self) -> List[int]:
        """Positions at which a maximal IC can start.

        A node is a root of the sole-producer forest iff it does not itself
        hang off a single producer (it has zero or multiple in-window
        producers), so no kept edge enters it.
        """
        return [
            pos for pos in range(len(self.producers))
            if len(self.producers[pos]) != 1
        ]

    def is_self_contained_path(self, path: Sequence[int]) -> bool:
        """Check the IC condition for an explicit path of positions.

        Every non-head member must have the previous member as its only
        in-window producer (paper's example: ``I0,I1,I21`` fails because
        ``I21`` also depends on ``I11`` outside the path).
        """
        if not path:
            return False
        for prev, cur in zip(path, path[1:]):
            if self.producers[cur] != (prev,):
                return False
        return True
