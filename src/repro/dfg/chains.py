"""Instruction Chains (ICs) and Critical Instruction Chains (CritICs).

Paper Sec. III-A:

* An **IC** is an acyclic DFG path that is *independently schedulable*: every
  non-head member's only in-window producer is the previous path member.
  Any sub-path of an IC is an IC.
* The **criticality of an IC** is the average fanout per instruction of its
  members; chains whose average exceeds a threshold (paper: 8) are CritICs.

Enumeration uses the sole-producer forest of :class:`~repro.dfg.graph.Dfg`:
kept edges form a forest (each node has at most one kept incoming edge), and
ICs are exactly its downward paths.  Maximal ICs — used for the Fig. 5a
length/spread statistics — are root-to-leaf paths of that forest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.dfg.graph import Dfg
from repro.isa.encoding import chain_thumb_encodable

#: Paper's chosen average-fanout threshold for marking an IC as a CritIC.
CRITIC_AVG_FANOUT_THRESHOLD = 8.0

#: Paper's practical cap on exploited CritIC length (Sec. IV-H: length 5
#: gives the bulk of the savings; longer sequences are rarer).
DEFAULT_MAX_CHAIN_LEN = 5


@dataclass(frozen=True)
class Chain:
    """One IC occurrence inside a trace window.

    Attributes:
        positions: window positions of the members, in dependence order.
        uids: static instruction uids of the members.
        signature: opcode+operand signature tuple (identifies *unique*
            CritIC sequences, paper Fig. 5b).
        avg_fanout: the chain criticality metric.
        spread: dynamic distance from first to last member (Fig. 5a).
        thumb_encodable: all-or-nothing 16-bit representability.
    """

    positions: Tuple[int, ...]
    uids: Tuple[int, ...]
    signature: Tuple
    avg_fanout: float
    spread: int
    thumb_encodable: bool

    @property
    def length(self) -> int:
        return len(self.positions)

    def is_critical(
        self, threshold: float = CRITIC_AVG_FANOUT_THRESHOLD
    ) -> bool:
        """True if this chain qualifies as a CritIC at ``threshold``."""
        return self.avg_fanout > threshold


def make_chain(dfg: Dfg, positions: Sequence[int]) -> Chain:
    """Build a :class:`Chain` record for an explicit position path.

    Raises:
        ValueError: if the path is not a valid (self-contained) IC.
    """
    if not dfg.is_self_contained_path(positions):
        raise ValueError(f"positions {list(positions)} do not form an IC")
    instrs = [dfg.entry(p).instr for p in positions]
    fanout_sum = sum(dfg.fanouts[p] for p in positions)
    return Chain(
        positions=tuple(positions),
        uids=tuple(i.uid for i in instrs),
        signature=tuple(i.signature() for i in instrs),
        avg_fanout=fanout_sum / len(positions),
        spread=positions[-1] - positions[0],
        thumb_encodable=chain_thumb_encodable(instrs),
    )


def iter_maximal_paths(
    dfg: Dfg, min_length: int = 2
) -> Iterator[List[int]]:
    """Yield maximal IC paths (root-to-leaf in the sole-producer forest).

    Paths shorter than ``min_length`` are skipped (a 1-instruction "chain"
    carries no chain-level information).
    """
    for root in dfg.chain_roots():
        stack: List[Tuple[int, List[int]]] = [(root, [root])]
        while stack:
            node, path = stack.pop()
            children = dfg.sole_producer_children(node)
            if not children:
                if len(path) >= min_length:
                    yield path
                continue
            for child in children:
                stack.append((child, path + [child]))


def iter_maximal_chains(dfg: Dfg, min_length: int = 2) -> Iterator[Chain]:
    """Yield :class:`Chain` records for every maximal IC."""
    for path in iter_maximal_paths(dfg, min_length=min_length):
        yield make_chain(dfg, path)


def best_subchains(
    dfg: Dfg,
    path: Sequence[int],
    threshold: float = CRITIC_AVG_FANOUT_THRESHOLD,
    max_len: int = DEFAULT_MAX_CHAIN_LEN,
    min_len: int = 2,
    exact_len: Optional[int] = None,
    claimed: Optional[Set[int]] = None,
) -> List[Chain]:
    """Extract non-overlapping CritIC sub-chains from one maximal IC path.

    All windows of length ``min_len..max_len`` (or exactly ``exact_len``,
    for the Fig. 12a per-length sensitivity study) are scored by average
    fanout; windows over ``threshold`` are chosen greedily best-first
    without overlap, so each instruction belongs to at most one CritIC —
    the property the compiler pass needs when rewriting.

    ``claimed`` (shared across calls by :func:`find_critics`) excludes
    positions already assigned to a chain by an overlapping maximal path.
    """
    lengths = (
        [exact_len] if exact_len is not None
        else list(range(min_len, max_len + 1))
    )
    claimed = claimed if claimed is not None else set()
    prefix = [0.0]
    for p in path:
        prefix.append(prefix[-1] + dfg.fanouts[p])

    candidates: List[Tuple[float, int, int]] = []  # (score, start, length)
    for length in lengths:
        if length < 2 or length > len(path):
            continue
        for start in range(len(path) - length + 1):
            score = (prefix[start + length] - prefix[start]) / length
            if score > threshold:
                candidates.append((score, start, length))

    # Longest qualifying window first (the paper ranks CritICs by dynamic
    # coverage, which favors longer chains); score breaks ties.
    candidates.sort(key=lambda c: (-c[2], -c[0], c[1]))
    chains: List[Chain] = []
    for _score, start, length in candidates:
        window = path[start:start + length]
        if any(p in claimed for p in window):
            continue
        claimed.update(window)
        chains.append(make_chain(dfg, window))
    chains.sort(key=lambda c: c.positions[0])
    return chains


def find_critics(
    dfg: Dfg,
    threshold: float = CRITIC_AVG_FANOUT_THRESHOLD,
    max_len: int = DEFAULT_MAX_CHAIN_LEN,
    exact_len: Optional[int] = None,
) -> List[Chain]:
    """Find all CritIC occurrences in a window, best-first per maximal IC.

    Positions are claimed globally, so the result is overlap-free across
    the whole window even when maximal paths share prefixes.
    """
    claimed: Set[int] = set()
    chains: List[Chain] = []
    for path in iter_maximal_paths(dfg):
        chains.extend(
            best_subchains(
                dfg, path, threshold=threshold, max_len=max_len,
                exact_len=exact_len, claimed=claimed,
            )
        )
    chains.sort(key=lambda c: c.positions[0])
    return chains


@dataclass(frozen=True)
class ChainStats:
    """Fig. 5a summary of IC lengths and spreads for one workload."""

    count: int
    max_length: int
    mean_length: float
    max_spread: int
    mean_spread: float

    @staticmethod
    def from_chains(chains: Sequence[Chain]) -> "ChainStats":
        if not chains:
            return ChainStats(0, 0, 0.0, 0, 0.0)
        lengths = [c.length for c in chains]
        spreads = [c.spread for c in chains]
        return ChainStats(
            count=len(chains),
            max_length=max(lengths),
            mean_length=sum(lengths) / len(lengths),
            max_spread=max(spreads),
            mean_spread=sum(spreads) / len(spreads),
        )
