"""Alternative chain-criticality metrics (paper Sec. III-A future work).

The paper uses the simple *average fanout per instruction* and notes that
"one could consider higher order representations for capturing such
variances in future work".  We implement the paper's metric plus three
variance-aware alternatives and a comparison harness
(``benchmarks/test_ext_metric_comparison.py``) as an extension.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Sequence

MetricFn = Callable[[Sequence[int]], float]


def average_fanout(fanouts: Sequence[int]) -> float:
    """The paper's metric: mean fanout per chain member."""
    if not fanouts:
        return 0.0
    return sum(fanouts) / len(fanouts)


def total_fanout(fanouts: Sequence[int]) -> float:
    """Cumulative fanout — the naive alternative the paper argues against
    (a single huge-fanout head can dominate)."""
    return float(sum(fanouts))


def variance_penalized_fanout(fanouts: Sequence[int]) -> float:
    """Mean fanout minus one standard deviation.

    Penalizes chains whose criticality is concentrated in one member — a
    "higher order representation" in the paper's sense.
    """
    if not fanouts:
        return 0.0
    mean = sum(fanouts) / len(fanouts)
    var = sum((f - mean) ** 2 for f in fanouts) / len(fanouts)
    return mean - math.sqrt(var)


def geometric_mean_fanout(fanouts: Sequence[int]) -> float:
    """Geometric mean of (1 + fanout), minus 1.

    Low-fanout members drag the score down multiplicatively, so uniformly
    critical chains outrank spiky ones.
    """
    if not fanouts:
        return 0.0
    log_sum = sum(math.log1p(f) for f in fanouts)
    return math.expm1(log_sum / len(fanouts))


#: Registry of chain-criticality metrics by name.
METRICS: Dict[str, MetricFn] = {
    "average": average_fanout,
    "total": total_fanout,
    "variance_penalized": variance_penalized_fanout,
    "geometric": geometric_mean_fanout,
}


def get_metric(name: str) -> MetricFn:
    """Look up a metric by name.

    Raises:
        KeyError: for unknown metric names (message lists valid ones).
    """
    try:
        return METRICS[name]
    except KeyError:
        raise KeyError(
            f"unknown metric {name!r}; choose from {sorted(METRICS)}"
        ) from None
