"""Dynamic DFG construction, fanout criticality, and Instruction Chains."""

from repro.dfg.chains import (
    CRITIC_AVG_FANOUT_THRESHOLD,
    Chain,
    ChainStats,
    DEFAULT_MAX_CHAIN_LEN,
    best_subchains,
    find_critics,
    iter_maximal_chains,
    iter_maximal_paths,
    make_chain,
)
from repro.dfg.fanout import (
    HIGH_FANOUT_THRESHOLD,
    NO_DEPENDENT,
    critical_fraction,
    critical_mask,
    gap_histogram,
    mean_fanout,
)
from repro.dfg.graph import Dfg
from repro.dfg.metrics import (
    METRICS,
    average_fanout,
    geometric_mean_fanout,
    get_metric,
    total_fanout,
    variance_penalized_fanout,
)

__all__ = [
    "CRITIC_AVG_FANOUT_THRESHOLD",
    "Chain",
    "ChainStats",
    "DEFAULT_MAX_CHAIN_LEN",
    "Dfg",
    "HIGH_FANOUT_THRESHOLD",
    "METRICS",
    "NO_DEPENDENT",
    "average_fanout",
    "best_subchains",
    "critical_fraction",
    "critical_mask",
    "find_critics",
    "gap_histogram",
    "geometric_mean_fanout",
    "get_metric",
    "iter_maximal_chains",
    "iter_maximal_paths",
    "make_chain",
    "mean_fanout",
    "total_fanout",
    "variance_penalized_fanout",
]
