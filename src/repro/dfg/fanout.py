"""Fanout-based criticality marking and chain-gap statistics (Figs 1a/1b).

The conventional heuristic (Sec. II-A) marks an instruction critical when its
fanout — the number of instructions depending on its result — exceeds a
threshold.  Fig. 1b's key observation is *where* those critical instructions
sit relative to each other inside dependence chains: in mobile apps two
successive high-fanout instructions in a chain are separated by 1..5
low-fanout instructions; in SPEC most high-fanout instructions have no
dependent high-fanout successor at all.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence

from repro.dfg.graph import Dfg

#: Default direct-fanout threshold for marking an instruction critical.
#: The paper fixes the *chain average* threshold at 8 (Sec. III-C); we use
#: the same value for the single-instruction heuristic of prior work.
HIGH_FANOUT_THRESHOLD = 8

#: Gap label used when a high-fanout instruction has no dependent
#: high-fanout successor anywhere in its forward sole-producer chain.
NO_DEPENDENT = "none"


def critical_mask(
    fanouts: Sequence[int], threshold: int = HIGH_FANOUT_THRESHOLD
) -> List[bool]:
    """Per-position flag: is this instruction high-fanout (critical)?"""
    return [f >= threshold for f in fanouts]


def critical_fraction(
    fanouts: Sequence[int], threshold: int = HIGH_FANOUT_THRESHOLD
) -> float:
    """Fraction of dynamic instructions marked critical (Fig 1a, right axis)."""
    if not fanouts:
        return 0.0
    return sum(1 for f in fanouts if f >= threshold) / len(fanouts)


def gap_histogram(
    dfg: Dfg,
    threshold: int = HIGH_FANOUT_THRESHOLD,
    max_gap: int = 5,
) -> Dict[str, float]:
    """Fig 1b: distribution of low-fanout gaps between successive criticals.

    For every high-fanout instruction, walk its forward sole-producer chain
    until the next high-fanout instruction; the number of low-fanout
    instructions passed over is the *gap*.  Returns a normalized histogram
    over keys ``"none"`` (no dependent high-fanout successor), ``"0"`` ..
    ``str(max_gap)``, and ``f">{max_gap}"``.
    """
    mask = critical_mask(dfg.fanouts, threshold)
    counts: Counter = Counter()
    total = 0

    for pos, is_crit in enumerate(mask):
        if not is_crit:
            continue
        total += 1
        gap = _gap_to_next_critical(dfg, pos, mask, max_gap)
        counts[gap] += 1

    keys = [NO_DEPENDENT] + [str(g) for g in range(max_gap + 1)]
    keys.append(f">{max_gap}")
    if total == 0:
        return {k: 0.0 for k in keys}
    return {k: counts.get(k, 0) / total for k in keys}


def _gap_to_next_critical(
    dfg: Dfg, pos: int, mask: Sequence[bool], max_gap: int
) -> str:
    """Label the gap from ``pos`` to the next critical in its forward chain.

    Follows sole-producer edges (choosing, at each step, the child that
    reaches a critical instruction soonest) up to ``max_gap`` low-fanout
    hops; returns ``"none"`` if no critical successor is reachable.
    """
    best: int = -1
    # FIFO frontier via an index cursor: list.pop(0) is O(n) per step and
    # turned wide searches quadratic; the cursor keeps identical BFS order.
    frontier = [(pos, 0)]
    head = 0
    seen = {pos}
    while head < len(frontier):
        node, depth = frontier[head]
        head += 1
        for child in dfg.sole_producer_children(node):
            if child in seen:
                continue
            seen.add(child)
            if mask[child]:
                gap = depth  # low-fanout instructions strictly between
                if best < 0 or gap < best:
                    best = gap
            elif depth < 2 * max_gap + 4:
                # Explore past max_gap so oversize gaps land in the
                # ">max_gap" bin rather than reading as "none".
                frontier.append((child, depth + 1))
    if best < 0:
        return NO_DEPENDENT
    if best > max_gap:
        return f">{max_gap}"
    return str(best)


def mean_fanout(fanouts: Iterable[int]) -> float:
    """Average direct fanout across a trace window."""
    values = list(fanouts)
    if not values:
        return 0.0
    return sum(values) / len(values)
