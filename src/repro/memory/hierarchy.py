"""The memory system: I$/D$ + shared L2 + LPDDR3 DRAM.

Composes per-level latencies (Table I: 2-way 32KB i-cache, 64KB d-cache,
2-cycle hits; 8-way 2MB L2, 10-cycle hits; LPDDR3 behind it).  Prefetch
fills install lines without perturbing demand-access counters, so cache
statistics cleanly separate demand behaviour from prefetcher help.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.memory.cache import Cache
from repro.memory.dram import Dram, DramTimings


@dataclass
class MemoryConfig:
    """Capacity/latency knobs for the hierarchy (Table I defaults)."""

    icache_bytes: int = 32 * 1024
    icache_assoc: int = 2
    icache_hit: int = 2
    dcache_bytes: int = 64 * 1024
    dcache_assoc: int = 4
    dcache_hit: int = 2
    l2_bytes: int = 2 * 1024 * 1024
    l2_assoc: int = 8
    l2_hit: int = 10
    line_bytes: int = 64
    #: degree of the stock next-line instruction prefetcher (all ARM
    #: application cores have one): sequential-stream i-misses are hidden,
    #: leaving branch/call-target misses as the front-end's real cost.
    next_line_prefetch: int = 2
    #: i-cache replacement policy, by :data:`repro.registry.ICACHE_POLICIES`
    #: name (``lru`` or ``trrip`` built in; plugins register more).
    icache_policy: str = "lru"

    def scaled_icache(self, factor: int) -> "MemoryConfig":
        """Copy with the i-cache scaled (the 4x i-cache study, Fig 11)."""
        from dataclasses import replace
        return replace(self, icache_bytes=self.icache_bytes * factor)


class MemorySystem:
    """Two-level hierarchy with a DRAM backend."""

    __slots__ = ("config", "icache", "dcache", "l2", "dram",
                 "_inflight_ilines", "iprefetch_l2_reads")

    def __init__(self, config: Optional[MemoryConfig] = None):
        self.config = config or MemoryConfig()
        c = self.config
        from repro.memory.replacement import make_policy
        self.icache = Cache("icache", c.icache_bytes, c.icache_assoc,
                            c.line_bytes, c.icache_hit,
                            policy=make_policy(c.icache_policy))
        self.dcache = Cache("dcache", c.dcache_bytes, c.dcache_assoc,
                            c.line_bytes, c.dcache_hit)
        self.l2 = Cache("l2", c.l2_bytes, c.l2_assoc, c.line_bytes, c.l2_hit)
        self.dram = Dram(DramTimings())
        #: next-line prefetches in flight: line index -> ready cycle
        self._inflight_ilines: dict = {}
        #: L2 reads performed by the next-line instruction prefetcher
        self.iprefetch_l2_reads = 0

    # -- demand paths ----------------------------------------------------------

    def ifetch(self, addr: int, now: int = 0) -> int:
        """Instruction-line fetch; returns total latency in cycles.

        The stock next-line prefetcher launches fills for the following
        lines on every demand access, but fills take L2 time to arrive:
        a fast-moving fetch stream (32-bit code at 4 instructions/line-
        quarter) still exposes part of each line's latency, while a slow
        or compressed stream (16-bit code packs twice the instructions
        per line) hides it completely.  Branch/call-target misses are
        never covered.  ``now`` is the current cycle, used to account
        in-flight prefetch timeliness.
        """
        line_bytes = self.config.line_bytes
        line = addr // line_bytes
        for k in range(1, self.config.next_line_prefetch + 1):
            target = line + k
            if target not in self._inflight_ilines \
                    and not self.icache.probe(target * line_bytes):
                self._inflight_ilines[target] = now + self.config.l2_hit
                self.iprefetch_l2_reads += 1

        if self.icache.lookup(addr):
            self._inflight_ilines.pop(line, None)
            return self.icache.hit_latency

        ready = self._inflight_ilines.pop(line, None)
        if ready is not None:
            # Prefetch in flight: pay only the residual.
            residual = max(0, ready - now)
            return self.icache.hit_latency + residual

        latency = self.icache.hit_latency
        if self.l2.lookup(addr):
            return latency + self.l2.hit_latency
        return latency + self.l2.hit_latency + self.dram.access(addr)

    def load(self, addr: int) -> int:
        """Data load; returns total latency in cycles."""
        if self.dcache.lookup(addr):
            return self.dcache.hit_latency
        latency = self.dcache.hit_latency
        if self.l2.lookup(addr):
            return latency + self.l2.hit_latency
        return latency + self.l2.hit_latency + self.dram.access(addr)

    def store(self, addr: int) -> int:
        """Data store (write-allocate; store buffer hides most latency)."""
        if self.dcache.lookup(addr):
            return self.dcache.hit_latency
        # Allocation happens off the critical path via the store buffer.
        self.l2.lookup(addr)
        return self.dcache.hit_latency

    # -- warmup -------------------------------------------------------------------

    def warm(self, trace) -> None:
        """Functionally warm the hierarchy with one pass over a trace.

        Standard sampled-simulation practice (the paper measures 100
        windows out of long executions, so caches are never cold): install
        every touched instruction and data line without counting accesses,
        leaving the LRU state the measured run would have seen.
        """
        line = self.config.line_bytes
        last_iline = -1
        for entry in trace:
            iline = entry.pc // line
            if iline != last_iline:
                addr = iline * line
                self.l2.fill(addr)
                self.icache.fill(addr)
                last_iline = iline
            if entry.mem_addr is not None:
                self.l2.fill(entry.mem_addr)
                self.dcache.fill(entry.mem_addr)

    # -- prefetch paths ---------------------------------------------------------

    def prefetch_data(self, addr: int) -> None:
        """Install a data line into L2 and D$ (CLPT prefetcher fills)."""
        self.l2.fill(addr)
        self.dcache.fill(addr)

    def prefetch_instruction_line(self, line: int) -> None:
        """Install an instruction line (EFetch fills), by line index."""
        addr = line * self.config.line_bytes
        self.l2.fill(addr)
        self.icache.fill(addr)
