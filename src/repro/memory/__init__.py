"""Memory subsystem: caches, DRAM, prefetchers, and the hierarchy."""

from repro.memory.cache import Cache, CacheStats
from repro.memory.dram import Dram, DramTimings
from repro.memory.hierarchy import MemoryConfig, MemorySystem
from repro.memory.prefetch import CriticalLoadPrefetcher, EFetchPrefetcher

__all__ = [
    "Cache",
    "CacheStats",
    "CriticalLoadPrefetcher",
    "Dram",
    "DramTimings",
    "EFetchPrefetcher",
    "MemoryConfig",
    "MemorySystem",
]
