"""Prefetcher components (the :data:`repro.registry.PREFETCHERS`
built-ins).

Every prefetcher extends
:class:`repro.registry.protocols.PrefetcherBase` and overrides only the
pipeline events it observes; the simulator routes each component to its
observation points once, at construction.

* :class:`CriticalLoadPrefetcher` (``clpt``) — the paper's Fig 1a /
  Table I baseline from Subramaniam et al. (HPCA'09): a PC-indexed table
  (1024 entries, ~7 bits of state each) tracks per-load stride; loads
  flagged *critical* (high fanout) issue a prefetch for their predicted
  next address.  Observes executed loads.

* :class:`EFetchPrefetcher` (``efetch``) — Chadha et al. (PACT'14): for
  user-event driven code, a call-history-indexed table predicts the next
  function and prefetches the head of its instruction footprint (paper
  Sec. IV-G, 39KB lookup state).  Observes fetched calls.

* :class:`CriticalNextLinePrefetcher` (``critical-nextline``) — a
  criticality-weighted deepening of the stock next-line i-prefetcher,
  after Das et al.'s data-criticality direction: when the fetch stream
  enters a line holding a *critical* (high-fanout) instruction, the next
  lines are prefetched deeper than the stock degree, on the argument that
  a supply stall at a critical instruction gates the most consumers.
  Observes i-line transitions at fetch.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Tuple

from repro.registry import PREFETCHERS
from repro.registry.protocols import PrefetcherBase


class CriticalLoadPrefetcher(PrefetcherBase):
    """Stride prefetcher gated on load criticality.

    :meth:`observe_load` is called at every executed load; returns the
    prefetch addresses to issue.  The table is finite (LRU over PCs) per
    the paper's 1024x7bit configuration.
    """

    name = "clpt"

    __slots__ = ("entries", "degree", "confidence_needed", "_table",
                 "issued")

    def __init__(self, entries: int = 1024, degree: int = 4,
                 confidence_needed: int = 2):
        self.entries = entries
        self.degree = degree
        self.confidence_needed = confidence_needed
        #: pc -> (last_addr, stride, confidence)
        self._table: "OrderedDict[int, Tuple[int, int, int]]" = OrderedDict()
        self.issued = 0

    def observe_load(self, pc: int, addr: int,
                     critical: bool) -> List[int]:
        """Update stride state; return prefetch addresses for critical loads."""
        state = self._table.pop(pc, None)
        if state is None:
            self._table[pc] = (addr, 0, 0)
            self._evict()
            return []
        last_addr, stride, confidence = state
        new_stride = addr - last_addr
        if new_stride == stride:
            confidence = min(confidence + 1, 3)
        else:
            confidence = 0
            stride = new_stride
        self._table[pc] = (addr, stride, confidence)
        self._evict()
        if (critical and stride != 0
                and confidence >= self.confidence_needed):
            self.issued += self.degree
            return [addr + stride * (k + 1) for k in range(self.degree)]
        return []

    #: historical spelling, kept for the unit tests and external callers
    observe = observe_load

    def _evict(self) -> None:
        while len(self._table) > self.entries:
            self._table.popitem(last=False)


class EFetchPrefetcher(PrefetcherBase):
    """Call-history-driven instruction prefetcher.

    Keyed by the two most recent call targets; predicts the next call
    target's first cache lines and prefetches them.  Trains on every
    observed call.
    """

    name = "efetch"

    __slots__ = ("entries", "lines_per_target", "_table", "_history",
                 "issued")

    def __init__(self, entries: int = 512, lines_per_target: int = 8):
        self.entries = entries
        self.lines_per_target = lines_per_target
        #: (prev_target, cur_target) -> next_target first line
        self._table: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
        self._history: Tuple[int, int] = (0, 0)
        self.issued = 0

    def observe_call(self, target_line: int) -> List[int]:
        """Record a call to ``target_line``; return lines to prefetch for
        the *predicted next* call."""
        key = self._history
        prefetches: List[int] = []
        predicted = self._table.get(key)
        if predicted is not None:
            self.issued += self.lines_per_target
            prefetches = [predicted + k for k in range(self.lines_per_target)]
        # Train: the call we just saw is the successor of the previous
        # history window.
        self._table.pop(key, None)
        self._table[key] = target_line
        while len(self._table) > self.entries:
            self._table.popitem(last=False)
        self._history = (self._history[1], target_line)
        return prefetches


class CriticalNextLinePrefetcher(PrefetcherBase):
    """Criticality-weighted next-line instruction prefetcher.

    The stock next-line prefetcher (part of :class:`MemorySystem.ifetch`)
    runs a fixed shallow degree for every line.  This component *adds*
    depth selectively: entering a line that holds a high-fanout
    (critical) instruction prefetches ``critical_degree`` following
    lines; other lines get ``base_degree`` extra (0 by default — the
    stock prefetcher already covers them).  Purely additive fills mean
    the component can only ever install lines the sequential stream is
    heading toward, never redirect it.
    """

    name = "critical-nextline"

    __slots__ = ("critical_degree", "base_degree", "issued")

    def __init__(self, critical_degree: int = 4, base_degree: int = 0):
        self.critical_degree = critical_degree
        self.base_degree = base_degree
        self.issued = 0

    def observe_fetch(self, line: int, critical: bool) -> List[int]:
        degree = self.critical_degree if critical else self.base_degree
        if not degree:
            return []
        self.issued += degree
        return [line + k for k in range(1, degree + 1)]


# -- registrations (factories take the CpuConfig; these ignore it) -----------

PREFETCHERS.register("clpt", lambda config: CriticalLoadPrefetcher(),
                     version=1)
PREFETCHERS.register("efetch", lambda config: EFetchPrefetcher(),
                     version=1)
PREFETCHERS.register(
    "critical-nextline", lambda config: CriticalNextLinePrefetcher(),
    version=1,
)
