"""Prefetchers: the CLPT critical-load prefetcher and EFetch.

* :class:`CriticalLoadPrefetcher` — the paper's Fig 1a / Table I baseline
  from Subramaniam et al. (HPCA'09): a PC-indexed table (1024 entries,
  ~7 bits of state each) tracks per-load stride; loads flagged *critical*
  (high fanout) issue a prefetch for their predicted next address.

* :class:`EFetchPrefetcher` — Chadha et al. (PACT'14): for user-event
  driven code, a call-history-indexed table predicts the next function and
  prefetches the head of its instruction footprint (paper Sec. IV-G,
  39KB lookup state).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


class CriticalLoadPrefetcher:
    """Stride prefetcher gated on load criticality.

    ``observe(pc, addr, critical)`` is called at every executed load;
    returns the prefetch address to issue (or None).  The table is finite
    (LRU over PCs) per the paper's 1024x7bit configuration.
    """

    __slots__ = ("entries", "degree", "confidence_needed", "_table",
                 "issued")

    def __init__(self, entries: int = 1024, degree: int = 4,
                 confidence_needed: int = 2):
        self.entries = entries
        self.degree = degree
        self.confidence_needed = confidence_needed
        #: pc -> (last_addr, stride, confidence)
        self._table: "OrderedDict[int, Tuple[int, int, int]]" = OrderedDict()
        self.issued = 0

    def observe(self, pc: int, addr: int,
                critical: bool) -> List[int]:
        """Update stride state; return prefetch addresses for critical loads."""
        state = self._table.pop(pc, None)
        if state is None:
            self._table[pc] = (addr, 0, 0)
            self._evict()
            return []
        last_addr, stride, confidence = state
        new_stride = addr - last_addr
        if new_stride == stride:
            confidence = min(confidence + 1, 3)
        else:
            confidence = 0
            stride = new_stride
        self._table[pc] = (addr, stride, confidence)
        self._evict()
        if (critical and stride != 0
                and confidence >= self.confidence_needed):
            self.issued += self.degree
            return [addr + stride * (k + 1) for k in range(self.degree)]
        return []

    def _evict(self) -> None:
        while len(self._table) > self.entries:
            self._table.popitem(last=False)


class EFetchPrefetcher:
    """Call-history-driven instruction prefetcher.

    Keyed by the two most recent call targets; predicts the next call
    target's first cache lines and prefetches them.  Trains on every
    observed call.
    """

    __slots__ = ("entries", "lines_per_target", "_table", "_history",
                 "issued")

    def __init__(self, entries: int = 512, lines_per_target: int = 8):
        self.entries = entries
        self.lines_per_target = lines_per_target
        #: (prev_target, cur_target) -> next_target first line
        self._table: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
        self._history: Tuple[int, int] = (0, 0)
        self.issued = 0

    def observe_call(self, target_line: int) -> List[int]:
        """Record a call to ``target_line``; return lines to prefetch for
        the *predicted next* call."""
        key = self._history
        prefetches: List[int] = []
        predicted = self._table.get(key)
        if predicted is not None:
            self.issued += self.lines_per_target
            prefetches = [predicted + k for k in range(self.lines_per_target)]
        # Train: the call we just saw is the successor of the previous
        # history window.
        self._table.pop(key, None)
        self._table[key] = target_line
        while len(self._table) > self.entries:
            self._table.popitem(last=False)
        self._history = (self._history[1], target_line)
        return prefetches
