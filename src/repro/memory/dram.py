"""LPDDR3 DRAM timing model (DRAMSim2 stand-in).

Open-page policy over channels/ranks/banks (Table I: 1 channel, 2 ranks,
8 banks/rank, tCL = tRP = tRCD = 13 ns).  Latencies are returned in CPU
cycles; the address decoding is row:bank:column-ish, which combined with the
generator's strided patterns yields realistic row-buffer behaviour (streams
hit open rows, hashed accesses mostly miss them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class DramTimings:
    """Core timing parameters, already converted to CPU cycles."""

    t_cl: int = 20    # 13 ns @ ~1.5 GHz
    t_rcd: int = 20
    t_rp: int = 20
    t_burst: int = 6
    #: fixed controller + interconnect overhead per request
    t_overhead: int = 18


class Dram:
    """Bank-state DRAM model: row hits vs row conflicts."""

    ROW_BYTES = 4096
    NUM_RANKS = 2
    BANKS_PER_RANK = 8

    __slots__ = ("timings", "_open_rows", "reads", "row_hits")

    def __init__(self, timings: DramTimings = DramTimings()):
        self.timings = timings
        self._open_rows: Dict[int, int] = {}
        self.reads = 0
        self.row_hits = 0

    def _bank_and_row(self, addr: int):
        row = addr // self.ROW_BYTES
        bank = row % (self.NUM_RANKS * self.BANKS_PER_RANK)
        return bank, row

    def access(self, addr: int) -> int:
        """Issue one request; returns its latency in CPU cycles."""
        self.reads += 1
        bank, row = self._bank_and_row(addr)
        timings = self.timings
        if self._open_rows.get(bank) == row:
            self.row_hits += 1
            return timings.t_overhead + timings.t_cl + timings.t_burst
        self._open_rows[bank] = row
        return (timings.t_overhead + timings.t_rp + timings.t_rcd
                + timings.t_cl + timings.t_burst)

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.reads if self.reads else 0.0
