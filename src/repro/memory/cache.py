"""Set-associative cache model with pluggable replacement.

Latency-oriented (no port contention or MSHR occupancy): each access
reports hit/miss and the hierarchy composes miss latencies.  Counters feed
both the performance statistics and the energy model.

Replacement is a component: the cache owns the counters and the set
array, a :class:`repro.registry.protocols.ReplacementPolicy` (default
LRU) owns the per-set state layout and the hit/insert/victim mechanics.
Registered policies (``lru``, ``trrip``, plus any plugin) are selected by
name through ``MemoryConfig.icache_policy``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class CacheStats:
    """Access counters for one cache."""

    accesses: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """A size/assoc/line-size parameterized cache with pluggable
    replacement.

    Args:
        name: label used in stats dumps.
        size_bytes: total capacity.
        assoc: ways per set.
        line_bytes: cache-line size.
        hit_latency: cycles for a hit.
        policy: replacement policy instance (default: a fresh LRU) — one
            per cache; per-set state comes from ``policy.new_set()``.
    """

    __slots__ = ("name", "size_bytes", "assoc", "line_bytes",
                 "hit_latency", "num_sets", "stats", "policy", "_sets")

    def __init__(self, name: str, size_bytes: int, assoc: int,
                 line_bytes: int, hit_latency: int,
                 policy: Optional[Any] = None):
        if size_bytes % (assoc * line_bytes) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by "
                f"assoc*line ({assoc}*{line_bytes})"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.hit_latency = hit_latency
        self.num_sets = size_bytes // (assoc * line_bytes)
        self.stats = CacheStats()
        if policy is None:
            from repro.memory.replacement import LruPolicy
            policy = LruPolicy()
        self.policy = policy
        self._sets: List[Any] = [policy.new_set()
                                 for _ in range(self.num_sets)]

    def _locate(self, addr: int):
        line = addr // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def lookup(self, addr: int) -> bool:
        """Access the cache; returns True on hit.  The policy updates its
        recency/temperature state and fills the line on miss
        (allocate-on-miss)."""
        set_idx, tag = self._locate(addr)
        self.stats.accesses += 1
        hit, evicted = self.policy.access(self._sets[set_idx], tag,
                                          self.assoc)
        if hit:
            return True
        self.stats.misses += 1
        if evicted:
            self.stats.writebacks += 1
        return False

    def probe(self, addr: int) -> bool:
        """Check residency without touching policy state or counters."""
        set_idx, tag = self._locate(addr)
        return self.policy.probe(self._sets[set_idx], tag)

    def fill(self, addr: int) -> None:
        """Install a line (prefetch path): no access/miss counters."""
        set_idx, tag = self._locate(addr)
        self.policy.fill(self._sets[set_idx], tag, self.assoc)

    def line_of(self, addr: int) -> int:
        """Line index of an address (for crossing detection)."""
        return addr // self.line_bytes
