"""Set-associative cache model with LRU replacement.

Latency-oriented (no port contention or MSHR occupancy): each access
reports hit/miss and the hierarchy composes miss latencies.  Counters feed
both the performance statistics and the energy model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class CacheStats:
    """Access counters for one cache."""

    accesses: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """A size/assoc/line-size parameterized LRU cache.

    Args:
        name: label used in stats dumps.
        size_bytes: total capacity.
        assoc: ways per set.
        line_bytes: cache-line size.
        hit_latency: cycles for a hit.
    """

    __slots__ = ("name", "size_bytes", "assoc", "line_bytes",
                 "hit_latency", "num_sets", "stats", "_sets")

    def __init__(self, name: str, size_bytes: int, assoc: int,
                 line_bytes: int, hit_latency: int):
        if size_bytes % (assoc * line_bytes) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by "
                f"assoc*line ({assoc}*{line_bytes})"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.hit_latency = hit_latency
        self.num_sets = size_bytes // (assoc * line_bytes)
        self.stats = CacheStats()
        # per-set LRU list of tags (index 0 = MRU)
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]

    def _locate(self, addr: int):
        line = addr // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def lookup(self, addr: int) -> bool:
        """Access the cache; returns True on hit.  Updates LRU and fills
        the line on miss (allocate-on-miss)."""
        set_idx, tag = self._locate(addr)
        ways = self._sets[set_idx]
        self.stats.accesses += 1
        if tag in ways:
            ways.remove(tag)
            ways.insert(0, tag)
            return True
        self.stats.misses += 1
        ways.insert(0, tag)
        if len(ways) > self.assoc:
            ways.pop()
            self.stats.writebacks += 1
        return False

    def probe(self, addr: int) -> bool:
        """Check residency without touching LRU or counters."""
        set_idx, tag = self._locate(addr)
        return tag in self._sets[set_idx]

    def fill(self, addr: int) -> None:
        """Install a line (prefetch path): no access/miss counters."""
        set_idx, tag = self._locate(addr)
        ways = self._sets[set_idx]
        if tag in ways:
            ways.remove(tag)
        ways.insert(0, tag)
        if len(ways) > self.assoc:
            ways.pop()

    def line_of(self, addr: int) -> int:
        """Line index of an address (for crossing detection)."""
        return addr // self.line_bytes
