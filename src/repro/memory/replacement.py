"""Cache replacement policies (the :data:`repro.registry.ICACHE_POLICIES`
built-ins).

A policy owns one cache's per-set state layout and its hit/insert/victim
mechanics behind the narrow
:class:`repro.registry.protocols.ReplacementPolicy` surface; the
:class:`repro.memory.cache.Cache` keeps the counters.  Two built-ins:

* :class:`LruPolicy` — classic LRU, bit-identical to the pre-registry
  hardwired implementation (per-set MRU-ordered tag list).
* :class:`TrripPolicy` — a TRRIP-inspired temperature-based RRIP for
  instruction caches (Kao et al.): demand fills insert *warm*, prefetch
  fills insert *cold*, re-references promote to *hot*; the victim is the
  coldest (highest-RRPV) way.  Mobile i-streams mix a hot core loop with
  long cold tails of framework code, which LRU lets thrash the hot set —
  temperature insertion protects the hot lines from cold-streaming fills.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.registry import ICACHE_POLICIES


@ICACHE_POLICIES.register("lru", version=1)
class LruPolicy:
    """Per-set MRU-ordered tag list; index 0 is the MRU way."""

    name = "lru"

    def new_set(self) -> List[int]:
        return []

    def access(self, ways: List[int], tag: int,
               assoc: int) -> Tuple[bool, bool]:
        if tag in ways:
            ways.remove(tag)
            ways.insert(0, tag)
            return True, False
        ways.insert(0, tag)
        if len(ways) > assoc:
            ways.pop()
            return False, True
        return False, False

    def fill(self, ways: List[int], tag: int, assoc: int) -> None:
        if tag in ways:
            ways.remove(tag)
        ways.insert(0, tag)
        if len(ways) > assoc:
            ways.pop()

    def probe(self, ways: List[int], tag: int) -> bool:
        return tag in ways


@ICACHE_POLICIES.register("trrip", version=1)
class TrripPolicy:
    """Temperature-based re-reference interval prediction.

    Per-set state is a list of ``[tag, rrpv]`` pairs.  Insertion RRPV
    encodes the line's predicted temperature: demand misses insert at
    ``DEMAND_RRPV`` (warm), prefetch fills at ``PREFETCH_RRPV`` (cold,
    i.e. evict-first unless proven useful), and any hit resets to
    ``HIT_RRPV`` (hot).  Eviction ages the set until a way reaches
    ``MAX_RRPV`` and takes the first such way, SRRIP-style.
    """

    name = "trrip"

    MAX_RRPV = 3
    HIT_RRPV = 0
    DEMAND_RRPV = 2
    PREFETCH_RRPV = 3

    def new_set(self) -> List[List[int]]:
        return []

    def access(self, ways: List[List[int]], tag: int,
               assoc: int) -> Tuple[bool, bool]:
        for entry in ways:
            if entry[0] == tag:
                entry[1] = self.HIT_RRPV
                return True, False
        evicted = self._insert(ways, tag, assoc, self.DEMAND_RRPV)
        return False, evicted

    def fill(self, ways: List[List[int]], tag: int, assoc: int) -> None:
        for entry in ways:
            if entry[0] == tag:
                return  # resident: a fill must not cool a proven line
        self._insert(ways, tag, assoc, self.PREFETCH_RRPV)

    def probe(self, ways: List[List[int]], tag: int) -> bool:
        return any(entry[0] == tag for entry in ways)

    def _insert(self, ways: List[List[int]], tag: int, assoc: int,
                rrpv: int) -> bool:
        evicted = False
        if len(ways) >= assoc:
            self._evict_one(ways)
            evicted = True
        ways.append([tag, rrpv])
        return evicted

    @staticmethod
    def _evict_one(ways: List[List[int]]) -> None:
        max_rrpv = TrripPolicy.MAX_RRPV
        while True:
            for index, entry in enumerate(ways):
                if entry[1] >= max_rrpv:
                    del ways[index]
                    return
            for entry in ways:
                entry[1] += 1


def make_policy(name: str) -> Any:
    """Instantiate a registered replacement policy by name."""
    return ICACHE_POLICIES.create(name)
