"""Fig 3 — where critical instructions spend their time.

(a) Fetch-to-commit stage breakdown of high-fanout (critical) instructions
    for SPEC vs Android: the bottleneck shifts from the back end
    (execute / ROB residency) to the front end (fetch) in mobile apps.
(b) Fetch-cycle split into F.StallForI (instruction supply: i-cache,
    branch redirect) and F.StallForR+D (back-pressure), per group.
(c) Fraction of high-fanout instructions that are long-latency — much
    smaller for mobile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cpu.stats import STAGES
from repro.dfg import Dfg, critical_mask
from repro.experiments.fig01 import GROUPS, _group_names
from repro.experiments.runner import app_context, format_table
from repro.experiments.sweep import SweepSpec, run_sweep
from repro.isa import is_long_latency
from repro.telemetry import spanned


@dataclass
class Fig03Group:
    group: str
    #: Fig 3a: stage -> fraction of critical-instruction pipeline time
    stage_fractions: Dict[str, float]
    #: Fig 3b: fractions of total cycles
    stall_for_i: float
    stall_for_rd: float
    fetch_active: float
    #: Fig 3c: long-latency fraction among criticals
    long_latency_frac: float


@spanned("fig03.run")
def run(per_group: Optional[int] = None,
        walk_blocks: Optional[int] = None) -> List[Fig03Group]:
    """Reproduce Fig 3 for all three workload groups."""
    results: List[Fig03Group] = []
    run_sweep(SweepSpec(
        apps=tuple(n for g in GROUPS for n in _group_names(g, per_group)),
        schemes=("baseline",),
        walk_blocks=walk_blocks,
    ))
    for group in GROUPS:
        stage_acc = {stage: 0.0 for stage in STAGES}
        stall_i = stall_rd = active = 0.0
        long_lat = 0.0
        names = _group_names(group, per_group)
        for name in names:
            ctx = app_context(name, walk_blocks)
            stats = ctx.stats("baseline")
            for stage, frac in stats.residency_critical.fractions().items():
                stage_acc[stage] += frac
            fractions = stats.fetch_stall_fractions()
            stall_i += fractions["stall_for_i"]
            stall_rd += fractions["stall_for_rd"]
            active += fractions["active"]

            trace = ctx.trace()
            dfg = Dfg(trace)
            mask = critical_mask(dfg.fanouts)
            criticals = [
                trace.entries[i].instr for i, c in enumerate(mask) if c
            ]
            if criticals:
                long_lat += sum(
                    1 for instr in criticals
                    if is_long_latency(instr.opcode)
                ) / len(criticals)
        count = len(names)
        results.append(Fig03Group(
            group=group,
            stage_fractions={s: v / count for s, v in stage_acc.items()},
            stall_for_i=stall_i / count,
            stall_for_rd=stall_rd / count,
            fetch_active=active / count,
            long_latency_frac=long_lat / count,
        ))
    return results


def format_result(groups: List[Fig03Group]) -> str:
    table_a = format_table(
        ["group"] + list(STAGES),
        [[g.group] + [f"{g.stage_fractions[s] * 100:.0f}%" for s in STAGES]
         for g in groups],
    )
    table_b = format_table(
        ["group", "F.StallForI", "F.StallForR+D", "fetch-active"],
        [[g.group, f"{g.stall_for_i * 100:.1f}%",
          f"{g.stall_for_rd * 100:.1f}%", f"{g.fetch_active * 100:.1f}%"]
         for g in groups],
    )
    table_c = format_table(
        ["group", "long-latency criticals"],
        [[g.group, f"{g.long_latency_frac * 100:.1f}%"] for g in groups],
    )
    return (
        "Fig 3a: stage residency of critical instructions\n"
        f"{table_a}\n\n"
        "Fig 3b: fetch-cycle breakdown (fraction of all cycles)\n"
        f"{table_b}\n\n"
        "Fig 3c: long-latency share among critical instructions\n"
        f"{table_c}"
    )
