"""Fig 13 — why bother with criticality? (opportunistic Thumb baselines)

(a) Speedup of OPP16 (convert any amenable run of >= 3), Compress
    (Krishnaswamy-Gupta fine-grained conversion), CritIC, and
    OPP16+CritIC stacked.
(b) The fraction of dynamic instructions each scheme converts to 16-bit:
    CritIC converts far fewer while (in the paper) gaining more —
    criticality selects the conversions that matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cpu import speedup
from repro.experiments.fig01 import _group_names
from repro.experiments.runner import (
    app_context,
    format_table,
    geometric_mean,
)
from repro.experiments.sweep import SweepSpec, run_sweep
from repro.telemetry import spanned

SCHEMES = ("opp16", "compress", "critic", "opp16_critic")


@dataclass
class Fig13Row:
    app: str
    speedups_pct: List[float]      # per SCHEMES
    converted_frac: List[float]    # per SCHEMES


@dataclass
class Fig13Result:
    rows: List[Fig13Row]
    mean_speedups_pct: List[float]
    mean_converted_frac: List[float]


@spanned("fig13.run")
def run(apps: Optional[int] = None,
        walk_blocks: Optional[int] = None,
        engine: Optional[str] = None) -> Fig13Result:
    rows: List[Fig13Row] = []
    names = _group_names("mobile", apps)
    run_sweep(SweepSpec(
        apps=tuple(names),
        schemes=("baseline",) + SCHEMES,
        walk_blocks=walk_blocks,
        engine=engine,
    ))
    for name in names:
        ctx = app_context(name, walk_blocks)
        base = ctx.stats("baseline")
        speedups: List[float] = []
        converted: List[float] = []
        for scheme in SCHEMES:
            stats = ctx.stats(scheme)
            speedups.append(100 * (speedup(base, stats) - 1))
            trace = ctx.scheme_trace(scheme)
            converted.append(trace.count_thumb() / len(trace))
        rows.append(Fig13Row(app=name, speedups_pct=speedups,
                             converted_frac=converted))

    mean_speedups = [
        100 * (geometric_mean(
            [1 + r.speedups_pct[i] / 100 for r in rows]) - 1)
        for i in range(len(SCHEMES))
    ]
    mean_converted = [
        sum(r.converted_frac[i] for r in rows) / len(rows)
        for i in range(len(SCHEMES))
    ]
    return Fig13Result(rows=rows, mean_speedups_pct=mean_speedups,
                       mean_converted_frac=mean_converted)


def format_result(result: Fig13Result) -> str:
    table_a = format_table(
        ["app"] + list(SCHEMES),
        [[r.app] + [f"{v:+.1f}%" for v in r.speedups_pct]
         for r in result.rows]
        + [["MEAN"] + [f"{v:+.1f}%" for v in result.mean_speedups_pct]],
    )
    table_b = format_table(
        ["app"] + [f"{s}-converted" for s in SCHEMES],
        [[r.app] + [f"{v * 100:.1f}%" for v in r.converted_frac]
         for r in result.rows]
        + [["MEAN"] + [f"{v * 100:.1f}%"
                       for v in result.mean_converted_frac]],
    )
    return (
        "Fig 13a: opportunistic Thumb conversion vs CritIC (speedup)\n"
        f"{table_a}\n\n"
        "Fig 13b: dynamic instructions converted to 16-bit format\n"
        f"{table_b}"
    )
