"""Fig 12 — sensitivity studies.

(a) Exact-length CritICs: fetch-cost savings grow with length n, but the
    probability of finding all-convertible chains of exactly length n
    drops, so speedup peaks at a small n (the paper: n = 5).
(b) Profile coverage: speedup as a function of how much of the execution
    the offline profiler observed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cache import artifact_key, get_cache
from repro.compiler import CriticPass, PassManager, region_oracle
from repro.cpu import GOOGLE_TABLET, SimStats, simulate, speedup
from repro.experiments.fig01 import _group_names
from repro.experiments.runner import (
    app_context,
    format_table,
    geometric_mean,
)
from repro.experiments.sweep import SweepSpec, run_sweep
from repro.profiler import FinderConfig, find_critic_profile
from repro.telemetry import spanned


@dataclass
class Fig12aRow:
    length: int
    speedup_pct: float
    fetch_stall_frac: float   # remaining F.StallForI+R+D fraction
    chains_converted: int


@dataclass
class Fig12bRow:
    profiled_fraction: float
    speedup_pct: float


@spanned("fig12.run_length_sensitivity")
def run_length_sensitivity(
    lengths: Sequence[int] = (2, 3, 4, 5, 7, 9),
    apps: Optional[int] = 3,
    walk_blocks: Optional[int] = None,
) -> List[Fig12aRow]:
    """Fig 12a: evaluate CritICs of exactly length n, per n."""
    names = _group_names("mobile", apps)
    rows: List[Fig12aRow] = []
    for length in lengths:
        ratios: List[float] = []
        stall = 0.0
        chains = 0
        for name in names:
            ctx = app_context(name, walk_blocks)
            base = ctx.stats("baseline")
            config = FinderConfig(max_length=length)
            cache = get_cache()
            key = artifact_key(
                "fig12a", profile=ctx.app_profile, length=length,
                finder=config, config=GOOGLE_TABLET,
            )
            cell = cache.load_json("fig12a", key)
            if cell is None:
                profile = find_critic_profile(
                    ctx.trace(), ctx.workload.program, config,
                    app_name=name,
                )
                records = [
                    r for r in profile.select_for_compiler(max_length=length)
                    if r.length == length
                ]
                result = PassManager([
                    CriticPass(records, mode="cdp",
                               may_alias=region_oracle(ctx.workload.memory))
                ]).run(ctx.workload.program)
                stats = simulate(ctx.workload.trace_for(result.program))
                cell = {
                    "chains": result.ctx.get("critic", "chains"),
                    "stats": stats.to_dict(),
                }
                cache.store_json("fig12a", key, cell)
            chains += cell["chains"]
            stats = SimStats.from_dict(cell["stats"])
            ratios.append(speedup(base, stats))
            fractions = stats.fetch_stall_fractions()
            stall += fractions["stall_for_i"] + fractions["stall_for_rd"]
        rows.append(Fig12aRow(
            length=length,
            speedup_pct=100 * (geometric_mean(ratios) - 1),
            fetch_stall_frac=stall / len(names),
            chains_converted=chains,
        ))
    return rows


@spanned("fig12.run_profile_sensitivity")
def run_profile_sensitivity(
    fractions: Sequence[float] = (0.1, 0.33, 0.72, 1.0),
    apps: Optional[int] = 3,
    walk_blocks: Optional[int] = None,
    engine: Optional[str] = None,
) -> List[Fig12bRow]:
    """Fig 12b: speedup vs profiled fraction of the execution."""
    names = _group_names("mobile", apps)
    # Warm the baseline and full-profile (fraction=1.0) cells in parallel;
    # the partial-coverage cells below have no sweep axis and stay serial.
    run_sweep(SweepSpec(
        apps=tuple(names),
        schemes=("baseline", "critic"),
        walk_blocks=walk_blocks,
        engine=engine,
    ))
    rows: List[Fig12bRow] = []
    for fraction in fractions:
        ratios: List[float] = []
        for name in names:
            ctx = app_context(name, walk_blocks)
            base = ctx.stats("baseline")
            stats = ctx.stats("critic", profiled_fraction=fraction)
            ratios.append(speedup(base, stats))
        rows.append(Fig12bRow(
            profiled_fraction=fraction,
            speedup_pct=100 * (geometric_mean(ratios) - 1),
        ))
    return rows


def format_length(rows: List[Fig12aRow]) -> str:
    return "Fig 12a: sensitivity to exact CritIC length\n" + format_table(
        ["length", "speedup", "fetch-stall frac", "chains"],
        [[str(r.length), f"{r.speedup_pct:+.2f}%",
          f"{r.fetch_stall_frac * 100:.1f}%", str(r.chains_converted)]
         for r in rows],
    )


def format_profile(rows: List[Fig12bRow]) -> str:
    return "Fig 12b: sensitivity to profile coverage\n" + format_table(
        ["profiled", "speedup"],
        [[f"{r.profiled_fraction * 100:.0f}%", f"{r.speedup_pct:+.2f}%"]
         for r in rows],
    )
