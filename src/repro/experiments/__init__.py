"""Experiment harness: one module per paper figure/table.

Each ``figNN`` module exposes ``run(...)`` returning structured results and
a ``format_*`` helper that renders the same rows/series the paper reports.
``repro.cpu.config.format_table1`` and ``repro.workloads.format_table2``
cover Tables I and II.
"""

from repro.experiments import (  # noqa: F401
    fig01,
    fig03,
    fig05,
    fig08,
    fig10,
    fig11,
    fig12,
    fig13,
)
from repro.experiments.runner import (
    AppContext,
    DEFAULT_WALK_BLOCKS,
    SCHEMES,
    app_context,
    clear_cache,
    default_jobs,
    format_table,
    geometric_mean,
    run_apps,
)

__all__ = [
    "AppContext",
    "DEFAULT_WALK_BLOCKS",
    "SCHEMES",
    "app_context",
    "clear_cache",
    "default_jobs",
    "fig01",
    "fig03",
    "fig05",
    "fig08",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "format_table",
    "geometric_mean",
    "run_apps",
]
