"""Experiment runner: app x scheme x hardware-config simulations.

Central plumbing for every figure/table reproduction:

* workloads, traces, profiles, and transformed programs are generated once
  per app and memoized (figures share them);
* the evaluated *schemes* (baseline / Hoist / CritIC / CritIC.Ideal /
  Approach-1 branch switching / OPP16 / Compress / OPP16+CritIC) are
  expressed as compiler pipelines over the same program + walk;
* trace length is controlled by ``REPRO_WALK_BLOCKS`` (default 700 dynamic
  blocks, ~25-60k instructions per app) so benches run at laptop scale;
  the paper's full-scale methodology (100 x 500k-instruction samples) is
  structurally identical, just larger.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler import (
    CompressPass,
    CriticPass,
    Opp16Pass,
    PassManager,
    region_oracle,
)
from repro.cpu import CpuConfig, GOOGLE_TABLET, SimStats, simulate
from repro.profiler import CriticProfile, FinderConfig, find_critic_profile
from repro.trace.dynamic import Trace
from repro.workloads import Workload, generate, get_profile

#: Dynamic block budget for generated walks (env-overridable).
DEFAULT_WALK_BLOCKS = int(os.environ.get("REPRO_WALK_BLOCKS", "700"))

#: Scheme names accepted by :func:`scheme_trace`.
SCHEMES = (
    "baseline", "hoist", "critic", "critic_ideal", "branch",
    "opp16", "compress", "opp16_critic",
)

_workloads: Dict[Tuple[str, int], "AppContext"] = {}


@dataclass
class AppContext:
    """Everything derived from one app at one scale, lazily materialized."""

    workload: Workload
    profile: Optional[CriticProfile] = None
    _traces: Dict[str, Trace] = field(default_factory=dict)
    _stats: Dict[Tuple[str, str], SimStats] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.workload.name

    def trace(self) -> Trace:
        return self.workload.trace()

    def critic_profile(self, profiled_fraction: float = 1.0,
                       max_length: Optional[int] = None) -> CriticProfile:
        """The offline profiler's output (cached for the default config)."""
        default = profiled_fraction >= 1.0 and max_length is None
        if default and self.profile is not None:
            return self.profile
        config = FinderConfig(
            profiled_fraction=profiled_fraction,
            max_length=max_length,
        )
        profile = find_critic_profile(
            self.trace(), self.workload.program, config,
            app_name=self.name,
        )
        if default:
            self.profile = profile
        return profile

    # -- schemes ---------------------------------------------------------------

    def _passes(self, scheme: str, max_length: int = 5,
                profiled_fraction: float = 1.0):
        oracle = region_oracle(self.workload.memory)
        profile = self.critic_profile(profiled_fraction=profiled_fraction)
        records = profile.select_for_compiler(max_length=max_length)
        if scheme == "hoist":
            return [CriticPass(records, mode="hoist", may_alias=oracle)]
        if scheme == "critic":
            return [CriticPass(records, mode="cdp", may_alias=oracle)]
        if scheme == "branch":
            return [CriticPass(records, mode="branch", may_alias=oracle)]
        if scheme == "critic_ideal":
            ideal_profile = self.critic_profile(max_length=20)
            ideal_records = ideal_profile.select_for_compiler(
                max_length=None, require_thumb=False,
            )
            return [CriticPass(ideal_records, mode="cdp", ideal=True,
                               may_alias=oracle)]
        if scheme == "opp16":
            return [Opp16Pass()]
        if scheme == "compress":
            return [CompressPass()]
        if scheme == "opp16_critic":
            return [CriticPass(records, mode="cdp", may_alias=oracle),
                    Opp16Pass()]
        raise ValueError(f"unknown scheme {scheme!r}; one of {SCHEMES}")

    def scheme_trace(self, scheme: str, max_length: int = 5,
                     profiled_fraction: float = 1.0) -> Trace:
        """The dynamic trace under ``scheme`` (cached for defaults)."""
        default = max_length == 5 and profiled_fraction >= 1.0
        if default and scheme in self._traces:
            return self._traces[scheme]
        if scheme == "baseline":
            trace = self.trace()
        else:
            result = PassManager(
                self._passes(scheme, max_length, profiled_fraction)
            ).run(self.workload.program)
            trace = self.workload.trace_for(result.program)
        if default:
            self._traces[scheme] = trace
        return trace

    def stats(self, scheme: str = "baseline",
              config: CpuConfig = GOOGLE_TABLET,
              max_length: int = 5,
              profiled_fraction: float = 1.0) -> SimStats:
        """Simulate ``scheme`` on ``config`` (cached for defaults)."""
        default = max_length == 5 and profiled_fraction >= 1.0
        key = (scheme, config.name)
        if default and key in self._stats:
            return self._stats[key]
        trace = self.scheme_trace(scheme, max_length, profiled_fraction)
        stats = simulate(trace, config)
        if default:
            self._stats[key] = stats
        return stats


def app_context(name: str,
                walk_blocks: Optional[int] = None) -> AppContext:
    """Get (and cache) the :class:`AppContext` for one app/benchmark."""
    blocks = walk_blocks if walk_blocks is not None else DEFAULT_WALK_BLOCKS
    key = (name, blocks)
    if key not in _workloads:
        _workloads[key] = AppContext(
            workload=generate(get_profile(name), walk_blocks=blocks)
        )
    return _workloads[key]


def clear_cache() -> None:
    """Drop all memoized workloads/stats (tests use this)."""
    _workloads.clear()


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (speedups are ratios)."""
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def format_table(headers: List[str], rows: List[List[str]]) -> str:
    """Minimal fixed-width table renderer used by every figure module."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
