"""Experiment runner: app x scheme x hardware-config simulations.

Central plumbing for every figure/table reproduction:

* workloads, traces, profiles, and transformed programs are generated once
  per app and memoized in-process (figures share them);
* every derived artifact (baseline/scheme traces, CritIC profiles,
  simulation stats) is also persisted in the content-addressed disk cache
  (:mod:`repro.cache`), so warm runs skip generation, compilation, and
  simulation entirely;
* the evaluated *schemes* (baseline / Hoist / CritIC / CritIC.Ideal /
  Approach-1 branch switching / OPP16 / Compress / OPP16+CritIC) are
  expressed as compiler pipelines over the same program + walk;
* :func:`run_apps` fans the app x config grid out through a registered
  *execution backend* (:data:`repro.registry.EXECUTORS` — ``inline``,
  ``pool``, or the socket-broker ``fleet``; selected by ``executor=``,
  ``REPRO_EXECUTOR``, or the sweep CLI's ``--executor``) sized by
  ``REPRO_JOBS``, and seeds the in-process memo with the results, so
  figure modules stay simple serial loops;
* workers report their telemetry (phase timers, counters, span trees)
  back with their results — spooled to temp files when a worker
  crashes — so ``REPRO_PERF=1`` totals are fleet-wide; retried attempts'
  telemetry is discarded so a retried cell is counted exactly once; and
  every invocation leaves a run manifest (including the executor's
  per-task attempt records) next to the artifact cache;
* trace length is controlled by ``REPRO_WALK_BLOCKS`` (default 700 dynamic
  blocks, ~25-60k instructions per app) so benches run at laptop scale;
  the paper's full-scale methodology (100 x 500k-instruction samples) is
  structurally identical, just larger.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import telemetry
from repro.cache import artifact_key, get_cache
from repro.dispatch import (
    ENV_EXECUTOR,
    ENV_FAULTS,
    DispatchReport,
    RetryPolicy,
    TaskResult,
    TaskSpec,
)
from repro.telemetry.manifest import record_run
from repro.compiler import PassManager
from repro.cpu import CpuConfig, GOOGLE_TABLET, SimStats, simulate
from repro.cpu.engines import ENV_ENGINE
from repro.profiler import CriticProfile, FinderConfig, find_critic_profile
from repro.registry import (
    EXECUTORS,
    SCHEME_RECIPES,
    SIMULATORS,
    WORKLOAD_FAMILIES,
    component_identity,
)
from repro.trace.dynamic import Trace
from repro.workloads import (
    Workload,
    WorkloadProfile,
    build_workload,
    get_profile,
)

def _env_int(name: str, default: int, minimum: int = 1) -> int:
    """An integer environment override, degrading to ``default``.

    A malformed value (``REPRO_JOBS=auto``) used to raise a bare
    ``ValueError`` — at *import* time for ``REPRO_WALK_BLOCKS``; now it
    warns once and the default wins.
    """
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring malformed {name}={raw!r} (not an integer); "
            f"using {default}",
            RuntimeWarning, stacklevel=2,
        )
        return default
    return max(minimum, value)


#: Dynamic block budget for generated walks (env-overridable).
DEFAULT_WALK_BLOCKS = _env_int("REPRO_WALK_BLOCKS", 700)

#: Scheme names accepted by :func:`scheme_trace` — derived from the
#: recipe registry (:mod:`repro.experiments.schemes` registers the
#: paper's eight in canonical order), so registering a new recipe is the
#: whole story: it shows up here, in the sweep engine, and in the fuzzer.
SCHEMES = SCHEME_RECIPES.names()

_workloads: Dict[Tuple[str, int, str], "AppContext"] = {}


def default_jobs() -> int:
    """Worker count for :func:`run_apps` (``REPRO_JOBS`` or cpu count)."""
    return _env_int("REPRO_JOBS", os.cpu_count() or 1)


@dataclass
class AppContext:
    """Everything derived from one app at one scale, lazily materialized.

    ``app_profile`` is the *scaled* workload profile (its ``walk_blocks``
    already reflects the requested scale), which makes it the complete
    generation parameter record — and therefore the disk-cache key root
    for every artifact derived from this app.
    """

    app_profile: WorkloadProfile
    #: workload family (scenario generator) this context builds under;
    #: see :data:`repro.registry.WORKLOAD_FAMILIES`.  Non-default
    #: families fold their versioned identity into every cache key.
    workload_family: str = "default"
    profile: Optional[CriticProfile] = None
    _workload: Optional[Workload] = None
    _traces: Dict[str, Trace] = field(default_factory=dict)
    _stats: Dict[Tuple[str, str], SimStats] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.app_profile.name

    def _family_key_params(self) -> Dict[str, str]:
        """Cache-key params for the family: empty for ``default`` so
        existing default-family keys stay byte-identical."""
        if self.workload_family == "default":
            return {}
        return {"workload_family":
                WORKLOAD_FAMILIES.identity(self.workload_family)}

    @property
    def workload(self) -> Workload:
        """The generated program/walk/memory (built on first touch)."""
        if self._workload is None:
            with telemetry.phase("generate"):
                self._workload = build_workload(self.workload_family,
                                                self.app_profile)
        return self._workload

    def trace(self) -> Trace:
        """The baseline dynamic trace (disk-cached via :mod:`repro.cache`)."""
        trace = self._traces.get("baseline")
        if trace is not None:
            return trace
        cache = get_cache()
        key = artifact_key("trace", profile=self.app_profile,
                           scheme="baseline",
                           **self._family_key_params())
        trace = cache.load_trace(key)
        if trace is None:
            with telemetry.phase("materialize"):
                trace = self.workload.trace()
            cache.store_trace(key, trace)
        else:
            # Share the loaded trace with Workload.trace() callers.
            if self._workload is not None:
                self._workload.adopt_trace(trace)
        self._traces["baseline"] = trace
        return trace

    def critic_profile(self, profiled_fraction: float = 1.0,
                       max_length: Optional[int] = None) -> CriticProfile:
        """The offline profiler's output (memoized for the default config)."""
        default = profiled_fraction >= 1.0 and max_length is None
        if default and self.profile is not None:
            return self.profile
        config = FinderConfig(
            profiled_fraction=profiled_fraction,
            max_length=max_length,
        )
        cache = get_cache()
        key = artifact_key("critic_profile", profile=self.app_profile,
                           finder=config, **self._family_key_params())
        profile = cache.load_profile(key)
        if profile is None:
            with telemetry.phase("find_critic_profile"):
                profile = find_critic_profile(
                    self.trace(), self.workload.program, config,
                    app_name=self.name,
                )
            cache.store_profile(key, profile)
        if default:
            self.profile = profile
        return profile

    # -- schemes ---------------------------------------------------------------

    def _passes(self, scheme: str, max_length: int = 5,
                profiled_fraction: float = 1.0):
        """The compiler pipeline for ``scheme``, via the recipe registry.

        Unknown names get the registry's did-you-mean suggestion
        (``RegistryError`` is a ``KeyError`` *and* carries the hint, so
        legacy ``except (ValueError, KeyError)`` call sites still work).
        """
        recipe = SCHEME_RECIPES.get(scheme)
        return list(recipe(self, max_length, profiled_fraction))

    def _scheme_key(self, scheme: str, max_length: int,
                    profiled_fraction: float) -> str:
        return artifact_key(
            "trace",
            profile=self.app_profile,
            scheme=SCHEME_RECIPES.identity(scheme),
            max_length=max_length,
            profiled_fraction=profiled_fraction,
            finder=FinderConfig(profiled_fraction=profiled_fraction),
            **self._family_key_params(),
        )

    def scheme_trace(self, scheme: str, max_length: int = 5,
                     profiled_fraction: float = 1.0) -> Trace:
        """The dynamic trace under ``scheme`` (memoized for defaults)."""
        default = max_length == 5 and profiled_fraction >= 1.0
        if default and scheme in self._traces:
            return self._traces[scheme]
        if scheme == "baseline":
            return self.trace()
        cache = get_cache()
        key = self._scheme_key(scheme, max_length, profiled_fraction)
        trace = cache.load_trace(key)
        if trace is None:
            with telemetry.phase("compile"):
                result = PassManager(
                    self._passes(scheme, max_length, profiled_fraction)
                ).run(self.workload.program)
            with telemetry.phase("materialize"):
                trace = self.workload.trace_for(result.program)
            cache.store_trace(key, trace)
        if default:
            self._traces[scheme] = trace
        return trace

    def _stats_key(self, scheme: str, config: CpuConfig, max_length: int,
                   profiled_fraction: float) -> str:
        # The versioned component identities (``two-level@1``,
        # ``lru@1``, ``clpt@1`` ...) ride along with the config record:
        # re-versioning one registered component invalidates exactly the
        # cached stats that simulated with it, nothing else.
        return artifact_key(
            "stats",
            profile=self.app_profile,
            scheme=SCHEME_RECIPES.identity(scheme),
            max_length=max_length,
            profiled_fraction=profiled_fraction,
            finder=FinderConfig(profiled_fraction=profiled_fraction),
            config=config,
            components=component_identity(config),
            **self._family_key_params(),
        )

    def cached_stats(self, scheme: str = "baseline",
                     config: CpuConfig = GOOGLE_TABLET,
                     max_length: int = 5,
                     profiled_fraction: float = 1.0) -> Optional[SimStats]:
        """Look up stats in the memo/disk cache without computing them."""
        default = max_length == 5 and profiled_fraction >= 1.0
        memo_key = (scheme, config.name)
        if default and memo_key in self._stats:
            return self._stats[memo_key]
        stats = get_cache().load_stats(
            self._stats_key(scheme, config, max_length, profiled_fraction)
        )
        if stats is not None and default:
            self._stats[memo_key] = stats
        return stats

    def stats(self, scheme: str = "baseline",
              config: CpuConfig = GOOGLE_TABLET,
              max_length: int = 5,
              profiled_fraction: float = 1.0,
              engine: Optional[str] = None) -> SimStats:
        """Simulate ``scheme`` on ``config`` (memo + disk cached).

        ``engine`` picks the simulation engine (see
        :data:`repro.registry.SIMULATORS`); engines are bit-identical,
        so cache keys don't carry it and a cached cell satisfies any
        engine's request.
        """
        stats = self.cached_stats(scheme, config, max_length,
                                  profiled_fraction)
        if stats is not None:
            return stats
        trace = self.scheme_trace(scheme, max_length, profiled_fraction)
        with telemetry.phase("simulate"):
            stats = simulate(trace, config, engine=engine)
        get_cache().store_stats(
            self._stats_key(scheme, config, max_length, profiled_fraction),
            stats,
        )
        if max_length == 5 and profiled_fraction >= 1.0:
            self._stats[(scheme, config.name)] = stats
        return stats


def app_context(name: str,
                walk_blocks: Optional[int] = None,
                workload_family: str = "default") -> AppContext:
    """Get (and memoize) the :class:`AppContext` for one app/benchmark."""
    blocks = walk_blocks if walk_blocks is not None else DEFAULT_WALK_BLOCKS
    key = (name, blocks, workload_family)
    if key not in _workloads:
        base = get_profile(name)
        # Same scaling `generate()` would apply, hoisted here so the scaled
        # profile can serve as the cache-key record without generating.
        scaled = base.scaled(blocks / base.walk_blocks)
        _workloads[key] = AppContext(app_profile=scaled,
                                     workload_family=workload_family)
    return _workloads[key]


def clear_cache() -> None:
    """Drop all in-process memoized workloads/stats (tests use this)."""
    _workloads.clear()


# -- parallel fan-out ----------------------------------------------------------


def _observe_cell(name: str, scheme: str, config_name: str,
                  stats: SimStats, wall: float) -> None:
    """Metrics + event for one computed app x scheme x config cell.

    Fires in whichever process ran the cell; the worker's registry rides
    its result snapshot back to the parent, where retried attempts are
    discarded — so fleet-wide totals count every cell exactly once.
    Events, by contrast, narrate *attempts* as they happen: a killed
    worker's ``sweep.cell.start`` stays in the log (that is the point).
    """
    telemetry.inc("repro_cells_total",
                  help="Sweep cells by completion status.",
                  status="done")
    telemetry.inc("repro_sim_instructions_total", stats.instructions,
                  help="Instructions committed by cell simulations.")
    telemetry.observe("repro_cell_wall_seconds", wall,
                      help="Wall seconds per computed cell.")
    telemetry.emit("sweep.cell.done", app=name, scheme=scheme,
                   config=config_name, instructions=stats.instructions,
                   cycles=stats.cycles, wall_s=round(wall, 6))


def _run_cell(name: str, blocks: int, schemes: Tuple[str, ...],
              config: CpuConfig, engine: Optional[str] = None,
              workload_family: str = "default",
              ) -> Tuple[str, str, Dict[str, SimStats]]:
    """Worker body: compute all ``schemes`` for one app x config cell."""
    ctx = app_context(name, blocks, workload_family)
    cell: Dict[str, SimStats] = {}
    for scheme in schemes:
        telemetry.emit("sweep.cell.start", app=name, scheme=scheme,
                       config=config.name)
        started = time.perf_counter()
        stats = ctx.stats(scheme, config, engine=engine)
        _observe_cell(name, scheme, config.name, stats,
                      time.perf_counter() - started)
        cell[scheme] = stats
    return name, config.name, cell


#: Task-id suffix marking a batched (one trace x many configs) cell.
_BATCH_TAG = "batch"


def _run_batch_cell(
    name: str, blocks: int, scheme: str, configs: Tuple[CpuConfig, ...],
    workload_family: str = "default",
) -> Tuple[str, str, Dict[str, SimStats]]:
    """Worker body for one batched app x scheme cell: all ``configs``
    advance through the batch engine together (per-cell inline fallback
    happens inside :func:`repro.cpu.batch.simulate_batch`)."""
    from repro.cpu.batch import simulate_batch

    ctx = app_context(name, blocks, workload_family)
    trace = ctx.scheme_trace(scheme)
    telemetry.emit("sweep.cell.start", app=name, scheme=scheme,
                   config=",".join(c.name for c in configs),
                   batched=True)
    started = time.perf_counter()
    with telemetry.phase("simulate"):
        all_stats = simulate_batch(trace, list(configs))
    wall = time.perf_counter() - started
    cache = get_cache()
    cell: Dict[str, SimStats] = {}
    for config, stats in zip(configs, all_stats):
        cache.store_stats(ctx._stats_key(scheme, config, 5, 1.0), stats)
        ctx._stats[(scheme, config.name)] = stats
        cell[config.name] = stats
        _observe_cell(name, scheme, config.name, stats,
                      wall / len(configs))
    return name, f"{scheme}|{_BATCH_TAG}", cell


def _spool_snapshot(spool_dir: str, name: str, config_name: str) -> None:
    """Best-effort dump of this process's telemetry for the parent.

    The snapshot is tagged with the cell identity so the parent can drop
    it if that cell ends up retried serially (whose telemetry would
    otherwise be counted twice).
    """
    try:
        fd, _path = tempfile.mkstemp(
            dir=spool_dir, prefix="telemetry-", suffix=".json",
        )
        with os.fdopen(fd, "w") as handle:
            json.dump({"cell": [name, config_name],
                       "snapshot": telemetry.snapshot()}, handle)
    except OSError:
        pass




def _cell_task(
    name: str, blocks: int, schemes: Tuple[str, ...], config: CpuConfig,
    engine: Optional[str] = None, workload_family: str = "default",
    spool_dir: Optional[str] = None, capture_telemetry: bool = True,
) -> Tuple[str, str, Dict[str, SimStats], Optional[Dict]]:
    """The dispatch task body for one app x config cell.

    Out-of-process attempts (``capture_telemetry=True``, the executors'
    default kwargs) reset/snapshot telemetry and ship it back as a
    delta; in-parent attempts (the inline executor and quarantine
    fallback, via ``inline_kwargs``) record telemetry live under the
    classic ``run_apps.serial`` phase and return no snapshot — merging
    one would double-count the cell.
    """
    if not capture_telemetry:
        with telemetry.phase("run_apps.serial"):
            app, config_name, cell = _run_cell(name, blocks, schemes,
                                               config, engine,
                                               workload_family)
        return app, config_name, cell, None
    telemetry.reset()
    try:
        result = _run_cell(name, blocks, schemes, config, engine,
                           workload_family)
    except BaseException:
        _spool_snapshot(spool_dir, name, config.name)
        raise
    return (*result, telemetry.snapshot())


def _batch_cell_task(
    name: str, blocks: int, scheme: str, configs: Tuple[CpuConfig, ...],
    workload_family: str = "default",
    spool_dir: Optional[str] = None, capture_telemetry: bool = True,
) -> Tuple[str, str, Dict[str, SimStats], Optional[Dict]]:
    """The dispatch task body for one batched app x scheme cell — the
    batch-engine counterpart of :func:`_cell_task`, with the same
    telemetry reset/snapshot/spool protocol (spool tag
    ``(name, "<scheme>|batch")`` matches the task id)."""
    if not capture_telemetry:
        with telemetry.phase("run_apps.serial"):
            app, tag, cell = _run_batch_cell(name, blocks, scheme,
                                             configs, workload_family)
        return app, tag, cell, None
    telemetry.reset()
    try:
        result = _run_batch_cell(name, blocks, scheme, configs,
                                 workload_family)
    except BaseException:
        _spool_snapshot(spool_dir, name, f"{scheme}|{_BATCH_TAG}")
        raise
    return (*result, telemetry.snapshot())


def _drain_spool(spool_dir: str,
                 skip: Optional[Set[Tuple[str, str]]] = None) -> None:
    """Merge and remove any worker telemetry spooled under ``spool_dir``.

    Snapshots tagged with a cell in ``skip`` are discarded instead of
    merged: those cells are about to be re-run serially in the parent,
    and merging the crashed attempt's partial telemetry on top of the
    retry's would double-count the cell's work.
    """
    try:
        names = os.listdir(spool_dir)
    except OSError:
        return
    for entry in names:
        path = os.path.join(spool_dir, entry)
        try:
            with open(path) as handle:
                payload = json.load(handle)
            cell = tuple(payload.get("cell") or ())
            if not (skip and cell in skip):
                telemetry.merge_snapshot(payload["snapshot"])
        except (OSError, ValueError, KeyError, TypeError):
            pass
        try:
            os.unlink(path)
        except OSError:
            pass
    try:
        os.rmdir(spool_dir)
    except OSError:
        pass


def _batch_manifest_block() -> Optional[Dict[str, object]]:
    """Batch-engine provenance for the run manifest, aggregated from the
    merged metrics registry.

    ``repro.cpu.batch.last_batch_report()`` is process-local — under the
    pool/fleet executors the interesting report lives (and dies) in a
    worker.  The ``repro_batch_*`` metric families ride each worker's
    result snapshot back to the parent with exactly-once merge
    semantics, so aggregating *them* here yields fleet-wide group
    shapes and fallback reasons no matter which backend ran the sweep.
    Lands in the manifest's ``extra`` — outside the invocation record,
    so ``config_hash`` never sees it.
    """
    families = telemetry.metrics.REGISTRY.families()
    groups = families.get("repro_batch_groups_total")
    if groups is None or not groups.samples:
        return None
    block: Dict[str, object] = {
        "groups_by_kernel": {
            dict(key).get("kernel", ""): count
            for key, count in sorted(groups.samples.items())
        },
    }
    fallbacks = families.get("repro_batch_fallback_total")
    block["fallbacks_by_reason"] = {
        dict(key).get("reason", ""): count
        for key, count in sorted(fallbacks.samples.items())
    } if fallbacks is not None else {}
    cells = families.get("repro_batch_cells_total")
    if cells is not None:
        block["cells_by_path"] = {
            dict(key).get("path", ""): count
            for key, count in sorted(cells.samples.items())
        }
    width = families.get("repro_batch_group_width")
    if width is not None and width.samples and width.buckets:
        agg: Optional[List[float]] = None
        for cell in width.samples.values():
            agg = list(cell) if agg is None \
                else [a + b for a, b in zip(agg, cell)]
        assert agg is not None
        bounds = [str(int(b)) if float(b).is_integer() else str(b)
                  for b in width.buckets] + ["+Inf"]
        block["group_width"] = {
            "count": int(agg[-2]),
            "sum": agg[-1],
            "buckets": dict(zip(bounds, (int(c) for c in agg[:-2]))),
        }
    return block


#: The dispatch report of the most recent :func:`run_apps` fan-out
#: (``None`` when every cell was already cached).  The sweep engine
#: reads this to fold executor provenance into its own manifest.
_last_report: Optional[DispatchReport] = None


def last_dispatch_report() -> Optional[DispatchReport]:
    """Executor/attempt provenance of the last ``run_apps`` fan-out."""
    return _last_report


def run_apps(apps: Sequence[str],
             schemes: Sequence[str] = ("baseline",),
             jobs: Optional[int] = None,
             configs: Sequence[CpuConfig] = (GOOGLE_TABLET,),
             walk_blocks: Optional[int] = None,
             executor: Optional[str] = None,
             engine: Optional[str] = None,
             workload_family: Optional[str] = None,
             ) -> Dict[str, Dict[Tuple[str, str], SimStats]]:
    """Compute stats for an app x scheme x config grid, in parallel.

    Already-cached cells (in-process memo or disk cache) are collected
    inline; only the cells that actually need generation/simulation are
    fanned out through a registered execution backend
    (:data:`repro.registry.EXECUTORS`) with ``jobs`` workers (default:
    ``REPRO_JOBS`` or the CPU count).  The backend is chosen by the
    ``executor`` argument, else ``REPRO_EXECUTOR``, else ``pool``; an
    effective worker count of 1 always runs ``inline``.  Whatever the
    backend — and whatever faults ``REPRO_DISPATCH_FAULTS`` injects into
    a fleet — the returned stats are bit-identical: failed attempts are
    retried with backoff, poison cells quarantine to the inline path,
    and every attempt is recorded in the run manifest.  Results land
    both in the returned mapping (``app -> (scheme, config.name) ->
    SimStats``) and in the per-app in-process memos, so subsequent
    ``ctx.stats(...)`` calls made by figure modules are hits.

    Each worker ships its telemetry snapshot (phases, counters, span
    trees) back with its result — with a temp-file spool as the fallback
    channel for workers that raise — and the parent merges exactly one
    snapshot per cell (retried attempts are discarded), so a
    ``REPRO_PERF=1`` report covers the whole fleet without
    double-counting.  Every invocation also writes a run manifest
    (config hash, seeds, cache hit/miss counts, wall time, phase table,
    executor attempt records) next to the artifact cache; see
    :mod:`repro.telemetry.manifest`.
    """
    blocks = walk_blocks if walk_blocks is not None else DEFAULT_WALK_BLOCKS
    schemes = tuple(schemes)
    engine_name = (engine or os.environ.get(ENV_ENGINE, "")).strip() \
        or "inline"
    SIMULATORS.entry(engine_name)  # unknown engines fail loudly
    family = workload_family or "default"
    WORKLOAD_FAMILIES.entry(family)  # unknown families fail loudly
    started = time.perf_counter()
    with telemetry.span("run_apps", apps=len(apps),
                        schemes=",".join(schemes)):
        results = _run_apps_grid(apps, schemes, jobs, configs, blocks,
                                 executor, engine_name, family)
    report = _last_report
    # Engine identity rides in ``extra`` — recorded in the manifest but
    # outside the invocation record, so ``config_hash`` (and with it the
    # artifact cache) is engine-blind: engines are bit-identical.
    extra: Dict[str, object] = {
        "engine": SIMULATORS.identity(engine_name),
    }
    if report:
        extra["dispatch"] = report.to_dict()
    batch_block = _batch_manifest_block()
    if batch_block:
        extra["batch"] = batch_block
    record_run(
        "run_apps",
        apps=list(apps),
        schemes=list(schemes),
        configs=[config.name for config in configs],
        walk_blocks=blocks,
        seeds={name: app_context(name, blocks, family).app_profile.seed
               for name in apps},
        wall_s=time.perf_counter() - started,
        components={config.name: component_identity(config)
                    for config in configs},
        workload_family=WORKLOAD_FAMILIES.identity(family),
        extra=extra,
    )
    return results


def _run_apps_grid(
    apps: Sequence[str],
    schemes: Tuple[str, ...],
    jobs: Optional[int],
    configs: Sequence[CpuConfig],
    blocks: int,
    executor: Optional[str] = None,
    engine: str = "inline",
    workload_family: str = "default",
) -> Dict[str, Dict[Tuple[str, str], SimStats]]:
    """The probe + executor fan-out body of :func:`run_apps`."""
    global _last_report
    results: Dict[str, Dict[Tuple[str, str], SimStats]] = {
        name: {} for name in apps
    }
    todo: List[Tuple[str, CpuConfig, Tuple[str, ...]]] = []
    with telemetry.phase("run_apps.probe"):
        for name in apps:
            ctx = app_context(name, blocks, workload_family)
            for config in configs:
                missing = []
                for scheme in schemes:
                    stats = ctx.cached_stats(scheme, config)
                    if stats is None:
                        missing.append(scheme)
                    else:
                        results[name][(scheme, config.name)] = stats
                        telemetry.inc(
                            "repro_cells_total",
                            help="Sweep cells by completion status.",
                            status="cached",
                        )
                        telemetry.emit("sweep.cell.cached", app=name,
                                       scheme=scheme, config=config.name)
                if missing:
                    todo.append((name, config, tuple(missing)))

    _last_report = None
    if not todo:
        return results
    workers = jobs if jobs is not None else default_jobs()
    workers = min(max(1, workers), len(todo))

    backend = (executor or os.environ.get(ENV_EXECUTOR, "")).strip() \
        or "pool"
    EXECUTORS.entry(backend)  # unknown names fail loudly, did-you-mean
    if workers == 1:
        # A single worker is the serial path by definition; the inline
        # executor keeps it deterministic and process-free regardless of
        # which backend the environment asked for.
        backend = "inline"

    def _absorb(name: str, config_name: str,
                cell: Dict[str, SimStats]) -> None:
        ctx = app_context(name, blocks, workload_family)
        for scheme, stats in cell.items():
            results[name][(scheme, config_name)] = stats
            ctx._stats[(scheme, config_name)] = stats

    spool = None if backend == "inline" \
        else tempfile.mkdtemp(prefix="repro-telemetry-spool-")
    if engine == "batch":
        # The batch engine amortizes the cycle loop across configs of one
        # trace, so the task axis flips: one task per app x scheme cell
        # covering every config still missing it (the engine handles
        # per-config inline fallbacks internally).
        grouped: Dict[Tuple[str, str], List[CpuConfig]] = {}
        for name, config, missing in todo:
            for scheme in missing:
                grouped.setdefault((name, scheme), []).append(config)
        tasks = [
            TaskSpec(
                id=f"{name}|{scheme}|{_BATCH_TAG}",
                fn=_batch_cell_task,
                args=(name, blocks, scheme, tuple(batch_configs),
                      workload_family),
                kwargs={"spool_dir": spool, "capture_telemetry": True},
                inline_kwargs={"capture_telemetry": False},
            )
            for (name, scheme), batch_configs in grouped.items()
        ]
    else:
        tasks = [
            TaskSpec(
                id=f"{name}|{config.name}",
                fn=_cell_task,
                args=(name, blocks, missing, config,
                      None if engine == "inline" else engine,
                      workload_family),
                kwargs={"spool_dir": spool, "capture_telemetry": True},
                inline_kwargs={"capture_telemetry": False},
            )
            for name, config, missing in todo
        ]
    exec_obj = EXECUTORS.create(
        backend, jobs=workers, policy=RetryPolicy.from_env(),
    )
    task_results: List[TaskResult] = []
    try:
        for task in tasks:
            exec_obj.submit(task)
        if backend == "inline":
            task_results = exec_obj.drain()
        else:
            with telemetry.phase("run_apps.parallel"):
                task_results = exec_obj.drain()
    finally:
        exec_obj.shutdown()
        if spool is not None:
            # Keep spooled snapshots only for cells that completed
            # cleanly on their first out-of-process attempt.  Any cell
            # that failed, retried, or quarantined re-records (or
            # discards) its telemetry elsewhere; merging its crashed
            # attempts' partial spools would double-count the cell.
            clean = {
                tuple(r.task_id.split("|", 1)) for r in task_results
                if r.ok and len(r.attempts) == 1 and not r.quarantined
            }
            # Task ids are "<app>|<config>" or "<app>|<scheme>|batch";
            # one split mirrors the spool tags for both shapes.
            every = {tuple(t.id.split("|", 1)) for t in tasks}
            _drain_spool(spool, skip=every - clean)

    batch_suffix = f"|{_BATCH_TAG}"
    for result in task_results:
        if result.ok:
            name, tag, cell, snap = result.value
            if snap is not None:
                telemetry.merge_snapshot(snap)
            if tag.endswith(batch_suffix):
                # Batched cell: tag is "<scheme>|batch" and the payload
                # maps config names (not schemes) to stats.
                scheme = tag[: -len(batch_suffix)]
                ctx = app_context(name, blocks, workload_family)
                for config_name, stats in cell.items():
                    results[name][(scheme, config_name)] = stats
                    ctx._stats[(scheme, config_name)] = stats
            else:
                _absorb(name, tag, cell)

    _last_report = DispatchReport(
        executor=EXECUTORS.identity(backend),
        workers=workers,
        results=task_results,
        faults=os.environ.get(ENV_FAULTS, "").strip() or None,
    )
    failures = [r for r in task_results if not r.ok]
    if failures:
        failures[0].raise_error()
    return results


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (speedups are ratios)."""
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def format_table(headers: List[str], rows: List[List[str]]) -> str:
    """Minimal fixed-width table renderer used by every figure module."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
