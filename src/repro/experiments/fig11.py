"""Fig 11 — CritIC vs (and with) conventional hardware fetch mechanisms.

Hardware variants: 2xFD (doubled fetch/decode bandwidth), 4x i-cache,
EFetch instruction prefetching, PerfectBr (oracle branch prediction),
BackendPrio (critical-instruction back-end prioritization), and AllHW
(everything combined).  Each is evaluated alone and with the CritIC
software transformation on top; (b) reports which fetch-stall component
each mechanism moves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cpu import CpuConfig, GOOGLE_TABLET, speedup
from repro.experiments.fig01 import _group_names
from repro.experiments.runner import (
    app_context,
    format_table,
    geometric_mean,
)
from repro.experiments.sweep import SweepSpec, run_sweep
from repro.registry import HARDWARE_CONFIGS
from repro.telemetry import spanned

#: The evaluated hardware mechanisms — registry names (the Fig-11
#: variants register themselves in :mod:`repro.cpu.config`), in the
#: paper's order.
MECHANISMS: Tuple[str, ...] = (
    "2xFD", "4xI$", "EFetch", "PerfectBr", "BackendPrio", "AllHW",
)


@dataclass
class Fig11Row:
    mechanism: str
    hw_only_pct: float
    with_critic_pct: float
    #: Fig 11b (mean fractions of cycles under the HW mechanism alone)
    stall_for_i: float
    stall_for_rd: float


@dataclass
class Fig11Result:
    critic_only_pct: float
    baseline_stall_i: float
    baseline_stall_rd: float
    rows: List[Fig11Row]


@spanned("fig11.run")
def run(apps: Optional[int] = None,
        walk_blocks: Optional[int] = None,
        engine: Optional[str] = None) -> Fig11Result:
    names = _group_names("mobile", apps)
    run_sweep(SweepSpec(
        apps=tuple(names),
        schemes=("baseline", "critic"),
        configs=("google-tablet",) + MECHANISMS,
        walk_blocks=walk_blocks,
        engine=engine,
    ))

    def mean_speedup(scheme: str, config: CpuConfig) -> float:
        ratios = []
        for name in names:
            ctx = app_context(name, walk_blocks)
            base = ctx.stats("baseline", GOOGLE_TABLET)
            ratios.append(speedup(base, ctx.stats(scheme, config)))
        return 100 * (geometric_mean(ratios) - 1)

    def mean_stalls(scheme: str, config: CpuConfig) -> Tuple[float, float]:
        stall_i = stall_rd = 0.0
        for name in names:
            ctx = app_context(name, walk_blocks)
            fractions = ctx.stats(scheme, config).fetch_stall_fractions()
            stall_i += fractions["stall_for_i"]
            stall_rd += fractions["stall_for_rd"]
        return stall_i / len(names), stall_rd / len(names)

    base_i, base_rd = mean_stalls("baseline", GOOGLE_TABLET)
    rows: List[Fig11Row] = []
    for label in MECHANISMS:
        config = HARDWARE_CONFIGS.create(label)
        stall_i, stall_rd = mean_stalls("baseline", config)
        rows.append(Fig11Row(
            mechanism=label,
            hw_only_pct=mean_speedup("baseline", config),
            with_critic_pct=mean_speedup("critic", config),
            stall_for_i=stall_i,
            stall_for_rd=stall_rd,
        ))

    return Fig11Result(
        critic_only_pct=mean_speedup("critic", GOOGLE_TABLET),
        baseline_stall_i=base_i,
        baseline_stall_rd=base_rd,
        rows=rows,
    )


def format_result(result: Fig11Result) -> str:
    table_a = format_table(
        ["mechanism", "HW alone", "HW + CritIC"],
        [["CritIC (sw only)", f"{result.critic_only_pct:+.1f}%", "-"]]
        + [[r.mechanism, f"{r.hw_only_pct:+.1f}%",
            f"{r.with_critic_pct:+.1f}%"] for r in result.rows],
    )
    table_b = format_table(
        ["config", "F.StallForI", "F.StallForR+D"],
        [["baseline", f"{result.baseline_stall_i * 100:.1f}%",
          f"{result.baseline_stall_rd * 100:.1f}%"]]
        + [[r.mechanism, f"{r.stall_for_i * 100:.1f}%",
            f"{r.stall_for_rd * 100:.1f}%"] for r in result.rows],
    )
    return (
        "Fig 11a: hardware mechanisms vs CritIC (mean speedup, mobile)\n"
        f"{table_a}\n\n"
        "Fig 11b: fetch-stall components under each mechanism\n"
        f"{table_b}"
    )
