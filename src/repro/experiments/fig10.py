"""Fig 10 — the headline CritIC evaluation.

(a) Per-app CPU speedup for Hoist (aggregation only), CritIC (hoist +
    16-bit conversion via CDP), and CritIC.Ideal (all chains, no length or
    encodability limits).
(b) Fetch-stall savings: F.StallForI and F.StallForR+D, baseline vs CritIC.
(c) System-wide energy savings decomposed into CPU, i-cache, and memory
    contributions, plus the CPU-cluster-only saving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cpu import speedup
from repro.energy import energy_of, savings
from repro.experiments.fig01 import _group_names
from repro.experiments.runner import (
    app_context,
    format_table,
    geometric_mean,
)
from repro.experiments.sweep import SweepSpec, run_sweep
from repro.telemetry import spanned


@dataclass
class Fig10Row:
    app: str
    hoist_pct: float
    critic_pct: float
    critic_ideal_pct: float
    # Fig 10b (fractions of cycles)
    base_stall_i: float
    base_stall_rd: float
    critic_stall_i: float
    critic_stall_rd: float
    # Fig 10c (percent of baseline SoC energy)
    energy_cpu_pct: float
    energy_icache_pct: float
    energy_memory_pct: float
    energy_total_pct: float
    energy_cpu_only_pct: float


@dataclass
class Fig10Result:
    rows: List[Fig10Row]
    mean_hoist_pct: float
    mean_critic_pct: float
    mean_critic_ideal_pct: float
    mean_energy_total_pct: float
    mean_energy_cpu_only_pct: float


@spanned("fig10.run")
def run(apps: Optional[int] = None,
        walk_blocks: Optional[int] = None) -> Fig10Result:
    """Reproduce Fig 10 over the mobile suite."""
    rows: List[Fig10Row] = []
    names = _group_names("mobile", apps)
    run_sweep(SweepSpec(
        apps=tuple(names),
        schemes=("baseline", "hoist", "critic", "critic_ideal"),
        walk_blocks=walk_blocks,
    ))
    for name in names:
        ctx = app_context(name, walk_blocks)
        base = ctx.stats("baseline")
        hoist = ctx.stats("hoist")
        critic = ctx.stats("critic")
        ideal = ctx.stats("critic_ideal")

        base_f = base.fetch_stall_fractions()
        critic_f = critic.fetch_stall_fractions()
        base_e = energy_of(base)
        critic_e = energy_of(critic)
        saving = savings(base_e, critic_e)

        rows.append(Fig10Row(
            app=name,
            hoist_pct=100 * (speedup(base, hoist) - 1),
            critic_pct=100 * (speedup(base, critic) - 1),
            critic_ideal_pct=100 * (speedup(base, ideal) - 1),
            base_stall_i=base_f["stall_for_i"],
            base_stall_rd=base_f["stall_for_rd"],
            critic_stall_i=critic_f["stall_for_i"],
            critic_stall_rd=critic_f["stall_for_rd"],
            energy_cpu_pct=saving.cpu_pct_of_soc,
            energy_icache_pct=saving.icache_pct_of_soc,
            energy_memory_pct=saving.memory_pct_of_soc,
            energy_total_pct=saving.total_pct_of_soc,
            energy_cpu_only_pct=saving.cpu_only_pct,
        ))

    def mean_pct(values: List[float]) -> float:
        ratios = [1 + v / 100 for v in values]
        return 100 * (geometric_mean(ratios) - 1)

    return Fig10Result(
        rows=rows,
        mean_hoist_pct=mean_pct([r.hoist_pct for r in rows]),
        mean_critic_pct=mean_pct([r.critic_pct for r in rows]),
        mean_critic_ideal_pct=mean_pct([r.critic_ideal_pct for r in rows]),
        mean_energy_total_pct=sum(r.energy_total_pct for r in rows)
        / len(rows),
        mean_energy_cpu_only_pct=sum(r.energy_cpu_only_pct for r in rows)
        / len(rows),
    )


def format_result(result: Fig10Result) -> str:
    table_a = format_table(
        ["app", "Hoist", "CritIC", "CritIC.Ideal"],
        [[r.app, f"{r.hoist_pct:+.1f}%", f"{r.critic_pct:+.1f}%",
          f"{r.critic_ideal_pct:+.1f}%"] for r in result.rows]
        + [["MEAN", f"{result.mean_hoist_pct:+.1f}%",
            f"{result.mean_critic_pct:+.1f}%",
            f"{result.mean_critic_ideal_pct:+.1f}%"]],
    )
    table_b = format_table(
        ["app", "base F.StallForI", "base F.StallForR+D",
         "critic F.StallForI", "critic F.StallForR+D"],
        [[r.app, f"{r.base_stall_i * 100:.1f}%",
          f"{r.base_stall_rd * 100:.1f}%",
          f"{r.critic_stall_i * 100:.1f}%",
          f"{r.critic_stall_rd * 100:.1f}%"] for r in result.rows],
    )
    table_c = format_table(
        ["app", "CPU", "i-cache", "memory", "SoC total", "CPU-only"],
        [[r.app, f"{r.energy_cpu_pct:+.2f}%",
          f"{r.energy_icache_pct:+.2f}%", f"{r.energy_memory_pct:+.2f}%",
          f"{r.energy_total_pct:+.2f}%", f"{r.energy_cpu_only_pct:+.2f}%"]
         for r in result.rows],
    )
    return (
        "Fig 10a: speedup over baseline\n"
        f"{table_a}\n\n"
        "Fig 10b: fetch-stall fractions, baseline vs CritIC\n"
        f"{table_b}\n\n"
        "Fig 10c: energy savings (% of baseline SoC energy)\n"
        f"{table_c}"
    )
