"""Declarative sweep engine: app x scheme x config grids from one spec.

A :class:`SweepSpec` names *what* to evaluate — apps, compiler schemes,
and hardware configurations, each by registry name — plus optional
component overrides (extra prefetchers, an i-cache replacement policy, a
branch predictor) applied uniformly to every configuration.  The engine
resolves names through :mod:`repro.registry` (typos get did-you-mean
suggestions), fans the grid out through the parallel, artifact-cached
:func:`repro.experiments.runner.run_apps`, writes a ``sweep`` run
manifest carrying the versioned component identities, and renders a
comparison table.

The figure modules are thin layers over this: each declares its grid as
a spec, calls :func:`run_sweep`, and keeps only its figure-specific
post-processing.  The CLI makes ad-hoc studies one-liners::

    python -m repro.experiments.sweep \
        --apps Music,Email --schemes baseline,critic \
        --configs google-tablet,trrip-icache \
        --prefetcher critical-nextline

    python -m repro.experiments.sweep --list   # registered components
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cpu import CpuConfig, SimStats, speedup
from repro.cpu.engines import ENV_ENGINE
from repro.experiments.runner import (
    DEFAULT_WALK_BLOCKS,
    _batch_manifest_block,
    app_context,
    format_table,
    geometric_mean,
    last_dispatch_report,
    run_apps,
)
from repro.registry import (
    BRANCH_PREDICTORS,
    EXECUTORS,
    HARDWARE_CONFIGS,
    ICACHE_POLICIES,
    PREFETCHERS,
    SCHEME_RECIPES,
    SIMULATORS,
    WORKLOAD_FAMILIES,
    all_registries,
    component_identity,
)
from repro.telemetry import span
from repro.telemetry.manifest import record_run


@dataclass(frozen=True)
class SweepSpec:
    """One declarative grid: everything is addressed by registry name."""

    apps: Tuple[str, ...]
    schemes: Tuple[str, ...] = ("baseline",)
    #: hardware configurations, by :data:`~repro.registry.HARDWARE_CONFIGS`
    #: name
    configs: Tuple[str, ...] = ("google-tablet",)
    #: extra prefetcher components layered onto *every* config
    prefetchers: Tuple[str, ...] = ()
    #: i-cache replacement policy override for every config
    icache_policy: Optional[str] = None
    #: branch predictor override for every config
    branch_predictor: Optional[str] = None
    walk_blocks: Optional[int] = None
    jobs: Optional[int] = None
    #: execution backend, by :data:`~repro.registry.EXECUTORS` name
    #: (``None`` defers to ``REPRO_EXECUTOR`` / the runner default)
    executor: Optional[str] = None
    #: simulation engine, by :data:`~repro.registry.SIMULATORS` name
    #: (``None`` defers to ``REPRO_SIM_ENGINE`` / ``inline``); engines
    #: are bit-identical, so this changes wall time, never numbers
    engine: Optional[str] = None
    #: workload family (scenario generator), by
    #: :data:`~repro.registry.WORKLOAD_FAMILIES` name (``None`` means
    #: the ``default`` catalog generator).  Unlike ``engine``, the
    #: family *changes the numbers*, so its versioned identity folds
    #: into the stats cache keys and the manifest ``config_hash``
    #: whenever it is not ``default``.
    workload_family: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe payload form — what ``repro.serve`` jobs and the
        loadgen ship over the wire.  Only non-default fields are
        emitted, so payloads stay small and diff-friendly."""
        record: Dict[str, object] = {"apps": list(self.apps)}
        if self.schemes != ("baseline",):
            record["schemes"] = list(self.schemes)
        if self.configs != ("google-tablet",):
            record["configs"] = list(self.configs)
        if self.prefetchers:
            record["prefetchers"] = list(self.prefetchers)
        for key in ("icache_policy", "branch_predictor", "walk_blocks",
                    "jobs", "executor", "engine", "workload_family"):
            value = getattr(self, key)
            if value is not None:
                record[key] = value
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "SweepSpec":
        """Rebuild a spec from :meth:`to_dict` output (or hand-written
        JSON).  Unknown keys raise ``ValueError`` naming them — a job
        payload with a typoed field should fail loudly at admission,
        not silently sweep the default grid."""
        if not isinstance(record, dict):
            raise ValueError(
                f"sweep spec must be a JSON object, got "
                f"{type(record).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(record) - known)
        if unknown:
            raise ValueError(
                f"unknown sweep spec field(s): {', '.join(unknown)} "
                f"(expected a subset of {', '.join(sorted(known))})"
            )
        if not record.get("apps"):
            raise ValueError("sweep spec needs a non-empty 'apps' list")
        kwargs: Dict[str, object] = dict(record)
        for key in ("apps", "schemes", "configs", "prefetchers"):
            if key in kwargs:
                value = kwargs[key]
                if isinstance(value, str):
                    value = [part.strip() for part in value.split(",")
                             if part.strip()]
                kwargs[key] = tuple(str(v) for v in value)
        return cls(**kwargs)  # type: ignore[arg-type]

    def validate(self) -> None:
        """Resolve every name now so typos fail before any work starts
        (each lookup raises a did-you-mean ``RegistryError``)."""
        for scheme in self.schemes:
            SCHEME_RECIPES.identity(scheme)
        for config in self.configs:
            HARDWARE_CONFIGS.identity(config)
        for name in self.prefetchers:
            PREFETCHERS.identity(name)
        if self.icache_policy is not None:
            ICACHE_POLICIES.identity(self.icache_policy)
        if self.branch_predictor is not None:
            BRANCH_PREDICTORS.identity(self.branch_predictor)
        if self.executor is not None:
            EXECUTORS.identity(self.executor)
        if self.engine is not None:
            SIMULATORS.identity(self.engine)
        if self.workload_family is not None:
            WORKLOAD_FAMILIES.identity(self.workload_family)

    def resolve_configs(self) -> Tuple[CpuConfig, ...]:
        """Materialize the named configs with the overrides applied."""
        overrides = (self.prefetchers or self.icache_policy is not None
                     or self.branch_predictor is not None)
        configs: List[CpuConfig] = []
        for name in self.configs:
            config = HARDWARE_CONFIGS.create(name)
            if overrides:
                config = config.with_components(
                    prefetchers=self.prefetchers or None,
                    icache_policy=self.icache_policy,
                    branch_predictor=self.branch_predictor,
                )
            configs.append(config)
        return tuple(configs)


@dataclass
class SweepResult:
    """The materialized grid plus the resolved configurations."""

    spec: SweepSpec
    configs: Tuple[CpuConfig, ...]
    #: app -> (scheme, config.name) -> SimStats
    grid: Dict[str, Dict[Tuple[str, str], SimStats]] = \
        field(default_factory=dict)

    def cell(self, app: str, scheme: str, config_name: str) -> SimStats:
        return self.grid[app][(scheme, config_name)]

    def config_names(self) -> Tuple[str, ...]:
        return tuple(config.name for config in self.configs)

    def comparison_table(self) -> str:
        """Cycles per scheme, and speedup vs the spec's first scheme.

        One row per app x config; a GEOMEAN row per config summarizes the
        speedup columns (cycle counts don't average meaningfully across
        apps, ratios do).
        """
        schemes = self.spec.schemes
        base_scheme = schemes[0]
        headers = ["app", "config"]
        headers += [f"{scheme}:cycles" for scheme in schemes]
        headers += [f"{scheme}:speedup" for scheme in schemes[1:]]
        rows: List[List[str]] = []
        for config in self.configs:
            ratios: Dict[str, List[float]] = {s: [] for s in schemes[1:]}
            for app in self.spec.apps:
                base = self.cell(app, base_scheme, config.name)
                row = [app, config.name]
                row += [str(self.cell(app, s, config.name).cycles)
                        for s in schemes]
                for scheme in schemes[1:]:
                    ratio = speedup(base, self.cell(app, scheme,
                                                    config.name))
                    ratios[scheme].append(ratio)
                    row.append(f"{100 * (ratio - 1):+.2f}%")
                rows.append(row)
            if schemes[1:] and len(self.spec.apps) > 1:
                mean_row = ["GEOMEAN", config.name]
                mean_row += ["-"] * len(schemes)
                mean_row += [
                    f"{100 * (geometric_mean(ratios[s]) - 1):+.2f}%"
                    for s in schemes[1:]
                ]
                rows.append(mean_row)
        return format_table(headers, rows)


def run_sweep(spec: SweepSpec) -> SweepResult:
    """Validate, materialize, and manifest one declarative sweep."""
    spec.validate()
    configs = spec.resolve_configs()
    started = time.perf_counter()
    with span("sweep", apps=len(spec.apps),
              schemes=",".join(spec.schemes),
              configs=",".join(spec.configs)):
        grid = run_apps(
            spec.apps, spec.schemes, jobs=spec.jobs, configs=configs,
            walk_blocks=spec.walk_blocks, executor=spec.executor,
            engine=spec.engine, workload_family=spec.workload_family,
        )
    blocks = spec.walk_blocks if spec.walk_blocks is not None \
        else DEFAULT_WALK_BLOCKS
    report = last_dispatch_report()
    family = spec.workload_family or "default"
    engine_name = (spec.engine or os.environ.get(ENV_ENGINE, "")).strip() \
        or "inline"
    # Like the runner manifest: engine identity recorded, config_hash
    # engine-blind (engines are bit-identical).
    extra: Dict[str, object] = {
        "engine": SIMULATORS.identity(engine_name),
    }
    if report:
        extra["dispatch"] = report.to_dict()
    batch_block = _batch_manifest_block()
    if batch_block:
        extra["batch"] = batch_block
    record_run(
        "sweep",
        apps=list(spec.apps),
        schemes=list(spec.schemes),
        configs=[config.name for config in configs],
        walk_blocks=blocks,
        seeds={name: app_context(name, blocks, family).app_profile.seed
               for name in spec.apps},
        wall_s=time.perf_counter() - started,
        components={config.name: component_identity(config)
                    for config in configs},
        workload_family=WORKLOAD_FAMILIES.identity(family),
        extra=extra,
    )
    return SweepResult(spec=spec, configs=configs, grid=grid)


# -- CLI ----------------------------------------------------------------------


def _csv(value: str) -> Tuple[str, ...]:
    return tuple(part.strip() for part in value.split(",") if part.strip())


#: display titles for :func:`repro.registry.all_registries` keys whose
#: snake_case form doesn't read well as-is.
_SECTION_TITLES = {"icache_policies": "i-cache policies"}


def list_components() -> str:
    """Render every registry's contents (the ``--list`` output).

    Enumerates :func:`repro.registry.all_registries`, so a newly added
    registry (like the workload families) appears here — and in the
    serve ``/healthz`` payload, which reads the same source — without
    touching this function.
    """
    lines: List[str] = []
    for key, registry in all_registries().items():
        title = _SECTION_TITLES.get(key, key.replace("_", " "))
        identities = ", ".join(registry.identity(name)
                               for name in registry.names())
        lines.append(f"{title}: {identities}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.sweep",
        description="Run a declarative app x scheme x config sweep "
                    "(components resolved by registry name).",
    )
    parser.add_argument("--apps", type=_csv, default=(),
                        help="comma-separated app names (required unless "
                             "--list)")
    parser.add_argument("--schemes", type=_csv,
                        default=("baseline", "critic"),
                        help="comma-separated scheme names "
                             "(default: baseline,critic)")
    parser.add_argument("--configs", type=_csv,
                        default=("google-tablet",),
                        help="comma-separated hardware config names "
                             "(default: google-tablet)")
    parser.add_argument("--prefetcher", action="append", default=[],
                        metavar="NAME",
                        help="extra prefetcher component for every config "
                             "(repeatable)")
    parser.add_argument("--icache-policy", default=None, metavar="NAME",
                        help="i-cache replacement policy override")
    parser.add_argument("--branch-predictor", default=None, metavar="NAME",
                        help="branch predictor override")
    parser.add_argument("--walk-blocks", type=int, default=None,
                        help="dynamic block budget per app walk")
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel worker count (default REPRO_JOBS "
                             "or the CPU count)")
    parser.add_argument("--executor", default=None, metavar="NAME",
                        help="execution backend: inline, pool, or fleet "
                             "(default REPRO_EXECUTOR or pool)")
    parser.add_argument("--engine", default=None, metavar="NAME",
                        help="simulation engine: inline or batch "
                             "(default REPRO_SIM_ENGINE or inline; "
                             "bit-identical results either way)")
    parser.add_argument("--workload-family", default=None, metavar="NAME",
                        help="workload family (scenario generator): "
                             "default, phased, bursty, zipfian-footprint, "
                             "netbound, vecmobile, or trace-replay "
                             "(changes the numbers; folded into cache "
                             "keys and config_hash when not default)")
    parser.add_argument("--cache-backend", default=None, metavar="SPEC",
                        help="artifact-cache backend spec: local, "
                             "local:/root, remote:HOST:PORT, or "
                             "tiered:HOST:PORT (default "
                             "REPRO_CACHE_BACKEND or local); exported "
                             "to the environment so pool/fleet workers "
                             "inherit it")
    parser.add_argument("--progress", action="store_true",
                        help="render a live progress line (cells done/"
                             "cached/retried/fallback, instr/s) from "
                             "the structured event stream while the "
                             "sweep runs")
    parser.add_argument("--list", action="store_true", dest="list_all",
                        help="list registered components and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_all:
        print(list_components())
        return 0
    if not args.apps:
        print("error: --apps is required (or use --list)",
              file=sys.stderr)
        return 2
    if args.cache_backend is not None:
        from repro.cache import (ENV_BACKEND, parse_backend_spec,
                                 reset_cache)

        try:
            parse_backend_spec(args.cache_backend)
        except ValueError as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        os.environ[ENV_BACKEND] = args.cache_backend
        reset_cache()
    spec = SweepSpec(
        apps=args.apps,
        schemes=args.schemes,
        configs=args.configs,
        prefetchers=tuple(args.prefetcher),
        icache_policy=args.icache_policy,
        branch_predictor=args.branch_predictor,
        walk_blocks=args.walk_blocks,
        jobs=args.jobs,
        executor=args.executor,
        engine=args.engine,
        workload_family=args.workload_family,
    )
    try:
        if args.progress:
            result = _run_with_progress(spec)
        else:
            result = run_sweep(spec)
    except KeyError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    print(result.comparison_table())
    return 0


def _run_with_progress(spec: SweepSpec) -> SweepResult:
    """:func:`run_sweep` with a live event-stream progress line.

    When ``REPRO_EVENTS`` is already set the renderer tails that log;
    otherwise a temporary event log is wired up (exported through the
    environment so pool/fleet workers inherit it) and removed after the
    final summary line.
    """
    import tempfile

    from repro.telemetry.events import ENV_EVENTS
    from repro.telemetry.live import ProgressRenderer

    path = os.environ.get(ENV_EVENTS, "").strip()
    ephemeral = not path or path == "0"
    if ephemeral:
        fd, path = tempfile.mkstemp(prefix="repro-events-",
                                    suffix=".jsonl")
        os.close(fd)
        os.environ[ENV_EVENTS] = path
    try:
        with ProgressRenderer(path):
            return run_sweep(spec)
    finally:
        if ephemeral:
            os.environ.pop(ENV_EVENTS, None)
            try:
                os.unlink(path)
            except OSError:
                pass


if __name__ == "__main__":
    sys.exit(main())
