"""Fig 5 — IC shapes and CritIC coverage.

(a) IC length and dynamic spread: mobile chains are short (~<=20 members)
    and tightly packed (spread <= ~hundreds of instructions); SPEC chains
    run to the hundreds and spread over thousands.
(b) CDF of dynamic coverage by unique CritICs, and the sub-CDF of those
    directly representable in the 16-bit format (all-or-nothing rule) —
    the representable set stays within a few percent of the full set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dfg import ChainStats, Dfg, iter_maximal_chains
from repro.experiments.fig01 import GROUPS, _group_names
from repro.experiments.runner import app_context, format_table
from repro.telemetry import spanned


@dataclass
class Fig05aRow:
    group: str
    max_length: int
    mean_length: float
    max_spread: int
    mean_spread: float


@dataclass
class Fig05bRow:
    app: str
    unique_chains: int
    total_coverage_pct: float
    encodable_coverage_pct: float
    table_bytes: int


@dataclass
class Fig05Result:
    chain_stats: List[Fig05aRow]
    coverage: List[Fig05bRow]
    #: per-app coverage CDFs (all chains), truncated to first 50 points
    cdfs: Dict[str, List[float]]


@spanned("fig05.run")
def run(per_group: Optional[int] = None,
        walk_blocks: Optional[int] = None,
        mobile_apps: Optional[int] = 4) -> Fig05Result:
    """Reproduce Fig 5; Fig 5b covers the (first N) mobile apps."""
    stats_rows: List[Fig05aRow] = []
    for group in GROUPS:
        max_len = 0
        mean_len = 0.0
        max_spread = 0
        mean_spread = 0.0
        names = _group_names(group, per_group)
        for name in names:
            ctx = app_context(name, walk_blocks)
            dfg = Dfg(ctx.trace())
            stats = ChainStats.from_chains(list(iter_maximal_chains(dfg)))
            max_len = max(max_len, stats.max_length)
            mean_len += stats.mean_length
            max_spread = max(max_spread, stats.max_spread)
            mean_spread += stats.mean_spread
        count = len(names)
        stats_rows.append(Fig05aRow(
            group=group, max_length=max_len,
            mean_length=mean_len / count,
            max_spread=max_spread, mean_spread=mean_spread / count,
        ))

    coverage_rows: List[Fig05bRow] = []
    cdfs: Dict[str, List[float]] = {}
    for name in _group_names("mobile", mobile_apps):
        ctx = app_context(name, walk_blocks)
        profile = ctx.critic_profile()
        coverage_rows.append(Fig05bRow(
            app=name,
            unique_chains=len(profile),
            total_coverage_pct=100 * profile.total_coverage(),
            encodable_coverage_pct=100 * profile.total_coverage(
                encodable_only=True
            ),
            table_bytes=profile.table_bytes(),
        ))
        cdfs[name] = profile.coverage_cdf()[:50]
    return Fig05Result(chain_stats=stats_rows, coverage=coverage_rows,
                       cdfs=cdfs)


def format_result(result: Fig05Result) -> str:
    table_a = format_table(
        ["group", "max IC len", "mean IC len", "max spread", "mean spread"],
        [[r.group, str(r.max_length), f"{r.mean_length:.1f}",
          str(r.max_spread), f"{r.mean_spread:.1f}"]
         for r in result.chain_stats],
    )
    table_b = format_table(
        ["app", "unique CritICs", "coverage", "16-bit-able coverage",
         "table size"],
        [[r.app, str(r.unique_chains), f"{r.total_coverage_pct:.1f}%",
          f"{r.encodable_coverage_pct:.1f}%", f"{r.table_bytes}B"]
         for r in result.coverage],
    )
    return (
        "Fig 5a: IC length and spread by workload group\n"
        f"{table_a}\n\n"
        "Fig 5b: unique-CritIC dynamic coverage (and Thumb-encodable subset)\n"
        f"{table_b}"
    )
