"""Consolidated reproduction report: every figure/table in one run.

Command line::

    python -m repro.experiments.report                 # everything
    python -m repro.experiments.report fig10 fig13     # a subset
    python -m repro.experiments.report --walk 800 --apps 10 --out report.txt
    python -m repro.experiments.report fig10 --perf    # + telemetry section

Runs each figure module at the requested scale and emits the same rows the
paper reports, ready to diff against EXPERIMENTS.md.  Section headers
carry the per-figure wall time; ``--perf`` appends the telemetry report
(phase timers with self vs cumulative time, counters) to the chosen
output stream(s) instead of relying on the ``REPRO_PERF=1``
stderr-at-exit hook.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional, TextIO

from repro import telemetry
from repro.cpu import format_table1
from repro.experiments import (
    fig01,
    fig03,
    fig05,
    fig08,
    fig10,
    fig11,
    fig12,
    fig13,
)
from repro.workloads import format_table2


def _section(title: str) -> str:
    bar = "=" * len(title)
    return f"\n{bar}\n{title}\n{bar}\n"


def run_table1(_walk: Optional[int], _apps: Optional[int],
               _group: Optional[int]) -> str:
    return "Table I: baseline configuration\n" + format_table1()


def run_table2(_walk: Optional[int], _apps: Optional[int],
               _group: Optional[int]) -> str:
    return "Table II: evaluated workloads\n" + format_table2()


def run_fig01(walk, apps, group):
    return fig01.format_result(fig01.run(per_group=group, walk_blocks=walk))


def run_fig03(walk, apps, group):
    return fig03.format_result(fig03.run(per_group=group, walk_blocks=walk))


def run_fig05(walk, apps, group):
    return fig05.format_result(
        fig05.run(per_group=group, walk_blocks=walk, mobile_apps=apps)
    )


def run_fig08(walk, apps, group):
    return fig08.format_result(fig08.run(apps=apps, walk_blocks=walk))


def run_fig10(walk, apps, group):
    return fig10.format_result(fig10.run(apps=apps, walk_blocks=walk))


def run_fig11(walk, apps, group):
    capped = min(apps or 6, 6)
    return fig11.format_result(fig11.run(apps=capped, walk_blocks=walk))


def run_fig12(walk, apps, group):
    capped = min(apps or 3, 4)
    text_a = fig12.format_length(
        fig12.run_length_sensitivity(apps=capped, walk_blocks=walk))
    text_b = fig12.format_profile(
        fig12.run_profile_sensitivity(apps=capped, walk_blocks=walk))
    return f"{text_a}\n\n{text_b}"


def run_fig13(walk, apps, group):
    return fig13.format_result(fig13.run(apps=apps, walk_blocks=walk))


#: All report sections in presentation order.
SECTIONS: Dict[str, Callable] = {
    "table1": run_table1,
    "table2": run_table2,
    "fig01": run_fig01,
    "fig03": run_fig03,
    "fig05": run_fig05,
    "fig08": run_fig08,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
}


def generate_report(
    sections: Optional[List[str]] = None,
    walk: Optional[int] = None,
    apps: Optional[int] = None,
    per_group: Optional[int] = 4,
    stream: Optional[TextIO] = None,
    perf: bool = False,
) -> str:
    """Run the requested sections and return (and optionally stream) the
    consolidated report text.

    Each section header carries that figure's wall time; ``perf=True``
    appends a final ``telemetry`` section with the phase/counter report
    accumulated across the run (worker processes included).
    """
    chosen = sections or list(SECTIONS)
    unknown = [s for s in chosen if s not in SECTIONS]
    if unknown:
        raise KeyError(
            f"unknown sections {unknown}; choose from {sorted(SECTIONS)}"
        )
    parts: List[str] = []

    def emit(text: str) -> None:
        parts.append(text)
        if stream is not None:
            stream.write(text + "\n")
            stream.flush()

    for name in chosen:
        started = time.time()
        with telemetry.span(f"report.{name}"):
            body = SECTIONS[name](walk, apps, per_group)
        elapsed = time.time() - started
        emit(_section(f"{name}  (wall {elapsed:.1f}s)") + body)
    if perf:
        emit(_section("telemetry") + telemetry.report())
    return "\n".join(parts)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables/figures.")
    parser.add_argument("sections", nargs="*",
                        help=f"sections to run ({', '.join(SECTIONS)})")
    parser.add_argument("--walk", type=int, default=None,
                        help="dynamic blocks per workload")
    parser.add_argument("--apps", type=int, default=None,
                        help="number of mobile apps (default: all)")
    parser.add_argument("--group", type=int, default=4,
                        help="benchmarks per SPEC group")
    parser.add_argument("--out", type=str, default=None,
                        help="also write the report to this file")
    parser.add_argument("--perf", action="store_true",
                        help="append the telemetry (phase/counter) report")
    args = parser.parse_args(argv)

    report = generate_report(
        sections=args.sections or None,
        walk=args.walk, apps=args.apps, per_group=args.group,
        stream=sys.stdout, perf=args.perf,
    )
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
