"""Fig 8 — Approach 1: format switching with branches on stock hardware.

The branch-pair switch (a 32-bit branch-to-next entering Thumb mode, a
16-bit branch-to-next leaving it) needs no new hardware but pays two extra
instructions and a fetch bubble per chain — for typical length-5 chains the
overhead eats most of the benefit.  The "lost potential" series is the same
chains optimized with the free CDP switch (Approach 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cpu import speedup
from repro.experiments.fig01 import _group_names
from repro.experiments.runner import (
    app_context,
    format_table,
    geometric_mean,
)
from repro.experiments.sweep import SweepSpec, run_sweep
from repro.telemetry import spanned


@dataclass
class Fig08Row:
    app: str
    branch_switch_pct: float   # Approach 1 (achievable on stock hardware)
    cdp_switch_pct: float      # the potential (Approach 2)

    @property
    def lost_potential_pct(self) -> float:
        return self.cdp_switch_pct - self.branch_switch_pct


@dataclass
class Fig08Result:
    rows: List[Fig08Row]
    mean_branch_pct: float
    mean_cdp_pct: float


@spanned("fig08.run")
def run(apps: Optional[int] = None,
        walk_blocks: Optional[int] = None) -> Fig08Result:
    rows: List[Fig08Row] = []
    names = _group_names("mobile", apps)
    run_sweep(SweepSpec(
        apps=tuple(names),
        schemes=("baseline", "branch", "critic"),
        walk_blocks=walk_blocks,
    ))
    for name in names:
        ctx = app_context(name, walk_blocks)
        base = ctx.stats("baseline")
        branch = ctx.stats("branch")
        cdp = ctx.stats("critic")
        rows.append(Fig08Row(
            app=name,
            branch_switch_pct=100 * (speedup(base, branch) - 1),
            cdp_switch_pct=100 * (speedup(base, cdp) - 1),
        ))
    mean = lambda vals: 100 * (geometric_mean(
        [1 + v / 100 for v in vals]) - 1)
    return Fig08Result(
        rows=rows,
        mean_branch_pct=mean([r.branch_switch_pct for r in rows]),
        mean_cdp_pct=mean([r.cdp_switch_pct for r in rows]),
    )


def format_result(result: Fig08Result) -> str:
    table = format_table(
        ["app", "branch-switch (HW today)", "CDP switch", "lost potential"],
        [[r.app, f"{r.branch_switch_pct:+.1f}%",
          f"{r.cdp_switch_pct:+.1f}%", f"{r.lost_potential_pct:+.1f}%"]
         for r in result.rows]
        + [["MEAN", f"{result.mean_branch_pct:+.1f}%",
            f"{result.mean_cdp_pct:+.1f}%",
            f"{result.mean_cdp_pct - result.mean_branch_pct:+.1f}%"]],
    )
    return "Fig 8: Approach-1 branch switching vs the CDP potential\n" + table
