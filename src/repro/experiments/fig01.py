"""Fig 1 — single-instruction criticality does not help mobile apps.

(a) Mean speedup of critical-load prefetching [18] and ALU/back-end
    prioritization [32,33] on SPEC.int, SPEC.float, and the mobile suite,
    plus (right axis) the fraction of dynamic instructions that are
    critical (high fanout) — higher for mobile despite the lower gains.
(b) Distribution of the number of low-fanout instructions between two
    successive high-fanout instructions in a dependence chain: SPEC mass
    sits at "none"/0, Android mass at gaps 1..5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cpu import (
    config_backend_prio,
    config_critical_prefetch,
    speedup,
)
from repro.cache import artifact_key, get_cache
from repro.dfg import Dfg, critical_fraction, gap_histogram
from repro.experiments.runner import (
    app_context,
    format_table,
    geometric_mean,
)
from repro.experiments.sweep import SweepSpec, run_sweep
from repro.workloads import (
    mobile_app_names,
    spec_float_names,
    spec_int_names,
)
from repro.telemetry import spanned

#: Workload groups evaluated, in the paper's presentation order.
GROUPS = ("spec_int", "spec_float", "mobile")


def _group_names(group: str, per_group: Optional[int]) -> List[str]:
    names = {
        "spec_int": list(spec_int_names()),
        "spec_float": list(spec_float_names()),
        "mobile": list(mobile_app_names()),
    }[group]
    return names[:per_group] if per_group else names


@dataclass
class Fig01Row:
    """Per-group results for Fig 1a."""

    group: str
    prefetch_speedup_pct: float
    prioritization_speedup_pct: float
    critical_fraction_pct: float


@dataclass
class Fig01Result:
    rows: List[Fig01Row]
    #: Fig 1b: group -> gap-label -> fraction
    gap_histograms: Dict[str, Dict[str, float]]


@spanned("fig01.run")
def run(per_group: Optional[int] = None,
        walk_blocks: Optional[int] = None) -> Fig01Result:
    """Reproduce Fig 1 (optionally on a subset of apps per group)."""
    rows: List[Fig01Row] = []
    gaps: Dict[str, Dict[str, float]] = {}

    all_names = [n for g in GROUPS for n in _group_names(g, per_group)]
    run_sweep(SweepSpec(
        apps=tuple(all_names),
        schemes=("baseline",),
        configs=("google-tablet", "CritLoadPrefetch", "BackendPrio"),
        walk_blocks=walk_blocks,
    ))

    for group in GROUPS:
        prefetch_ratios: List[float] = []
        prio_ratios: List[float] = []
        crit_fracs: List[float] = []
        gap_acc: Dict[str, float] = {}
        names = _group_names(group, per_group)
        for name in names:
            ctx = app_context(name, walk_blocks)
            base = ctx.stats("baseline")
            prefetch = ctx.stats("baseline", config_critical_prefetch())
            prio = ctx.stats("baseline", config_backend_prio())
            prefetch_ratios.append(speedup(base, prefetch))
            prio_ratios.append(speedup(base, prio))

            cache = get_cache()
            dfg_key = artifact_key("fig01_dfg", profile=ctx.app_profile)
            cell = cache.load_json("fig01_dfg", dfg_key)
            if cell is None:
                dfg = Dfg(ctx.trace())
                # The histogram's key order is presentation order — store
                # it as pairs so the JSON round-trip preserves it.
                cell = {
                    "critical_fraction": critical_fraction(dfg.fanouts),
                    "gap_histogram": list(gap_histogram(dfg).items()),
                }
                cache.store_json("fig01_dfg", dfg_key, cell)
            crit_fracs.append(cell["critical_fraction"])
            for label, value in cell["gap_histogram"]:
                gap_acc[label] = gap_acc.get(label, 0.0) + value
        count = len(names)
        rows.append(Fig01Row(
            group=group,
            prefetch_speedup_pct=100 * (geometric_mean(prefetch_ratios) - 1),
            prioritization_speedup_pct=100 * (geometric_mean(prio_ratios) - 1),
            critical_fraction_pct=100 * sum(crit_fracs) / count,
        ))
        gaps[group] = {k: v / count for k, v in gap_acc.items()}

    return Fig01Result(rows=rows, gap_histograms=gaps)


def format_result(result: Fig01Result) -> str:
    """Render Fig 1a + Fig 1b as text tables."""
    table_a = format_table(
        ["group", "prefetch-speedup", "prioritize-speedup", "critical-instr%"],
        [[r.group,
          f"{r.prefetch_speedup_pct:+.2f}%",
          f"{r.prioritization_speedup_pct:+.2f}%",
          f"{r.critical_fraction_pct:.2f}%"]
         for r in result.rows],
    )
    gap_keys = list(next(iter(result.gap_histograms.values())).keys())
    table_b = format_table(
        ["group"] + gap_keys,
        [[group] + [f"{hist.get(k, 0.0) * 100:.0f}%" for k in gap_keys]
         for group, hist in result.gap_histograms.items()],
    )
    return (
        "Fig 1a: single-instruction criticality optimizations\n"
        f"{table_a}\n\n"
        "Fig 1b: low-fanout gap between successive criticals in a chain\n"
        f"{table_b}"
    )
