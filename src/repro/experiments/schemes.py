"""Compiler-scheme recipes (the :data:`repro.registry.SCHEME_RECIPES`
built-ins).

Each recipe builds the compiler pass pipeline for one evaluated scheme
from an :class:`~repro.experiments.runner.AppContext` — the paper's eight
schemes are registered here in canonical presentation order (baseline,
Hoist, CritIC, CritIC.Ideal, Approach-1 branch switching, OPP16,
Compress, OPP16+CritIC), and :data:`repro.experiments.runner.SCHEMES` is
derived from that registration order.  A plugin that registers a ninth
recipe automatically shows up in ``scheme_trace``, the sweep engine, and
the fuzzer's scheme loop.

Recipes only touch the context surfaces the :class:`SchemeRecipe`
protocol documents (``workload``, ``critic_profile``); pulling the
CritIC profile lazily means profile-free schemes (OPP16, Compress) never
pay for profiling.
"""

from __future__ import annotations

from repro.compiler import (
    CompressPass,
    CriticPass,
    Opp16Pass,
    region_oracle,
)
from repro.registry import SCHEME_RECIPES


def _critic_records(ctx, max_length: int, profiled_fraction: float):
    profile = ctx.critic_profile(profiled_fraction=profiled_fraction)
    return profile.select_for_compiler(max_length=max_length)


@SCHEME_RECIPES.register("baseline", version=1)
def baseline(ctx, max_length, profiled_fraction):
    """Unmodified A32 program: the empty pass pipeline."""
    return []


@SCHEME_RECIPES.register("hoist", version=1)
def hoist(ctx, max_length, profiled_fraction):
    """Chain hoisting only (reorder, no re-encoding)."""
    return [CriticPass(_critic_records(ctx, max_length, profiled_fraction),
                       mode="hoist",
                       may_alias=region_oracle(ctx.workload.memory))]


@SCHEME_RECIPES.register("critic", version=1)
def critic(ctx, max_length, profiled_fraction):
    """The deployable CritIC scheme: hoist + CDP-bracketed Thumb."""
    return [CriticPass(_critic_records(ctx, max_length, profiled_fraction),
                       mode="cdp",
                       may_alias=region_oracle(ctx.workload.memory))]


@SCHEME_RECIPES.register("critic_ideal", version=1)
def critic_ideal(ctx, max_length, profiled_fraction):
    """CritIC.Ideal upper bound: no length/encodability constraints."""
    ideal_profile = ctx.critic_profile(max_length=20)
    ideal_records = ideal_profile.select_for_compiler(
        max_length=None, require_thumb=False,
    )
    return [CriticPass(ideal_records, mode="cdp", ideal=True,
                       may_alias=region_oracle(ctx.workload.memory))]


@SCHEME_RECIPES.register("branch", version=1)
def branch(ctx, max_length, profiled_fraction):
    """Approach-1 comparison: mode switching via branch pairs."""
    return [CriticPass(_critic_records(ctx, max_length, profiled_fraction),
                       mode="branch",
                       may_alias=region_oracle(ctx.workload.memory))]


@SCHEME_RECIPES.register("opp16", version=1)
def opp16(ctx, max_length, profiled_fraction):
    """OPP16: whole-function opportunistic Thumb re-encoding."""
    return [Opp16Pass()]


@SCHEME_RECIPES.register("compress", version=1)
def compress(ctx, max_length, profiled_fraction):
    """Whole-program Thumb compression (max density baseline)."""
    return [CompressPass()]


@SCHEME_RECIPES.register("opp16_critic", version=1)
def opp16_critic(ctx, max_length, profiled_fraction):
    """CritIC followed by OPP16 over the remainder."""
    return [CriticPass(_critic_records(ctx, max_length, profiled_fraction),
                       mode="cdp",
                       may_alias=region_oracle(ctx.workload.memory)),
            Opp16Pass()]
