"""Compiler layer: pass manager and all program transformations."""

from repro.compiler.passes import (
    AliasOracle,
    CompilerPass,
    CompressPass,
    ConstantFoldingPass,
    CriticPass,
    DeadCodePass,
    Opp16Pass,
    PassContext,
    PassManager,
    PipelineResult,
    SimplifierPass,
    conservative_oracle,
    region_oracle,
)

__all__ = [
    "AliasOracle",
    "CompilerPass",
    "CompressPass",
    "ConstantFoldingPass",
    "CriticPass",
    "DeadCodePass",
    "Opp16Pass",
    "PassContext",
    "PassManager",
    "PipelineResult",
    "SimplifierPass",
    "conservative_oracle",
    "region_oracle",
]
