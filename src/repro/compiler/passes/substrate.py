"""ART-style substrate passes: constant folding, simplifier, dead code.

These mirror the stock ART optimizing-compiler passes the paper's CritIC
pass runs after (Sec. III-C: "constant folding, dead code elimination ...
instruction simplifier").  They are deliberately conservative: never touch
memory, branch, flag-setting, or predicated instructions, and never remove a
block's last writer of a register (it may be live-out).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.isa.condition import Cond
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.trace.dependence import writes_flags
from repro.trace.program import Program

from repro.compiler.passes.base import PassContext

_FOLDABLE = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.ORR: lambda a, b: a | b,
    Opcode.EOR: lambda a, b: a ^ b,
    Opcode.LSL: lambda a, b: (a << min(b, 31)) & 0xFFFF_FFFF,
    Opcode.LSR: lambda a, b: a >> min(b, 31),
}


def _is_plain_alu(instr: Instruction) -> bool:
    return (
        instr.opcode in _FOLDABLE
        and instr.cond is Cond.AL
        and not instr.is_memory
    )


class ConstantFoldingPass:
    """Fold ``MOV Rd, #a ; OP Re, Rd, #b`` into ``MOV Re, #(a OP b)``.

    Only fires when the OP immediately follows the MOV (no intervening
    writer of Rd to reason about) and the folded constant stays in 32 bits.
    The MOV itself is kept — Rd may have other readers; the dead-code pass
    cleans it up when it does not.
    """

    name = "constant-folding"

    def run(self, program: Program, ctx: PassContext) -> Program:
        result = program.copy()
        for block in result.blocks:
            instrs = block.instructions
            for i in range(len(instrs) - 1):
                mov, op = instrs[i], instrs[i + 1]
                if mov.opcode is not Opcode.MOV or mov.imm is None:
                    continue
                if mov.cond is not Cond.AL or not mov.dests:
                    continue
                if not _is_plain_alu(op) or op.imm is None:
                    continue
                if op.srcs != (mov.dests[0],) or not op.dests:
                    continue
                if op.dests[0] == mov.dests[0]:
                    continue
                value = _FOLDABLE[op.opcode](mov.imm, op.imm) & 0xFFFF_FFFF
                instrs[i + 1] = replace(
                    op, opcode=Opcode.MOV, srcs=(), imm=value
                )
                ctx.bump(self.name, "folded")
        result.reindex()
        return result


class SimplifierPass:
    """Peephole identities: ``OP Rd, Rs, #0`` -> ``MOV Rd, Rs`` and friends."""

    name = "simplifier"

    _IDENTITY_ZERO = (Opcode.ADD, Opcode.SUB, Opcode.ORR, Opcode.EOR,
                      Opcode.LSL, Opcode.LSR)

    def run(self, program: Program, ctx: PassContext) -> Program:
        result = program.copy()
        for block in result.blocks:
            instrs = block.instructions
            for i, instr in enumerate(instrs):
                if not _is_plain_alu(instr) or instr.imm != 0:
                    continue
                if instr.opcode not in self._IDENTITY_ZERO:
                    continue
                if len(instr.srcs) != 1 or len(instr.dests) != 1:
                    continue
                instrs[i] = replace(
                    instr, opcode=Opcode.MOV, imm=None
                )
                ctx.bump(self.name, "simplified")
        result.reindex()
        return result


class DeadCodePass:
    """Remove instructions whose result is overwritten before any read.

    Block-local and conservative: an instruction is dead only if, within its
    own block, every destination register is rewritten before being read and
    the instruction has no side effects (memory, flags, branch, predication).
    """

    name = "dead-code"

    def run(self, program: Program, ctx: PassContext) -> Program:
        result = program.copy()
        for block in result.blocks:
            keep: List[Instruction] = []
            instrs = block.instructions
            for i, instr in enumerate(instrs):
                if self._is_dead(instrs, i):
                    ctx.bump(self.name, "removed")
                    continue
                keep.append(instr)
            block.instructions = keep
        result.reindex()
        return result

    @staticmethod
    def _is_dead(instrs: List[Instruction], i: int) -> bool:
        instr = instrs[i]
        if (not instr.dests or instr.is_memory or instr.is_branch
                or writes_flags(instr) or instr.cond is not Cond.AL
                or instr.opcode is Opcode.CDP):
            return False
        for dest in instr.dests:
            overwritten = False
            for later in instrs[i + 1:]:
                if dest in later.srcs:
                    return False
                if dest in later.dests and later.cond is Cond.AL:
                    overwritten = True
                    break
            if not overwritten:
                return False  # possibly live-out
        return True
