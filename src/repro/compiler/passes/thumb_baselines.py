"""Criticality-agnostic Thumb-conversion baselines (paper Sec. V).

* :class:`Opp16Pass` — **OPP16**: opportunistically convert any run of at
  least 3 consecutive Thumb-encodable instructions to 16-bit format, without
  reordering anything.  Runs longer than one CDP's reach are split across
  multiple CDP commands.

* :class:`CompressPass` — **Compress**: the Fine-Grained Thumb Conversion
  heuristic of Krishnaswamy & Gupta (LCTES'02) as the paper describes it:
  first convert the whole function to Thumb, then flip "slower Thumb
  instructions" back to 32-bit ARM.  In our model the slow-in-Thumb class is
  the long-latency ops (MUL/DIV); the result converts *more* instructions
  than OPP16 (minimum run length 2) at a higher per-run switch overhead.

Both passes skip instructions that are already 16-bit (so they stack on top
of the CritIC pass for the OPP16+CritIC scheme) and never touch CDP markers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.isa.encoding import is_thumb_encodable
from repro.isa.instruction import Encoding, Instruction, MAX_CDP_COVER
from repro.isa.opcodes import Opcode, is_long_latency
from repro.trace.program import Program

from repro.compiler.passes.base import PassContext


def _convert_runs(
    program: Program,
    instrs: List[Instruction],
    min_run: int,
    eligible,
    ctx: PassContext,
    pass_name: str,
) -> List[Instruction]:
    """Convert maximal runs of ``eligible`` instructions to Thumb + CDPs."""
    out: List[Instruction] = []
    run: List[Instruction] = []

    def flush() -> None:
        if len(run) >= min_run:
            converted = [i.with_encoding(Encoding.THUMB16) for i in run]
            ctx.bump(pass_name, "thumbed", len(converted))
            for start in range(0, len(converted), MAX_CDP_COVER):
                chunk = converted[start:start + MAX_CDP_COVER]
                out.append(
                    Instruction(
                        Opcode.CDP, cdp_cover=len(chunk),
                        encoding=Encoding.THUMB16,
                        uid=program.fresh_uid(),
                    )
                )
                ctx.bump(pass_name, "cdp-commands")
                out.extend(chunk)
        else:
            out.extend(run)
        run.clear()

    for instr in instrs:
        if (instr.encoding is Encoding.ARM32
                and instr.opcode is not Opcode.CDP
                and eligible(instr)):
            run.append(instr)
        else:
            flush()
            out.append(instr)
    flush()
    return out


@dataclass
class Opp16Pass:
    """OPP16: convert every ARM run of >= ``min_run`` encodable instructions.

    The paper's rule: no reordering — an inconvertible instruction between
    two convertible ones simply breaks the run (Sec. V).
    """

    min_run: int = 3
    name: str = "opp16"

    def run(self, program: Program, ctx: PassContext) -> Program:
        result = program.copy()
        for block in result.blocks:
            block.instructions = _convert_runs(
                result, block.instructions, self.min_run,
                is_thumb_encodable, ctx, self.name,
            )
        result.reindex()
        return result


@dataclass
class CompressPass:
    """Fine-Grained Thumb Conversion (Krishnaswamy & Gupta style).

    Whole-function conversion, then slow-in-Thumb instructions (long
    latency ops) revert to ARM; surviving runs of >= 2 are emitted as Thumb.
    """

    min_run: int = 2
    name: str = "compress"

    @staticmethod
    def _eligible(instr: Instruction) -> bool:
        return is_thumb_encodable(instr) and not is_long_latency(instr.opcode)

    def run(self, program: Program, ctx: PassContext) -> Program:
        result = program.copy()
        for block in result.blocks:
            block.instructions = _convert_runs(
                result, block.instructions, self.min_run,
                self._eligible, ctx, self.name,
            )
        result.reindex()
        return result
