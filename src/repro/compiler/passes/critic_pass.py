"""The CritIC instrumentation pass (the paper's core compiler contribution).

For every profiled CritIC in a basic block, the pass

1. **hoists** the chain's member instructions so they sit back-to-back at
   the first member's position (legal because an IC is self-contained:
   no bypassed instruction feeds a chain member — re-checked statically
   here with register, flag, and memory-alias hazard tests), and
2. **re-encodes** the members in the 16-bit Thumb format behind a format
   switch: either the repurposed ``CDP`` command (Approach 2, Sec. IV-B;
   up to 9 members per CDP) or a pair of switch branches (Approach 1,
   Sec. IV-A; works on stock hardware but costs two extra instructions).

Modes:

* ``"cdp"`` — hoist + Thumb conversion with CDP switches (the paper's
  CritIC design);
* ``"branch"`` — hoist + Thumb conversion with branch-pair switches;
* ``"hoist"`` — hoist only, members stay 32-bit (the Hoist ablation).

With ``ideal=True``, the all-or-nothing encodability rule and the length
cap are waived (the CritIC.Ideal upper bound of Sec. IV-E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.isa.encoding import chain_thumb_encodable
from repro.isa.instruction import Encoding, Instruction, MAX_CDP_COVER
from repro.isa.opcodes import Opcode
from repro.profiler.profile_table import CriticRecord
from repro.trace.dependence import reads_flags, writes_flags
from repro.trace.materialize import TableMemoryModel
from repro.trace.program import Program

from repro.compiler.passes.base import PassContext

#: may_alias(load_uid, store_uid) -> bool.  The ART compiler has real alias
#: information; ours comes from the workload memory model's region spans.
AliasOracle = Callable[[int, int], bool]


def conservative_oracle(_load_uid: int, _store_uid: int) -> bool:
    """Assume every load may alias every store (always legal, least chains)."""
    return True


def region_oracle(memory: TableMemoryModel) -> AliasOracle:
    """Alias oracle from access-pattern region spans (the generator's truth)."""

    def may_alias(load_uid: int, store_uid: int) -> bool:
        lo1, hi1 = memory.pattern_for(load_uid).span()
        lo2, hi2 = memory.pattern_for(store_uid).span()
        return lo1 < hi2 and lo2 < hi1

    return may_alias


@dataclass
class CriticPass:
    """Apply CritIC hoisting + Thumb conversion for profiled chains."""

    records: Sequence[CriticRecord]
    mode: str = "cdp"
    ideal: bool = False
    may_alias: AliasOracle = conservative_oracle
    name: str = "critic"

    def __post_init__(self) -> None:
        if self.mode not in ("cdp", "branch", "hoist"):
            raise ValueError(f"unknown mode {self.mode!r}")

    # -- public entry ---------------------------------------------------------

    def run(self, program: Program, ctx: PassContext) -> Program:
        result = program.copy()
        by_block: Dict[int, List[CriticRecord]] = {}
        for record in self.records:
            if record.block_id is not None:
                by_block.setdefault(record.block_id, []).append(record)

        for block_id, records in by_block.items():
            block = result.block(block_id)
            chains = self._plan_block(block.instructions, records, ctx)
            if chains:
                block.instructions = self._rewrite_block(
                    result, block.instructions, chains, ctx
                )
        result.reindex()
        return result

    # -- planning ---------------------------------------------------------------

    def _plan_block(
        self,
        instrs: List[Instruction],
        records: Sequence[CriticRecord],
        ctx: PassContext,
    ) -> List[List[int]]:
        """Choose the chains (as member index lists) to rewrite in a block."""
        index_of = {instr.uid: i for i, instr in enumerate(instrs)}
        claimed: Set[int] = set()
        chains: List[List[int]] = []
        for record in records:
            positions = [index_of.get(uid, -1) for uid in record.uids]
            if any(p < 0 for p in positions) or positions != sorted(positions):
                ctx.bump(self.name, "skipped-missing")
                continue
            if any(p in claimed for p in positions):
                ctx.bump(self.name, "skipped-overlap")
                continue
            members = [instrs[p] for p in positions]
            if not self.ideal and self.mode != "hoist" \
                    and not chain_thumb_encodable(members):
                ctx.bump(self.name, "skipped-encoding")
                continue
            hazard = self._hoist_hazard(instrs, positions)
            if hazard is not None:
                ctx.bump(self.name, "skipped-hazard")
                ctx.bump(self.name, f"hazard-{hazard}")
                continue
            claimed.update(positions)
            chains.append(positions)
        return chains

    def _hoist_hazard(
        self, instrs: List[Instruction], positions: List[int]
    ) -> Optional[str]:
        """Static hazard check for moving all members to positions[0].

        For every member m (after the first) and every *bypassed*
        instruction b between the chain head and m's original slot:

        * b must not write a register m reads (true RAW into the chain —
          would mean the chain was not self-contained),
        * m must not write a register b reads (WAR: b would newly observe
          m's value),
        * flags: same two rules for the flags pseudo-register,
        * memory: a load member must not bypass a store it may alias with,
          and a store member must not bypass a load/store it may alias with.

        Returns the hazard class name, or None when hoisting is legal.
        """
        member_set = set(positions)
        first = positions[0]
        for m_pos in positions[1:]:
            member = instrs[m_pos]
            m_srcs = set(member.srcs)
            m_dests = set(member.dests)
            for b_pos in range(first + 1, m_pos):
                if b_pos in member_set:
                    continue
                bypassed = instrs[b_pos]
                if m_srcs & set(bypassed.dests):
                    return "raw"
                if m_dests & set(bypassed.srcs):
                    return "war"
                if m_dests & set(bypassed.dests):
                    return "waw"
                if reads_flags(member) and writes_flags(bypassed):
                    return "flags"
                if writes_flags(member) and (reads_flags(bypassed)
                                             or writes_flags(bypassed)):
                    return "flags"
                if member.is_load and bypassed.is_store \
                        and self.may_alias(member.uid, bypassed.uid):
                    return "memory"
                if member.is_store and bypassed.is_memory \
                        and self.may_alias(bypassed.uid, member.uid):
                    return "memory"
        return None

    # -- rewriting ---------------------------------------------------------------

    def _rewrite_block(
        self,
        program: Program,
        instrs: List[Instruction],
        chains: List[List[int]],
        ctx: PassContext,
    ) -> List[Instruction]:
        start_of: Dict[int, List[int]] = {}
        member_positions: Set[int] = set()
        for positions in chains:
            start_of[positions[0]] = positions
            member_positions.update(positions)

        out: List[Instruction] = []
        for i, instr in enumerate(instrs):
            if i in start_of:
                out.extend(
                    self._emit_chain(
                        program, [instrs[p] for p in start_of[i]], ctx
                    )
                )
            elif i not in member_positions:
                out.append(instr)
        return out

    def _emit_chain(
        self,
        program: Program,
        members: List[Instruction],
        ctx: PassContext,
    ) -> List[Instruction]:
        ctx.bump(self.name, "chains")
        ctx.bump(self.name, "members", len(members))

        if self.mode == "hoist":
            return list(members)

        converted = [m.with_encoding(Encoding.THUMB16) for m in members]
        ctx.bump(self.name, "thumbed", len(converted))

        if self.mode == "branch":
            # Approach 1: a 32-bit branch-to-next sets the Thumb flag, a
            # final 16-bit branch-to-next resets it (Sec. IV-A).
            enter = Instruction(Opcode.B, imm=0, uid=program.fresh_uid())
            leave = Instruction(
                Opcode.B, imm=0, encoding=Encoding.THUMB16,
                uid=program.fresh_uid(),
            )
            ctx.bump(self.name, "switch-branches", 2)
            return [enter, *converted, leave]

        # Approach 2: CDP prefixes, each covering up to MAX_CDP_COVER
        # following 16-bit instructions.
        out: List[Instruction] = []
        for start in range(0, len(converted), MAX_CDP_COVER):
            chunk = converted[start:start + MAX_CDP_COVER]
            out.append(
                Instruction(
                    Opcode.CDP, cdp_cover=len(chunk),
                    encoding=Encoding.THUMB16, uid=program.fresh_uid(),
                )
            )
            ctx.bump(self.name, "cdp-commands")
            out.extend(chunk)
        return out
