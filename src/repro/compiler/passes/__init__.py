"""Compiler passes: substrate (ART-style), CritIC, and Thumb baselines."""

from repro.compiler.passes.base import (
    CompilerPass,
    PassContext,
    PassManager,
    PipelineResult,
)
from repro.compiler.passes.critic_pass import (
    AliasOracle,
    CriticPass,
    conservative_oracle,
    region_oracle,
)
from repro.compiler.passes.substrate import (
    ConstantFoldingPass,
    DeadCodePass,
    SimplifierPass,
)
from repro.compiler.passes.thumb_baselines import CompressPass, Opp16Pass

__all__ = [
    "AliasOracle",
    "CompilerPass",
    "CompressPass",
    "ConstantFoldingPass",
    "CriticPass",
    "DeadCodePass",
    "Opp16Pass",
    "PassContext",
    "PassManager",
    "PipelineResult",
    "SimplifierPass",
    "conservative_oracle",
    "region_oracle",
]
