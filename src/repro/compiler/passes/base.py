"""Compiler pass infrastructure.

The paper adds a "CritIC instrumentation pass" as a final pass of the ART
optimizing compiler, alongside ART's stock passes (constant folding, dead
code elimination, instruction simplification, ...).  We mirror that shape:
passes transform a :class:`~repro.trace.program.Program` copy and record
statistics into a shared :class:`PassContext`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Protocol

from repro.trace.program import Program


@dataclass
class PassContext:
    """Mutable context threaded through a pass pipeline."""

    stats: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def bump(self, pass_name: str, counter: str, amount: int = 1) -> None:
        """Increment a per-pass statistic."""
        bucket = self.stats.setdefault(pass_name, {})
        bucket[counter] = bucket.get(counter, 0) + amount

    def get(self, pass_name: str, counter: str) -> int:
        """Read a statistic (0 if never bumped)."""
        return self.stats.get(pass_name, {}).get(counter, 0)


class CompilerPass(Protocol):
    """A program-to-program transformation."""

    name: str

    def run(self, program: Program, ctx: PassContext) -> Program:
        """Return a transformed program (must not mutate the input)."""
        ...  # pragma: no cover - protocol


class PassManager:
    """Runs a list of passes in order, collecting statistics."""

    def __init__(self, passes: List[CompilerPass]):
        self.passes = list(passes)

    def run(self, program: Program) -> "PipelineResult":
        """Apply every pass to (a copy of) ``program``."""
        ctx = PassContext()
        current = program.copy()
        for compiler_pass in self.passes:
            current = compiler_pass.run(current, ctx)
        return PipelineResult(program=current, ctx=ctx)


@dataclass
class PipelineResult:
    """Output of a pass pipeline."""

    program: Program
    ctx: PassContext
