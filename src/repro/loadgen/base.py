"""Request/workload vocabulary for the serve load generator.

The shape follows the classic KV-store driver split: a :class:`Req` is
one unit of offered load, a :class:`Workload` turns a sweep grid into an
unbounded request stream with a configurable request *mix*, and a
``ReqGenEngine`` (:mod:`repro.loadgen.engines`) decides *when* each
request is issued — closed-loop (a fixed worker pool, next request only
after the last reply) or open-loop (a fixed arrival rate, latency
measured from the scheduled arrival so queueing delay is charged to the
server, not silently omitted).

Request shapes over the grid:

* ``cell`` — one app x scheme x config per request (the sharpest probe
  of per-cell service latency; round-robins the grid so repeat passes
  hit the warm cache);
* ``app`` — one app, every scheme x config (a medium fan-out job);
* ``full`` — the whole grid in one request (batch-shaped traffic).

A mix like ``cell=8,app=1,full=1`` interleaves shapes deterministically
(largest-remainder pattern, no RNG) so runs are reproducible.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Request shapes a workload can emit.
SHAPES = ("cell", "app", "full")


@dataclass
class Req:
    """One unit of offered load: a sweep spec plus scheduling info."""

    index: int                    #: 0-based issue order
    shape: str                    #: "cell" | "app" | "full"
    spec: Dict[str, Any]          #: SweepSpec.to_dict-shaped payload
    #: open-loop intended issue time, seconds relative to run start
    scheduled_s: Optional[float] = None


@dataclass
class Sample:
    """One completed request, as measured by an engine."""

    index: int
    shape: str
    start_s: float                #: issue time relative to run start
    latency_s: float              #: scheduled-arrival → done record
    cells: int = 0
    cached: int = 0
    computed: int = 0
    coalesced: int = 0
    failed: int = 0
    ok: bool = True
    error: str = ""

    def to_dict(self) -> Dict[str, Any]:
        record = {
            "index": self.index, "shape": self.shape,
            "start_s": round(self.start_s, 6),
            "latency_s": round(self.latency_s, 6),
            "cells": self.cells, "cached": self.cached,
            "computed": self.computed, "coalesced": self.coalesced,
            "failed": self.failed,
            "ok": self.ok,
        }
        if self.error:
            record["error"] = self.error
        return record


def parse_mix(text: str) -> Dict[str, int]:
    """Parse ``"cell=8,full=2"`` into integer shape weights."""
    mix: Dict[str, int] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, weight = part.partition("=")
        name = name.strip()
        if name not in SHAPES:
            raise ValueError(
                f"unknown request shape {name!r} "
                f"(choose from {', '.join(SHAPES)})")
        try:
            value = int(weight) if weight else 1
        except ValueError:
            raise ValueError(
                f"mix weight for {name!r} must be an integer, "
                f"got {weight!r}") from None
        if value < 0:
            raise ValueError(f"mix weight for {name!r} must be >= 0")
        mix[name] = mix.get(name, 0) + value
    if not mix or not any(mix.values()):
        raise ValueError(f"empty request mix {text!r}")
    return mix


def _mix_pattern(mix: Dict[str, int]) -> List[str]:
    """Deterministic interleave: each shape appears ``weight`` times per
    cycle, spread as evenly as integer arithmetic allows."""
    total = sum(mix.values())
    slots: List[Tuple[float, int, str]] = []
    for shape, weight in sorted(mix.items()):
        for k in range(weight):
            slots.append(((k + 0.5) * total / weight, len(slots), shape))
    return [shape for _, _, shape in sorted(slots)]


class Workload:
    """An unbounded, deterministic request stream."""

    name = "workload"

    def reqs(self) -> Iterator[Req]:
        raise NotImplementedError


@dataclass
class SweepGridWorkload(Workload):
    """Requests drawn from one sweep grid with a shape mix.

    ``spec`` is a ``SweepSpec.to_dict``-shaped dict naming the full
    grid; per-request sub-specs are carved out of it.  ``cell`` and
    ``app`` requests round-robin their axis so every grid point gets
    traffic, and a second pass over the grid is answered from the
    server's warm cache.
    """

    spec: Dict[str, Any]
    mix: Dict[str, int] = field(
        default_factory=lambda: {"cell": 1})
    name: str = "sweep-grid"

    def __post_init__(self) -> None:
        self._apps: Tuple[str, ...] = tuple(self.spec.get("apps") or ())
        if not self._apps:
            raise ValueError("workload spec needs a non-empty apps list")
        self._schemes = tuple(self.spec.get("schemes") or ("baseline",))
        self._configs = tuple(self.spec.get("configs")
                              or ("google-tablet",))
        self._pattern = _mix_pattern(self.mix)
        self._cells = [
            (app, scheme, config)
            for app in self._apps
            for scheme in self._schemes
            for config in self._configs
        ]

    def _sub_spec(self, **axes: Any) -> Dict[str, Any]:
        sub = dict(self.spec)
        sub.update(axes)
        return sub

    def grid_cells(self) -> int:
        return len(self._cells)

    def reqs(self) -> Iterator[Req]:
        cell_rr = itertools.cycle(self._cells)
        app_rr = itertools.cycle(self._apps)
        for index in itertools.count():
            shape = self._pattern[index % len(self._pattern)]
            if shape == "cell":
                app, scheme, config = next(cell_rr)
                spec = self._sub_spec(apps=[app], schemes=[scheme],
                                      configs=[config])
            elif shape == "app":
                spec = self._sub_spec(apps=[next(app_rr)])
            else:
                spec = dict(self.spec)
            yield Req(index=index, shape=shape, spec=spec)


def percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile over an ascending list (0 <= q <= 1)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      round(q * (len(sorted_values) - 1))))
    return sorted_values[int(rank)]


def summarize(samples: List[Sample], wall_s: float,
              engine: str, workload: str,
              offered: Dict[str, Any]) -> Dict[str, Any]:
    """Fold samples into the loadgen report.

    The report carries a ``phases`` block shaped exactly like a run
    manifest's (``{name: {"calls", "total_s", "mean_s"}}``) so
    ``python -m repro.telemetry.compare`` can diff two loadgen runs —
    or a loadgen run against a manifest — without special-casing.
    """
    ok = [s for s in samples if s.ok]
    lat = sorted(s.latency_s for s in ok)
    total_lat = sum(lat)
    cells = sum(s.cells for s in ok)
    report: Dict[str, Any] = {
        "kind": "loadgen",
        "engine": engine,
        "workload": workload,
        "offered": offered,
        "wall_s": round(wall_s, 6),
        "requests": {
            "issued": len(samples),
            "ok": len(ok),
            "failed": len(samples) - len(ok),
        },
        "cells": {
            "served": cells,
            "cached": sum(s.cached for s in ok),
            "computed": sum(s.computed for s in ok),
            "coalesced": sum(s.coalesced for s in ok),
            "failed": sum(s.failed for s in ok),
        },
        "throughput": {
            "req_per_s": round(len(ok) / wall_s, 3) if wall_s else 0.0,
            "cells_per_s": round(cells / wall_s, 3) if wall_s else 0.0,
        },
        "latency_s": {
            "mean": round(total_lat / len(lat), 6) if lat else 0.0,
            "p50": round(percentile(lat, 0.50), 6),
            "p95": round(percentile(lat, 0.95), 6),
            "p99": round(percentile(lat, 0.99), 6),
            "max": round(lat[-1], 6) if lat else 0.0,
        },
        "phases": {
            "loadgen.request": {
                "calls": len(lat),
                "total_s": round(total_lat, 6),
                "mean_s": round(total_lat / len(lat), 6)
                if lat else 0.0,
            },
        },
        "samples": [s.to_dict() for s in samples],
    }
    errors = sorted({s.error for s in samples if s.error})
    if errors:
        report["errors"] = errors[:10]
    return report


__all__ = [
    "Req",
    "SHAPES",
    "Sample",
    "SweepGridWorkload",
    "Workload",
    "parse_mix",
    "percentile",
    "summarize",
]
