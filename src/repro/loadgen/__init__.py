"""Load generator for the :mod:`repro.serve` front.

``python -m repro.loadgen`` offers sweep-shaped traffic to a running
serve instance and reports throughput and latency percentiles.  The
driver split mirrors the classic KV-benchmark shape — a :class:`Req`
stream from a :class:`Workload` (here, sub-specs carved out of one sweep
grid with a configurable ``cell``/``app``/``full`` request mix), issued
by a closed-loop or open-loop :class:`ReqGenEngine` — so the numbers
mean what benchmark numbers usually mean: closed-loop measures service
latency under bounded outstanding requests, open-loop charges queueing
delay to the percentiles instead of omitting it.

The JSON artifact carries a manifest-shaped ``phases`` block, so two
runs (say, cold cache vs warm cache) diff with the existing
``python -m repro.telemetry.compare`` gate.
"""

from repro.loadgen.base import (
    Req,
    Sample,
    SweepGridWorkload,
    Workload,
    parse_mix,
    percentile,
    summarize,
)
from repro.loadgen.engines import (
    ClosedLoopEngine,
    OpenLoopEngine,
    ReqGenEngine,
)

__all__ = [
    "ClosedLoopEngine",
    "OpenLoopEngine",
    "Req",
    "ReqGenEngine",
    "Sample",
    "SweepGridWorkload",
    "Workload",
    "parse_mix",
    "percentile",
    "summarize",
]
