"""Closed-loop and open-loop request-generation engines.

Both engines drive the serve wire front through blocking
:class:`~repro.serve.client.ServeClient` connections (one per worker
thread, opened once and reused — connection setup is not part of the
measured latency).

* :class:`ClosedLoopEngine` — ``concurrency`` workers, each issuing its
  next request only after the previous reply.  Measures *service*
  latency under a bounded number of outstanding requests; offered load
  adapts to the server.
* :class:`OpenLoopEngine` — requests arrive on a fixed schedule
  (``rate_hz``), independent of completions, and wait in a queue for a
  free worker.  Latency is measured from the *scheduled* arrival time,
  so queueing delay shows up in the percentiles instead of being
  coordinated-omission'd away.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.loadgen.base import Req, Sample, Workload, summarize
from repro.serve.client import ServeClient, ServeError


def _drive(client: ServeClient, req: Req) -> Tuple[bool, str,
                                                   Dict[str, int]]:
    """Send one request, drain its stream, return (ok, error, tallies)."""
    tallies = {"cells": 0, "cached": 0, "computed": 0, "coalesced": 0,
               "failed": 0}
    try:
        for record in client.sweep(req.spec, job_id=f"req-{req.index}"):
            if record.get("type") == "done":
                tallies["cells"] = record.get("cells", 0)
                tallies["cached"] = record.get("cached", 0)
                tallies["computed"] = record.get("computed", 0)
                tallies["coalesced"] = record.get("coalesced", 0)
                tallies["failed"] = record.get("failed", 0)
        return tallies["failed"] == 0, "", tallies
    except (ServeError, ConnectionError, OSError) as exc:
        return False, f"{type(exc).__name__}: {exc}", tallies


class ReqGenEngine:
    """Issue requests from a workload against a serve address and
    measure per-request latency."""

    name = "engine"

    def __init__(self, concurrency: int = 1,
                 timeout_s: float = 120.0) -> None:
        self.concurrency = max(1, concurrency)
        self.timeout_s = timeout_s

    def run(self, address: Tuple[str, int], workload: Workload,
            requests: int,
            duration_s: Optional[float] = None) -> Dict[str, Any]:
        raise NotImplementedError

    def _offered(self, requests: int,
                 duration_s: Optional[float]) -> Dict[str, Any]:
        offered: Dict[str, Any] = {
            "requests": requests,
            "concurrency": self.concurrency,
        }
        if duration_s is not None:
            offered["duration_s"] = duration_s
        return offered


class ClosedLoopEngine(ReqGenEngine):
    """Fixed worker pool; next request only after the last reply."""

    name = "closed-loop"

    def run(self, address: Tuple[str, int], workload: Workload,
            requests: int,
            duration_s: Optional[float] = None) -> Dict[str, Any]:
        stream = workload.reqs()
        feed_lock = threading.Lock()
        issued = [0]
        samples: List[Sample] = []
        samples_lock = threading.Lock()
        started = time.perf_counter()
        deadline = started + duration_s if duration_s else None

        def next_req() -> Optional[Req]:
            with feed_lock:
                if issued[0] >= requests:
                    return None
                if deadline and time.perf_counter() >= deadline:
                    return None
                issued[0] += 1
                return next(stream)

        def worker() -> None:
            with ServeClient(address, timeout_s=self.timeout_s) as client:
                while True:
                    req = next_req()
                    if req is None:
                        return
                    t0 = time.perf_counter()
                    ok, error, tallies = _drive(client, req)
                    latency = time.perf_counter() - t0
                    sample = Sample(
                        index=req.index, shape=req.shape,
                        start_s=t0 - started, latency_s=latency,
                        ok=ok, error=error, **tallies)
                    with samples_lock:
                        samples.append(sample)

        threads = [threading.Thread(target=worker,
                                    name=f"loadgen-{n}", daemon=True)
                   for n in range(self.concurrency)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
        samples.sort(key=lambda s: s.index)
        return summarize(samples, wall, self.name, workload.name,
                         self._offered(requests, duration_s))


class OpenLoopEngine(ReqGenEngine):
    """Fixed arrival rate; latency charged from the scheduled arrival."""

    name = "open-loop"

    def __init__(self, rate_hz: float, concurrency: int = 4,
                 timeout_s: float = 120.0) -> None:
        super().__init__(concurrency=concurrency, timeout_s=timeout_s)
        if rate_hz <= 0:
            raise ValueError("open-loop rate_hz must be > 0")
        self.rate_hz = rate_hz

    def run(self, address: Tuple[str, int], workload: Workload,
            requests: int,
            duration_s: Optional[float] = None) -> Dict[str, Any]:
        if duration_s is not None:
            requests = min(requests,
                           max(1, int(duration_s * self.rate_hz)))
        pending: "queue.Queue[Optional[Req]]" = queue.Queue()
        samples: List[Sample] = []
        samples_lock = threading.Lock()
        started = time.perf_counter()

        def pacer() -> None:
            stream = workload.reqs()
            for n in range(requests):
                req = next(stream)
                req.scheduled_s = n / self.rate_hz
                now = time.perf_counter() - started
                if req.scheduled_s > now:
                    time.sleep(req.scheduled_s - now)
                pending.put(req)
            for _ in range(self.concurrency):
                pending.put(None)

        def worker() -> None:
            with ServeClient(address, timeout_s=self.timeout_s) as client:
                while True:
                    req = pending.get()
                    if req is None:
                        return
                    t0 = time.perf_counter()
                    ok, error, tallies = _drive(client, req)
                    end = time.perf_counter()
                    latency = end - started - (req.scheduled_s or 0.0)
                    sample = Sample(
                        index=req.index, shape=req.shape,
                        start_s=req.scheduled_s or (t0 - started),
                        latency_s=latency, ok=ok, error=error,
                        **tallies)
                    with samples_lock:
                        samples.append(sample)

        threads = [threading.Thread(target=worker,
                                    name=f"loadgen-{n}", daemon=True)
                   for n in range(self.concurrency)]
        pace = threading.Thread(target=pacer, name="loadgen-pacer",
                                daemon=True)
        for thread in threads:
            thread.start()
        pace.start()
        pace.join()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
        samples.sort(key=lambda s: s.index)
        offered = self._offered(requests, duration_s)
        offered["rate_hz"] = self.rate_hz
        return summarize(samples, wall, self.name, workload.name,
                         offered)


__all__ = ["ClosedLoopEngine", "OpenLoopEngine", "ReqGenEngine"]
