"""CLI driver: ``python -m repro.loadgen --requests 50 ...``.

Targets a running ``python -m repro.serve`` wire front (pass
``--ready-file`` to pick up the port the server wrote, or ``--port``
directly), offers a request stream over the named sweep grid, prints a
latency/throughput summary, and writes the full JSON report.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.loadgen.base import SweepGridWorkload, parse_mix
from repro.loadgen.engines import ClosedLoopEngine, OpenLoopEngine


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.loadgen",
        description="Offer sweep traffic to a repro.serve instance and "
                    "report throughput + latency percentiles.",
    )
    target = parser.add_argument_group("target")
    target.add_argument("--host", default="127.0.0.1")
    target.add_argument("--port", type=int, default=7017,
                        help="serve wire-front port (default: 7017)")
    target.add_argument("--ready-file", default=None,
                        help="read host/port from a serve --ready-file "
                             "instead")
    grid = parser.add_argument_group("workload grid")
    grid.add_argument("--apps", default="Facebook,Maps",
                      help="comma-separated app names")
    grid.add_argument("--schemes", default="baseline,critic")
    grid.add_argument("--configs", default="google-tablet")
    grid.add_argument("--walk-blocks", type=int, default=None)
    grid.add_argument("--mix", default="cell=1",
                      help="request-shape mix, e.g. 'cell=8,app=1,"
                           "full=1' (default: all cell requests)")
    load = parser.add_argument_group("offered load")
    load.add_argument("--engine", choices=("closed", "open"),
                      default="closed")
    load.add_argument("--concurrency", type=int, default=4)
    load.add_argument("--rate-hz", type=float, default=8.0,
                      help="open-loop arrival rate (default: 8)")
    load.add_argument("--requests", type=int, default=32)
    load.add_argument("--duration-s", type=float, default=None,
                      help="stop issuing after this many seconds")
    load.add_argument("--timeout-s", type=float, default=120.0,
                      help="per-connection socket timeout")
    parser.add_argument("--out", default=None,
                        help="write the JSON report here")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    host, port = args.host, args.port
    if args.ready_file:
        with open(args.ready_file) as handle:
            ready = json.load(handle)
        host = ready.get("host", host)
        port = ready["wire_port"]

    spec = {
        "apps": [a for a in args.apps.split(",") if a],
        "schemes": [s for s in args.schemes.split(",") if s],
        "configs": [c for c in args.configs.split(",") if c],
    }
    if args.walk_blocks is not None:
        spec["walk_blocks"] = args.walk_blocks
    workload = SweepGridWorkload(spec=spec, mix=parse_mix(args.mix))

    if args.engine == "open":
        engine = OpenLoopEngine(rate_hz=args.rate_hz,
                                concurrency=args.concurrency,
                                timeout_s=args.timeout_s)
    else:
        engine = ClosedLoopEngine(concurrency=args.concurrency,
                                  timeout_s=args.timeout_s)

    report = engine.run((host, port), workload, args.requests,
                        duration_s=args.duration_s)
    _print_summary(report)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"report: {args.out}")
    return 0 if report["requests"]["failed"] == 0 else 1


def _print_summary(report: dict) -> None:
    reqs, cells = report["requests"], report["cells"]
    lat, thr = report["latency_s"], report["throughput"]
    print(f"engine      {report['engine']}  "
          f"(workload {report['workload']})")
    print(f"requests    {reqs['ok']}/{reqs['issued']} ok, "
          f"{reqs['failed']} failed in {report['wall_s']:.2f}s")
    print(f"cells       {cells['served']} served "
          f"({cells['cached']} cached, {cells['computed']} computed, "
          f"{cells['failed']} failed)")
    print(f"throughput  {thr['req_per_s']:.2f} req/s, "
          f"{thr['cells_per_s']:.2f} cells/s")
    print(f"latency     p50 {lat['p50'] * 1e3:.1f} ms   "
          f"p95 {lat['p95'] * 1e3:.1f} ms   "
          f"p99 {lat['p99'] * 1e3:.1f} ms   "
          f"max {lat['max'] * 1e3:.1f} ms")
    for error in report.get("errors", []):
        print(f"error       {error}", file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
