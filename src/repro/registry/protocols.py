"""Narrow structural interfaces for every pluggable component kind.

These are :class:`typing.Protocol` classes — components never inherit
from them; they just have to *fit*.  The simulator, compiler, and
experiment layers talk to components exclusively through these surfaces,
which is what makes a registered third-party component a drop-in:

* :class:`HardwareConfigFactory` — zero-arg callable producing a
  :class:`repro.cpu.config.CpuConfig` (the registry key becomes the
  config's ``name``).
* :class:`SchemeRecipe` — builds the compiler pass list for one scheme
  from an app context.
* :class:`BranchPredictor` — consulted once per conditional branch in
  trace order.
* :class:`ReplacementPolicy` — owns one cache's per-set state and its
  hit/evict/fill mechanics.
* :class:`Prefetcher` — observes pipeline events (loads, calls, fetched
  lines) and returns addresses/lines to prefetch.  A component implements
  only the observation points it cares about; :class:`PrefetcherBase`
  provides inert defaults for the rest.
* :class:`Executor` — how the sweep engine runs a batch of cells:
  ``submit``/``drain``/``shutdown``, returning per-task attempt records
  (see :mod:`repro.dispatch`).
* :class:`WorkloadFamily` — a scenario generator: builds a complete
  ``Workload`` (program + walk + memory model) from one seeded
  ``WorkloadProfile`` (see :mod:`repro.workloads.patterns`).
"""

from __future__ import annotations

from typing import Any, List, Protocol, Sequence, runtime_checkable


class HardwareConfigFactory(Protocol):
    """Builds one hardware configuration (a ``CpuConfig``)."""

    def __call__(self) -> Any: ...


class SchemeRecipe(Protocol):
    """Builds the compiler pass pipeline for one scheme.

    ``ctx`` is the :class:`repro.experiments.runner.AppContext`; recipes
    pull the workload, CritIC profile, and alias oracle from it.  The
    returned list may be empty (identity scheme — e.g. ``baseline``).
    """

    def __call__(self, ctx: Any, max_length: int,
                 profiled_fraction: float) -> Sequence[Any]: ...


@runtime_checkable
class BranchPredictor(Protocol):
    """What the pipeline front end needs from a conditional predictor.

    Factories registered under :data:`repro.registry.BRANCH_PREDICTORS`
    take the ``CpuConfig`` and return an object with this surface.
    ``stats.cond_mispredicts`` feeds ``SimStats.branch_mispredicts``.
    """

    stats: Any

    def predict_conditional(self, pc: int, actual_taken: bool) -> bool: ...


@runtime_checkable
class ReplacementPolicy(Protocol):
    """Per-set replacement mechanics for a set-associative cache.

    The :class:`repro.memory.cache.Cache` owns the counters; the policy
    owns the per-set state layout and decides hits, insertions, and
    victims.  ``access`` is the demand path (returns ``(hit, evicted)``);
    ``fill`` is the prefetch path (no demand counters, typically a
    colder insertion); ``probe`` must not disturb any state.
    """

    def new_set(self) -> Any: ...

    def access(self, ways: Any, tag: int, assoc: int) -> tuple: ...

    def fill(self, ways: Any, tag: int, assoc: int) -> None: ...

    def probe(self, ways: Any, tag: int) -> bool: ...


class PrefetcherBase:
    """Inert base for prefetchers: override the events you observe.

    The pipeline routes each component only to the observation points its
    class overrides (checked once at simulator construction, never in the
    cycle loop).  ``issued`` must count every prefetch the component asks
    for; it feeds ``SimStats`` per-component counters.
    """

    __slots__ = ()

    #: registry key (used for stats attribution)
    name: str = ""

    #: total prefetches this instance has issued
    issued: int = 0

    def observe_load(self, pc: int, addr: int,
                     critical: bool) -> List[int]:
        """Executed load seen; return *data addresses* to prefetch."""
        return []

    def observe_call(self, target_line: int) -> List[int]:
        """Call fetched; return *instruction line indices* to prefetch."""
        return []

    def observe_fetch(self, line: int, critical: bool) -> List[int]:
        """New i-line entered fetch; return *line indices* to prefetch."""
        return []


@runtime_checkable
class Executor(Protocol):
    """An execution backend for a batch of dispatch tasks.

    Factories registered under :data:`repro.registry.EXECUTORS` take
    ``(jobs=None, policy=None)`` and return an object with this surface.
    The contract (documented in :mod:`repro.dispatch.base`): ``submit``
    only queues; ``drain`` returns one
    :class:`~repro.dispatch.base.TaskResult` per submitted task, in
    submission order, with task failures *recorded* (attempt records,
    ``error``/``error_exc``) rather than raised; ``shutdown`` is
    idempotent and reclaims every worker.
    """

    name: str

    def submit(self, task: Any) -> None: ...

    def drain(self) -> List[Any]: ...

    def shutdown(self) -> None: ...


@runtime_checkable
class Prefetcher(Protocol):
    """Structural form of :class:`PrefetcherBase` (duck-typed)."""

    name: str
    issued: int

    def observe_load(self, pc: int, addr: int,
                     critical: bool) -> List[int]: ...

    def observe_call(self, target_line: int) -> List[int]: ...

    def observe_fetch(self, line: int, critical: bool) -> List[int]: ...


class WorkloadFamily(Protocol):
    """A scenario generator: one seeded profile in, one ``Workload`` out.

    Factories registered under :data:`repro.registry.WORKLOAD_FAMILIES`
    are zero-arg (classes work directly); the resulting object's
    ``build`` must be deterministic in ``profile`` — same profile (and
    seed), bit-identical workload — because family identity plus the
    profile record *is* the artifact-cache key for everything derived
    from the workload.
    """

    def build(self, profile: Any) -> Any: ...
