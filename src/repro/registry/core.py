"""The generic string-keyed component registry.

One :class:`Registry` instance exists per component kind (hardware
configs, scheme recipes, branch predictors, i-cache replacement policies,
prefetchers — see :mod:`repro.registry`).  Components register themselves
by name with the :meth:`Registry.register` decorator at import time;
consumers look them up by name and get did-you-mean suggestions on typos,
the same contract :func:`repro.workloads.get_profile` established.

Registries are *lazily populated*: each one knows which provider modules
contain its built-in registrations and imports them on first lookup, so
``repro.registry`` itself never imports the domain packages (no cycles)
and importing ``repro.registry`` stays free.

Every entry carries an integer ``version``.  ``identity(name)`` returns
``"<name>@<version>"``, which the artifact cache folds into its content
keys — bumping a component's registered version invalidates exactly the
cached results that depend on it, without a global schema bump.
"""

from __future__ import annotations

import difflib
import importlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Optional, Tuple


class RegistryError(KeyError, ValueError):
    """Unknown or conflicting component name.

    Subclasses both ``KeyError`` (the ``get_profile`` lookup contract)
    and ``ValueError`` (the pre-registry scheme ladder raised it), so
    every existing call site keeps catching what it always caught;
    ``str(err)`` carries the did-you-mean hint.
    """

    def __str__(self) -> str:  # KeyError quotes its arg; keep the text
        return self.args[0] if self.args else ""


@dataclass(frozen=True)
class RegistryEntry:
    """One registered component: the object plus its cache identity."""

    name: str
    obj: Any
    version: int

    @property
    def identity(self) -> str:
        return f"{self.name}@{self.version}"


class Registry:
    """An insertion-ordered, string-keyed component registry.

    Args:
        kind: human-readable component kind ("scheme", "prefetcher", ...)
            used in error messages and cache identities.
        providers: module names imported lazily before the first lookup;
            they hold the built-in ``@REGISTRY.register(...)`` calls.
    """

    def __init__(self, kind: str,
                 providers: Tuple[str, ...] = ()) -> None:
        self.kind = kind
        self._providers = providers
        self._entries: Dict[str, RegistryEntry] = {}
        self._loaded = not providers

    # -- population ----------------------------------------------------------

    def _ensure_providers(self) -> None:
        if self._loaded:
            return
        self._loaded = True  # set first: providers may look themselves up
        for module in self._providers:
            importlib.import_module(module)

    def register(self, name: str, obj: Any = None, *, version: int = 1,
                 overwrite: bool = False) -> Any:
        """Register ``obj`` under ``name`` (usable as a decorator).

        Raises:
            RegistryError: on duplicate names unless ``overwrite=True``
                (catches two plugins colliding, or one module registering
                itself twice on a double import path).
        """

        def _add(target: Any) -> Any:
            if not overwrite and name in self._entries:
                raise RegistryError(
                    f"duplicate {self.kind} registration {name!r} "
                    f"(pass overwrite=True to replace it)"
                )
            self._entries[name] = RegistryEntry(
                name=name, obj=target, version=version,
            )
            return target

        if obj is None:
            return _add
        return _add(obj)

    def unregister(self, name: str) -> None:
        """Remove ``name`` (primarily for tests and scoped overrides)."""
        self._ensure_providers()
        if name not in self._entries:
            raise self._unknown(name)
        del self._entries[name]

    @contextmanager
    def scoped(self, name: str, obj: Any,
               version: int = 1) -> Iterator[Any]:
        """Temporarily register (or override) ``name`` for a ``with`` body.

        The previous entry — or absence — is restored on exit even when
        the body raises, so experiments and tests can inject components
        without leaking state into later lookups.
        """
        self._ensure_providers()
        previous = self._entries.get(name)
        self._entries[name] = RegistryEntry(
            name=name, obj=obj, version=version,
        )
        try:
            yield obj
        finally:
            if previous is None:
                self._entries.pop(name, None)
            else:
                self._entries[name] = previous

    # -- lookup --------------------------------------------------------------

    def _unknown(self, name: str) -> RegistryError:
        matches = difflib.get_close_matches(
            name, list(self._entries), n=3, cutoff=0.6,
        )
        if not matches:
            # Compound names ("zipfian-footprint") dilute whole-string
            # similarity below the cutoff for typos of their head word
            # ("zipfain"); retry against each name's leading token.
            heads = {}
            for known in self._entries:
                heads.setdefault(known.split("-", 1)[0], known)
            matches = [
                heads[token] for token in difflib.get_close_matches(
                    name, list(heads), n=3, cutoff=0.6,
                )
            ]
        hint = ""
        if matches:
            quoted = " or ".join(repr(m) for m in matches)
            hint = f"; did you mean {quoted}?"
        return RegistryError(
            f"unknown {self.kind} {name!r}{hint} "
            f"(known: {sorted(self._entries)})"
        )

    def entry(self, name: str) -> RegistryEntry:
        """The full :class:`RegistryEntry` for ``name``."""
        self._ensure_providers()
        try:
            return self._entries[name]
        except KeyError:
            raise self._unknown(name) from None

    def get(self, name: str) -> Any:
        """The registered object, with did-you-mean on unknown names."""
        return self.entry(name).obj

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Call the registered factory/class with the given arguments."""
        return self.get(name)(*args, **kwargs)

    def version(self, name: str) -> int:
        return self.entry(name).version

    def identity(self, name: str) -> str:
        """``"<name>@<version>"`` — the cache-key form of the component."""
        return self.entry(name).identity

    def names(self) -> Tuple[str, ...]:
        """All registered names, in registration order."""
        self._ensure_providers()
        return tuple(self._entries)

    def items(self) -> Tuple[Tuple[str, Any], ...]:
        self._ensure_providers()
        return tuple((name, e.obj) for name, e in self._entries.items())

    def __contains__(self, name: object) -> bool:
        self._ensure_providers()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_providers()
        return len(self._entries)

    def __repr__(self) -> str:
        return (f"Registry(kind={self.kind!r}, "
                f"names={list(self._entries)!r})")
