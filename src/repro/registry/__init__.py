"""Pluggable component registries for the whole pipeline.

The evaluation is a grid of apps x compiler schemes x hardware variants;
every axis of that grid — and the machinery that *executes* it — is a
named component living in one of eight registries:

==========================  ============================================
registry                    components (built-ins)
==========================  ============================================
:data:`HARDWARE_CONFIGS`    ``google-tablet``, the Fig-11 variants
                            (``2xFD``, ``4xI$``, ``EFetch``,
                            ``PerfectBr``, ``BackendPrio``, ``AllHW``),
                            ``CritLoadPrefetch``, ``trrip-icache``
:data:`SCHEME_RECIPES`      the eight compiler schemes (``baseline``,
                            ``hoist``, ``critic``, ``critic_ideal``,
                            ``branch``, ``opp16``, ``compress``,
                            ``opp16_critic``)
:data:`BRANCH_PREDICTORS`   ``two-level`` (gshare; honors
                            ``perfect_branch``)
:data:`ICACHE_POLICIES`     ``lru``, ``trrip`` (temperature-based RRIP)
:data:`PREFETCHERS`         ``clpt``, ``efetch``, ``critical-nextline``
:data:`EXECUTORS`           ``inline``, ``pool``, ``fleet`` (execution
                            backends for the sweep engine; see
                            :mod:`repro.dispatch`)
:data:`SIMULATORS`          ``inline``, ``batch`` (cycle-simulation
                            engines; see :mod:`repro.cpu.engines`)
:data:`WORKLOAD_FAMILIES`   ``default``, ``phased``, ``bursty``,
                            ``zipfian-footprint``, ``netbound``,
                            ``vecmobile``, ``trace-replay`` (scenario
                            generators; see
                            :mod:`repro.workloads.patterns`)
==========================  ============================================

Built-ins self-register at import of their home modules; the registries
import those providers lazily on first lookup, so there are no import
cycles and no load-order traps.  New components register the same way::

    from repro.registry import PREFETCHERS
    from repro.registry.protocols import PrefetcherBase

    @PREFETCHERS.register("my-prefetcher", version=1)
    class MyPrefetcher(PrefetcherBase):
        def observe_fetch(self, line, critical):
            ...

and are immediately addressable from the sweep CLI
(``python -m repro.experiments.sweep --prefetcher my-prefetcher``), the
artifact cache (via :func:`component_identity`), and the validators.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.registry.core import Registry, RegistryEntry, RegistryError
from repro.registry.protocols import (
    BranchPredictor,
    Executor,
    HardwareConfigFactory,
    Prefetcher,
    PrefetcherBase,
    ReplacementPolicy,
    SchemeRecipe,
    WorkloadFamily,
)

#: name -> zero-arg factory producing a ``CpuConfig``.
HARDWARE_CONFIGS = Registry(
    "hardware config", providers=("repro.cpu.config",),
)

#: name -> recipe building the compiler pass list for one scheme.
SCHEME_RECIPES = Registry(
    "scheme", providers=("repro.experiments.schemes",),
)

#: name -> factory(config) producing a branch predictor.
BRANCH_PREDICTORS = Registry(
    "branch predictor", providers=("repro.cpu.branch",),
)

#: name -> zero-arg factory producing a cache replacement policy.
ICACHE_POLICIES = Registry(
    "i-cache replacement policy", providers=("repro.memory.replacement",),
)

#: name -> factory(config) producing a prefetcher component.
PREFETCHERS = Registry(
    "prefetcher", providers=("repro.memory.prefetch",),
)

#: name -> factory(jobs=None, policy=None) producing an execution
#: backend for :func:`repro.experiments.runner.run_apps`.
EXECUTORS = Registry(
    "executor", providers=("repro.dispatch.executors",),
)

#: name -> zero-arg factory producing a ``simulate()``-compatible
#: callable (a *simulation engine*): ``inline`` is the reference
#: cycle-loop simulator, ``batch`` the lockstep many-cells-per-trace
#: engine.  Engines are bit-identical by contract — the golden-stats
#: gate and the ``--engine`` fuzz metamorphic enforce it — so engine
#: identity is recorded in run manifests but excluded from cache keys
#: and ``config_hash``.
SIMULATORS = Registry(
    "simulation engine", providers=("repro.cpu.engines",),
)

#: name -> zero-arg factory producing a :class:`WorkloadFamily` — a
#: *scenario generator* that builds a complete workload (program + walk
#: + memory model) from one seeded profile.  ``default`` is the Table II
#: catalog generator; the others reshape the stream (phases, bursts,
#: Zipfian code footprints, latency-bound stalls, vectorizable kernels)
#: or replay a recorded trace artifact.  Unlike engines/executors, the
#: family *changes the numbers*, so its identity folds into stats cache
#: keys and the manifest ``config_hash`` whenever it is not ``default``.
WORKLOAD_FAMILIES = Registry(
    "workload family", providers=("repro.workloads.patterns",),
)


def all_registries() -> Dict[str, Registry]:
    """The eight component registries in canonical display order.

    Keyed by a snake_case section name; ``sweep --list`` and the serve
    ``/healthz`` payload both enumerate from here, so a newly added
    registry shows up everywhere at once.
    """
    return {
        "hardware_configs": HARDWARE_CONFIGS,
        "schemes": SCHEME_RECIPES,
        "branch_predictors": BRANCH_PREDICTORS,
        "icache_policies": ICACHE_POLICIES,
        "prefetchers": PREFETCHERS,
        "executors": EXECUTORS,
        "simulators": SIMULATORS,
        "workload_families": WORKLOAD_FAMILIES,
    }


def component_identity(config: Any) -> Dict[str, Any]:
    """The versioned component identity of one ``CpuConfig``.

    Returns a JSON-stable record naming every registered component the
    configuration composes, each as ``"<name>@<version>"``.  The artifact
    cache folds this into stats keys and the run manifests carry it, so a
    newly registered (or re-versioned) component can never silently hit a
    stale cached ``SimStats`` entry.
    """
    return {
        "branch_predictor":
            BRANCH_PREDICTORS.identity(config.branch_predictor),
        "icache_policy":
            ICACHE_POLICIES.identity(config.memory.icache_policy),
        "prefetchers": [PREFETCHERS.identity(name)
                        for name in config.active_prefetchers()],
    }


__all__ = [
    "BRANCH_PREDICTORS",
    "BranchPredictor",
    "EXECUTORS",
    "Executor",
    "HARDWARE_CONFIGS",
    "HardwareConfigFactory",
    "ICACHE_POLICIES",
    "PREFETCHERS",
    "Prefetcher",
    "PrefetcherBase",
    "Registry",
    "RegistryEntry",
    "RegistryError",
    "ReplacementPolicy",
    "SCHEME_RECIPES",
    "SIMULATORS",
    "SchemeRecipe",
    "WORKLOAD_FAMILIES",
    "WorkloadFamily",
    "all_registries",
    "component_identity",
]
