"""repro — a reproduction of *CritICs: Critiquing Criticality in Mobile
Apps* (MICRO 2018).

Subpackages:

* ``repro.isa`` — ARM-like ISA with 32-bit and 16-bit Thumb encodings.
* ``repro.trace`` — programs, dynamic traces, dependence analysis.
* ``repro.workloads`` — synthetic mobile/SPEC workload generator (Table II).
* ``repro.dfg`` — fanout criticality and Instruction Chains (ICs).
* ``repro.profiler`` — offline CritIC discovery and the profile table.
* ``repro.compiler`` — ART-style pass pipeline incl. the CritIC pass.
* ``repro.cpu`` — cycle-level OoO pipeline model (Table I).
* ``repro.memory`` — caches, DRAM, prefetchers.
* ``repro.energy`` — SoC energy model (Fig 10c).
* ``repro.experiments`` — per-figure reproduction harness.

Quickstart::

    from repro.experiments import app_context
    from repro.cpu import speedup

    ctx = app_context("Acrobat")
    base = ctx.stats("baseline")
    critic = ctx.stats("critic")
    print(f"CritIC speedup: {100 * (speedup(base, critic) - 1):.1f}%")
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
