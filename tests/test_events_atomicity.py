"""Event-stream append atomicity: no torn lines, ever.

The event sink is shared by every process in a run (parent, pool/fleet
workers, a serve instance).  Each record must land as one whole line
regardless of size or concurrency: the writer encodes the full line and
issues a **single** ``os.write()`` on an ``O_APPEND`` descriptor, which
POSIX applies atomically.  The regression these tests pin down: the old
buffered text-mode writer split records larger than the TextIO buffer
(~8 KiB) into multiple syscalls, so concurrent writers interleaved
fragments mid-record.
"""

import json
import os
import subprocess
import sys
import threading

import pytest

from repro.telemetry import events

#: Per-record payload comfortably past the old ~8 KiB TextIO buffer, so
#: a non-atomic writer would reliably split each record across writes.
BIG = 3 * 8192


@pytest.fixture(autouse=True)
def _restore_sink():
    yield
    events.set_path(None)


def _emit_burst(count: int, tag: str) -> None:
    for n in range(count):
        events.emit("stress.burst", tag=tag, n=n, payload="x" * BIG)


def assert_no_torn_lines(path: str) -> int:
    """Every raw line parses as a complete record; returns the count."""
    total = 0
    with open(path, "rb") as handle:
        for raw in handle:
            assert raw.endswith(b"\n"), "unterminated (torn) line"
            record = json.loads(raw)  # raises on a fragment
            assert record["kind"] == "stress.burst"
            assert len(record["payload"]) == BIG
            total += 1
    return total


class TestAtomicAppend:
    def test_multithread_big_records_do_not_tear(self, tmp_path):
        log = tmp_path / "events.jsonl"
        events.set_path(str(log))
        per_thread = 25
        threads = [
            threading.Thread(target=_emit_burst,
                             args=(per_thread, f"t{n}"))
            for n in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert assert_no_torn_lines(str(log)) == 8 * per_thread

    def test_multiprocess_big_records_do_not_tear(self, tmp_path):
        log = tmp_path / "events.jsonl"
        script = (
            "from repro.telemetry import events\n"
            "import sys\n"
            "for n in range(int(sys.argv[1])):\n"
            f"    events.emit('stress.burst', tag=sys.argv[2], n=n,"
            f" payload='x' * {BIG})\n"
        )
        per_proc = 25
        env = dict(os.environ, REPRO_EVENTS=str(log),
                   PYTHONPATH=os.pathsep.join(sys.path))
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(per_proc), f"p{n}"],
                env=env)
            for n in range(4)
        ]
        # The parent writes concurrently with its children.
        events.set_path(str(log))
        _emit_burst(per_proc, "parent")
        for proc in procs:
            assert proc.wait(timeout=120) == 0
        assert assert_no_torn_lines(str(log)) == 5 * per_proc
        # Ordered per writer: each pid's seq strictly increments.
        seqs = {}
        for record in events.iter_events(str(log)):
            assert record["seq"] == seqs.get(record["pid"], 0) + 1
            seqs[record["pid"]] = record["seq"]
        assert len(seqs) == 5

    def test_single_emit_is_one_line_even_when_huge(self, tmp_path):
        log = tmp_path / "events.jsonl"
        events.set_path(str(log))
        events.emit("stress.burst", tag="solo", n=0, payload="x" * BIG)
        assert assert_no_torn_lines(str(log)) == 1


class TestSinkLifecycle:
    def test_set_path_revives_a_broken_sink(self, tmp_path):
        """Regression: a sink that failed once must not stay dead after
        the caller points at it (or anything) again."""
        bad = tmp_path / "not-yet" / "events.jsonl"
        events.set_path(str(bad))  # parent dir missing -> open fails
        events.emit("cache.hit", artifact="trace")
        assert not events.enabled()  # degraded to disabled
        bad.parent.mkdir()
        events.set_path(str(bad))  # same path, now writable
        assert events.enabled()
        events.emit("cache.hit", artifact="trace")
        assert len(list(events.iter_events(str(bad)))) == 1

    def test_env_zero_disables(self, monkeypatch):
        monkeypatch.setenv(events.ENV_EVENTS, "0")
        events.set_path(None)
        assert not events.enabled()
        events.emit("cache.hit", artifact="trace")  # must not raise

    def test_reopen_resets_seq_per_sink(self, tmp_path):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        events.set_path(str(first))
        events.emit("cache.hit", artifact="trace")
        events.set_path(str(second))
        events.emit("cache.hit", artifact="trace")
        (record,) = list(events.iter_events(str(second)))
        assert record["seq"] == 1
