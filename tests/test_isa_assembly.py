"""Unit + property tests for the tiny assembler (repro.isa.assembly)."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    AsmError,
    Cond,
    Encoding,
    Instruction,
    Opcode,
    dest_count,
    format_program,
    parse_line,
    parse_program_text,
)


class TestParse:
    def test_basic_add(self):
        instr = parse_line("ADD R1, R2, #4")
        assert instr.opcode is Opcode.ADD
        assert instr.dests == (1,)
        assert instr.srcs == (2,)
        assert instr.imm == 4

    def test_predicated(self):
        instr = parse_line("SUBNE R0, R1")
        assert instr.opcode is Opcode.SUB
        assert instr.cond is Cond.NE

    def test_cmp_has_no_dest(self):
        instr = parse_line("CMP R8, R9")
        assert instr.dests == ()
        assert instr.srcs == (8, 9)

    def test_store_has_no_dest(self):
        instr = parse_line("STR R0, R1, #8")
        assert instr.dests == ()
        assert instr.srcs == (0, 1)

    def test_branch_with_target(self):
        instr = parse_line("B @12")
        assert instr.target == 12

    def test_bl_is_not_b_plus_cond(self):
        instr = parse_line("BL @3")
        assert instr.opcode is Opcode.BL

    def test_ble_is_b_with_le(self):
        instr = parse_line("BLE @3")
        assert instr.opcode is Opcode.B
        assert instr.cond is Cond.LE

    def test_ldrb_not_parsed_as_ldr(self):
        instr = parse_line("LDRB R1, R2")
        assert instr.opcode is Opcode.LDRB

    def test_special_registers(self):
        instr = parse_line("BX LR")
        assert instr.srcs == (14,)

    def test_thumb_comment(self):
        instr = parse_line("MOV R0, #3  ; .thumb")
        assert instr.encoding is Encoding.THUMB16

    def test_cdp(self):
        instr = parse_line("CDP <5>")
        assert instr.cdp_cover == 5

    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError):
            parse_line("FROB R1")

    def test_bad_operand(self):
        with pytest.raises(AsmError):
            parse_line("ADD R1, qux")

    def test_empty_line(self):
        with pytest.raises(AsmError):
            parse_line("   ")


class TestProgramText:
    def test_round_trip_listing(self):
        text = "\n".join([
            "MOV R0, #1",
            "; a comment line",
            "",
            "ADD R1, R0, #2",
            "CMP R1, R0",
            "BEQ @7",
        ])
        instrs = parse_program_text(text)
        assert len(instrs) == 4
        assert format_program(instrs).count("\n") == 3


class TestDestCount:
    def test_zero_dest_opcodes(self):
        for op in (Opcode.CMP, Opcode.TST, Opcode.STR, Opcode.B,
                   Opcode.BX, Opcode.NOP, Opcode.CDP):
            assert dest_count(op) == 0

    def test_bl_writes_link_register(self):
        assert dest_count(Opcode.BL) == 1
        instr = parse_line("BL LR, @3")
        assert instr.dests == (14,)
        assert parse_line("BL @3").dests == ()

    def test_one_dest_opcodes(self):
        for op in (Opcode.ADD, Opcode.LDR, Opcode.MUL, Opcode.MOV):
            assert dest_count(op) == 1


_PARSEABLE_OPCODES = [
    op for op in Opcode
    if op not in (Opcode.CDP, Opcode.B, Opcode.BL, Opcode.BX)
]


@given(
    op=st.sampled_from(_PARSEABLE_OPCODES),
    dest=st.integers(min_value=0, max_value=12),
    srcs=st.lists(st.integers(min_value=0, max_value=12),
                  min_size=1, max_size=2),
    imm=st.one_of(st.none(), st.integers(min_value=0, max_value=4000)),
    cond=st.sampled_from([Cond.AL, Cond.EQ, Cond.NE, Cond.GT]),
)
def test_property_roundtrip(op, dest, srcs, imm, cond):
    """to_text -> parse_line preserves every instruction field."""
    dests = (dest,) if dest_count(op) else ()
    instr = Instruction(op, dests=dests, srcs=tuple(srcs), imm=imm,
                        cond=cond)
    parsed = parse_line(instr.to_text())
    assert parsed.opcode is instr.opcode
    assert parsed.dests == instr.dests
    assert parsed.srcs == instr.srcs
    assert parsed.imm == instr.imm
    assert parsed.cond is instr.cond
