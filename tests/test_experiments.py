"""Integration tests for the experiment harness (small scale)."""

import pytest

from repro.experiments import (
    SCHEMES,
    app_context,
    fig01,
    fig05,
    fig10,
    format_table,
    geometric_mean,
)

WALK = 120  # tiny: these are wiring tests, not reproductions


class TestAppContext:
    def test_cached_identity(self):
        a = app_context("Music", WALK)
        b = app_context("Music", WALK)
        assert a is b

    def test_all_schemes_produce_traces(self):
        ctx = app_context("Music", WALK)
        base_len = len(ctx.scheme_trace("baseline"))
        for scheme in SCHEMES:
            trace = ctx.scheme_trace(scheme)
            assert len(trace) >= base_len  # transforms only add CDPs

    def test_unknown_scheme_rejected(self):
        ctx = app_context("Music", WALK)
        with pytest.raises(ValueError, match="unknown scheme"):
            ctx.scheme_trace("quantum")

    def test_stats_cached(self):
        ctx = app_context("Music", WALK)
        assert ctx.stats("baseline") is ctx.stats("baseline")

    def test_profile_reused(self):
        ctx = app_context("Music", WALK)
        assert ctx.critic_profile() is ctx.critic_profile()


class TestHelpers:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0

    def test_format_table_aligns(self):
        text = format_table(["a", "bee"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l.rstrip()) for l in lines[2:])) >= 1


class TestFigureWiring:
    def test_fig01_small(self):
        result = fig01.run(per_group=1, walk_blocks=WALK)
        assert len(result.rows) == 3
        text = fig01.format_result(result)
        assert "Fig 1a" in text and "Fig 1b" in text

    def test_fig05_small(self):
        result = fig05.run(per_group=1, walk_blocks=WALK, mobile_apps=1)
        assert len(result.chain_stats) == 3
        assert len(result.coverage) == 1
        assert "Fig 5a" in fig05.format_result(result)

    def test_fig10_small(self):
        result = fig10.run(apps=2, walk_blocks=WALK)
        assert len(result.rows) == 2
        text = fig10.format_result(result)
        assert "MEAN" in text
