"""Unit tests for Thumb encodability rules (repro.isa.encoding)."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    Cond,
    Encoding,
    Instruction,
    Opcode,
    THUMB_IMM_MAX,
    chain_thumb_encodable,
    code_bytes,
    convert_chain_to_thumb,
    convert_to_thumb,
    is_thumb_encodable,
    thumb_rejection_reason,
)


def alu(dest=0, src=1, imm=None, cond=Cond.AL):
    return Instruction(Opcode.ADD, dests=(dest,), srcs=(src,), imm=imm,
                       cond=cond)


class TestRejectionReasons:
    def test_clean_instruction_encodable(self):
        assert thumb_rejection_reason(alu()) is None
        assert is_thumb_encodable(alu())

    def test_predicated_rejected(self):
        assert thumb_rejection_reason(alu(cond=Cond.EQ)) == "predicated"

    def test_high_register_rejected(self):
        assert thumb_rejection_reason(alu(dest=12)) == "high-register"
        assert thumb_rejection_reason(alu(src=11)) == "high-register"

    def test_register_ten_is_fine(self):
        assert is_thumb_encodable(alu(dest=10))

    def test_wide_immediate_rejected(self):
        assert thumb_rejection_reason(
            alu(imm=THUMB_IMM_MAX + 1)) == "immediate-range"
        assert is_thumb_encodable(alu(imm=THUMB_IMM_MAX))

    def test_negative_immediate_rejected(self):
        assert thumb_rejection_reason(alu(imm=-1)) == "immediate-range"

    def test_fp_rejected(self):
        fp = Instruction(Opcode.VADD, dests=(0,), srcs=(1, 2))
        assert thumb_rejection_reason(fp) == "no-thumb-form"

    def test_cdp_rejected(self):
        cdp = Instruction(Opcode.CDP, cdp_cover=3)
        assert thumb_rejection_reason(cdp) == "no-thumb-form"

    def test_predication_checked_before_registers(self):
        # Both problems present; "predicated" wins (documented ordering).
        reason = thumb_rejection_reason(alu(dest=12, cond=Cond.NE))
        assert reason == "predicated"


class TestConversion:
    def test_convert_sets_encoding(self):
        thumb = convert_to_thumb(alu())
        assert thumb.encoding is Encoding.THUMB16
        assert thumb.size_bytes == 2

    def test_convert_rejects_unencodable(self):
        with pytest.raises(ValueError, match="high-register"):
            convert_to_thumb(alu(dest=12))

    def test_chain_all_or_nothing(self):
        good = [alu(dest=d) for d in range(3)]
        assert chain_thumb_encodable(good)
        assert convert_chain_to_thumb(good) is not None

        bad = good + [alu(dest=12)]
        assert not chain_thumb_encodable(bad)
        assert convert_chain_to_thumb(bad) is None

    def test_empty_chain_converts(self):
        assert convert_chain_to_thumb([]) == []


class TestCodeBytes:
    def test_mixed_sizes(self):
        instrs = [alu(), convert_to_thumb(alu()), alu()]
        assert code_bytes(instrs) == 4 + 2 + 4

    def test_paper_example_five_to_three_words(self):
        """Paper Sec. IV-F: 5 x 32-bit becomes 3 x 32-bit words
        (CDP half-word + five 16-bit instructions)."""
        chain = [alu(dest=d % 6) for d in range(5)]
        assert code_bytes(chain) == 20
        converted = convert_chain_to_thumb(chain)
        cdp = Instruction(Opcode.CDP, cdp_cover=5,
                          encoding=Encoding.THUMB16)
        assert code_bytes([cdp] + converted) == 12  # 3 words


@given(
    dest=st.integers(min_value=0, max_value=15),
    src=st.integers(min_value=0, max_value=15),
    imm=st.one_of(st.none(), st.integers(min_value=-10, max_value=5000)),
    predicated=st.booleans(),
)
def test_property_rejection_reason_consistency(dest, src, imm, predicated):
    """is_thumb_encodable iff thumb_rejection_reason is None, and the
    reason correctly describes a real property of the instruction."""
    instr = alu(dest=dest, src=src, imm=imm,
                cond=Cond.EQ if predicated else Cond.AL)
    reason = thumb_rejection_reason(instr)
    assert is_thumb_encodable(instr) == (reason is None)
    if reason == "high-register":
        assert dest > 10 or src > 10
    if reason == "predicated":
        assert predicated
    if reason == "immediate-range":
        assert imm is not None and not 0 <= imm <= THUMB_IMM_MAX
    if reason is None:
        assert convert_to_thumb(instr).size_bytes == 2
