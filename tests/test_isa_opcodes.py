"""Unit tests for repro.isa.opcodes."""

import pytest

from repro.isa import (
    ALU_OPCODES,
    BRANCH_OPCODES,
    FP_OPCODES,
    LOAD_OPCODES,
    LONG_LATENCY_THRESHOLD,
    STORE_OPCODES,
    InstrKind,
    Opcode,
    has_thumb_form,
    is_long_latency,
    kind_of,
    latency_of,
    opcode_info,
)


class TestOpcodeInfo:
    def test_every_opcode_has_info(self):
        for op in Opcode:
            info = opcode_info(op)
            assert info.mnemonic == op.value
            assert info.latency >= 1

    def test_alu_are_single_cycle(self):
        for op in ALU_OPCODES:
            assert latency_of(op) == 1

    def test_divide_is_long_latency(self):
        assert latency_of(Opcode.SDIV) >= LONG_LATENCY_THRESHOLD
        assert is_long_latency(Opcode.SDIV)
        assert is_long_latency(Opcode.VDIV)

    def test_simple_alu_is_not_long_latency(self):
        assert not is_long_latency(Opcode.ADD)
        assert not is_long_latency(Opcode.MOV)

    def test_fp_has_no_thumb_form(self):
        for op in FP_OPCODES:
            assert not has_thumb_form(op)

    def test_common_alu_has_thumb_form(self):
        for op in (Opcode.ADD, Opcode.SUB, Opcode.MOV, Opcode.CMP,
                   Opcode.LDR, Opcode.STR, Opcode.B):
            assert has_thumb_form(op)

    def test_cdp_has_no_thumb_form(self):
        assert not has_thumb_form(Opcode.CDP)


class TestClassification:
    def test_kinds(self):
        assert kind_of(Opcode.ADD) is InstrKind.ALU
        assert kind_of(Opcode.MUL) is InstrKind.MUL
        assert kind_of(Opcode.SDIV) is InstrKind.DIV
        assert kind_of(Opcode.LDR) is InstrKind.LOAD
        assert kind_of(Opcode.STR) is InstrKind.STORE
        assert kind_of(Opcode.B) is InstrKind.BRANCH
        assert kind_of(Opcode.VADD) is InstrKind.FP
        assert kind_of(Opcode.CDP) is InstrKind.SYSTEM

    def test_load_store_flags(self):
        for op in LOAD_OPCODES:
            assert opcode_info(op).reads_memory
            assert not opcode_info(op).writes_memory
        for op in STORE_OPCODES:
            assert opcode_info(op).writes_memory
            assert not opcode_info(op).reads_memory

    def test_branch_list(self):
        assert Opcode.B in BRANCH_OPCODES
        assert Opcode.BL in BRANCH_OPCODES
        assert Opcode.BX in BRANCH_OPCODES
        assert len(BRANCH_OPCODES) == 3

    def test_opcode_info_rejects_zero_latency(self):
        from repro.isa.opcodes import OpcodeInfo
        with pytest.raises(ValueError):
            OpcodeInfo("BAD", InstrKind.ALU, 0, True)
