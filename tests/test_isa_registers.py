"""Unit tests for repro.isa.registers."""

import pytest

from repro.isa import registers as regs


class TestRegisterNames:
    def test_general_purpose_names(self):
        assert regs.register_name(0) == "R0"
        assert regs.register_name(10) == "R10"

    def test_special_names(self):
        assert regs.register_name(regs.SP) == "SP"
        assert regs.register_name(regs.LR) == "LR"
        assert regs.register_name(regs.PC) == "PC"

    def test_invalid_register_raises(self):
        with pytest.raises(ValueError):
            regs.register_name(16)
        with pytest.raises(ValueError):
            regs.register_name(-1)


class TestValidation:
    def test_accepts_all_sixteen(self):
        for r in range(regs.NUM_REGISTERS):
            assert regs.validate_register(r) == r

    def test_rejects_bool(self):
        with pytest.raises(ValueError):
            regs.validate_register(True)

    def test_rejects_non_int(self):
        with pytest.raises(ValueError):
            regs.validate_register("R1")


class TestThumbRegisters:
    def test_eleven_thumb_registers(self):
        assert regs.NUM_THUMB_REGISTERS == 11
        assert len(regs.THUMB_REGISTERS) == 11

    def test_low_registers_are_thumb(self):
        for r in range(11):
            assert regs.is_thumb_register(r)

    def test_high_registers_are_not(self):
        for r in range(11, 16):
            assert not regs.is_thumb_register(r)

    def test_all_thumb_registers_helper(self):
        assert regs.all_thumb_registers([0, 5, 10])
        assert not regs.all_thumb_registers([0, 11])
        assert regs.all_thumb_registers([])
