"""Unit tests for repro.isa.instruction."""

import pytest

from repro.isa import Cond, Encoding, Instruction, MAX_CDP_COVER, Opcode


class TestConstruction:
    def test_simple_alu(self):
        instr = Instruction(Opcode.ADD, dests=(1,), srcs=(2, 3))
        assert instr.kind.value == "alu"
        assert instr.latency == 1
        assert not instr.is_branch
        assert not instr.is_memory
        assert instr.size_bytes == 4

    def test_thumb_size(self):
        instr = Instruction(Opcode.ADD, dests=(1,), srcs=(2,),
                            encoding=Encoding.THUMB16)
        assert instr.size_bytes == 2

    def test_invalid_register_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, dests=(16,), srcs=(0,))

    def test_direct_branch_requires_target(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.B, cond=Cond.NE)
        Instruction(Opcode.B, cond=Cond.NE, target=3)  # ok
        Instruction(Opcode.B, imm=0)  # ok (switch-branch form)

    def test_bx_is_indirect(self):
        instr = Instruction(Opcode.BX, srcs=(14,))
        assert instr.is_branch

    def test_cdp_requires_cover(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.CDP)
        with pytest.raises(ValueError):
            Instruction(Opcode.CDP, cdp_cover=0)
        with pytest.raises(ValueError):
            Instruction(Opcode.CDP, cdp_cover=MAX_CDP_COVER + 1)
        Instruction(Opcode.CDP, cdp_cover=MAX_CDP_COVER)  # ok

    def test_cdp_cover_only_on_cdp(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, dests=(0,), srcs=(1,), cdp_cover=3)


class TestProperties:
    def test_memory_flags(self):
        load = Instruction(Opcode.LDR, dests=(0,), srcs=(1,))
        store = Instruction(Opcode.STR, srcs=(0, 1))
        assert load.is_load and load.is_memory and not load.is_store
        assert store.is_store and store.is_memory and not store.is_load

    def test_predication(self):
        assert Instruction(Opcode.ADD, dests=(0,), srcs=(1,),
                           cond=Cond.EQ).is_predicated
        assert not Instruction(Opcode.ADD, dests=(0,),
                               srcs=(1,)).is_predicated

    def test_with_encoding_preserves_rest(self):
        instr = Instruction(Opcode.ADD, dests=(1,), srcs=(2,), imm=7)
        thumb = instr.with_encoding(Encoding.THUMB16)
        assert thumb.encoding is Encoding.THUMB16
        assert thumb.opcode is instr.opcode
        assert thumb.imm == 7

    def test_with_uid(self):
        instr = Instruction(Opcode.NOP)
        assert instr.uid == -1
        assert instr.with_uid(42).uid == 42

    def test_uid_not_in_equality(self):
        a = Instruction(Opcode.ADD, dests=(0,), srcs=(1,), uid=1)
        b = Instruction(Opcode.ADD, dests=(0,), srcs=(1,), uid=2)
        assert a == b

    def test_signature_ignores_uid_and_encoding(self):
        a = Instruction(Opcode.ADD, dests=(0,), srcs=(1,), uid=1)
        b = Instruction(Opcode.ADD, dests=(0,), srcs=(1,), uid=9,
                        encoding=Encoding.THUMB16)
        assert a.signature() == b.signature()

    def test_signature_distinguishes_operands(self):
        a = Instruction(Opcode.ADD, dests=(0,), srcs=(1,))
        b = Instruction(Opcode.ADD, dests=(0,), srcs=(2,))
        assert a.signature() != b.signature()


class TestRendering:
    def test_to_text_basic(self):
        instr = Instruction(Opcode.ADD, dests=(1,), srcs=(2,), imm=4)
        assert instr.to_text() == "ADD R1, R2, #4"

    def test_to_text_predicated(self):
        instr = Instruction(Opcode.SUB, dests=(0,), srcs=(1,),
                            cond=Cond.NE)
        assert instr.to_text().startswith("SUBNE")

    def test_to_text_thumb_marker(self):
        instr = Instruction(Opcode.MOV, dests=(0,), imm=1,
                            encoding=Encoding.THUMB16)
        assert ".thumb" in instr.to_text()

    def test_to_text_cdp(self):
        instr = Instruction(Opcode.CDP, cdp_cover=5)
        assert "<5>" in instr.to_text()

    def test_to_text_branch_target(self):
        instr = Instruction(Opcode.B, cond=Cond.EQ, target=17)
        assert "@17" in instr.to_text()
