"""The pluggable cache-backend seam: spec parsing, the byte-identical
local tier, and the ``remote:``/``tiered:`` read-through tiers.

The remote tests run a minimal threaded wire-framed stub server (the
same ``cache.get``/``cache.blob`` vocabulary ``repro.serve`` speaks) so
every network edge — hit, miss, auth denial, unreachable host, corrupt
blob — is exercised without a real serve process.
"""

import json
import os
import socket
import subprocess
import sys
import threading

import pytest

import repro.telemetry as telemetry
from repro.cache import (
    SCHEMA_VERSION,
    ArtifactCache,
    LocalBackend,
    RemoteBackend,
    RemoteTier,
    TieredBackend,
    backend_from_spec,
    parse_backend_spec,
    reset_cache,
)
from repro.dispatch import wire

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


@pytest.fixture(autouse=True)
def _fresh_state(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_CACHE_TOKEN", raising=False)
    monkeypatch.delenv("REPRO_FLEET_TOKEN", raising=False)
    reset_cache()
    telemetry.reset()
    yield
    reset_cache()


class TestSpecParsing:
    def test_empty_and_local_default(self):
        assert parse_backend_spec("") == {"mode": "local", "root": None}
        assert parse_backend_spec("local") == \
            {"mode": "local", "root": None}

    def test_local_with_root(self):
        parsed = parse_backend_spec("local:/other/root")
        assert parsed == {"mode": "local", "root": "/other/root"}

    def test_remote_and_tiered(self):
        parsed = parse_backend_spec("remote:cachehost:7017")
        assert parsed["mode"] == "remote"
        assert (parsed["host"], parsed["port"]) == ("cachehost", 7017)
        parsed = parse_backend_spec(
            "tiered:10.0.0.5:7017?root=/r&token=s&timeout_s=2.5")
        assert parsed["mode"] == "tiered"
        assert parsed["root"] == "/r" and parsed["token"] == "s"
        assert parsed["timeout_s"] == 2.5

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown cache backend"):
            parse_backend_spec("s3:bucket")

    def test_missing_host_port_rejected(self):
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_backend_spec("remote:justahost")
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_backend_spec("remote::7017")

    def test_unknown_query_option_rejected(self):
        with pytest.raises(ValueError, match="unknown option"):
            parse_backend_spec("remote:h:7017?verbose=1")

    def test_backend_from_spec_shapes(self, tmp_path):
        local = backend_from_spec("", root=str(tmp_path))
        assert isinstance(local, LocalBackend)
        remote = backend_from_spec("remote:h:7017", root=str(tmp_path))
        assert isinstance(remote, RemoteBackend) \
            and not isinstance(remote, TieredBackend)
        tiered = backend_from_spec("tiered:h:7017", root=str(tmp_path))
        assert isinstance(tiered, TieredBackend)
        assert tiered.describe() == "tiered:h:7017"

    def test_token_falls_back_to_fleet_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_TOKEN", "fleet-secret")
        backend = backend_from_spec("remote:h:7017", root=str(tmp_path))
        assert backend.tier.token == "fleet-secret"
        monkeypatch.setenv("REPRO_CACHE_TOKEN", "cache-secret")
        backend = backend_from_spec("remote:h:7017", root=str(tmp_path))
        assert backend.tier.token == "cache-secret"
        backend = backend_from_spec("remote:h:7017?token=spec-secret",
                                    root=str(tmp_path))
        assert backend.tier.token == "spec-secret"


class TestLocalBackend:
    def test_paths_byte_identical_to_schema_v3_layout(self, tmp_path):
        backend = LocalBackend(str(tmp_path))
        key = "ab" + "0" * 62
        assert backend.path_for("stats", key) == \
            tmp_path / f"v{SCHEMA_VERSION}" / "stats" / "ab" \
            / f"{key}.json"
        assert backend.path_for("trace", key).suffix == ".trace"
        cache = ArtifactCache(root=str(tmp_path), enabled=True)
        assert cache.path_for("stats", key) == \
            backend.path_for("stats", key)

    def test_roundtrip_and_list_skip_tmp_files(self, tmp_path):
        backend = LocalBackend(str(tmp_path))
        backend.put("stats", "aa" + "1" * 62, "{}")
        orphan = backend.path_for("stats", "aa" + "1" * 62).parent \
            / ".tmp-orphan.json"
        orphan.write_text("torn")
        assert backend.get("stats", "aa" + "1" * 62) == "{}"
        assert backend.list("stats") == ["aa" + "1" * 62]
        assert backend.delete("stats", "aa" + "1" * 62)
        assert not backend.delete("stats", "aa" + "1" * 62)


class _StubCacheServer:
    """Threaded wire-framed stand-in for a serve cache endpoint."""

    def __init__(self, blobs=None, token=""):
        self.blobs = dict(blobs or {})   # (kind, key) -> text
        self.token = token
        self.requests = []
        self.sock = socket.create_server(("127.0.0.1", 0))
        self.address = self.sock.getsockname()[:2]
        self.thread = threading.Thread(target=self._accept, daemon=True)
        self.thread.start()

    def _accept(self):
        while True:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            threading.Thread(target=self._serve, args=(conn,),
                             daemon=True).start()

    def _serve(self, conn):
        try:
            while True:
                message = wire.recv_msg(conn)
                self.requests.append(message)
                if (message.get("token") or "") != self.token:
                    wire.send_msg(conn, {"type": "denied",
                                         "error": "bad token"})
                    continue
                text = self.blobs.get(
                    (message["kind"], message["key"]))
                wire.send_msg(conn, {
                    "type": "cache.blob", "kind": message["kind"],
                    "key": message["key"], "hit": text is not None,
                    "text": text,
                })
        except Exception:
            pass
        finally:
            conn.close()

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


@pytest.fixture
def stub():
    server = _StubCacheServer()
    yield server
    server.close()


KEY = "cd" + "2" * 62


class TestRemoteBackend:
    def test_read_through_writes_back_locally(self, tmp_path, stub):
        stub.blobs[("stats", KEY)] = '{"remote": true}'
        local = LocalBackend(str(tmp_path))
        backend = RemoteBackend(
            local, RemoteTier(*stub.address))
        try:
            assert backend.get("stats", KEY) == '{"remote": true}'
            # the blob landed in the local tier: next run answers from
            # disk even with the server gone
            assert local.get("stats", KEY) == '{"remote": true}'
        finally:
            backend.close()

    def test_tiered_prefers_local_disk(self, tmp_path, stub):
        local = LocalBackend(str(tmp_path))
        local.put("stats", KEY, '{"local": true}')
        backend = TieredBackend(local, RemoteTier(*stub.address))
        try:
            assert backend.get("stats", KEY) == '{"local": true}'
            assert stub.requests == []  # never touched the network
        finally:
            backend.close()

    def test_remote_miss_degrades_to_compute_and_local_put(
            self, tmp_path, stub):
        backend = RemoteBackend(
            LocalBackend(str(tmp_path)), RemoteTier(*stub.address))
        try:
            assert backend.get("stats", KEY) is None
            backend.put("stats", KEY, '{"computed": 1}')
            assert backend.local.get("stats", KEY) == '{"computed": 1}'
        finally:
            backend.close()

    def test_unreachable_server_degrades_cleanly(self, tmp_path):
        # grab a port nothing listens on
        probe = socket.create_server(("127.0.0.1", 0))
        host, port = probe.getsockname()[:2]
        probe.close()
        backend = RemoteBackend(
            LocalBackend(str(tmp_path)),
            RemoteTier(host, port, timeout_s=2.0, cooldown_s=60.0))
        cache = ArtifactCache(enabled=True, backend=backend)
        try:
            assert cache.load_stats(KEY) is None
            assert cache.misses == 1
            # the tier is benched: the next lookup must not retry the
            # network inside the cooldown window
            assert backend.tier._down_until > 0
            assert cache.load_stats(KEY) is None
            assert cache.misses == 2
        finally:
            cache.close()

    def test_bad_token_denied_degrades_to_miss(self, tmp_path):
        server = _StubCacheServer(
            blobs={("stats", KEY): "{}"}, token="s3cret")
        try:
            backend = RemoteBackend(
                LocalBackend(str(tmp_path)),
                RemoteTier(*server.address, token="wrong"))
            assert backend.get("stats", KEY) is None
            good = RemoteBackend(
                LocalBackend(str(tmp_path)),
                RemoteTier(*server.address, token="s3cret"))
            assert good.get("stats", KEY) == "{}"
            backend.close()
            good.close()
        finally:
            server.close()

    def test_corrupt_remote_blob_trail_identical_to_local(
            self, tmp_path, stub):
        """A garbage blob from the network degrades exactly like a
        garbage blob on disk: hit, then ``cache.corrupt``, then None."""
        stub.blobs[("stats", KEY)] = "{not json"
        remote = ArtifactCache(
            enabled=True,
            backend=RemoteBackend(LocalBackend(str(tmp_path / "r")),
                                  RemoteTier(*stub.address)))
        assert remote.load_stats(KEY) is None
        remote_trail = (remote.hits, remote.misses,
                        dict(telemetry.counters()))
        remote.close()

        telemetry.reset()
        local_backend = LocalBackend(str(tmp_path / "l"))
        local_backend.put("stats", KEY, "{not json")
        local = ArtifactCache(enabled=True, backend=local_backend)
        assert local.load_stats(KEY) is None
        local_trail = (local.hits, local.misses,
                       dict(telemetry.counters()))

        assert remote_trail[0] == local_trail[0] == 1   # a hit...
        assert remote_trail[1] == local_trail[1] == 0
        for trail in (remote_trail, local_trail):       # ...then corrupt
            assert trail[2].get("cache.corrupt.stats") == 1
            assert trail[2].get("cache.hit.stats") == 1

    def test_env_selected_backend_round_trip(self, tmp_path,
                                             monkeypatch, stub):
        stub.blobs[("stats", KEY)] = '{"env": true}'
        host, port = stub.address
        monkeypatch.setenv(
            "REPRO_CACHE_BACKEND",
            f"tiered:{host}:{port}?root={tmp_path / 'envroot'}")
        reset_cache()
        from repro.cache import get_cache

        cache = get_cache()
        assert cache.backend_spec() == f"tiered:{host}:{port}"
        assert cache._read("stats", KEY) == '{"env": true}'
        assert cache.hits == 1


_WRITER = """
import sys
from repro.cache import LocalBackend
backend = LocalBackend(sys.argv[1])
text = sys.argv[3] * 200000
torn = 0
for _ in range(25):
    backend.put("stats", sys.argv[2], text)
    seen = backend.get("stats", sys.argv[2])
    if seen is None or len(seen) != len(text) or len(set(seen)) != 1:
        torn += 1
print(torn)
"""


class TestConcurrentWriteBack:
    def test_two_process_write_back_is_atomic(self, tmp_path):
        """Two processes hammering the same key (the write-back race two
        remote-backed hosts hit): readers must only ever observe one
        writer's complete text, never a torn mix."""
        env = dict(os.environ, PYTHONPATH=SRC)
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _WRITER, str(tmp_path), KEY,
                 marker],
                env=env, stdout=subprocess.PIPE, text=True)
            for marker in ("A", "B")
        ]
        backend = LocalBackend(str(tmp_path))
        torn = []
        for _ in range(2000):
            text = backend.get("stats", KEY)
            if text is not None and (len(text) != 200000
                                     or len(set(text)) != 1):
                torn.append(len(text))
        outs = [proc.communicate(timeout=120)[0].strip()
                for proc in procs]
        assert all(proc.returncode == 0 for proc in procs)
        assert torn == []
        assert outs == ["0", "0"]  # writers never read torn text either
        final = backend.get("stats", KEY)
        assert final in ("A" * 200000, "B" * 200000)
        # no .tmp- litter left behind
        parent = backend.path_for("stats", KEY).parent
        assert [p for p in parent.iterdir()
                if p.name.startswith(".tmp-")] == []
