"""Tests for OPP16 and Compress (the criticality-agnostic baselines)."""

import pytest

from repro.compiler import CompressPass, Opp16Pass, PassManager
from repro.isa import Cond, Encoding, Instruction, MAX_CDP_COVER, Opcode
from repro.trace import BasicBlock, Program


def alu(dest=0, src=1, imm=1, cond=Cond.AL):
    return Instruction(Opcode.ADD, dests=(dest,), srcs=(src,), imm=imm,
                       cond=cond)


def prog(instrs):
    return Program([BasicBlock(0, list(instrs))])


class TestOpp16:
    def test_run_of_three_converted(self):
        result = PassManager([Opp16Pass()]).run(prog([alu()] * 3))
        out = result.program.block(0).instructions
        assert out[0].opcode is Opcode.CDP
        assert out[0].cdp_cover == 3
        assert all(i.encoding is Encoding.THUMB16 for i in out[1:])

    def test_run_of_two_not_converted(self):
        result = PassManager([Opp16Pass()]).run(prog([alu()] * 2))
        out = result.program.block(0).instructions
        assert all(i.encoding is Encoding.ARM32 for i in out)
        assert result.ctx.get("opp16", "cdp-commands") == 0

    def test_inconvertible_breaks_run_without_reordering(self):
        """The paper's rule: OPP16 never moves instructions around."""
        blocker = alu(dest=12)  # high register
        result = PassManager([Opp16Pass()]).run(
            prog([alu()] * 2 + [blocker] + [alu()] * 2)
        )
        out = result.program.block(0).instructions
        # No CDP anywhere: both runs are below the min length.
        assert all(i.opcode is not Opcode.CDP for i in out)
        # Order unchanged.
        assert [i.uid for i in out] == sorted(i.uid for i in out)

    def test_long_run_split_across_cdps(self):
        result = PassManager([Opp16Pass()]).run(prog([alu()] * 12))
        out = result.program.block(0).instructions
        cdps = [i for i in out if i.opcode is Opcode.CDP]
        assert [c.cdp_cover for c in cdps] == [MAX_CDP_COVER, 3]

    def test_predicated_instruction_breaks_run(self):
        result = PassManager([Opp16Pass()]).run(
            prog([alu(), alu(), alu(cond=Cond.EQ), alu(), alu()])
        )
        assert result.ctx.get("opp16", "thumbed") == 0

    def test_already_thumb_not_reconverted(self):
        thumb = alu().with_encoding(Encoding.THUMB16)
        result = PassManager([Opp16Pass()]).run(prog([thumb] * 5))
        assert result.ctx.get("opp16", "thumbed") == 0


class TestCompress:
    def test_min_run_two(self):
        result = PassManager([CompressPass()]).run(prog([alu()] * 2))
        assert result.ctx.get("compress", "thumbed") == 2

    def test_slow_thumb_reverted(self):
        """Long-latency ops stay 32-bit (the fine-grained heuristic)."""
        mul = Instruction(Opcode.MUL, dests=(0,), srcs=(1, 2))
        result = PassManager([CompressPass()]).run(
            prog([alu(), alu(), mul, alu(), alu()])
        )
        out = result.program.block(0).instructions
        muls = [i for i in out if i.opcode is Opcode.MUL]
        assert muls[0].encoding is Encoding.ARM32

    def test_compress_converts_at_least_opp16(self):
        instrs = [alu(dest=k % 6) for k in range(7)] \
            + [alu(dest=12)] + [alu(), alu()]
        opp = PassManager([Opp16Pass()]).run(prog(list(instrs)))
        comp = PassManager([CompressPass()]).run(prog(list(instrs)))
        assert comp.ctx.get("compress", "thumbed") \
            >= opp.ctx.get("opp16", "thumbed")


class TestStacking:
    def test_opp16_after_critic_skips_cdp_regions(self):
        from repro.compiler import CriticPass
        from repro.profiler import CriticRecord

        chain = [
            Instruction(Opcode.ADD, dests=(0,), srcs=(6, 7), uid=0),
            Instruction(Opcode.ADD, dests=(1,), srcs=(0,), imm=1, uid=1),
            Instruction(Opcode.ADD, dests=(2,), srcs=(1,), imm=1, uid=2),
        ]
        fillers = [alu(dest=8, src=9) for _ in range(4)]
        program = Program([BasicBlock(0, chain + fillers)])
        record = CriticRecord(uids=(0, 1, 2), occurrences=3,
                              mean_avg_fanout=10.0, thumb_encodable=True,
                              block_id=0)
        result = PassManager([
            CriticPass([record], mode="cdp"), Opp16Pass()
        ]).run(program)
        out = result.program.block(0).instructions
        # Chain converted by CritIC, fillers by OPP16; exactly 2 CDPs.
        assert sum(1 for i in out if i.opcode is Opcode.CDP) == 2
        arm = [i for i in out
               if i.encoding is Encoding.ARM32]
        assert not arm  # everything convertible here ends up Thumb
