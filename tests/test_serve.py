"""The serve stack: persistent fleet, job engine, wire + HTTP fronts,
sync client, and the load-generator harness.

Server tests run the ``inline`` executor lane (no worker subprocesses)
inside a background thread's event loop; one test exercises the
persistent fleet end-to-end with real worker processes.  Everything
routes through a throwaway cache so warm/cold behaviour is deterministic.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cache import reset_cache
from repro.dispatch import RetryPolicy, TaskSpec
from repro.dispatch.fleet import PersistentFleet
from repro.experiments.runner import app_context, clear_cache
from repro.loadgen import (
    ClosedLoopEngine,
    OpenLoopEngine,
    SweepGridWorkload,
    parse_mix,
    percentile,
)
from repro.loadgen.base import _mix_pattern
from repro.serve import ServeServer
from repro.serve.client import ServeBusyError, ServeClient, ServeError

WALK = 60
FAST = RetryPolicy(timeout_s=60.0, max_attempts=3, backoff_base_s=0.01,
                   backoff_cap_s=0.05, heartbeat_s=0.1)


@pytest.fixture(autouse=True)
def _fresh_state(tmp_path, monkeypatch):
    import repro.telemetry as telemetry

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    reset_cache()
    clear_cache()
    telemetry.reset()  # metrics are process-wide and cumulative
    yield
    clear_cache()
    reset_cache()


class _ServerThread:
    """Run a ServeServer on its own event loop in a daemon thread."""

    def __init__(self, **kwargs) -> None:
        import asyncio

        self._asyncio = asyncio
        self.kwargs = kwargs
        self.server = None
        self.loop = None
        self.error = None
        self.ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        assert self.ready.wait(timeout=60), self.error
        assert self.error is None, self.error

    def _run(self) -> None:
        asyncio = self._asyncio

        async def main():
            try:
                self.server = ServeServer(**self.kwargs)
                await self.server.start()
                self.loop = asyncio.get_running_loop()
            except Exception as exc:  # surface in the test thread
                self.error = exc
                raise
            finally:
                self.ready.set()
            await self.server.serve_forever()

        try:
            asyncio.run(main())
        except Exception:
            pass

    @property
    def wire(self):
        return ("127.0.0.1", self.server.wire_port)

    @property
    def http(self) -> str:
        return f"http://127.0.0.1:{self.server.http_port}"

    def stop(self) -> None:
        if self.loop is None or self.server is None \
                or self.loop.is_closed():
            return
        future = self._asyncio.run_coroutine_threadsafe(
            self.server.stop(grace_s=10.0), self.loop)
        future.result(timeout=60)
        self.thread.join(timeout=30)


@pytest.fixture
def server():
    srv = _ServerThread(executor="inline", wire_port=0, http_port=0)
    yield srv
    srv.stop()


SPEC = {"apps": ["Music"], "schemes": ["baseline", "critic"],
        "walk_blocks": WALK}


class TestWireFront:
    def test_hello_ping_health(self, server):
        with ServeClient(server.wire) as client:
            welcome = client.hello()
            assert welcome["type"] == "welcome"
            assert welcome["protocol"] == 2
            assert client.ping()
            health = client.health()
            assert health["ok"] and health["status"] == "serving"

    def test_sweep_streams_cells_then_done(self, server):
        with ServeClient(server.wire) as client:
            records = list(client.sweep(SPEC, job_id="t1"))
        kinds = [r["type"] for r in records]
        assert kinds[0] == "accepted" and kinds[-1] == "done"
        assert kinds.count("cell") == 2
        done = records[-1]
        assert done["cells"] == 2 and done["failed"] == 0
        for record in records:
            json.dumps(record)  # every record is JSON-safe

    def test_second_pass_is_fully_cached(self, server):
        with ServeClient(server.wire) as client:
            list(client.sweep(SPEC, job_id="cold"))
            done = list(client.sweep(SPEC, job_id="warm"))[-1]
        assert done["cached"] == done["cells"] == 2
        assert done["computed"] == 0

    def test_served_stats_bit_identical_to_inline(self, server):
        with ServeClient(server.wire) as client:
            records = list(client.sweep(SPEC, job_id="ident"))
        served = {r["scheme"]: r["stats"] for r in records
                  if r["type"] == "cell"}
        ctx = app_context("Music", WALK)
        for scheme in ("baseline", "critic"):
            assert served[scheme] == ctx.stats(scheme).to_dict()

    def test_bad_spec_rejected_with_did_you_mean(self, server):
        with ServeClient(server.wire) as client:
            with pytest.raises(ServeError, match="did you mean"):
                list(client.sweep({"apps": ["Music"],
                                   "schemes": ["crtic"]}))
            # connection still usable after a rejection
            assert client.ping()

    def test_unknown_app_rejected(self, server):
        with ServeClient(server.wire) as client:
            with pytest.raises(ServeError, match="unknown workload"):
                list(client.sweep({"apps": ["NotAnApp"]}))

    def test_sweep_with_workload_family(self, server):
        spec = dict(SPEC, workload_family="bursty")
        with ServeClient(server.wire) as client:
            records = list(client.sweep(spec, job_id="fam-cold"))
            warm = list(client.sweep(spec, job_id="fam-warm"))[-1]
        served = {r["scheme"]: r["stats"] for r in records
                  if r["type"] == "cell"}
        ctx = app_context("Music", WALK, "bursty")
        for scheme in ("baseline", "critic"):
            assert served[scheme] == ctx.stats(scheme).to_dict()
        assert warm["cached"] == warm["cells"] == 2

    def test_unknown_family_rejected_with_suggestion(self, server):
        with ServeClient(server.wire) as client:
            with pytest.raises(ServeError, match="did you mean"):
                list(client.sweep(dict(SPEC,
                                       workload_family="zipfain")))
            assert client.ping()

    def test_unknown_spec_field_rejected(self, server):
        with ServeClient(server.wire) as client:
            with pytest.raises(ServeError, match="walk_block"):
                list(client.sweep({"apps": ["Music"],
                                   "walk_block": WALK}))

    def test_unknown_message_type_is_answered_not_fatal(self, server):
        from repro.dispatch import wire

        with ServeClient(server.wire) as client:
            client._send({"type": "frobnicate"})
            reply = client._recv()
            assert reply["type"] == "error"
            assert "frobnicate" in reply["error"]
            assert client.ping()


class TestHttpFront:
    def _get(self, url: str):
        with urllib.request.urlopen(url, timeout=30) as resp:
            return resp.status, resp.read().decode()

    def test_healthz(self, server):
        status, body = self._get(server.http + "/healthz")
        health = json.loads(body)
        assert status == 200 and health["ok"]
        assert health["executor"] == "inline"

    def test_healthz_enumerates_every_registry(self, server):
        _status, body = self._get(server.http + "/healthz")
        registries = json.loads(body)["registries"]
        assert len(registries) == 8
        assert "critic@1" in registries["schemes"]
        assert "google-tablet@1" in registries["hardware_configs"]
        families = registries["workload_families"]
        assert "default@1" in families
        assert "trace-replay@1" in families
        assert "bursty@1" in families

    def test_metrics_exposition(self, server):
        with ServeClient(server.wire) as client:
            list(client.sweep(SPEC, job_id="m1"))
        status, body = self._get(server.http + "/metrics")
        assert status == 200
        assert "# TYPE repro_serve_jobs_total counter" in body
        assert 'repro_serve_cells_total{source="computed"} 2' in body

    def test_sweep_streams_ndjson(self, server):
        request = urllib.request.Request(
            server.http + "/sweep",
            data=json.dumps({"id": "h1", **SPEC}).encode(),
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=120) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"] == \
                "application/x-ndjson"
            records = [json.loads(line) for line in resp]
        assert [r["type"] for r in records] == \
            ["accepted", "cell", "cell", "done"]
        assert records[-1]["id"] == "h1"

    def test_unknown_route_404s_with_route_list(self, server):
        with pytest.raises(urllib.error.HTTPError) as info:
            self._get(server.http + "/nope")
        assert info.value.code == 404
        assert "/sweep" in info.value.read().decode()

    def test_non_json_body_400s(self, server):
        request = urllib.request.Request(server.http + "/sweep",
                                         data=b"not json")
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30)
        assert info.value.code == 400


class TestBackpressure:
    """``--max-pending`` admission control on both fronts."""

    @pytest.fixture
    def busy_server(self):
        # max_pending=0: the pending-job table is always "full", so
        # every submission gets the structured busy reply — the most
        # deterministic way to exercise the backpressure path.
        srv = _ServerThread(executor="inline", wire_port=0, http_port=0,
                            max_pending=0)
        yield srv
        srv.stop()

    def test_wire_front_answers_structured_busy(self, busy_server):
        with ServeClient(busy_server.wire) as client:
            with pytest.raises(ServeBusyError):
                list(client.sweep(SPEC, job_id="nope"))
            # inspect the raw record shape on a second attempt
            client._send({"type": "sweep", "id": "raw", "spec": SPEC})
            record = client._recv()
            assert record["type"] == "busy"
            assert record["id"] == "raw"
            assert record["max_pending"] == 0
            assert "error" in record and "active" in record
            # connection still usable after backpressure
            assert client.ping()

    def test_http_front_answers_503_with_retry_after(self, busy_server):
        request = urllib.request.Request(
            busy_server.http + "/sweep",
            data=json.dumps({"id": "h503", **SPEC}).encode(),
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30)
        assert info.value.code == 503
        assert info.value.headers["Retry-After"] == "1"
        body = json.loads(info.value.read().decode())
        assert body["busy"] is True and body["ok"] is False

    def test_healthz_reports_max_pending(self, busy_server):
        with urllib.request.urlopen(busy_server.http + "/healthz",
                                    timeout=30) as resp:
            health = json.loads(resp.read().decode())
        assert health["jobs"]["max_pending"] == 0


class TestCoalescing:
    """Concurrent cold requests for the same cell share one compute."""

    def test_concurrent_cold_full_sweeps_compute_grid_once(self,
                                                           server):
        dones = []
        errors = []

        def submit(job_id):
            try:
                with ServeClient(server.wire, timeout_s=120) as client:
                    dones.append(
                        list(client.sweep(SPEC, job_id=job_id))[-1])
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=submit, args=(f"co{n}",))
                   for n in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        assert len(dones) == 2
        total = {key: sum(d[key] for d in dones)
                 for key in ("cells", "cached", "computed",
                             "coalesced", "failed")}
        # The 2-cell grid computes exactly once across both jobs; the
        # duplicate cells ride along as coalesced or (if the first job
        # finished a cell before the second looked) cached.
        assert total["failed"] == 0
        assert total["cells"] == 4
        assert total["computed"] == 2
        assert total["cached"] + total["coalesced"] == 2

    def test_done_record_carries_coalesced_field(self, server):
        with ServeClient(server.wire) as client:
            done = list(client.sweep(SPEC, job_id="solo"))[-1]
        assert done["coalesced"] == 0
        assert done["computed"] == 2


class TestDrain:
    def test_shutdown_message_drains_and_rejects_new_jobs(self):
        srv = _ServerThread(executor="inline", wire_port=0, http_port=0)
        try:
            with ServeClient(srv.wire) as client:
                client.shutdown_server()
            srv.thread.join(timeout=30)
            assert not srv.thread.is_alive()
        finally:
            srv.stop()


# -- module-level task body (pickled by reference into fleet workers) --------


def _triple(x):
    return 3 * x


class TestPersistentFleet:
    def test_workers_survive_across_submissions(self):
        fleet = PersistentFleet(jobs=2, policy=FAST)
        try:
            import time

            def drain(count):
                out = []
                deadline = time.monotonic() + 60
                while len(out) < count:
                    assert time.monotonic() < deadline, "fleet stalled"
                    out.extend(fleet.poll())
                    time.sleep(0.02)
                return out

            for task_id in ("a1", "a2", "a3"):
                fleet.submit(TaskSpec(id=task_id, fn=_triple,
                                      args=(int(task_id[1]),)))
            first = drain(3)
            assert {r.task_id: r.value for r in first} == \
                {"a1": 3, "a2": 6, "a3": 9}
            spawned_after_first = fleet.workers_spawned()
            # Second wave on the same fleet: no new workers spawned.
            fleet.submit(TaskSpec(id="b1", fn=_triple, args=(10,)))
            second = drain(1)
            assert second[0].value == 30
            assert fleet.workers_spawned() == spawned_after_first
            assert fleet.workers_alive() == 2
        finally:
            fleet.shutdown(grace_s=15.0)
        assert fleet.workers_alive() == 0

    def test_submit_after_shutdown_raises(self):
        fleet = PersistentFleet(jobs=1, policy=FAST)
        fleet.shutdown(grace_s=15.0)
        with pytest.raises(RuntimeError):
            fleet.submit(TaskSpec(id="late", fn=_triple, args=(1,)))


class TestLoadgenPieces:
    def test_parse_mix(self):
        assert parse_mix("cell=8,full=2") == {"cell": 8, "full": 2}
        assert parse_mix("cell") == {"cell": 1}
        with pytest.raises(ValueError, match="unknown request shape"):
            parse_mix("row=1")
        with pytest.raises(ValueError, match="integer"):
            parse_mix("cell=lots")

    def test_mix_pattern_interleaves_deterministically(self):
        pattern = _mix_pattern({"cell": 3, "full": 1})
        assert sorted(pattern) == ["cell", "cell", "cell", "full"]
        assert _mix_pattern({"cell": 3, "full": 1}) == pattern

    def test_percentile_nearest_rank(self):
        values = [float(n) for n in range(101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.99) == 99.0
        assert percentile(values, 1.0) == 100.0
        assert percentile([], 0.5) == 0.0

    def test_grid_workload_round_robins_cells(self):
        workload = SweepGridWorkload(
            spec={"apps": ["Music", "Email"], "schemes": ["baseline"]},
            mix={"cell": 1})
        stream = workload.reqs()
        reqs = [next(stream) for _ in range(4)]
        assert [r.spec["apps"] for r in reqs] == \
            [["Music"], ["Email"], ["Music"], ["Email"]]
        assert all(r.shape == "cell" for r in reqs)
        assert workload.grid_cells() == 2

    def test_grid_workload_full_shape_keeps_whole_grid(self):
        workload = SweepGridWorkload(
            spec={"apps": ["Music", "Email"]}, mix={"full": 1})
        req = next(workload.reqs())
        assert req.spec["apps"] == ["Music", "Email"]

    def test_empty_apps_rejected(self):
        with pytest.raises(ValueError, match="apps"):
            SweepGridWorkload(spec={"apps": []})

    def test_grid_workload_passes_family_through_every_shape(self):
        workload = SweepGridWorkload(
            spec={"apps": ["Music", "Email"],
                  "workload_family": "phased"},
            mix={"cell": 1, "app": 1, "full": 1})
        stream = workload.reqs()
        reqs = [next(stream) for _ in range(6)]
        assert {r.shape for r in reqs} == {"cell", "app", "full"}
        for req in reqs:
            assert req.spec["workload_family"] == "phased"


class TestLoadgenEndToEnd:
    def test_closed_loop_report_shape_and_warm_pass(self, server):
        workload = SweepGridWorkload(spec=SPEC, mix={"cell": 1})
        engine = ClosedLoopEngine(concurrency=2, timeout_s=120)
        cold = engine.run(server.wire, workload, requests=4)
        assert cold["requests"]["failed"] == 0
        # In-flight coalescing: concurrent requests for the same
        # not-yet-cached cell share one computation, so exactly the
        # grid computes and every duplicate is cached or coalesced.
        assert cold["cells"]["computed"] == 2
        assert cold["cells"]["computed"] + cold["cells"]["cached"] \
            + cold["cells"]["coalesced"] == cold["cells"]["served"]
        warm = engine.run(server.wire, workload, requests=4)
        assert warm["cells"]["computed"] == 0
        assert warm["cells"]["cached"] == warm["cells"]["served"] == 4
        lat = warm["latency_s"]
        assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
        phases = warm["phases"]["loadgen.request"]
        assert phases["calls"] == 4
        assert phases["total_s"] == pytest.approx(
            sum(s["latency_s"] for s in warm["samples"]), rel=1e-3)

    def test_open_loop_charges_schedule_delay(self, server):
        workload = SweepGridWorkload(spec=SPEC, mix={"cell": 1})
        # Prime the cache so open-loop requests are all warm and fast.
        ClosedLoopEngine(concurrency=1, timeout_s=120).run(
            server.wire, workload, requests=2)
        engine = OpenLoopEngine(rate_hz=50.0, concurrency=2,
                                timeout_s=120)
        report = engine.run(server.wire, workload, requests=10)
        assert report["requests"]["ok"] == 10
        assert report["offered"]["rate_hz"] == 50.0
        # 10 requests at 50 Hz: the run spans at least the schedule.
        assert report["wall_s"] >= 9 / 50.0

    def test_loadgen_report_is_compare_compatible(self, server,
                                                  tmp_path):
        from repro.telemetry import compare

        workload = SweepGridWorkload(spec=SPEC, mix={"cell": 1})
        engine = ClosedLoopEngine(concurrency=1, timeout_s=120)
        report = engine.run(server.wire, workload, requests=2)
        path = tmp_path / "loadgen.json"
        path.write_text(json.dumps(report))
        means = compare.phase_means(json.loads(path.read_text()))
        assert "loadgen.request" in means
        assert means["loadgen.request"] > 0
