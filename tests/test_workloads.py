"""Tests for the synthetic workload generator and catalog."""

import pytest

from repro.dfg import Dfg, critical_fraction, gap_histogram
from repro.isa import Opcode
from repro.trace import compute_producers
from repro.workloads import (
    ALL_PROFILES,
    MOBILE,
    SPEC_FLOAT,
    SPEC_INT,
    WorkloadProfile,
    generate,
    get_profile,
    mobile_app_names,
    profiles_in_group,
    spec_float_names,
    spec_int_names,
    table2_rows,
)


class TestCatalog:
    def test_counts(self):
        assert len(mobile_app_names()) == 10
        assert len(spec_int_names()) == 8
        assert len(spec_float_names()) == 8
        assert len(table2_rows()) == 26

    def test_paper_app_list(self):
        assert set(mobile_app_names()) == {
            "Acrobat", "Angrybirds", "Browser", "Facebook", "Email",
            "Maps", "Music", "Office", "Photogallery", "Youtube",
        }

    def test_paper_spec_lists(self):
        assert "mcf" in spec_int_names()
        assert "h264ref" in spec_int_names()
        assert "lbm" in spec_float_names()
        assert "leslie3d" in spec_float_names()

    def test_groups_partition(self):
        groups = [profiles_in_group(g)
                  for g in (MOBILE, SPEC_INT, SPEC_FLOAT)]
        total = sum(len(g) for g in groups)
        assert total == len(ALL_PROFILES)

    def test_get_profile_unknown(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_profile("DoomEternal")


class TestProfileValidation:
    def test_fraction_bounds_checked(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", group=MOBILE, chain_motif_prob=1.5)

    def test_unknown_group_rejected(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", group="server")

    def test_scaled_changes_walk(self):
        profile = get_profile("Acrobat")
        assert profile.scaled(0.5).walk_blocks \
            == max(50, profile.walk_blocks // 2)

    def test_with_seed(self):
        profile = get_profile("Acrobat")
        assert profile.with_seed(99).seed == 99


class TestGeneration:
    @pytest.fixture(scope="class")
    def mobile_wl(self):
        return generate(get_profile("Facebook"), walk_blocks=250)

    @pytest.fixture(scope="class")
    def spec_wl(self):
        return generate(get_profile("bzip2"), walk_blocks=600)

    def test_deterministic(self):
        a = generate(get_profile("Email"), walk_blocks=120)
        b = generate(get_profile("Email"), walk_blocks=120)
        assert a.walk == b.walk
        assert [i.signature() for i in a.program] \
            == [i.signature() for i in b.program]
        assert [e.pc for e in a.trace()] == [e.pc for e in b.trace()]

    def test_walk_references_valid_blocks(self, mobile_wl):
        block_ids = {b.block_id for b in mobile_wl.program.blocks}
        assert set(mobile_wl.walk) <= block_ids

    def test_trace_nonempty(self, mobile_wl):
        assert len(mobile_wl.trace()) > 1000

    def test_memory_instructions_have_addresses(self, mobile_wl):
        for entry in mobile_wl.trace():
            assert (entry.mem_addr is not None) == entry.instr.is_memory

    def test_branches_have_outcomes(self, mobile_wl):
        for entry in mobile_wl.trace():
            if entry.instr.is_branch:
                assert entry.taken is not None

    def test_mobile_has_more_criticals_than_spec(self, mobile_wl, spec_wl):
        mobile_frac = critical_fraction(Dfg(mobile_wl.trace()).fanouts)
        spec_frac = critical_fraction(Dfg(spec_wl.trace()).fanouts)
        assert mobile_frac > 0.01
        assert mobile_frac > spec_frac * 0.8

    def test_mobile_gap_structure(self, mobile_wl):
        hist = gap_histogram(Dfg(mobile_wl.trace()))
        mass_1_to_5 = sum(hist[str(g)] for g in range(1, 6))
        assert mass_1_to_5 > 0.3

    def test_spec_gap_structure(self, spec_wl):
        hist = gap_histogram(Dfg(spec_wl.trace()))
        assert hist["none"] + hist["0"] > 0.8

    def test_chain_registers_form_chains(self, mobile_wl):
        """At least some generated chains are detectable as ICs."""
        from repro.dfg import find_critics
        dfg = Dfg(mobile_wl.trace().window(0, 4000))
        assert len(find_critics(dfg)) > 0

    def test_trace_for_transformed_program(self, mobile_wl):
        clone = mobile_wl.program.copy()
        trace = mobile_wl.trace_for(clone)
        assert len(trace) == len(mobile_wl.trace())

    def test_functions_have_entries_and_returns(self, mobile_wl):
        for info in mobile_wl.functions:
            entry = mobile_wl.program.block(info.entry_block)
            ret = mobile_wl.program.block(info.ret_block)
            assert len(entry) > 0
            assert ret.instructions[-1].opcode is Opcode.BX

    def test_bl_targets_are_callee_entries(self, mobile_wl):
        entries = {f.entry_block for f in mobile_wl.functions}
        for instr in mobile_wl.program:
            if instr.opcode is Opcode.BL:
                assert instr.target in entries
