"""Tests for simulation statistics containers."""

import pytest

from repro.cpu import FetchStalls, STAGES, SimStats, StageResidency, speedup


class TestFetchStalls:
    def test_stall_grouping(self):
        stalls = FetchStalls(active=10, stall_icache=3, stall_branch=2,
                             stall_switch=1, stall_backpressure=4)
        assert stalls.stall_for_i == 6
        assert stalls.stall_for_rd == 4


class TestStageResidency:
    def test_fractions_normalize(self):
        res = StageResidency()
        res.instructions = 2
        res.add("fetch", 30)
        res.add("execute", 70)
        fractions = res.fractions()
        assert fractions["fetch"] == pytest.approx(0.3)
        assert fractions["execute"] == pytest.approx(0.7)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_empty_fractions_zero(self):
        fractions = StageResidency().fractions()
        assert all(v == 0.0 for v in fractions.values())
        assert set(fractions) == set(STAGES)

    def test_mean(self):
        res = StageResidency()
        res.instructions = 4
        res.add("fetch", 8)
        assert res.mean("fetch") == 2.0
        assert StageResidency().mean("fetch") == 0.0


class TestSimStats:
    def test_ipc(self):
        stats = SimStats(cycles=50, instructions=100)
        assert stats.ipc == 2.0
        assert SimStats().ipc == 0.0

    def test_fetch_stall_fractions(self):
        stats = SimStats(cycles=100)
        stats.fetch.stall_icache = 10
        stats.fetch.stall_backpressure = 20
        stats.fetch.active = 70
        fractions = stats.fetch_stall_fractions()
        assert fractions["stall_for_i"] == pytest.approx(0.10)
        assert fractions["stall_for_rd"] == pytest.approx(0.20)
        assert fractions["active"] == pytest.approx(0.70)

    def test_occupancy_means(self):
        stats = SimStats(cycles=10)
        stats.iq_occupancy_sum = 50
        stats.rob_occupancy_sum = 200
        assert stats.iq_avg_occupancy == 5.0
        assert stats.rob_avg_occupancy == 20.0


class TestSpeedup:
    def test_ratio(self):
        base = SimStats(cycles=120)
        opt = SimStats(cycles=100)
        assert speedup(base, opt) == pytest.approx(1.2)

    def test_slowdown_below_one(self):
        base = SimStats(cycles=100)
        worse = SimStats(cycles=125)
        assert speedup(base, worse) == pytest.approx(0.8)
