"""Unit tests for walk materialization and memory models."""

import pytest

from repro.isa import Cond, Instruction, Opcode
from repro.trace import (
    BasicBlock,
    HashedPattern,
    Program,
    StridedPattern,
    TableMemoryModel,
    materialize,
)


def alu(dest=0):
    return Instruction(Opcode.ADD, dests=(dest,), srcs=(1,))


def make_loop_program():
    """Block 0 body, conditional loop-back; block 1 exit."""
    body = BasicBlock(0, [
        alu(0),
        Instruction(Opcode.CMP, srcs=(0, 1)),
        Instruction(Opcode.B, cond=Cond.NE, target=0),
    ])
    exit_block = BasicBlock(1, [alu(2)])
    return Program([body, exit_block])


class TestPatterns:
    def test_strided_wraps(self):
        pattern = StridedPattern(base=0x1000, stride=8, region=16)
        addrs = [pattern.address_for(k) for k in range(4)]
        assert addrs == [0x1000, 0x1008, 0x1000, 0x1008]

    def test_strided_zero_stride(self):
        pattern = StridedPattern(base=0x1000, stride=0, region=64)
        assert pattern.address_for(0) == pattern.address_for(99)

    def test_strided_word_aligned(self):
        pattern = StridedPattern(base=0x1000, stride=6, region=1024)
        for k in range(10):
            assert pattern.address_for(k) % 4 == 0

    def test_hashed_deterministic_and_bounded(self):
        pattern = HashedPattern(base=0x2000, region=256, salt=3)
        for k in range(20):
            addr = pattern.address_for(k)
            assert addr == pattern.address_for(k)
            assert 0x2000 <= addr < 0x2100

    def test_hashed_salt_changes_sequence(self):
        a = HashedPattern(base=0, region=1 << 20, salt=1)
        b = HashedPattern(base=0, region=1 << 20, salt=2)
        assert any(a.address_for(k) != b.address_for(k) for k in range(8))

    def test_spans(self):
        assert StridedPattern(0x100, 4, 64).span() == (0x100, 0x140)
        assert HashedPattern(0x200, 32).span() == (0x200, 0x220)


class TestTableMemoryModel:
    def test_default_pattern_used(self):
        model = TableMemoryModel()
        assert model.address_for(99, 0) == model.pattern_for(99).address_for(0)

    def test_assigned_pattern_used(self):
        model = TableMemoryModel()
        model.set_pattern(5, StridedPattern(0x7000, 4, 64))
        assert model.address_for(5, 0) == 0x7000
        assert model.address_for(5, 1) == 0x7004


class TestMaterialize:
    def test_sequence_follows_walk(self):
        program = make_loop_program()
        trace = materialize(program, [0, 0, 1])
        assert len(trace) == 7
        assert [e.instr.opcode for e in trace][:3] == [
            Opcode.ADD, Opcode.CMP, Opcode.B]

    def test_branch_taken_from_walk(self):
        program = make_loop_program()
        trace = materialize(program, [0, 0, 1])
        branches = [e for e in trace if e.instr.is_branch]
        assert branches[0].taken is True    # looped back
        assert branches[1].taken is False   # fell through to exit

    def test_pcs_match_layout(self):
        program = make_loop_program()
        layout = program.layout()
        trace = materialize(program, [0, 1])
        for entry in trace:
            assert entry.pc == layout[entry.uid]

    def test_memory_occurrences_advance(self):
        load = Instruction(Opcode.LDR, dests=(0,), srcs=(1,))
        program = Program([BasicBlock(0, [load])])
        model = TableMemoryModel()
        uid = program.block(0).instructions[0].uid
        model.set_pattern(uid, StridedPattern(0x9000, 4, 1 << 20))
        trace = materialize(program, [0, 0, 0], memory=model)
        addrs = [e.mem_addr for e in trace]
        assert addrs == [0x9000, 0x9004, 0x9008]

    def test_non_memory_has_no_address(self):
        program = make_loop_program()
        trace = materialize(program, [0, 1])
        for entry in trace:
            if not entry.instr.is_memory:
                assert entry.mem_addr is None

    def test_same_walk_same_trace(self):
        program = make_loop_program()
        t1 = materialize(program, [0, 0, 1])
        t2 = materialize(program, [0, 0, 1])
        assert [e.pc for e in t1] == [e.pc for e in t2]
        assert [e.taken for e in t1] == [e.taken for e in t2]


class TestTraceContainer:
    def test_window(self):
        program = make_loop_program()
        trace = materialize(program, [0, 0, 1])
        window = trace.window(2, 3)
        assert len(window) == 3
        assert window[0].seq == trace[2].seq

    def test_dynamic_bytes_and_thumb_count(self):
        program = make_loop_program()
        trace = materialize(program, [0, 1])
        assert trace.dynamic_bytes() == 4 * len(trace)
        assert trace.count_thumb() == 0
