"""Tests for the offline CritIC profiler."""

import pytest

from repro.profiler import (
    CriticProfile,
    CriticRecord,
    FinderConfig,
    annotate_block,
    chains_per_window,
    find_critic_profile,
)
from repro.workloads import generate, get_profile


@pytest.fixture(scope="module")
def workload():
    return generate(get_profile("Office"), walk_blocks=300)


@pytest.fixture(scope="module")
def profile(workload):
    return find_critic_profile(workload.trace(), workload.program,
                               app_name="Office")


class TestFinder:
    def test_finds_chains(self, profile):
        assert len(profile) > 0
        assert profile.profiled_instructions > 0

    def test_records_well_formed(self, profile, workload):
        for record in profile:
            assert record.occurrences >= 1
            assert record.length >= 2
            assert record.mean_avg_fanout > 8.0
            if record.block_id is not None:
                block = workload.program.block(record.block_id)
                block_uids = {i.uid for i in block.instructions}
                assert set(record.uids) <= block_uids

    def test_ranked_by_dynamic_coverage(self, profile):
        volumes = [r.dynamic_instructions for r in profile]
        assert volumes == sorted(volumes, reverse=True)

    def test_coverage_consistency(self, profile):
        total = profile.total_coverage()
        assert 0.0 < total <= 1.0
        assert profile.total_coverage(encodable_only=True) <= total

    def test_cdf_monotone_and_bounded(self, profile):
        cdf = profile.coverage_cdf()
        assert all(b >= a for a, b in zip(cdf, cdf[1:]))
        assert cdf[-1] == pytest.approx(profile.total_coverage())

    def test_partial_profiling_smaller(self, workload):
        partial = find_critic_profile(
            workload.trace(), workload.program,
            FinderConfig(profiled_fraction=0.2),
        )
        assert partial.profiled_instructions \
            < len(workload.trace())

    def test_max_length_respected(self, workload):
        capped = find_critic_profile(
            workload.trace(), workload.program,
            FinderConfig(max_length=3),
        )
        assert all(r.length <= 3 for r in capped)

    def test_chains_per_window(self, workload):
        windows = chains_per_window(workload.trace())
        assert len(windows) >= 1

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            FinderConfig(profiled_fraction=0.0)
        with pytest.raises(ValueError):
            FinderConfig(window=0)


class TestSelection:
    def test_select_filters_length(self, profile):
        for record in profile.select_for_compiler(max_length=5):
            assert record.length <= 5
            assert record.thumb_encodable
            assert record.hoistable

    def test_select_ideal_keeps_unencodable(self, profile):
        ideal = profile.select_for_compiler(max_length=None,
                                            require_thumb=False)
        strict = profile.select_for_compiler(max_length=None,
                                             require_thumb=True)
        assert len(ideal) >= len(strict)

    def test_table_budget(self, profile):
        small = profile.select_for_compiler(max_table_bytes=64)
        assert sum(r.table_bytes() for r in small) <= 64


class TestSerialization:
    def test_json_round_trip(self, profile):
        restored = CriticProfile.from_json(profile.to_json())
        assert restored.records == profile.records
        assert restored.profiled_instructions \
            == profile.profiled_instructions
        assert restored.app_name == profile.app_name

    def test_record_table_bytes(self):
        record = CriticRecord(uids=(1, 2, 3), occurrences=10,
                              mean_avg_fanout=9.0, thumb_encodable=True,
                              block_id=0)
        assert record.table_bytes() == 4 + 2 * 3
        assert record.dynamic_instructions == 30


class TestAnnotateBlock:
    def test_single_block(self, workload):
        block = workload.program.blocks[0]
        uids = [i.uid for i in block.instructions[:3]]
        assert annotate_block(workload.program, uids) == block.block_id

    def test_cross_block_is_none(self, workload):
        a = workload.program.blocks[0].instructions[0].uid
        b = workload.program.blocks[1].instructions[0].uid
        assert annotate_block(workload.program, [a, b]) is None

    def test_unknown_uid_is_none(self, workload):
        assert annotate_block(workload.program, [10**9]) is None
